"""Node topology (intra/inter-node latency) and local-sweep variants."""

import numpy as np
import pytest

from repro.matrices.laplacian import fd_laplacian_2d
from repro.runtime.distributed import DistributedJacobi
from repro.runtime.machine import ARIES, HASWELL_CLUSTER


@pytest.fixture
def system(rng):
    A = fd_laplacian_2d(9, 9)
    b = rng.uniform(-1, 1, 81)
    x0 = rng.uniform(-1, 1, 81)
    return A, b, x0


class TestNodeTopology:
    def test_same_node_mapping(self, system):
        A, b, _ = system
        dj = DistributedJacobi(A, b, n_ranks=8, ranks_per_node=4, seed=0)
        assert dj._same_node(0, 3)
        assert not dj._same_node(3, 4)
        assert dj._same_node(4, 7)

    def test_default_from_cluster(self, system):
        A, b, _ = system
        dj = DistributedJacobi(A, b, n_ranks=8, seed=0)
        assert dj.ranks_per_node == HASWELL_CLUSTER.ranks_per_node

    def test_intra_node_messages_cheaper(self, rng):
        from dataclasses import replace

        net = replace(ARIES, jitter_sigma=0.0)
        intra = net.message_time(10, rng, intra_node=True)
        inter = net.message_time(10, rng, intra_node=False)
        assert intra < inter

    def test_colocated_ranks_converge_faster_in_time(self, system):
        """All ranks on one node (cheap messages) beats one rank per node
        for the same partition — fresher ghosts, same relaxations."""
        A, b, x0 = system
        one_node = DistributedJacobi(A, b, n_ranks=8, ranks_per_node=8, seed=0)
        spread = DistributedJacobi(A, b, n_ranks=8, ranks_per_node=1, seed=0)
        t_one = one_node.run_async(x0=x0, tol=1e-5, max_iterations=50_000)
        t_spread = spread.run_async(x0=x0, tol=1e-5, max_iterations=50_000)
        assert t_one.converged and t_spread.converged
        assert t_one.time_to_tolerance(1e-5) <= t_spread.time_to_tolerance(1e-5) * 1.05

    def test_ranks_per_node_validation(self, system):
        A, b, _ = system
        with pytest.raises(ValueError):
            DistributedJacobi(A, b, n_ranks=4, ranks_per_node=0)


class TestLocalSweeps:
    def test_gs_sweep_sync_matches_block_gs_reference(self, system):
        """One synchronous sweep with gauss_seidel local solves equals the
        dense block-GS-within-block-Jacobi reference."""
        A, b, x0 = system
        dj = DistributedJacobi(
            A, b, n_ranks=3, partition="contiguous", seed=0,
            local_sweep="gauss_seidel",
        )
        res = dj.run_sync(x0=x0, tol=1e-300, max_iterations=1)
        # Reference: per block, a forward GS sweep where in-block rows see
        # earlier in-block updates and everything else stays at sweep-start.
        dense = A.to_dense()
        d = np.diag(dense)
        new = x0.copy()
        bounds = [0, 27, 54, 81]
        for lo, hi in zip(bounds, bounds[1:]):
            xs = x0.copy()
            for i in range(lo, hi):
                r_i = b[i] - dense[i] @ xs
                xs[i] += r_i / d[i]
            new[lo:hi] = xs[lo:hi]
        np.testing.assert_allclose(res.x, new, rtol=1e-12)

    def test_gs_sweep_converges_faster_per_relaxation(self, system):
        """In-block sequencing helps: GS local sweeps need fewer sweeps."""
        A, b, x0 = system
        jac = DistributedJacobi(A, b, n_ranks=4, seed=0)
        gs = DistributedJacobi(A, b, n_ranks=4, seed=0, local_sweep="gauss_seidel")
        rj = jac.run_sync(x0=x0, tol=1e-5, max_iterations=10_000)
        rg = gs.run_sync(x0=x0, tol=1e-5, max_iterations=10_000)
        assert rg.converged
        assert rg.iterations[0] < rj.iterations[0]

    def test_gs_async_converges(self, system):
        A, b, x0 = system
        dj = DistributedJacobi(A, b, n_ranks=6, seed=0, local_sweep="gauss_seidel")
        res = dj.run_async(x0=x0, tol=1e-6, max_iterations=50_000)
        assert res.converged
        np.testing.assert_allclose(A @ res.x, b, atol=1e-3)

    def test_invalid_sweep_name(self, system):
        A, b, _ = system
        with pytest.raises(ValueError):
            DistributedJacobi(A, b, n_ranks=4, local_sweep="sor")
