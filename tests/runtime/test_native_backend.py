"""Compiled relax kernels (``relax_backend="native"``): identity and fallback.

The native backend's contract is the strongest the repo offers: at small n
it must be *bit-identical* to the legacy oracle across the same feature
matrix the engine-equivalence suite covers (methods, delivery modes, fault
plans, tracing), at turbo scale bit-identical to the block backend, and at
10^4 rows statistically equivalent to the event backend by the ensemble
helpers. When the toolchain probe fails — no ``cc``, or
``REPRO_NO_NATIVE=1`` — every entry point must fall back silently and
reproduce the NumPy trajectories exactly.

Tests that need the compiled library skip (not fail) on machines without a
C compiler, so the suite stays green in toolchain-less environments.
"""

import os

import numpy as np
import pytest

from repro.matrices.laplacian import fd_laplacian_2d
from repro.methods import make_method
from repro.perf import native
from repro.runtime.distributed import DistributedJacobi
from repro.util.rng import as_rng
from tests.runtime.equivalence import (
    assert_envelopes_agree,
    assert_times_comparable,
    run_ensemble,
)
from tests.runtime.test_engine_equivalence import (
    DIST_ASYNC_CASES,
    A,
    B,
    assert_results_identical,
)

needs_native = pytest.mark.skipif(
    not native.native_available(),
    reason="no C toolchain (or REPRO_NO_NATIVE set): compiled kernels absent",
)

#: Every engine-equivalence async case the native backend legally covers —
#: the whole matrix minus Gauss-Seidel, whose sequential dot products the
#: backend refuses (BLAS accumulation order is not reproducible in C).
NATIVE_CASES = {k: v for k, v in DIST_ASYNC_CASES.items() if k != "gauss_seidel"}


def _run_pair(kwargs, run_kwargs):
    """(native run, legacy-oracle run) for one configuration."""
    run_kwargs = dict({"tol": 1e-6, "max_iterations": 40}, **run_kwargs)
    native_run = DistributedJacobi(A, B, n_ranks=8, seed=3, **kwargs).run_async(
        relax_backend="native", **run_kwargs
    )
    legacy_run = DistributedJacobi(A, B, n_ranks=8, seed=3, **kwargs).run_async(
        legacy_engine=True, **run_kwargs
    )
    return native_run, legacy_run


@needs_native
@pytest.mark.parametrize("case", NATIVE_CASES)
def test_native_bit_identical_to_legacy(case):
    kwargs, run_kwargs = NATIVE_CASES[case]
    assert_results_identical(*_run_pair(kwargs, run_kwargs))


@needs_native
@pytest.mark.parametrize(
    "method",
    ["damped_jacobi", "richardson", "richardson2"],
)
def test_native_bit_identical_all_legal_methods(method):
    """Scaled and momentum method kinds run the compiled kernels bitwise."""
    kwargs = {"method": make_method(method)}
    assert_results_identical(*_run_pair(kwargs, {}))


@needs_native
@pytest.mark.parametrize("delivery", ["batched", "event"])
def test_native_bit_identical_both_delivery_modes(delivery):
    assert_results_identical(*_run_pair({}, {"delivery": delivery}))


@needs_native
def test_native_traced_run_matches_untraced_trajectory():
    """A traced native run yields the same trajectory as the oracle's.

    Tracing forces the general event loop; the native relax closure must
    keep the bitwise contract there too.
    """
    from repro.observability import RingBufferSink, Tracer

    run_kwargs = {"tol": 1e-6, "max_iterations": 30}
    streams = []
    results = []
    for setup in ({"relax_backend": "native"}, {"legacy_engine": True}):
        sink = RingBufferSink(capacity=200_000)
        tracer = Tracer(sinks=[sink], trace_reads=True)
        sim = DistributedJacobi(A, B, n_ranks=8, seed=3)
        results.append(sim.run_async(tracer=tracer, **setup, **run_kwargs))
        streams.append(
            [(e.kind, e.time, e.seq, e.agent) for e in sink._ring]
        )
    assert len(streams[0]) > 0
    assert streams[0] == streams[1]
    assert_results_identical(*results)


TURBO_A = fd_laplacian_2d(16, 16)
TURBO_RANKS = 128  # >= _TURBO_MIN_RANKS: the precomputed-timeline engine


def _turbo_run(relax_backend, **extra):
    b = as_rng(7).uniform(-1, 1, TURBO_A.shape[0])
    sim = DistributedJacobi(
        TURBO_A, b, n_ranks=TURBO_RANKS, partition="contiguous", seed=7
    )
    return sim.run_async(
        tol=1e-8,
        max_iterations=60,
        observe_every=TURBO_RANKS,
        relax_backend=relax_backend,
        **extra,
    )


@needs_native
@pytest.mark.parametrize("extra", [{}, {"residual_mode": "full"}])
def test_native_turbo_bit_identical_to_block(extra):
    """At turbo rank counts the fused batch kernel matches block bitwise."""
    assert_results_identical(_turbo_run("native", **extra), _turbo_run("block", **extra))


@needs_native
def test_auto_upgrades_to_native_at_turbo_scale():
    res = _turbo_run("auto", instrument=True)
    assert res.perf.backend == "native"
    assert_results_identical(res, _turbo_run("block", instrument=True))


@needs_native
def test_native_counters_populated_on_instrumented_run():
    sim = DistributedJacobi(A, B, n_ranks=8, seed=3)
    res = sim.run_async(
        tol=1e-6, max_iterations=40, instrument=True, relax_backend="native"
    )
    perf = res.perf
    assert perf.backend == "native"
    assert perf.native_calls > 0
    assert perf.native_rows_relaxed >= perf.native_calls
    assert "native" in perf.summary()
    assert "kernel calls" in perf.native_summary()


SEEDS = (1, 2, 3)
LARGE_A = fd_laplacian_2d(100, 100)  # 10^4 rows
LARGE_RANKS = 128


def _large_runner(relax_backend):
    def run_one(seed):
        b = as_rng(seed).uniform(-1, 1, LARGE_A.shape[0])
        sim = DistributedJacobi(
            LARGE_A, b, n_ranks=LARGE_RANKS, partition="contiguous", seed=seed
        )
        tol = sim.run_sync(max_iterations=1).residual_norms[0] / 10.0
        result = sim.run_async(
            tol=tol,
            max_iterations=400,
            observe_every=LARGE_RANKS,
            relax_backend=relax_backend,
        )
        result.tol = tol
        return result

    return run_one


@needs_native
def test_native_statistically_equivalent_at_large_n():
    """10^4 rows, 128 ranks: native traces the event backend's envelope.

    Bit-identity against the legacy oracle is unaffordable here; the
    ensemble contract (envelope overlap + comparable time-to-tolerance)
    is the paper-scale check, and per-seed bit-identity against the block
    backend rides along because it is nearly free.
    """
    nat = run_ensemble(_large_runner("native"), SEEDS)
    ev = run_ensemble(_large_runner("event"), SEEDS)
    assert_envelopes_agree(nat, ev, slack=0.02)
    tol = min(r.tol for r in nat)
    assert_times_comparable(nat, ev, tol, ratio=1.05)
    bl = run_ensemble(_large_runner("block"), SEEDS)
    for r_nat, r_bl in zip(nat, bl):
        assert_results_identical(r_nat, r_bl)


class TestFallbackAndValidation:
    def test_env_knob_disables_and_falls_back_bitwise(self, monkeypatch):
        """REPRO_NO_NATIVE=1: relax_backend="native" silently runs NumPy."""
        reference = DistributedJacobi(A, B, n_ranks=8, seed=3).run_async(
            tol=1e-6, max_iterations=40, relax_backend="block"
        )
        monkeypatch.setenv("REPRO_NO_NATIVE", "1")
        native._reset_probe_cache()
        try:
            assert native.native_available() is False
            res = DistributedJacobi(A, B, n_ranks=8, seed=3).run_async(
                tol=1e-6,
                max_iterations=40,
                relax_backend="native",
                instrument=True,
            )
            assert res.perf.backend == "block"
            assert res.perf.native_calls == 0
            assert_results_identical(res, reference)
        finally:
            monkeypatch.delenv("REPRO_NO_NATIVE")
            native._reset_probe_cache()

    def test_gauss_seidel_sweep_rejects_native(self):
        sim = DistributedJacobi(A, B, n_ranks=8, seed=3, local_sweep="gauss_seidel")
        with pytest.raises(Exception, match="relax_backend"):
            sim.run_async(tol=1e-6, max_iterations=5, relax_backend="native")

    def test_sor_method_rejects_native(self):
        sim = DistributedJacobi(A, B, n_ranks=8, seed=3, method=make_method("sor"))
        with pytest.raises(Exception, match="relax_backend"):
            sim.run_async(tol=1e-6, max_iterations=5, relax_backend="native")

    def test_unknown_backend_error_lists_legal_values(self):
        sim = DistributedJacobi(A, B, n_ranks=8, seed=3)
        with pytest.raises(Exception, match="'auto'.*'event'.*'block'"):
            sim.run_async(tol=1e-6, max_iterations=5, relax_backend="bogus")


class TestBuildMachinery:
    def test_probe_is_memoized_and_resettable(self):
        first = native.native_kernels()
        assert native.native_kernels() is first
        native._reset_probe_cache()
        again = native.native_kernels()
        assert (again is None) == (first is None)

    def test_build_info_shape(self):
        info = native.build_info()
        assert set(info) >= {
            "available", "disabled", "compiler", "cache_dir",
            "source_hash", "library", "build_ms",
        }
        assert len(native.source_hash()) == 16

    @needs_native
    def test_clean_cache_dir_rebuild(self, tmp_path, monkeypatch):
        """A cold cache dir compiles from scratch and logs the build."""
        monkeypatch.setenv("REPRO_NATIVE_DIR", str(tmp_path))
        native._reset_probe_cache()
        try:
            kernels = native.native_kernels()
            assert kernels is not None
            assert kernels.build_ms > 0.0  # actually compiled, not cached
            assert str(kernels.path).startswith(str(tmp_path))
            assert (tmp_path / "build.log").exists()
            # Same content hash -> second probe reuses the library.
            native._reset_probe_cache()
            warm = native.native_kernels()
            assert warm is not None and warm.build_ms == 0.0
        finally:
            monkeypatch.delenv("REPRO_NATIVE_DIR")
            native._reset_probe_cache()

    def test_disabled_env_values(self, monkeypatch):
        for value, disabled in (("1", True), ("0", False), ("", False)):
            monkeypatch.setenv("REPRO_NO_NATIVE", value)
            assert native._disabled() is disabled
        monkeypatch.delenv("REPRO_NO_NATIVE")
        assert native._disabled() is False


def test_module_import_has_no_side_effects():
    """Importing repro.perf.native never compiles; only the probe does."""
    # The memo list is the only module state; importing again is a no-op.
    import importlib

    assert isinstance(native._cache, list) and len(native._cache) == 2
    assert importlib.import_module("repro.perf.native") is native
