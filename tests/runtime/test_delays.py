"""Delay models: injected sleeps, stragglers, hangs, stalls."""

import numpy as np
import pytest

from repro.runtime.delays import (
    CompositeDelay,
    ConstantDelay,
    DelayModel,
    HangDelay,
    NO_DELAY,
    StochasticStall,
    StragglerDelay,
)


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestBaseAndConstant:
    def test_no_delay(self, rng):
        assert NO_DELAY.extra_time(0, 0, rng) == 0.0
        assert not NO_DELAY.is_hung(0, 1e9)

    def test_constant_only_targets_selected(self, rng):
        d = ConstantDelay({3: 5e-4})
        assert d.extra_time(3, 0, rng) == 5e-4
        assert d.extra_time(2, 0, rng) == 0.0

    def test_constant_rejects_negative(self):
        with pytest.raises(ValueError):
            ConstantDelay({0: -1.0})


class TestStraggler:
    def test_slowdown_factors(self):
        d = StragglerDelay({1: 2.5})
        assert d.slowdown(1) == 2.5
        assert d.slowdown(0) == 1.0

    def test_rejects_speedup(self):
        with pytest.raises(ValueError):
            StragglerDelay({0: 0.5})


class TestHang:
    def test_hang_after_time(self):
        d = HangDelay({2: 1.0})
        assert not d.is_hung(2, 0.5)
        assert d.is_hung(2, 1.0)
        assert not d.is_hung(0, 100.0)


class TestStochasticStall:
    def test_mean_stall(self, rng):
        d = StochasticStall(prob=0.5, mean_stall=1.0)
        samples = [d.extra_time(0, k, rng) for k in range(4000)]
        frac_stalled = np.mean([s > 0 for s in samples])
        assert 0.45 < frac_stalled < 0.55
        stalls = [s for s in samples if s > 0]
        assert 0.8 < np.mean(stalls) < 1.2

    def test_agent_scoping(self, rng):
        d = StochasticStall(prob=1.0, mean_stall=1.0, agents=[7])
        assert d.extra_time(0, 0, rng) == 0.0
        assert d.extra_time(7, 0, rng) > 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            StochasticStall(prob=1.5, mean_stall=1.0)
        with pytest.raises(ValueError):
            StochasticStall(prob=0.5, mean_stall=-1.0)


class TestComposite:
    def test_sums_extra_time(self, rng):
        d = CompositeDelay(ConstantDelay({0: 1.0}), ConstantDelay({0: 2.0}))
        assert d.extra_time(0, 0, rng) == 3.0

    def test_any_hang(self, rng):
        d = CompositeDelay(ConstantDelay({0: 1.0}), HangDelay({1: 0.0}))
        assert d.is_hung(1, 0.0)
        assert not d.is_hung(0, 0.0)

    def test_slowdown_product(self):
        d = CompositeDelay(StragglerDelay({0: 2.0}), StragglerDelay({0: 3.0}))
        assert d.slowdown(0) == 6.0
        assert d.slowdown(1) == 1.0
