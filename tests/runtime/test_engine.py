"""Event-engine unit tests: queue backends, jitter streams, allocations.

The engine's contract is *bit-identity*: both queue backends must pop in
exactly the reference heapq order (time, then insertion seq), and the
chunked jitter streams must consume a generator exactly like the scalar
draws they replace. These tests pin that contract down with randomized
interleavings and direct draw-sequence comparisons.
"""

import heapq
import math

import numpy as np
import pytest

from repro.matrices.laplacian import fd_laplacian_2d
from repro.runtime.distributed import DistributedJacobi
from repro.runtime.engine import (
    CalendarEventQueue,
    HeapEventQueue,
    JitterStream,
    NormalStream,
    PatternJitterStream,
    make_event_queue,
)
from repro.util.errors import SimulationError

BACKENDS = [HeapEventQueue, CalendarEventQueue]


class _ReferenceQueue:
    """Plain heapq of (time, seq) keys — the ordering oracle."""

    def __init__(self):
        self._heap = []
        self._seq = 0
        self.now = 0.0

    def push(self, time, kind, agent, obj=None):
        heapq.heappush(self._heap, (time, self._seq, kind, agent, obj))
        self._seq += 1

    def pop(self):
        time, _, kind, agent, obj = heapq.heappop(self._heap)
        self.now = time
        return time, kind, agent, obj

    def __len__(self):
        return len(self._heap)


@pytest.mark.parametrize("backend", BACKENDS)
class TestQueueMatchesReference:
    def test_randomized_interleavings(self, backend):
        """Random push/pop schedules pop byte-for-byte like the oracle.

        Times are drawn from a coarse grid so equal timestamps (seq
        tie-breaks) occur constantly, and payloads are identity-checked.
        """
        rng = np.random.default_rng(42)
        for trial in range(12):
            q, ref = backend(), _ReferenceQueue()
            for step in range(400):
                if len(ref) == 0 or rng.random() < 0.6:
                    t = ref.now + float(rng.integers(0, 12)) * 0.125
                    kind = int(rng.integers(0, 4))
                    agent = int(rng.integers(0, 8))
                    obj = (trial, step)  # unique identity per event
                    q.push(t, kind, agent, obj)
                    ref.push(t, kind, agent, obj)
                else:
                    got, want = q.pop(), ref.pop()
                    assert got == want
                    assert got[3] is want[3]
            while len(ref):
                assert q.pop() == ref.pop()
            assert len(q) == 0 and not q

    def test_fifo_on_equal_times(self, backend):
        q = backend()
        for i in range(50):
            q.push(1.0, 0, i)
        assert [q.pop()[2] for _ in range(50)] == list(range(50))

    def test_rejects_nan_time(self, backend):
        q = backend()
        with pytest.raises(SimulationError, match="NaN"):
            q.push(float("nan"), 0, 0)
        assert len(q) == 0

    def test_rejects_past_time(self, backend):
        q = backend()
        q.push(2.0, 0, 0)
        assert q.pop()[0] == 2.0
        with pytest.raises(SimulationError):
            q.push(1.0, 0, 0)
        q.push(2.0, 0, 0)  # rescheduling at now is allowed
        assert q.now == 2.0

    def test_pop_empty_raises(self, backend):
        with pytest.raises(SimulationError):
            backend().pop()
        with pytest.raises(SimulationError):
            backend().pop_batch()

    def test_pending_payloads_visibility(self, backend):
        q = backend()
        events = [(0.5 * i, i % 3, i, ("payload", i)) for i in range(20)]
        for t, kind, agent, obj in events:
            q.push(t, kind, agent, obj)
        q.pop()  # consume the earliest
        pending = sorted(q.pending_payloads(), key=lambda e: e[1])
        assert pending == [(k, a, o) for _, k, a, o in events[1:]]

    def test_pop_batch_equals_sequential_pops(self, backend):
        rng = np.random.default_rng(7)
        qa, qb = backend(), backend()
        for step in range(300):
            t = float(rng.integers(0, 20)) * 0.25
            kind, agent = int(rng.integers(0, 2)), int(rng.integers(0, 6))
            qa.push(t, kind, agent, step)
            qb.push(t, kind, agent, step)
        singles = [qa.pop() for _ in range(300)]
        batched = []
        while qb:
            t, kind, agents, objs = qb.pop_batch()
            assert len(agents) == len(objs) >= 1
            batched.extend((t, kind, a, o) for a, o in zip(agents, objs))
        assert batched == singles

    def test_peek_time(self, backend):
        q = backend()
        assert q.peek_time() == float("inf")
        q.push(3.0, 0, 0)
        q.push(1.5, 0, 1)
        assert q.peek_time() == 1.5
        q.pop()
        assert q.peek_time() == 3.0


class TestCalendarInternals:
    def test_growth_past_capacity(self):
        q = CalendarEventQueue(capacity=16, n_buckets=4)
        ref = _ReferenceQueue()
        rng = np.random.default_rng(3)
        for i in range(500):  # forces several _grow()/_rebuild() cycles
            t = float(rng.random()) * 1e-3
            q.push(t, 0, i)
            ref.push(t, 0, i)
        assert [q.pop() for _ in range(500)] == [ref.pop() for _ in range(500)]

    def test_sparse_far_future_jump(self):
        """Events many empty days ahead are found via the min-jump."""
        q = CalendarEventQueue(n_buckets=4, bucket_width=1e-6)
        q.push(0.0, 0, 0)
        q.push(5.0, 1, 1)  # ~5e6 days later
        q.push(9.0, 2, 2)
        assert q.pop() == (0.0, 0, 0, None)
        assert q.pop() == (5.0, 1, 1, None)
        assert q.pop() == (9.0, 2, 2, None)

    def test_infinite_time_sorts_last(self):
        q = CalendarEventQueue()
        q.push(float("inf"), 9, 0)
        q.push(1.0, 0, 1)
        assert q.pop()[2] == 1
        assert q.pop() == (float("inf"), 9, 0, None)


class TestMakeEventQueue:
    def test_backend_selection(self):
        assert isinstance(make_event_queue("heap"), HeapEventQueue)
        assert isinstance(make_event_queue("calendar"), CalendarEventQueue)
        assert isinstance(make_event_queue("auto", size_hint=2), HeapEventQueue)
        assert isinstance(
            make_event_queue("auto", size_hint=1 << 20), CalendarEventQueue
        )

    def test_unknown_backend(self):
        with pytest.raises(ValueError, match="backend"):
            make_event_queue("fifo")


class TestStreamsBitIdentical:
    """Chunked streams must reproduce the scalar draw sequence exactly."""

    def test_jitter_stream(self):
        a, b = np.random.default_rng(5), np.random.default_rng(5)
        st = JitterStream(a, 0.3, chunk=7)  # force mid-sequence refills
        assert [st.next() for _ in range(40)] == [
            float(b.lognormal(0.0, 0.3)) for _ in range(40)
        ]

    def test_normal_stream(self):
        a, b = np.random.default_rng(5), np.random.default_rng(5)
        st = NormalStream(a, chunk=7)
        assert [math.exp(0.2 * st.next()) for _ in range(40)] == [
            float(b.lognormal(0.0, 0.2)) for _ in range(40)
        ]

    def test_pattern_stream_mixed_sigmas(self):
        pattern = [0.1, 0.25, 0.25, 0.05]
        a, b = np.random.default_rng(11), np.random.default_rng(11)
        st = PatternJitterStream(a, pattern, steps=6)  # several refills
        for _ in range(50):
            got = st.next_step()
            want = [float(b.lognormal(0.0, s)) for s in pattern]
            assert got == want


class TestNoPerRelaxationConcatenate:
    """The relax hot path must not rebuild ``local_x`` per relaxation.

    The legacy loop called ``np.concatenate((x[rows], ghosts))`` for every
    relaxation *and* every residual report; the engine writes into
    preallocated per-rank buffers instead. Counting ``np.concatenate``
    calls across two run lengths pins this down: any per-iteration use
    would scale with ``max_iterations``, setup-only use would not.
    """

    def _concat_count(self, monkeypatch, max_iterations, legacy):
        A = fd_laplacian_2d(8, 8)
        b = np.random.default_rng(0).standard_normal(A.shape[0])
        solver = DistributedJacobi(A, b, n_ranks=4, seed=1)
        real, calls = np.concatenate, [0]

        def counting(*args, **kwargs):
            calls[0] += 1
            return real(*args, **kwargs)

        monkeypatch.setattr(np, "concatenate", counting)
        try:
            solver.run_async(
                tol=1e-300, max_iterations=max_iterations, legacy_engine=legacy,
                termination="detect", report_every=4,
            )
        finally:
            monkeypatch.setattr(np, "concatenate", real)
        return calls[0]

    def test_engine_concatenate_is_setup_only(self, monkeypatch):
        short = self._concat_count(monkeypatch, 8, legacy=False)
        long = self._concat_count(monkeypatch, 32, legacy=False)
        assert long == short  # O(ranks) setup, independent of iterations

    def test_legacy_scales_with_iterations(self, monkeypatch):
        # The oracle still concatenates per relaxation — the contrast that
        # makes the test above meaningful.
        short = self._concat_count(monkeypatch, 8, legacy=True)
        long = self._concat_count(monkeypatch, 32, legacy=True)
        assert long > short + 48

    def test_peak_memory_does_not_scale_with_iterations(self):
        import tracemalloc

        A = fd_laplacian_2d(8, 8)
        b = np.random.default_rng(0).standard_normal(A.shape[0])

        def peak(iters):
            solver = DistributedJacobi(A, b, n_ranks=4, seed=1)
            solver.run_async(tol=1e-300, max_iterations=8)  # warm imports/caches
            tracemalloc.start()
            solver.run_async(tol=1e-300, max_iterations=iters)
            _, p = tracemalloc.get_traced_memory()
            tracemalloc.stop()
            return p

        lo, hi = peak(8), peak(128)
        assert hi < 2 * lo + 65536
