"""SimulationResult metrics, including the paper's log-interpolated timing."""

import numpy as np
import pytest

from repro.runtime.results import SimulationResult


def _result(times, residuals, counts=None):
    counts = counts or list(range(len(times)))
    return SimulationResult(
        x=np.zeros(1),
        converged=residuals[-1] < 1e-3,
        times=list(times),
        residual_norms=list(residuals),
        relaxation_counts=counts,
        iterations=np.array([len(times)]),
        total_time=times[-1],
    )


class TestThresholdMetrics:
    def test_time_to_tolerance_first_crossing(self):
        r = _result([0, 1, 2, 3], [1.0, 0.5, 0.05, 0.01])
        assert r.time_to_tolerance(0.1) == 2
        assert r.time_to_tolerance(0.001) == float("inf")

    def test_relaxations_to_tolerance(self):
        r = _result([0, 1, 2], [1.0, 0.2, 0.01], counts=[0, 10, 20])
        assert r.relaxations_to_tolerance(0.1) == 20.0

    def test_final_residual(self):
        assert _result([0, 1], [1.0, 0.3]).final_residual == 0.3


class TestSummary:
    def test_converged_summary(self):
        r = _result([0, 1], [1.0, 1e-4])
        text = r.summary()
        assert "converged" in text and "1.000e-04" in text

    def test_nonconverged_summary(self):
        r = _result([0, 1], [1.0, 0.5])
        assert "did not converge" in r.summary()


class TestLogInterpolation:
    def test_exact_geometric_decay(self):
        """Residual 10^-t: time to reach 10^-2.5 interpolates to 2.5."""
        times = [0.0, 1.0, 2.0, 3.0]
        residuals = [1.0, 0.1, 0.01, 0.001]
        r = _result(times, residuals)
        assert r.time_at_residual(10**-2.5) == pytest.approx(2.5)

    def test_crossing_at_first_sample(self):
        r = _result([0.0, 1.0], [0.01, 0.001])
        assert r.time_at_residual(0.5) == 0.0

    def test_unreached_is_inf(self):
        r = _result([0.0, 1.0], [1.0, 0.5])
        assert r.time_at_residual(1e-6) == float("inf")

    def test_interpolation_between_samples(self):
        r = _result([0.0, 2.0], [1.0, 0.01])
        # Halfway in log space: residual 0.1 at t = 1.
        assert r.time_at_residual(0.1) == pytest.approx(1.0)
