"""Distributed extensions: eager scheme, termination detection, damping."""

import numpy as np
import pytest

from repro.matrices.laplacian import fd_laplacian_2d
from repro.matrices.suitesparse import dubcova2_like
from repro.runtime.distributed import DistributedJacobi
from repro.util.norms import relative_residual_norm


@pytest.fixture
def system(rng):
    A = fd_laplacian_2d(9, 9)
    b = rng.uniform(-1, 1, 81)
    x0 = rng.uniform(-1, 1, 81)
    return A, b, x0


class TestEagerScheme:
    def test_eager_converges(self, system):
        A, b, x0 = system
        dj = DistributedJacobi(A, b, n_ranks=8, seed=0)
        res = dj.run_async(x0=x0, tol=1e-6, max_iterations=50_000, eager=True)
        assert res.converged
        assert res.mode == "eager"
        np.testing.assert_allclose(A @ res.x, b, atol=1e-3)

    def test_eager_never_wastes_relaxations(self, system):
        """Eager relaxes at most as many times as racy for the same target
        (it skips iterations that would reuse identical information)."""
        A, b, x0 = system
        dj = DistributedJacobi(A, b, n_ranks=8, seed=0)
        racy = dj.run_async(x0=x0, tol=1e-6, max_iterations=50_000)
        eager = dj.run_async(x0=x0, tol=1e-6, max_iterations=50_000, eager=True)
        assert eager.relaxation_counts[-1] <= racy.relaxation_counts[-1] * 1.05

    def test_eager_with_heavy_drops_terminates(self, system):
        """If all in-flight updates are lost, eager ranks go idle and the
        simulation ends cleanly instead of spinning."""
        A, b, x0 = system
        dj = DistributedJacobi(A, b, n_ranks=8, seed=0, drop_probability=1.0)
        res = dj.run_async(x0=x0, tol=1e-8, max_iterations=10_000, eager=True)
        assert not res.converged
        assert res.iterations.max() <= 3  # everyone starved almost instantly

    def test_eager_single_rank_runs(self, system):
        """A rank with no neighbors must not deadlock in eager mode."""
        A, b, x0 = system
        dj = DistributedJacobi(A, b, n_ranks=1, seed=0)
        res = dj.run_async(x0=x0, tol=1e-4, max_iterations=5000, eager=True)
        assert res.converged


class TestTerminationDetection:
    def test_detection_stops_near_target(self, system):
        A, b, x0 = system
        dj = DistributedJacobi(A, b, n_ranks=8, seed=0)
        tol = 1e-4
        res = dj.run_async(
            x0=x0, tol=tol, max_iterations=20_000, termination="detect"
        )
        # The detector fired: ranks stopped before the count cap...
        assert res.iterations.max() < 20_000
        # ...and the true residual is near the target (stale reports make
        # the detector conservative by up to ~an iteration's progress).
        true_res = relative_residual_norm(A, res.x, b)
        assert true_res < 2 * tol

    def test_detection_ranks_stop_at_different_counts(self, system):
        """STOP messages arrive with network latency: ranks halt unevenly."""
        A, b, x0 = system
        dj = DistributedJacobi(A, b, n_ranks=8, seed=0)
        res = dj.run_async(
            x0=x0, tol=1e-4, max_iterations=20_000, termination="detect"
        )
        assert len(np.unique(res.iterations)) > 1

    def test_unreachable_tolerance_falls_back_to_count(self, system):
        A, b, x0 = system
        dj = DistributedJacobi(A, b, n_ranks=4, seed=0)
        res = dj.run_async(
            x0=x0, tol=1e-308, max_iterations=50, termination="detect"
        )
        assert not res.converged
        assert res.iterations.max() == 50

    def test_invalid_termination_name(self, system):
        A, b, x0 = system
        dj = DistributedJacobi(A, b, n_ranks=4, seed=0)
        with pytest.raises(ValueError):
            dj.run_async(x0=x0, termination="oracle")


class TestDamping:
    def test_omega_validation(self, system):
        A, b, _ = system
        with pytest.raises(ValueError):
            DistributedJacobi(A, b, n_ranks=4, omega=0.0)
        with pytest.raises(ValueError):
            DistributedJacobi(A, b, n_ranks=4, omega=2.0)

    def test_damped_sync_matches_damped_jacobi(self, system):
        """Distributed sync with omega == classical damped Jacobi sweeps."""
        A, b, x0 = system
        omega = 0.6
        dj = DistributedJacobi(A, b, n_ranks=5, seed=0, omega=omega)
        res = dj.run_sync(x0=x0, tol=1e-300, max_iterations=3)
        dense = A.to_dense()
        x = x0.copy()
        d = np.diag(dense)
        for _ in range(3):
            x = x + omega * (b - dense @ x) / d
        np.testing.assert_allclose(res.x, x, rtol=1e-12)

    def test_damping_rescues_divergent_sync(self, rng):
        """rho(G) > 1 but rho(I - omega A) < 1 for small omega: damping is
        the classical fix asynchrony obtains for free."""
        A = dubcova2_like(400, stretch=6.0)
        n = A.nrows
        b = rng.uniform(-1, 1, n)
        x0 = rng.uniform(-1, 1, n)
        plain = DistributedJacobi(A, b, n_ranks=8, seed=0)
        rp = plain.run_sync(x0=x0, tol=1e-3, max_iterations=300)
        assert rp.final_residual > rp.residual_norms[0]  # diverges
        damped = DistributedJacobi(A, b, n_ranks=8, seed=0, omega=0.9)
        rd = damped.run_sync(x0=x0, tol=1e-3, max_iterations=300)
        assert rd.final_residual < rp.residual_norms[0]  # decreasing
