"""Fault plans, reliable puts, heartbeat detection, recovery, reproducibility."""

import numpy as np
import pytest

from repro.faults import (
    CorruptBurst,
    DropBurst,
    FaultPlan,
    FaultPlanError,
    NO_FAULTS,
    PartitionWindow,
    RankCrash,
    ThreadDeath,
)
from repro.matrices.laplacian import fd_laplacian_2d
from repro.runtime.delays import CompositeDelay, ConstantDelay, PlanDelay
from repro.runtime.distributed import DistributedJacobi
from repro.runtime.shared import SharedMemoryJacobi
from repro.util.errors import ShapeError, SimulationError


@pytest.fixture
def system(rng):
    A = fd_laplacian_2d(9, 9)
    b = rng.uniform(-1, 1, 81)
    x0 = rng.uniform(-1, 1, 81)
    return A, b, x0


class TestFaultPlan:
    def test_empty_plan_is_falsy(self):
        assert not NO_FAULTS
        assert not FaultPlan()
        assert FaultPlan([RankCrash(agent=0, at=1.0)])

    def test_crash_windows(self):
        plan = FaultPlan([RankCrash(agent=2, at=1.0, restart_after=0.5)])
        assert not plan.is_down(2, 0.9)
        assert plan.is_down(2, 1.0)
        assert plan.is_down(2, 1.4)
        assert not plan.is_down(2, 1.5)  # restart instant is alive
        assert not plan.is_down(0, 1.2)
        assert not plan.down_forever(2, 1.2)
        assert plan.next_restart(2, 1.2) == 1.5
        assert plan.restart_times(2) == [1.5]

    def test_permanent_crash(self):
        plan = FaultPlan([RankCrash(agent=1, at=2.0)])
        assert plan.is_down(1, 100.0)
        assert plan.down_forever(1, 2.0)
        assert plan.next_restart(1, 3.0) is None
        assert plan.restart_times(1) == []

    def test_overlapping_crashes_rejected(self):
        with pytest.raises(FaultPlanError, match="already down"):
            FaultPlan(
                [
                    RankCrash(agent=0, at=1.0, restart_after=2.0),
                    RankCrash(agent=0, at=2.0, restart_after=0.1),
                ]
            )
        with pytest.raises(FaultPlanError, match="already down"):
            FaultPlan([RankCrash(agent=0, at=1.0), RankCrash(agent=0, at=5.0)])

    def test_sequential_crashes_allowed(self):
        plan = FaultPlan(
            [
                RankCrash(agent=0, at=1.0, restart_after=1.0),
                RankCrash(agent=0, at=3.0, restart_after=1.0),
            ]
        )
        assert plan.is_down(0, 1.5) and not plan.is_down(0, 2.5)
        assert plan.is_down(0, 3.5)

    def test_bad_times_rejected(self):
        with pytest.raises(FaultPlanError):
            RankCrash(agent=0, at=-1.0)
        with pytest.raises(FaultPlanError):
            RankCrash(agent=0, at=float("nan"))
        with pytest.raises(FaultPlanError):
            RankCrash(agent=0, at=1.0, restart_after=0.0)
        with pytest.raises(FaultPlanError):
            PartitionWindow(group=frozenset(), start=0.0, duration=1.0)
        with pytest.raises(FaultPlanError):
            FaultPlan(["not an event"])

    def test_partition_severs_only_across_groups(self):
        w = PartitionWindow(group=frozenset({0, 1}), start=1.0, duration=1.0)
        plan = FaultPlan([w])
        assert plan.blocks_message(0, 2, 1.5)
        assert plan.blocks_message(2, 1, 1.5)
        assert not plan.blocks_message(0, 1, 1.5)  # same side
        assert not plan.blocks_message(2, 3, 1.5)  # same side
        assert not plan.blocks_message(0, 2, 2.5)  # window over

    def test_drop_bursts_combine_independently(self):
        plan = FaultPlan(
            [
                DropBurst(start=0.0, duration=2.0, probability=0.5),
                DropBurst(start=1.0, duration=2.0, probability=0.5, agents={0}),
            ]
        )
        assert plan.drop_probability(0, 0.5) == pytest.approx(0.5)
        assert plan.drop_probability(0, 1.5) == pytest.approx(0.75)
        assert plan.drop_probability(1, 1.5) == pytest.approx(0.5)
        assert plan.drop_probability(0, 5.0) == 0.0
        assert plan.corrupt_probability(0, 1.5) == 0.0

    def test_from_spec_dsl(self):
        plan = FaultPlan.from_spec(
            [
                {"kind": "crash", "rank": 3, "at": 1e-4, "restart_after": 5e-5},
                {"kind": "crash", "thread": 1, "at": 2e-4},
                {"kind": "partition", "group": [0, 1], "start": 0.0, "duration": 1e-4},
                {"kind": "drop", "start": 0.0, "duration": 1e-4, "probability": 0.05},
                {"kind": "corrupt", "start": 0.0, "duration": 1e-4, "probability": 0.01},
            ],
            seed=7,
        )
        assert plan.agents() == {1, 3}
        assert plan.seed == 7
        assert len(plan.partitions) == 1
        assert len(plan.drop_bursts) == 1 and len(plan.corrupt_bursts) == 1
        assert isinstance(plan.corrupt_bursts[0], CorruptBurst)

    def test_from_spec_rejects_garbage(self):
        with pytest.raises(FaultPlanError, match="unknown fault kind"):
            FaultPlan.from_spec([{"kind": "meteor", "at": 0.0}])
        with pytest.raises(FaultPlanError, match="agent"):
            FaultPlan.from_spec([{"kind": "crash", "at": 0.0}])
        with pytest.raises(FaultPlanError, match="unknown key"):
            FaultPlan.from_spec([{"kind": "crash", "agent": 0, "when": 0.0}])

    def test_from_spec_rejects_conflicting_agent_keys(self):
        """'agent'/'rank'/'thread' are aliases; naming two must error, not
        silently discard one of the ids."""
        with pytest.raises(FaultPlanError, match="exactly one"):
            FaultPlan.from_spec([{"kind": "crash", "agent": 1, "rank": 2, "at": 0.0}])
        with pytest.raises(FaultPlanError, match="exactly one"):
            FaultPlan.from_spec(
                [{"kind": "crash", "rank": 1, "thread": 1, "at": 0.0}]
            )

    def test_describe_mentions_every_event(self):
        plan = FaultPlan(
            [
                RankCrash(agent=3, at=1.0),
                PartitionWindow(group=frozenset({0}), start=0.0, duration=1.0),
                DropBurst(start=0.0, duration=1.0, probability=0.1),
            ]
        )
        text = plan.describe()
        assert "agent 3" in text and "never restarts" in text
        assert "partition" in text and "drop burst" in text
        assert NO_FAULTS.describe() == "FaultPlan: no scripted faults"

    def test_plan_delay_adapter(self):
        plan = FaultPlan([ThreadDeath(agent=1, at=1.0, restart_after=1.0)])
        delay = CompositeDelay(ConstantDelay({0: 1e-6}), PlanDelay(plan))
        assert delay.is_hung(1, 1.5)
        assert not delay.is_hung(1, 2.5)
        assert delay.extra_time(0, 0, None) == 1e-6


class TestReliablePuts:
    def test_retries_recover_dropped_puts(self, system):
        A, b, x0 = system
        plan = FaultPlan([DropBurst(start=0.0, duration=1e-3, probability=0.3)])
        sim = DistributedJacobi(
            A, b, n_ranks=4, seed=5, fault_plan=plan, fault_seed=50, recovery="none"
        )
        res = sim.run_async(x0=x0, tol=1e-5, max_iterations=4000)
        tm = res.telemetry
        assert res.converged
        assert tm.puts_dropped > 0 and tm.retries > 0
        assert tm.puts_delivered > 0

    def test_duplicate_suppression(self, system):
        A, b, x0 = system
        sim = DistributedJacobi(
            A, b, n_ranks=4, seed=5, duplicate_probability=0.2, reliable=True
        )
        res = sim.run_async(x0=x0, tol=1e-5, max_iterations=4000)
        assert res.converged
        assert res.telemetry.duplicates_suppressed > 0

    def test_retry_budget_exhaustion_terminates(self, system):
        A, b, x0 = system
        plan = FaultPlan([DropBurst(start=0.0, duration=1.0, probability=0.9)])
        sim = DistributedJacobi(
            A,
            b,
            n_ranks=4,
            seed=5,
            fault_plan=plan,
            fault_seed=50,
            recovery="none",
            max_put_retries=2,
        )
        res = sim.run_async(x0=x0, tol=1e-8, max_iterations=300)
        assert res.telemetry.retry_budget_exhausted > 0

    def test_reliable_defaults_on_with_plan_off_without(self, system):
        A, b, _ = system
        assert DistributedJacobi(A, b, n_ranks=4).reliable is False
        plan = FaultPlan([DropBurst(start=0.0, duration=1.0, probability=0.1)])
        assert DistributedJacobi(A, b, n_ranks=4, fault_plan=plan).reliable is True
        assert (
            DistributedJacobi(A, b, n_ranks=4, fault_plan=plan, reliable=False).reliable
            is False
        )

    def test_corruption_is_dropped_and_retried(self, system):
        A, b, x0 = system
        plan = FaultPlan([CorruptBurst(start=0.0, duration=5e-4, probability=0.2)])
        sim = DistributedJacobi(
            A, b, n_ranks=4, seed=5, fault_plan=plan, fault_seed=51, recovery="none"
        )
        res = sim.run_async(x0=x0, tol=1e-5, max_iterations=4000)
        assert res.converged
        assert res.telemetry.puts_corrupted > 0
        assert res.telemetry.retries > 0


class TestDetectionAndRecovery:
    def test_heartbeats_detect_permanent_crash(self, system):
        A, b, x0 = system
        plan = FaultPlan([RankCrash(agent=3, at=1e-4)])
        sim = DistributedJacobi(
            A, b, n_ranks=4, seed=5, fault_plan=plan, recovery="freeze"
        )
        res = sim.run_async(x0=x0, tol=1e-6, max_iterations=3000)
        tm = res.telemetry
        assert [r for r, _ in tm.failures_detected] == [3]
        assert tm.detection_latency(1e-4, rank=3) > 0
        assert tm.heartbeats_sent > 0

    def test_restart_recovery_and_telemetry(self, system):
        A, b, x0 = system
        plan = FaultPlan([RankCrash(agent=2, at=5e-5, restart_after=5e-4)])
        sim = DistributedJacobi(
            A,
            b,
            n_ranks=4,
            seed=5,
            fault_plan=plan,
            recovery="freeze",
            heartbeat_interval=2e-5,
        )
        res = sim.run_async(x0=x0, tol=1e-6, max_iterations=4000)
        tm = res.telemetry
        assert res.converged
        assert [r for r, _ in tm.failures_detected] == [2]
        assert [r for r, _ in tm.restarts] == [2]
        assert [r for r, _ in tm.recoveries] == [2]
        # The degraded window closes once the rank returns.
        assert tm.degraded
        assert tm.degraded_time <= res.total_time

    def test_adoption_rescues_global_convergence(self, system):
        A, b, x0 = system
        plan = FaultPlan([RankCrash(agent=3, at=1e-4)])
        sim = DistributedJacobi(
            A, b, n_ranks=4, seed=5, fault_plan=plan, recovery="adopt"
        )
        res = sim.run_async(
            x0=x0, tol=1e-6, max_iterations=4000, termination="detect"
        )
        tm = res.telemetry
        assert res.converged and res.final_residual <= 1e-6
        assert tm.adoptions and tm.adoptions[0][0] == 3
        # Adoption ends the degraded interval before the run does.
        assert not tm.degraded or tm.degraded_time < res.total_time

    def test_detect_termination_with_crashed_reporter(self, system):
        """termination='detect' must not hang when a reporter dies: the
        detector excludes presumed-dead ranks from the stop criterion and the
        run ends in degraded mode."""
        A, b, x0 = system
        plan = FaultPlan([RankCrash(agent=2, at=1e-4)])
        sim = DistributedJacobi(
            A, b, n_ranks=4, seed=5, fault_plan=plan, recovery="freeze"
        )
        res = sim.run_async(
            x0=x0, tol=1e-6, max_iterations=4000, termination="detect"
        )
        # Terminates long before the iteration cap (live ranks' blocks solved).
        assert res.mean_iterations < 4000
        tm = res.telemetry
        assert [r for r, _ in tm.failures_detected] == [2]
        assert tm.degraded and tm.degraded_time > 0

    def test_eager_orphan_of_dead_neighbour_free_runs(self, system):
        """Regression: eager=True with a permanently crashed only-neighbour
        used to hang forever — the survivor went idle waiting for a message
        that could never come while the heartbeat chains kept the event
        queue non-empty. The orphan must instead free-run against its
        frozen ghosts to the iteration cap and the run must terminate."""
        A, b, x0 = system
        plan = FaultPlan([RankCrash(agent=1, at=1e-4)])
        sim = DistributedJacobi(
            A, b, n_ranks=2, seed=5, fault_plan=plan, recovery="freeze"
        )
        res = sim.run_async(x0=x0, tol=1e-10, max_iterations=300, eager=True)
        tm = res.telemetry
        assert [r for r, _ in tm.failures_detected] == [1]
        assert res.iterations[0] == 300  # survivor ran to the cap, not idle
        assert res.iterations[1] < 300

    def test_eager_with_crashed_detector_terminates(self, system):
        """Same shape with rank 0 (the detector) as the casualty: detection
        is suspended, but the survivor still must not idle forever."""
        A, b, x0 = system
        plan = FaultPlan([RankCrash(agent=0, at=1e-4)])
        sim = DistributedJacobi(
            A, b, n_ranks=2, seed=5, fault_plan=plan, recovery="freeze"
        )
        res = sim.run_async(x0=x0, tol=1e-10, max_iterations=300, eager=True)
        assert res.telemetry.failures_detected == []  # nobody watches rank 0
        assert res.iterations[1] == 300

    def test_eager_crash_restart_converges(self, system):
        A, b, x0 = system
        plan = FaultPlan([RankCrash(agent=2, at=5e-5, restart_after=5e-4)])
        sim = DistributedJacobi(
            A,
            b,
            n_ranks=4,
            seed=5,
            fault_plan=plan,
            recovery="freeze",
            heartbeat_interval=2e-5,
        )
        res = sim.run_async(x0=x0, tol=1e-6, max_iterations=2000, eager=True)
        assert res.converged
        assert [r for r, _ in res.telemetry.recoveries] == [2]

    def test_dead_detector_cannot_stop_the_run(self, system):
        """With rank 0 scripted down, termination='detect' must neither hang
        nor let the dead detector aggregate reports and broadcast STOP: the
        survivors run to the iteration cap."""
        A, b, x0 = system
        plan = FaultPlan([RankCrash(agent=0, at=1e-4)])
        sim = DistributedJacobi(
            A, b, n_ranks=4, seed=5, fault_plan=plan, recovery="freeze"
        )
        res = sim.run_async(
            x0=x0, tol=1e-6, max_iterations=400, termination="detect"
        )
        assert np.all(res.iterations[1:] == 400)
        assert res.iterations[0] < 400

    def test_freeze_without_detect_runs_to_cap(self, system):
        A, b, x0 = system
        plan = FaultPlan([RankCrash(agent=1, at=1e-4)])
        sim = DistributedJacobi(
            A, b, n_ranks=4, seed=5, fault_plan=plan, recovery="none", reliable=False
        )
        res = sim.run_async(x0=x0, tol=1e-10, max_iterations=150)
        assert not res.converged
        assert res.final_residual > 1e-10

    def test_validation(self, system):
        A, b, _ = system
        plan = FaultPlan([RankCrash(agent=9, at=1.0)])
        with pytest.raises(ShapeError):
            DistributedJacobi(A, b, n_ranks=4, fault_plan=plan)
        with pytest.raises(ValueError, match="recovery"):
            DistributedJacobi(A, b, n_ranks=4, recovery="resurrect")


class TestFaultReproducibility:
    def test_same_fault_seed_identical(self, system):
        A, b, x0 = system
        plan = FaultPlan(
            [
                RankCrash(agent=2, at=1e-4, restart_after=2e-4),
                DropBurst(start=0.0, duration=5e-4, probability=0.1),
            ]
        )

        def go(fault_seed):
            sim = DistributedJacobi(
                A, b, n_ranks=4, seed=5, fault_plan=plan, fault_seed=fault_seed
            )
            return sim.run_async(x0=x0, tol=1e-6, max_iterations=4000)

        r1, r2 = go(99), go(99)
        np.testing.assert_array_equal(r1.x, r2.x)
        assert r1.total_time == r2.total_time
        assert r1.telemetry.puts_dropped == r2.telemetry.puts_dropped
        assert r1.telemetry.retries == r2.telemetry.retries

    def test_different_fault_seed_differs(self, system):
        A, b, x0 = system
        plan = FaultPlan([DropBurst(start=0.0, duration=5e-4, probability=0.2)])

        def go(fault_seed):
            sim = DistributedJacobi(
                A, b, n_ranks=4, seed=5, fault_plan=plan, fault_seed=fault_seed
            )
            return sim.run_async(x0=x0, tol=1e-6, max_iterations=4000)

        assert go(1).telemetry.puts_dropped != go(2).telemetry.puts_dropped

    def test_plan_seed_is_the_default_fault_seed(self, system):
        A, b, x0 = system

        def go(plan):
            sim = DistributedJacobi(A, b, n_ranks=4, seed=5, fault_plan=plan)
            return sim.run_async(x0=x0, tol=1e-6, max_iterations=4000)

        spec = [{"kind": "drop", "start": 0.0, "duration": 5e-4, "probability": 0.1}]
        r1 = go(FaultPlan.from_spec(spec, seed=42))
        r2 = go(FaultPlan.from_spec(spec, seed=42))
        np.testing.assert_array_equal(r1.x, r2.x)


class TestSharedMemoryFaults:
    def test_thread_death_and_restart(self, system):
        A, b, x0 = system
        plan = FaultPlan([ThreadDeath(agent=2, at=2e-5, restart_after=3e-5)])
        sim = SharedMemoryJacobi(A, b, n_threads=4, seed=7, fault_plan=plan)
        res = sim.run_async(x0=x0, tol=1e-6, max_iterations=5000)
        tm = res.telemetry
        assert res.converged
        assert [t for t, _ in tm.restarts] == [2]
        assert tm.degraded and tm.degraded_time == pytest.approx(3e-5)

    def test_permanent_thread_death_stalls(self, system):
        A, b, x0 = system
        plan = FaultPlan([ThreadDeath(agent=1, at=2e-5)])
        sim = SharedMemoryJacobi(A, b, n_threads=4, seed=7, fault_plan=plan)
        res = sim.run_async(x0=x0, tol=1e-8, max_iterations=800)
        assert not res.converged  # the dead thread's rows are never relaxed
        assert res.telemetry.degraded

    def test_death_inside_the_post_commit_overhead(self, system):
        """A crash whose onset falls strictly between a COMMIT and its
        RELEASE (the overhead span has positive width) is first seen at
        RELEASE: the update is published, the thread dies before requesting
        the core again, and the scripted restart still revives it."""
        from repro.runtime.machine import MachineModel

        A, b, x0 = system
        machine = MachineModel(name="det", cores=8, smt=1, jitter_sigma=0.0)
        # Thread 0 owns rows [0, 20); with zero jitter its first commit is
        # at start + compute (start <= 3e-9 stagger) and its release one
        # iteration_overhead later. Park the crash mid-overhead.
        nnz0 = int(A.indptr[20])
        compute0 = nnz0 * machine.time_per_nnz + 20 * machine.time_per_row
        crash_at = compute0 + 4e-9 + 0.5 * machine.iteration_overhead
        plan = FaultPlan([ThreadDeath(agent=0, at=crash_at, restart_after=1e-4)])
        sim = SharedMemoryJacobi(
            A, b, n_threads=4, machine=machine, seed=7, fault_plan=plan
        )
        res = sim.run_async(x0=x0, tol=1e-6, max_iterations=5000)
        tm = res.telemetry
        assert res.converged
        assert [t for t, _ in tm.restarts] == [0]
        assert res.iterations[0] > 1  # pre-crash commit landed, then resumed

    def test_sync_mode_refuses_crash_plans(self, system):
        A, b, x0 = system
        plan = FaultPlan([ThreadDeath(agent=0, at=1e-5)])
        sim = SharedMemoryJacobi(A, b, n_threads=4, seed=7, fault_plan=plan)
        with pytest.raises(SimulationError, match="deadlock"):
            sim.run_sync(x0=x0, tol=1e-6, max_iterations=100)

    def test_message_faults_rejected(self, system):
        A, b, _ = system
        plan = FaultPlan(
            [PartitionWindow(group=frozenset({0}), start=0.0, duration=1.0)]
        )
        with pytest.raises(ValueError, match="crash/thread-death"):
            SharedMemoryJacobi(A, b, n_threads=4, fault_plan=plan)
        with pytest.raises(ShapeError):
            SharedMemoryJacobi(
                A, b, n_threads=4,
                fault_plan=FaultPlan([ThreadDeath(agent=7, at=1.0)]),
            )


def _dedup_crashes(events):
    """Drop events that collide (same agent crashing while already down).

    A crash is kept only if its down-window overlaps *no* previously kept
    window for that agent — FaultPlan rejects any pair where the earlier
    crash restarts after the later one begins.
    """
    out, down = [], {}
    for ev in events:
        if isinstance(ev, RankCrash):
            windows = down.setdefault(ev.agent, [])
            if any(
                not (ev.restart_time <= lo or ev.at >= hi)
                for lo, hi in windows
            ):
                continue
            windows.append((ev.at, ev.restart_time))
        out.append(ev)
    return out


class TestTheorem1UnderFaults:
    """Theorem 1 in the model's own terms: a crashed or dropped row is one
    absent from the relaxation mask, and for W.D.D. matrices the residual
    1-norm never increases, whatever the mask sequence does. (The machine
    simulators add read-to-commit staleness, so their *snapshot* residuals
    may transiently rise; the guarantee lives at the model layer.)"""

    def test_property_residual_nonincreasing_under_random_faults(self):
        from hypothesis import given, settings, strategies as st

        from repro.core.model import AsyncJacobiModel
        from repro.faults import FaultMaskedSchedule

        A = fd_laplacian_2d(6, 6)  # unit diagonal, W.D.D.
        n = A.nrows
        labels = np.repeat(np.arange(4), n // 4)

        # Plan times are in model steps (dt=1): crashes (permanent = hang,
        # or crash + restart) and per-row drop bursts.
        events_strategy = st.lists(
            st.one_of(
                st.builds(
                    lambda a, at, ra: RankCrash(agent=a, at=at, restart_after=ra),
                    st.integers(0, 3),
                    st.integers(0, 40),
                    st.one_of(st.none(), st.integers(1, 40)),
                ),
                st.builds(
                    lambda s, d, p: DropBurst(start=s, duration=d, probability=p),
                    st.integers(0, 40),
                    st.integers(1, 40),
                    st.floats(0.0, 0.9),
                ),
            ),
            max_size=5,
        )

        @settings(max_examples=25, deadline=None)
        @given(events_strategy, st.integers(0, 2**31 - 1))
        def check(events, seed):
            plan = FaultPlan(_dedup_crashes(events))
            rng = np.random.default_rng(seed)
            b = rng.uniform(-1, 1, n)
            x0 = rng.uniform(-1, 1, n)
            schedule = FaultMaskedSchedule(labels, plan, seed=seed)
            res = AsyncJacobiModel(A, b).run(
                schedule, x0=x0, tol=1e-300, max_steps=60, record_every=1
            )
            history = res.residual_norms
            assert len(history) > 1
            for prev, nxt in zip(history, history[1:]):
                assert nxt <= prev * (1 + 1e-10) + 1e-14

        check()

    def test_property_simulator_survives_random_faults(self):
        """Liveness: the distributed simulator terminates (no deadlock, no
        poisoned event queue) under arbitrary crash/partition/drop schedules
        with detection and recovery enabled."""
        from hypothesis import given, settings, strategies as st

        A = fd_laplacian_2d(6, 6)
        n = A.nrows

        events_strategy = st.lists(
            st.one_of(
                st.builds(
                    lambda a, at, ra: RankCrash(agent=a, at=at, restart_after=ra),
                    st.integers(0, 3),
                    st.floats(1e-6, 5e-4),
                    st.one_of(st.none(), st.floats(1e-5, 5e-4)),
                ),
                st.builds(
                    lambda s, d, p: DropBurst(start=s, duration=d, probability=p),
                    st.floats(0, 5e-4),
                    st.floats(1e-5, 5e-4),
                    st.floats(0.0, 0.6),
                ),
                st.builds(
                    lambda g, s, d: PartitionWindow(
                        group=frozenset(g), start=s, duration=d
                    ),
                    st.sets(st.integers(0, 3), min_size=1, max_size=2),
                    st.floats(0, 5e-4),
                    st.floats(1e-5, 5e-4),
                ),
            ),
            max_size=4,
        )

        @settings(max_examples=10, deadline=None)
        @given(events_strategy, st.integers(0, 2**31 - 1), st.booleans())
        def check(events, seed, eager):
            plan = FaultPlan(_dedup_crashes(events))
            rng = np.random.default_rng(seed)
            b = rng.uniform(-1, 1, n)
            sim = DistributedJacobi(
                A, b, n_ranks=4, seed=seed % 1000, fault_plan=plan,
                fault_seed=seed, recovery="adopt",
            )
            res = sim.run_async(
                tol=1e-7, max_iterations=250, termination="detect", eager=eager
            )
            assert np.isfinite(res.total_time)
            assert np.all(np.isfinite(res.x))
            tm = res.telemetry
            assert tm.puts_delivered <= tm.puts_sent + tm.duplicates_suppressed

        check()


class TestSpecRoundtrip:
    """``FaultPlan.to_spec`` is the lossless inverse of ``from_spec``."""

    def _plan(self):
        return FaultPlan(
            [
                RankCrash(agent=1, at=2.0, restart_after=1.5),
                RankCrash(agent=0, at=0.0),
                PartitionWindow(group=frozenset({0, 2}), start=1.0, duration=3.0),
                DropBurst(start=0.5, duration=2.0, probability=0.3),
                CorruptBurst(
                    start=0.0, duration=1.0, probability=0.8, agents=frozenset({2})
                ),
            ],
            seed=99,
        )

    def test_roundtrip_rebuilds_equivalent_plan(self):
        plan = self._plan()
        spec = plan.to_spec()
        rebuilt = FaultPlan.from_spec(spec, seed=plan.seed)
        assert rebuilt.to_spec() == spec
        assert rebuilt.seed == plan.seed
        for t in (0.0, 0.5, 1.9, 2.0, 3.4, 3.5, 10.0):
            for agent in range(3):
                assert rebuilt.is_down(agent, t) == plan.is_down(agent, t)
                assert rebuilt.drop_probability(agent, t) == plan.drop_probability(
                    agent, t
                )
                assert rebuilt.corrupt_probability(
                    agent, t
                ) == plan.corrupt_probability(agent, t)
            for src in range(3):
                for dst in range(3):
                    assert rebuilt.blocks_message(src, dst, t) == plan.blocks_message(
                        src, dst, t
                    )

    def test_to_spec_is_plain_json(self):
        import json

        spec = self._plan().to_spec()
        assert spec == json.loads(json.dumps(spec))

    def test_optional_fields_omitted(self):
        spec = FaultPlan([RankCrash(agent=0, at=1.0)]).to_spec()
        assert spec == [{"kind": "crash", "agent": 0, "at": 1.0}]
        spec = FaultPlan([DropBurst(start=0.0, duration=1.0, probability=0.5)]).to_spec()
        assert "agents" not in spec[0]

    def test_property_roundtrip(self):
        from hypothesis import given, settings, strategies as st

        events_strategy = st.lists(
            st.one_of(
                st.builds(
                    lambda a, at, ra: RankCrash(agent=a, at=at, restart_after=ra),
                    st.integers(0, 5),
                    st.floats(0, 100, allow_nan=False),
                    st.one_of(st.none(), st.floats(0.25, 100)),
                ),
                st.builds(
                    lambda g, s, d: PartitionWindow(
                        group=frozenset(g), start=s, duration=d
                    ),
                    st.sets(st.integers(0, 5), min_size=1, max_size=3),
                    st.floats(0, 100),
                    st.floats(0, 100),
                ),
                st.builds(
                    lambda s, d, p, a: DropBurst(
                        start=s, duration=d, probability=p, agents=a
                    ),
                    st.floats(0, 100),
                    st.floats(0, 100),
                    st.floats(0, 1),
                    st.one_of(
                        st.none(), st.sets(st.integers(0, 5), min_size=1, max_size=3)
                    ),
                ),
                st.builds(
                    lambda s, d, p: CorruptBurst(start=s, duration=d, probability=p),
                    st.floats(0, 100),
                    st.floats(0, 100),
                    st.floats(0, 1),
                ),
            ),
            max_size=6,
        )

        @settings(max_examples=50, deadline=None)
        @given(events_strategy, st.integers(0, 2**31 - 1))
        def check(events, seed):
            plan = FaultPlan(_dedup_crashes(events), seed=seed)
            spec = plan.to_spec()
            rebuilt = FaultPlan.from_spec(spec, seed=plan.seed)
            # Spec-level fixpoint: one round of to/from is lossless.
            assert rebuilt.to_spec() == spec
            assert rebuilt.seed == plan.seed
            assert len(rebuilt.events) == len(plan.events)

        check()


class TestFromSpecValidation:
    """Unknown keys, kinds and shapes are loud errors, never ignored."""

    def test_unknown_key_rejected(self):
        # The motivating typo: 'restart_afer' must not yield a permanent crash.
        with pytest.raises(FaultPlanError, match="restart_afer"):
            FaultPlan.from_spec(
                [{"kind": "crash", "agent": 0, "at": 1.0, "restart_afer": 2.0}]
            )

    def test_unknown_key_message_names_allowed_keys(self):
        with pytest.raises(FaultPlanError, match="restart_after"):
            FaultPlan.from_spec(
                [{"kind": "crash", "agent": 0, "at": 1.0, "restart_afer": 2.0}]
            )

    def test_unknown_key_in_burst_rejected(self):
        with pytest.raises(FaultPlanError, match="probabilty"):
            FaultPlan.from_spec(
                [{"kind": "drop", "start": 0.0, "duration": 1.0, "probabilty": 0.5}]
            )

    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultPlanError, match="unknown fault kind"):
            FaultPlan.from_spec([{"kind": "meteor", "at": 0.0}])

    def test_missing_kind_rejected(self):
        with pytest.raises(FaultPlanError, match="unknown fault kind"):
            FaultPlan.from_spec([{"agent": 0, "at": 0.0}])

    def test_non_dict_entry_rejected(self):
        with pytest.raises(FaultPlanError, match="must be dicts"):
            FaultPlan.from_spec(["crash"])

    def test_missing_required_field_rejected(self):
        with pytest.raises(FaultPlanError, match="malformed 'crash'"):
            FaultPlan.from_spec([{"kind": "crash", "agent": 0}])

    def test_conflicting_agent_aliases_rejected(self):
        with pytest.raises(FaultPlanError, match="exactly one"):
            FaultPlan.from_spec(
                [{"kind": "crash", "agent": 0, "rank": 1, "at": 0.0}]
            )


class TestFaultPlanEdgeCases:
    """Shapes the chaos generator produces on purpose."""

    def test_overlapping_partitions_same_group(self):
        plan = FaultPlan(
            [
                PartitionWindow(group=frozenset({0, 1}), start=1.0, duration=4.0),
                PartitionWindow(group=frozenset({0, 1}), start=3.0, duration=4.0),
            ]
        )
        # Severed throughout the union of the windows, including the overlap.
        for t in (1.0, 3.5, 5.5, 6.9):
            assert plan.blocks_message(0, 2, t)
        assert not plan.blocks_message(0, 2, 0.9)
        assert not plan.blocks_message(0, 2, 7.0)
        # Intra-group traffic is never severed.
        assert not plan.blocks_message(0, 1, 3.5)

    def test_zero_duration_bursts_are_inert(self):
        plan = FaultPlan(
            [
                DropBurst(start=2.0, duration=0.0, probability=1.0),
                CorruptBurst(start=2.0, duration=0.0, probability=1.0),
            ]
        )
        for t in (1.9, 2.0, 2.1):
            assert plan.drop_probability(0, t) == 0.0
            assert plan.corrupt_probability(0, t) == 0.0

    def test_crash_at_t_zero(self, system):
        A, b, _ = system
        plan = FaultPlan([ThreadDeath(agent=1, at=0.0)])
        assert plan.is_down(1, 0.0)
        sim = SharedMemoryJacobi(A, b, n_threads=4, seed=0, fault_plan=plan)
        res = sim.run_async(tol=1e-6, max_iterations=300)
        assert np.isfinite(res.total_time)
        assert res.iterations[1] == 0  # dead from the first instant

    def test_restart_inside_partition_window(self, system):
        A, b, _ = system
        plan = FaultPlan(
            [
                RankCrash(agent=1, at=5e-6, restart_after=5e-6),
                PartitionWindow(group=frozenset({1}), start=8e-6, duration=2e-5),
            ]
        )
        # The restart lands at t=1e-5, strictly inside the partition window.
        assert plan.partitions[0].severs(1, 0, plan.crashes[1][0].restart_time)
        assert not plan.is_down(1, 1.1e-5)
        sim = DistributedJacobi(
            A, b, n_ranks=4, seed=0, fault_plan=plan, recovery="freeze"
        )
        res = sim.run_async(tol=1e-8, max_iterations=60)
        assert np.isfinite(res.total_time)
        assert np.all(np.isfinite(res.x))
        # The rank came back and iterated after its restart.
        assert res.iterations[1] > 0
        assert len(res.telemetry.restarts) == 1
