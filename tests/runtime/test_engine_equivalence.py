"""Engine vs legacy bit-identity: trajectories, telemetry, trace streams.

The fast engine (``repro.runtime.engine`` + the ported simulator loops)
must produce *exactly* the outputs of the pre-engine implementations kept
in ``repro.runtime.legacy`` — same RNG call order, same tie-breaking, so
every float in the x history, residual history, event times, telemetry
counters, and ``TraceEvent`` stream is byte-for-byte equal. These tests
run both arms across the feature matrix (fault plans, delivery modes,
recovery policies, delay models, sweep variants, both queue backends) and
compare everything.
"""

import numpy as np
import pytest

from repro.faults import CorruptBurst, Crash, DropBurst, FaultPlan, PartitionWindow
from repro.matrices.laplacian import fd_laplacian_2d
from repro.observability import RingBufferSink, Tracer
from repro.runtime.delays import (
    CompositeDelay,
    ConstantDelay,
    StochasticStall,
    StragglerDelay,
)
from repro.runtime.distributed import DistributedJacobi
from repro.runtime.shared import SharedMemoryJacobi

A = fd_laplacian_2d(10, 10)
N = A.shape[0]
B = np.random.default_rng(0).standard_normal(N)

PLAN = FaultPlan(
    [
        Crash(2, 0.0004, restart_after=0.0008),
        DropBurst(0.0002, 0.0006, 0.4),
        PartitionWindow(frozenset({0, 1, 2, 3}), 0.0003, 0.0004),
    ],
    seed=11,
)
CORRUPT_PLAN = FaultPlan(
    [Crash(5, 0.0005), CorruptBurst(0.0001, 0.001, 0.3)], seed=7
)
THREAD_PLAN = FaultPlan([Crash(1, 2e-4, restart_after=4e-4)], seed=5)


def canon(v):
    """Hashable, bitwise-faithful form of a result field."""
    if isinstance(v, np.ndarray):
        return ("nd", v.dtype.str, v.shape, v.tobytes())
    if isinstance(v, (list, tuple)):
        return tuple(canon(e) for e in v)
    if isinstance(v, dict):
        return tuple(sorted((k, canon(x)) for k, x in v.items()))
    return v


def assert_results_identical(a, c):
    assert canon(a.x) == canon(c.x)
    assert a.converged == c.converged
    assert a.times == c.times
    assert a.residual_norms == c.residual_norms
    assert a.relaxation_counts == c.relaxation_counts
    assert canon(a.iterations) == canon(c.iterations)
    assert a.total_time == c.total_time
    ta, tc = a.telemetry, c.telemetry
    if ta is None or tc is None:
        assert ta is None and tc is None
    else:
        assert {k: canon(v) for k, v in vars(ta).items()} == {
            k: canon(v) for k, v in vars(tc).items()
        }


DIST_ASYNC_CASES = {
    "plain": (dict(), dict()),
    "eager": (dict(), dict(eager=True)),
    "detect": (dict(), dict(termination="detect", report_every=3)),
    "drops": (dict(drop_probability=0.15, fault_seed=5), dict()),
    "reliable_drops": (
        dict(drop_probability=0.15, fault_seed=5, reliable=True),
        dict(max_iterations=25),
    ),
    "duplicates": (dict(duplicate_probability=0.2, fault_seed=9), dict()),
    "faultplan": (dict(fault_plan=PLAN, reliable=False), dict()),
    "faults_reliable": (dict(fault_plan=PLAN), dict(max_iterations=25)),
    "corrupt_reliable": (dict(fault_plan=CORRUPT_PLAN), dict(max_iterations=25)),
    "adopt_detect": (
        dict(fault_plan=PLAN, recovery="adopt"),
        dict(termination="detect", report_every=2, max_iterations=25),
    ),
    "freeze_eager": (
        dict(fault_plan=PLAN, recovery="freeze"),
        dict(eager=True, max_iterations=25),
    ),
    "full_residual": (dict(), dict(residual_mode="full")),
    "gauss_seidel": (dict(local_sweep="gauss_seidel"), dict()),
    "constant_delay": (dict(delay=ConstantDelay({1: 2e-5, 3: 2e-5})), dict()),
    "stoch_stall": (dict(delay=StochasticStall(0.3, 5e-5)), dict()),
    "composite_delay": (
        dict(delay=CompositeDelay(ConstantDelay({0: 1e-5}), StragglerDelay({5: 2.0}))),
        dict(),
    ),
    "omega": (dict(omega=0.8), dict()),
    "instrumented": (dict(), dict(instrument=True)),
    "calendar_backend": (dict(), dict(queue_backend="calendar")),
}


@pytest.mark.parametrize("case", DIST_ASYNC_CASES)
def test_distributed_async_bit_identical(case):
    kwargs, run_kwargs = DIST_ASYNC_CASES[case]
    run_kwargs = dict({"tol": 1e-6, "max_iterations": 40}, **run_kwargs)
    outs = []
    for legacy in (False, True):
        solver = DistributedJacobi(A, B, n_ranks=8, seed=3, **kwargs)
        outs.append(solver.run_async(legacy_engine=legacy, **run_kwargs))
    assert_results_identical(*outs)


DIST_SYNC_CASES = {
    "plain": dict(),
    "gauss_seidel": dict(local_sweep="gauss_seidel"),
    "straggler": dict(delay=StragglerDelay({2: 2.5})),
    "stoch_stall": dict(delay=StochasticStall(0.3, 5e-5)),
    "omega": dict(omega=1.2),
    "one_rank": dict(n_ranks=1),
}


@pytest.mark.parametrize("case", DIST_SYNC_CASES)
def test_distributed_sync_bit_identical(case):
    kwargs = dict(dict(n_ranks=8), **DIST_SYNC_CASES[case])
    outs = []
    for legacy in (False, True):
        solver = DistributedJacobi(A, B, seed=3, **kwargs)
        outs.append(
            solver.run_sync(tol=1e-6, max_iterations=60, legacy_engine=legacy)
        )
    assert_results_identical(*outs)


SHARED_CASES = {
    "plain": (dict(n_threads=8), dict()),
    "oversubscribed": (dict(n_threads=16), dict()),
    "record_trace": (dict(n_threads=6), dict(record_trace=True)),
    "straggler": (dict(n_threads=8, delay=StragglerDelay({3: 3.0})), dict()),
    "stoch_stall": (dict(n_threads=8, delay=StochasticStall(0.3, 5e-5)), dict()),
    "faultplan": (dict(n_threads=8, fault_plan=THREAD_PLAN), dict()),
    "run_until_all": (
        dict(n_threads=8),
        dict(run_until_all_reach=True, max_iterations=12),
    ),
    "full_residual": (dict(n_threads=8), dict(residual_mode="full")),
    "instrumented": (dict(n_threads=8), dict(instrument=True)),
    "calendar_backend": (dict(n_threads=8), dict(queue_backend="calendar")),
}


@pytest.mark.parametrize("case", SHARED_CASES)
def test_shared_async_bit_identical(case):
    kwargs, run_kwargs = SHARED_CASES[case]
    run_kwargs = dict({"tol": 1e-6, "max_iterations": 60}, **run_kwargs)
    outs = []
    for legacy in (False, True):
        solver = SharedMemoryJacobi(A, B, seed=3, **kwargs)
        res = solver.run_async(legacy_engine=legacy, **run_kwargs)
        outs.append(res)
    a, c = outs
    assert_results_identical(a, c)
    if a.trace is not None or c.trace is not None:
        ra = [(r.row, r.index, r.time, r.reads) for r in a.trace._all]
        rc = [(r.row, r.index, r.time, r.reads) for r in c.trace._all]
        assert ra == rc


def _trace_events(solver_fn, legacy, **run_kwargs):
    sink = RingBufferSink(capacity=200_000)
    tracer = Tracer(sinks=[sink], trace_reads=run_kwargs.pop("trace_reads"))
    solver_fn().run_async(tracer=tracer, legacy_engine=legacy, **run_kwargs)
    return [
        (e.kind, e.time, e.seq, e.agent, canon(e.data)) for e in sink._ring
    ]


@pytest.mark.parametrize("trace_reads", [False, True])
def test_tracing_compat_shared_fig3_style(trace_reads):
    """Figure 3-style traced shared-memory run: identical TraceEvent stream."""

    def make():
        return SharedMemoryJacobi(A, B, n_threads=8, seed=3)

    streams = [
        _trace_events(
            make, legacy, tol=1e-6, max_iterations=40, trace_reads=trace_reads
        )
        for legacy in (False, True)
    ]
    assert len(streams[0]) > 0
    assert streams[0] == streams[1]


@pytest.mark.parametrize("trace_reads", [False, True])
def test_tracing_compat_distributed_fault_plan(trace_reads):
    """Traced distributed run under a fault plan: identical TraceEvent stream.

    This is what keeps observability replay and the Theorem 1 residual
    checks valid on the new engine.
    """

    def make():
        return DistributedJacobi(A, B, n_ranks=8, seed=3, fault_plan=PLAN)

    streams = [
        _trace_events(
            make, legacy, tol=1e-6, max_iterations=30, trace_reads=trace_reads
        )
        for legacy in (False, True)
    ]
    assert len(streams[0]) > 0
    assert streams[0] == streams[1]
