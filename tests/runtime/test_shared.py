"""Shared-memory simulator: sync exactness, async convergence, delays,
tracing, and the paper's qualitative behaviours."""

import numpy as np
import pytest

from repro.core.iteration import jacobi
from repro.core.reconstruct import reconstruct_propagation_steps
from repro.matrices.laplacian import fd_laplacian_2d, paper_fd_matrix
from repro.runtime.delays import ConstantDelay, HangDelay, StragglerDelay
from repro.runtime.machine import KNL
from repro.runtime.shared import SharedMemoryJacobi
from repro.util.errors import ShapeError


@pytest.fixture
def system(rng):
    A = fd_laplacian_2d(8, 8)
    b = rng.uniform(-1, 1, 64)
    x0 = rng.uniform(-1, 1, 64)
    return A, b, x0


class TestSyncMode:
    def test_sync_matches_classical_jacobi(self, system):
        """Synchronous simulation is numerically exact Jacobi."""
        A, b, x0 = system
        sim = SharedMemoryJacobi(A, b, n_threads=8, seed=0)
        res = sim.run_sync(x0=x0, tol=1e-6, max_iterations=5000)
        hist = jacobi(A, b, x0=x0, tol=1e-6, max_iterations=5000)
        assert res.iterations[0] == hist.iterations
        np.testing.assert_allclose(res.x, hist.x, rtol=1e-12)
        np.testing.assert_allclose(res.residual_norms, hist.residual_norms, rtol=1e-10)

    def test_sync_time_includes_barrier(self, system):
        A, b, x0 = system
        sim = SharedMemoryJacobi(A, b, n_threads=8, seed=0)
        res = sim.run_sync(x0=x0, tol=1e-4)
        assert res.total_time >= res.iterations[0] * KNL.barrier_cost(8)

    def test_sync_delay_slows_everyone(self, system):
        A, b, x0 = system
        base = SharedMemoryJacobi(A, b, n_threads=8, seed=0)
        slow = SharedMemoryJacobi(
            A, b, n_threads=8, seed=0, delay=ConstantDelay({4: 1e-3})
        )
        t0 = base.run_sync(x0=x0, tol=1e-4).total_time
        t1 = slow.run_sync(x0=x0, tol=1e-4).total_time
        assert t1 > 10 * t0


class TestAsyncMode:
    def test_async_converges_to_solution(self, system):
        A, b, x0 = system
        sim = SharedMemoryJacobi(A, b, n_threads=8, seed=0)
        res = sim.run_async(x0=x0, tol=1e-8, max_iterations=20_000)
        assert res.converged
        np.testing.assert_allclose(A @ res.x, b, atol=1e-5)

    def test_single_thread_equals_jacobi_iterates(self, system):
        """One thread, block = whole matrix: async == sync == Jacobi."""
        A, b, x0 = system
        sim = SharedMemoryJacobi(A, b, n_threads=1, seed=0)
        res = sim.run_async(x0=x0, tol=1e-6, max_iterations=5000, observe_every=1)
        hist = jacobi(A, b, x0=x0, tol=1e-6, max_iterations=5000)
        assert res.iterations[0] == hist.iterations
        np.testing.assert_allclose(res.x, hist.x, rtol=1e-12)

    def test_deterministic_given_seed(self, system):
        A, b, x0 = system
        r1 = SharedMemoryJacobi(A, b, n_threads=8, seed=42).run_async(x0=x0, tol=1e-5)
        r2 = SharedMemoryJacobi(A, b, n_threads=8, seed=42).run_async(x0=x0, tol=1e-5)
        np.testing.assert_array_equal(r1.x, r2.x)
        assert r1.times == r2.times

    def test_different_seeds_differ(self, system):
        A, b, x0 = system
        r1 = SharedMemoryJacobi(A, b, n_threads=8, seed=1).run_async(x0=x0, tol=1e-5)
        r2 = SharedMemoryJacobi(A, b, n_threads=8, seed=2).run_async(x0=x0, tol=1e-5)
        assert r1.total_time != r2.total_time

    def test_async_faster_than_sync_wall_clock(self, system):
        """No barrier => async wins in simulated time (Fig. 5's headline)."""
        A, b, x0 = system
        sim = SharedMemoryJacobi(A, b, n_threads=16, seed=0)
        ra = sim.run_async(x0=x0, tol=1e-4, max_iterations=20_000)
        rs = sim.run_sync(x0=x0, tol=1e-4, max_iterations=20_000)
        assert ra.time_to_tolerance(1e-4) < rs.time_to_tolerance(1e-4)

    def test_iteration_counts_vary_across_threads(self, system):
        A, b, x0 = system
        sim = SharedMemoryJacobi(A, b, n_threads=8, seed=0)
        res = sim.run_async(x0=x0, tol=1e-8, max_iterations=20_000)
        assert len(np.unique(res.iterations)) > 1  # free-running threads drift

    def test_relaxation_counts_monotone(self, system):
        A, b, x0 = system
        res = SharedMemoryJacobi(A, b, n_threads=8, seed=0).run_async(x0=x0, tol=1e-5)
        assert all(
            b >= a for a, b in zip(res.relaxation_counts, res.relaxation_counts[1:])
        )


class TestDelays:
    def test_delayed_thread_relaxes_less(self, system):
        A, b, x0 = system
        sim = SharedMemoryJacobi(
            A, b, n_threads=8, seed=0, delay=ConstantDelay({3: 2e-4})
        )
        res = sim.run_async(x0=x0, tol=1e-6, max_iterations=50_000)
        assert res.converged
        others = np.delete(res.iterations, 3)
        assert res.iterations[3] < 0.5 * others.min()

    def test_async_beats_sync_under_delay(self, system):
        """The Figure 3 effect at one operating point."""
        A, b, x0 = system
        delay = ConstantDelay({3: 5e-4})
        sim = SharedMemoryJacobi(A, b, n_threads=8, seed=0, delay=delay)
        ta = sim.run_async(x0=x0, tol=1e-4, max_iterations=200_000).time_to_tolerance(1e-4)
        ts = sim.run_sync(x0=x0, tol=1e-4, max_iterations=20_000).time_to_tolerance(1e-4)
        assert ts > 3 * ta

    def test_hung_thread_stops_but_others_continue(self, system):
        """Failure injection: a dead thread freezes its rows; the rest keep
        reducing the residual (Theorem 1's transient consequence)."""
        A, b, x0 = system
        sim = SharedMemoryJacobi(A, b, n_threads=8, seed=0, delay=HangDelay({2: 0.0}))
        res = sim.run_async(x0=x0, tol=1e-300, max_iterations=400)
        assert res.iterations[2] == 0
        assert res.iterations.max() == 400
        assert res.residual_norms[-1] < 0.5 * res.residual_norms[0]

    def test_straggler_factor(self, system):
        A, b, x0 = system
        sim = SharedMemoryJacobi(
            A, b, n_threads=8, seed=0, delay=StragglerDelay({0: 4.0})
        )
        res = sim.run_async(x0=x0, tol=1e-6, max_iterations=50_000)
        assert res.converged
        assert res.iterations[0] < res.iterations[1:].min()


class TestFixedIterationMode:
    def test_run_until_all_reach(self, system):
        """Fig 5(b) termination: fast threads overshoot the target."""
        A, b, x0 = system
        sim = SharedMemoryJacobi(A, b, n_threads=8, seed=0, delay=ConstantDelay({1: 1e-4}))
        res = sim.run_async(
            x0=x0, tol=1e-300, max_iterations=50, run_until_all_reach=True
        )
        assert res.iterations.min() >= 50
        assert res.iterations.max() > 50  # others kept going

    def test_plain_cap_stops_each_thread(self, system):
        A, b, x0 = system
        res = SharedMemoryJacobi(A, b, n_threads=8, seed=0).run_async(
            x0=x0, tol=1e-300, max_iterations=30
        )
        assert np.all(res.iterations == 30)


class TestTracing:
    def test_trace_counts_and_versions(self, system):
        A, b, x0 = system
        sim = SharedMemoryJacobi(A, b, n_threads=4, seed=0)
        res = sim.run_async(x0=x0, tol=1e-300, max_iterations=5, record_trace=True)
        assert len(res.trace) == 5 * A.nrows
        # Reads reference only true matrix neighbors.
        for rel in res.trace:
            assert set(rel.reads) == set(A.neighbors(rel.row).tolist())

    def test_trace_reconstructable(self, system):
        A, b, x0 = system
        sim = SharedMemoryJacobi(A, b, n_threads=4, seed=0)
        res = sim.run_async(x0=x0, tol=1e-300, max_iterations=8, record_trace=True)
        rec = reconstruct_propagation_steps(res.trace)
        assert rec.total == len(res.trace)
        assert rec.fraction_propagated > 0.5  # the paper's "majority"

    def test_no_trace_by_default(self, system):
        A, b, x0 = system
        res = SharedMemoryJacobi(A, b, n_threads=4, seed=0).run_async(x0=x0, tol=1e-3)
        assert res.trace is None


class TestValidation:
    def test_thread_bounds(self, system):
        A, b, _ = system
        with pytest.raises(ShapeError):
            SharedMemoryJacobi(A, b, n_threads=0)
        with pytest.raises(ShapeError):
            SharedMemoryJacobi(A, b, n_threads=A.nrows + 1)

    def test_mode_dispatch(self, system):
        A, b, x0 = system
        sim = SharedMemoryJacobi(A, b, n_threads=4, seed=0)
        assert sim.run("sync", x0=x0, tol=1e-3).mode == "sync"
        assert sim.run("async", x0=x0, tol=1e-3).mode == "async"
        with pytest.raises(ValueError):
            sim.run("turbo")


class TestIncrementalResiduals:
    """The incremental observer must not change what the simulator does."""

    def test_trajectory_bit_identical_across_modes(self, system):
        A, b, x0 = system
        sim = SharedMemoryJacobi(A, b, n_threads=8, seed=4)
        inc = sim.run_async(x0=x0, tol=1e-3, max_iterations=20_000,
                            residual_mode="incremental")
        full = sim.run_async(x0=x0, tol=1e-3, max_iterations=20_000,
                             residual_mode="full")
        np.testing.assert_array_equal(inc.x, full.x)
        np.testing.assert_array_equal(inc.iterations, full.iterations)
        assert inc.times == full.times

    def test_observed_residuals_match_full_recompute(self, system):
        A, b, x0 = system
        sim = SharedMemoryJacobi(A, b, n_threads=8, seed=4)
        inc = sim.run_async(x0=x0, tol=1e-4, max_iterations=50_000,
                            residual_mode="incremental", recompute_every=64)
        full = sim.run_async(x0=x0, tol=1e-4, max_iterations=50_000,
                             residual_mode="full")
        a = np.asarray(inc.residual_norms)
        bb = np.asarray(full.residual_norms)
        m = min(a.size, bb.size)
        np.testing.assert_allclose(a[:m], bb[:m], rtol=1e-9)

    def test_final_residual_is_confirmed(self, system):
        """Termination is always judged on a trustworthy residual."""
        from repro.util.norms import relative_residual_norm

        A, b, x0 = system
        sim = SharedMemoryJacobi(A, b, n_threads=8, seed=4)
        res = sim.run_async(x0=x0, tol=1e-3, max_iterations=50_000)
        assert res.converged
        exact = relative_residual_norm(A, res.x, b)
        assert abs(res.residual_norms[-1] - exact) <= 1e-10 * max(exact, 1e-300)

    def test_rejects_bad_residual_mode(self, system):
        A, b, x0 = system
        sim = SharedMemoryJacobi(A, b, n_threads=4, seed=0)
        with pytest.raises(ValueError):
            sim.run_async(x0=x0, tol=1e-3, residual_mode="lazy")

    def test_dirty_flag_skips_redundant_final_recompute(self, system):
        """If nothing committed since the last observation, the terminal
        residual is reused instead of recomputed (satellite b)."""
        A, b, x0 = system
        sim = SharedMemoryJacobi(A, b, n_threads=8, seed=4)
        inc = sim.run_async(x0=x0, tol=1e-3, max_iterations=20_000,
                            observe_every=1, instrument=True)
        assert inc.perf is not None
        # Every observation evaluates a residual; the terminal one must
        # not add an extra full recompute when the state is clean.
        assert inc.perf.residual_evals <= inc.perf.events + 1
