"""Distributed simulator: sync exactness, ghost correctness, failures."""

import numpy as np
import pytest

from repro.core.iteration import jacobi
from repro.matrices.laplacian import fd_laplacian_2d
from repro.matrices.suitesparse import dubcova2_like
from repro.partition.partitioner import bfs_bisection_partition
from repro.runtime.delays import ConstantDelay, HangDelay
from repro.runtime.distributed import DistributedJacobi
from repro.util.errors import ShapeError


@pytest.fixture
def system(rng):
    A = fd_laplacian_2d(9, 9)
    b = rng.uniform(-1, 1, 81)
    x0 = rng.uniform(-1, 1, 81)
    return A, b, x0


class TestSyncMode:
    def test_sync_is_exact_jacobi(self, system):
        """Per-sweep ghost exchange makes distributed sync == global Jacobi,
        independent of the partition."""
        A, b, x0 = system
        hist = jacobi(A, b, x0=x0, tol=1e-6, max_iterations=5000)
        for ranks, part in ((3, "contiguous"), (7, "bfs")):
            dj = DistributedJacobi(A, b, n_ranks=ranks, partition=part, seed=0)
            res = dj.run_sync(x0=x0, tol=1e-6, max_iterations=5000)
            assert res.iterations[0] == hist.iterations
            np.testing.assert_allclose(res.x, hist.x, rtol=1e-12)

    def test_sync_time_grows_with_ranks(self, system):
        """Allreduce + slowest-rank waiting: more ranks, more sync cost for a
        small fixed problem (Fig. 8's sync curves)."""
        A, b, x0 = system
        t = []
        for ranks in (2, 10):
            dj = DistributedJacobi(A, b, n_ranks=ranks, seed=0)
            t.append(dj.run_sync(x0=x0, tol=1e-4).total_time)
        assert t[1] > t[0] * 0.8  # never collapses; typically grows


class TestAsyncMode:
    def test_converges_to_solution(self, system):
        A, b, x0 = system
        dj = DistributedJacobi(A, b, n_ranks=6, seed=0)
        res = dj.run_async(x0=x0, tol=1e-8, max_iterations=50_000)
        assert res.converged
        np.testing.assert_allclose(A @ res.x, b, atol=1e-5)

    def test_single_rank_equals_jacobi(self, system):
        A, b, x0 = system
        dj = DistributedJacobi(A, b, n_ranks=1, seed=0)
        res = dj.run_async(x0=x0, tol=1e-6, max_iterations=5000, observe_every=1)
        hist = jacobi(A, b, x0=x0, tol=1e-6, max_iterations=5000)
        assert res.iterations[0] == hist.iterations
        np.testing.assert_allclose(res.x, hist.x, rtol=1e-12)

    def test_deterministic_given_seed(self, system):
        A, b, x0 = system
        r1 = DistributedJacobi(A, b, n_ranks=5, seed=9).run_async(x0=x0, tol=1e-5)
        r2 = DistributedJacobi(A, b, n_ranks=5, seed=9).run_async(x0=x0, tol=1e-5)
        np.testing.assert_array_equal(r1.x, r2.x)

    def test_async_faster_wall_clock(self, system):
        A, b, x0 = system
        dj = DistributedJacobi(A, b, n_ranks=8, seed=0)
        ta = dj.run_async(x0=x0, tol=1e-4, max_iterations=50_000).time_to_tolerance(1e-4)
        ts = dj.run_sync(x0=x0, tol=1e-4, max_iterations=50_000).time_to_tolerance(1e-4)
        assert ta < ts

    def test_explicit_label_partition(self, system):
        A, b, x0 = system
        labels = bfs_bisection_partition(A, 4)
        dj = DistributedJacobi(A, b, n_ranks=4, partition=labels, seed=0)
        res = dj.run_async(x0=x0, tol=1e-5, max_iterations=20_000)
        assert res.converged


class TestFailureInjection:
    def test_dropped_puts_still_converge(self, system):
        """Lost ghost updates only delay information (racy overwrite
        semantics): convergence survives heavy drop rates."""
        A, b, x0 = system
        dj = DistributedJacobi(A, b, n_ranks=6, seed=0, drop_probability=0.3)
        res = dj.run_async(x0=x0, tol=1e-5, max_iterations=50_000)
        assert res.converged
        np.testing.assert_allclose(A @ res.x, b, atol=1e-2)

    def test_duplicated_puts_harmless(self, system):
        A, b, x0 = system
        dj = DistributedJacobi(A, b, n_ranks=6, seed=0, duplicate_probability=0.5)
        res = dj.run_async(x0=x0, tol=1e-5, max_iterations=50_000)
        assert res.converged

    def test_drops_slow_convergence(self, system):
        A, b, x0 = system
        clean = DistributedJacobi(A, b, n_ranks=6, seed=0)
        lossy = DistributedJacobi(A, b, n_ranks=6, seed=0, drop_probability=0.6)
        rc = clean.run_async(x0=x0, tol=1e-5, max_iterations=50_000)
        rl = lossy.run_async(x0=x0, tol=1e-5, max_iterations=50_000)
        assert rl.mean_iterations > rc.mean_iterations

    def test_hung_rank_freezes_subdomain(self, system):
        """A dead rank's rows freeze; the rest still reduce the residual."""
        A, b, x0 = system
        dj = DistributedJacobi(A, b, n_ranks=6, seed=0, delay=HangDelay({2: 0.0}))
        res = dj.run_async(x0=x0, tol=1e-300, max_iterations=300)
        assert res.iterations[2] == 0
        assert res.residual_norms[-1] < 0.7 * res.residual_norms[0]

    def test_delayed_rank_lags(self, system):
        A, b, x0 = system
        dj = DistributedJacobi(
            A, b, n_ranks=6, seed=0, delay=ConstantDelay({1: 2e-4})
        )
        res = dj.run_async(x0=x0, tol=1e-5, max_iterations=50_000)
        assert res.converged
        assert res.iterations[1] < np.delete(res.iterations, 1).min()

    def test_probability_validation(self, system):
        A, b, _ = system
        with pytest.raises(ValueError):
            DistributedJacobi(A, b, n_ranks=4, drop_probability=1.5)


class TestPaperBehaviours:
    def test_dubcova2_sync_fails_async_with_many_ranks_reduces(self, rng):
        """The Figure 9 mechanism at small scale."""
        A = dubcova2_like(400, stretch=6.0)
        n = A.nrows
        b = rng.uniform(-1, 1, n)
        x0 = rng.uniform(-1, 1, n)
        dj = DistributedJacobi(A, b, n_ranks=40, seed=13)
        rs = dj.run_sync(x0=x0, tol=1e-3, max_iterations=400)
        ra = dj.run_async(x0=x0, tol=1e-3, max_iterations=1200)
        assert not rs.converged
        assert rs.final_residual > rs.residual_norms[0]  # sync diverges
        assert ra.final_residual < 0.1 * ra.residual_norms[0]  # async reduces


class TestValidation:
    def test_rank_bounds(self, system):
        A, b, _ = system
        with pytest.raises(ShapeError):
            DistributedJacobi(A, b, n_ranks=0)
        with pytest.raises(ShapeError):
            DistributedJacobi(A, b, n_ranks=A.nrows + 1)

    def test_bad_partition_name(self, system):
        A, b, _ = system
        with pytest.raises(ValueError):
            DistributedJacobi(A, b, n_ranks=2, partition="magic")

    def test_label_count_mismatch(self, system):
        A, b, _ = system
        labels = np.zeros(A.nrows, dtype=np.int64)
        with pytest.raises(ShapeError):
            DistributedJacobi(A, b, n_ranks=3, partition=labels)

    def test_mode_dispatch(self, system):
        A, b, x0 = system
        dj = DistributedJacobi(A, b, n_ranks=3, seed=0)
        assert dj.run("sync", x0=x0, tol=1e-3).mode == "sync"
        assert dj.run("async", x0=x0, tol=1e-3).mode == "async"
        with pytest.raises(ValueError):
            dj.run("chaotic")


class TestIncrementalResiduals:
    """Incremental residual observation in the distributed simulator."""

    def test_trajectory_bit_identical_across_modes(self, system):
        A, b, x0 = system
        dj = DistributedJacobi(A, b, n_ranks=4, seed=3)
        inc = dj.run_async(x0=x0, tol=1e-3, max_iterations=20_000,
                           residual_mode="incremental")
        full = dj.run_async(x0=x0, tol=1e-3, max_iterations=20_000,
                            residual_mode="full")
        np.testing.assert_array_equal(inc.x, full.x)
        np.testing.assert_array_equal(inc.iterations, full.iterations)

    def test_observed_residuals_match_full_recompute(self, system):
        A, b, x0 = system
        dj = DistributedJacobi(A, b, n_ranks=4, seed=3)
        inc = dj.run_async(x0=x0, tol=1e-4, max_iterations=50_000,
                           residual_mode="incremental", recompute_every=64)
        full = dj.run_async(x0=x0, tol=1e-4, max_iterations=50_000,
                            residual_mode="full")
        a = np.asarray(inc.residual_norms)
        bb = np.asarray(full.residual_norms)
        m = min(a.size, bb.size)
        np.testing.assert_allclose(a[:m], bb[:m], rtol=1e-9)

    def test_rejects_bad_residual_mode(self, system):
        A, b, x0 = system
        dj = DistributedJacobi(A, b, n_ranks=3, seed=0)
        with pytest.raises(ValueError):
            dj.run_async(x0=x0, tol=1e-3, residual_mode="lazy")
