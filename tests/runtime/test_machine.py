"""Machine cost models: scaling laws the figures depend on."""

import numpy as np
import pytest

from repro.runtime.machine import (
    ARIES,
    CPU20,
    HASWELL_CLUSTER,
    KNL,
    MachineModel,
    NetworkModel,
)


@pytest.fixture
def rng():
    return np.random.default_rng(1)


def _no_jitter(machine):
    from dataclasses import replace

    return replace(machine, jitter_sigma=0.0)


class TestSMTModel:
    def test_residency(self):
        assert KNL.residency(68) == 1.0
        assert KNL.residency(272) == 4.0
        assert KNL.residency(10) == 1.0

    def test_smt_throughput_capped(self):
        assert KNL.smt_throughput(68) == 1.0
        assert 1.0 < KNL.smt_throughput(136) < 2.0
        assert KNL.smt_throughput(272) <= KNL.smt

    def test_compute_faster_per_iteration_under_smt(self, rng):
        """A serialized iteration runs at the boosted SMT rate."""
        m = _no_jitter(KNL)
        d1 = m.compute_duration(100, 10, 68, rng)
        d4 = m.compute_duration(100, 10, 272, rng)
        assert d4 < d1

    def test_net_sweep_cost_increases_with_oversubscription(self, rng):
        """With overhead-dominated iterations (tiny subdomains), k serialized
        iterations cost k^(1-exp) more per sweep than one at full residency —
        Fig 5(b)'s 'slower per iteration at 272 threads'."""
        m = _no_jitter(KNL)
        # Same total work (0 nnz), split across 1 vs 4 resident threads: the
        # fixed overhead repeats per iteration.
        sweep_68 = 1 * m.overhead_duration(68, rng)
        sweep_272 = 4 * m.overhead_duration(272, rng)
        assert sweep_272 > sweep_68


class TestJitter:
    def test_effective_jitter_grows_with_oversubscription(self):
        assert KNL.effective_jitter(272) == pytest.approx(4 * KNL.jitter_sigma)
        assert KNL.effective_jitter(68) == KNL.jitter_sigma

    def test_zero_jitter_deterministic(self, rng):
        m = _no_jitter(CPU20)
        a = m.iteration_duration(50, 5, 10, rng)
        b = m.iteration_duration(50, 5, 10, rng)
        assert a == b

    def test_jitter_varies_durations(self, rng):
        samples = {KNL.iteration_duration(50, 5, 68, rng) for _ in range(10)}
        assert len(samples) == 10


class TestBarrier:
    def test_grows_with_threads(self):
        assert KNL.barrier_cost(68) > KNL.barrier_cost(2) > 0

    def test_oversubscription_blowup(self):
        """Barriers past the core count get disproportionately expensive —
        the mechanism behind sync Jacobi's collapse at 272 threads."""
        assert KNL.barrier_cost(272) > 3 * KNL.barrier_cost(68)

    def test_single_thread(self):
        assert CPU20.barrier_cost(1) == CPU20.barrier_base


class TestNetwork:
    def test_message_time_scales_with_size(self, rng):
        from dataclasses import replace

        net = replace(ARIES, jitter_sigma=0.0)
        small = net.message_time(1, rng)
        large = net.message_time(10_000, rng)
        assert large > small
        assert small >= net.latency

    def test_allreduce_logarithmic(self):
        assert ARIES.allreduce_cost(1) == 0.0
        assert ARIES.allreduce_cost(1024) == pytest.approx(10 * ARIES.latency)

    def test_cluster_ranks(self):
        assert HASWELL_CLUSTER.ranks_for_nodes(4) == 128


class TestValidation:
    def test_rejects_bad_cores(self):
        with pytest.raises(ValueError):
            MachineModel(name="bad", cores=0, smt=2)

    def test_rejects_negative_jitter(self):
        with pytest.raises(ValueError):
            MachineModel(name="bad", cores=4, smt=2, jitter_sigma=-0.1)
