"""Event queue: ordering, tie-breaking, error handling."""

import pytest

from repro.runtime.events import EventQueue
from repro.util.errors import SimulationError


class TestEventQueue:
    def test_time_order(self):
        q = EventQueue()
        q.push(3.0, "c")
        q.push(1.0, "a")
        q.push(2.0, "b")
        assert [q.pop()[1] for _ in range(3)] == ["a", "b", "c"]

    def test_fifo_tie_breaking(self):
        q = EventQueue()
        for p in ("first", "second", "third"):
            q.push(1.0, p)
        assert [q.pop()[1] for _ in range(3)] == ["first", "second", "third"]

    def test_now_tracks_pops(self):
        q = EventQueue()
        q.push(5.0, None)
        assert q.now == 0.0
        q.pop()
        assert q.now == 5.0

    def test_rejects_past_events(self):
        q = EventQueue()
        q.push(2.0, None)
        q.pop()
        with pytest.raises(SimulationError):
            q.push(1.0, None)

    def test_same_time_as_now_allowed(self):
        q = EventQueue()
        q.push(2.0, "x")
        q.pop()
        q.push(2.0, "y")  # immediate rescheduling at the current time
        assert q.pop() == (2.0, "y")

    def test_rejects_nan_time(self):
        # Regression: a NaN timestamp used to poison the heap (NaN compares
        # false with everything, so heap order silently broke downstream).
        q = EventQueue()
        with pytest.raises(SimulationError, match="NaN"):
            q.push(float("nan"), "poison")
        assert len(q) == 0

    def test_pop_empty_raises(self):
        with pytest.raises(SimulationError):
            EventQueue().pop()

    def test_len_and_bool(self):
        q = EventQueue()
        assert not q and len(q) == 0
        q.push(0.0, None)
        assert q and len(q) == 1

    def test_peek_time(self):
        q = EventQueue()
        assert q.peek_time() == float("inf")
        q.push(4.5, None)
        assert q.peek_time() == 4.5
