"""Large-n statistical equivalence between engine configurations.

Bit-identity vs the legacy oracle is only affordable at small n
(``test_engine_equivalence``); these tests cover the paper-scale regime
with the ensemble helpers from :mod:`tests.runtime.equivalence`: a
10^4-row stencil across 128 ranks — enough ranks to engage the
precomputed-timeline (turbo) block engine — compared over seeded
ensembles by residual envelope and time-to-tolerance.
"""

import numpy as np
import pytest

from repro.matrices.laplacian import fd_laplacian_2d
from repro.runtime.distributed import DistributedJacobi
from repro.util.rng import as_rng
from tests.runtime.equivalence import (
    assert_envelopes_agree,
    assert_times_comparable,
    envelopes_overlap,
    residual_envelope,
    run_ensemble,
    times_to_tolerance,
)

SEEDS = (1, 2, 3)
GRID = (100, 100)
N_RANKS = 128  # >= DistributedJacobi._TURBO_MIN_RANKS: turbo engine active
A = fd_laplacian_2d(*GRID)


def _sim(seed: int) -> tuple:
    b = as_rng(seed).uniform(-1, 1, A.shape[0])
    sim = DistributedJacobi(
        A, b, n_ranks=N_RANKS, partition="contiguous", seed=seed
    )
    tol = sim.run_sync(max_iterations=1).residual_norms[0] / 10.0
    return sim, tol


def _async_runner(relax_backend: str, delivery: str = "auto"):
    def run_one(seed: int):
        sim, tol = _sim(seed)
        result = sim.run_async(
            tol=tol,
            max_iterations=400,
            observe_every=N_RANKS,
            relax_backend=relax_backend,
            delivery=delivery,
        )
        result.tol = tol
        return result

    return run_one


def test_block_vs_event_statistical_large_n():
    """Block and event backends trace the same envelope at 10^4 rows.

    The backends are designed bit-identical, but at this scale the suite
    holds them to the affordable statistical contract: tight envelope
    agreement and matching median time-to-tolerance per seed ensemble.
    """
    ev = run_ensemble(_async_runner("event"), SEEDS)
    bl = run_ensemble(_async_runner("block"), SEEDS)
    assert_envelopes_agree(ev, bl, slack=0.02)
    tol = min(r.tol for r in ev)
    assert_times_comparable(ev, bl, tol, ratio=1.05)


def test_batched_vs_event_delivery_statistical_large_n():
    """Batched and eager delivery agree statistically at 10^4 rows."""
    eager = run_ensemble(_async_runner("event", delivery="event"), SEEDS)
    batched = run_ensemble(_async_runner("event", delivery="batched"), SEEDS)
    assert_envelopes_agree(eager, batched, slack=0.02)
    tol = min(r.tol for r in eager)
    assert_times_comparable(eager, batched, tol, ratio=1.05)


def test_async_envelope_tracks_sync_large_n():
    """Async residual observations track the sync sweep envelope.

    Without injected delays the async trajectory is genuinely different
    from the sync one (free-running ranks, no barrier), yet observation k
    of each — roughly one sweep's worth of commits apart — must land in
    the same residual band, and async must not be slower to tolerance
    (Figure 3's zero-delay anchor).
    """

    def run_sync_one(seed: int):
        sim, tol = _sim(seed)
        result = sim.run_sync(tol=tol, max_iterations=400)
        result.tol = tol
        return result

    sync = run_ensemble(run_sync_one, SEEDS)
    asyn = run_ensemble(_async_runner("block"), SEEDS)
    assert_envelopes_agree(sync, asyn, slack=0.25)
    tol = min(r.tol for r in sync)
    t_sync = times_to_tolerance(sync, tol)
    t_async = times_to_tolerance(asyn, tol)
    assert float(np.median(t_async)) <= float(np.median(t_sync))


def test_envelope_helpers_detect_separation():
    """The helpers flag genuinely divergent ensembles."""

    class _Fake:
        def __init__(self, norms):
            self.residual_norms = list(norms)

    fast = [_Fake([1.0, 0.5, 0.25]), _Fake([1.0, 0.45, 0.22])]
    slow = [_Fake([1.0, 0.9, 0.8]), _Fake([1.0, 0.95, 0.85])]
    env_fast = residual_envelope(fast)
    env_slow = residual_envelope(slow)
    assert envelopes_overlap(env_fast, env_fast) is None
    assert envelopes_overlap(env_fast, env_slow, slack=0.05) == 1
    with pytest.raises(AssertionError, match="separate at observation"):
        assert_envelopes_agree(fast, slow, slack=0.05)
