"""Statistical-equivalence helpers for large-n backend comparisons.

At small n the engine is held to bit-identity against the legacy oracle
(``test_engine_equivalence``): every float in every trajectory must match
byte for byte. At paper scale that comparison is unaffordable — the
oracle's per-event Python loop takes minutes per arm — so large-n
coverage asserts *statistical* equivalence instead: seeded ensembles of
runs from two configurations must trace overlapping residual envelopes
and reach tolerance in comparable simulated time.

The helpers are deterministic end to end (fixed seed lists, no wall-clock
dependence), so a divergence is reproducible from the failing seed alone.
"""

from __future__ import annotations

import numpy as np


def run_ensemble(run_one, seeds):
    """``[run_one(seed) for seed in seeds]`` — one result per seed."""
    return [run_one(seed) for seed in seeds]


def residual_envelope(results):
    """Elementwise ``(lower, upper)`` residual bounds across an ensemble.

    Histories are truncated to the shortest run so the envelope compares
    like observation indices; returns two arrays of that common length.
    """
    if not results:
        raise ValueError("residual_envelope needs at least one result")
    n_obs = min(len(r.residual_norms) for r in results)
    stack = np.array([r.residual_norms[:n_obs] for r in results], dtype=float)
    return stack.min(axis=0), stack.max(axis=0)


def envelopes_overlap(env_a, env_b, slack: float = 0.0):
    """Index of the first observation where the envelopes separate.

    Envelope ``a`` is widened by ``slack`` (relative) before the check;
    returns ``None`` when the intervals intersect at every index. Both
    envelopes are truncated to their common length first.
    """
    lo_a, hi_a = env_a
    lo_b, hi_b = env_b
    n = min(lo_a.size, lo_b.size)
    lo_a, hi_a = lo_a[:n] * (1.0 - slack), hi_a[:n] * (1.0 + slack)
    disjoint = (hi_a < lo_b[:n]) | (hi_b[:n] < lo_a)
    where = np.nonzero(disjoint)[0]
    return int(where[0]) if where.size else None


def assert_envelopes_agree(results_a, results_b, slack: float = 0.25):
    """Both ensembles must trace intersecting residual envelopes."""
    env_a = residual_envelope(results_a)
    env_b = residual_envelope(results_b)
    sep = envelopes_overlap(env_a, env_b, slack=slack)
    assert sep is None, (
        f"residual envelopes separate at observation {sep}: "
        f"a=[{env_a[0][sep]:.3e}, {env_a[1][sep]:.3e}] vs "
        f"b=[{env_b[0][sep]:.3e}, {env_b[1][sep]:.3e}] (slack {slack})"
    )


def times_to_tolerance(results, tol: float):
    """Simulated time each run first observed a residual below ``tol``."""
    times = np.array([r.time_to_tolerance(tol) for r in results], dtype=float)
    assert np.all(np.isfinite(times)), (
        f"some runs never reached tol={tol:.3e}: {times}"
    )
    return times


def assert_times_comparable(results_a, results_b, tol: float, ratio: float = 1.5):
    """Median times-to-tolerance must agree within a factor of ``ratio``."""
    med_a = float(np.median(times_to_tolerance(results_a, tol)))
    med_b = float(np.median(times_to_tolerance(results_b, tol)))
    assert med_a <= ratio * med_b and med_b <= ratio * med_a, (
        f"median time-to-tolerance differs beyond {ratio}x: "
        f"{med_a:.3e} vs {med_b:.3e}"
    )
