"""Machine-model calibration fits."""

import numpy as np
import pytest

from repro.runtime.calibration import (
    CalibrationError,
    calibrated_machine,
    fit_barrier_costs,
    fit_compute_costs,
)
from repro.runtime.machine import KNL


def synthetic_compute_samples(c1, c2, c3, rng, noise=0.0):
    samples = []
    for nnz, rows in [(100, 10), (500, 50), (2000, 100), (50, 5), (5000, 400)]:
        t = nnz * c1 + rows * c2 + c3
        if noise:
            t *= 1.0 + noise * rng.standard_normal()
        samples.append((nnz, rows, t))
    return samples


class TestComputeFit:
    def test_recovers_exact_parameters(self, rng):
        fit = fit_compute_costs(synthetic_compute_samples(2e-9, 5e-9, 1e-6, rng))
        assert fit.time_per_nnz == pytest.approx(2e-9, rel=1e-6)
        assert fit.time_per_row == pytest.approx(5e-9, rel=1e-6)
        assert fit.iteration_overhead == pytest.approx(1e-6, rel=1e-6)
        assert fit.relative_rms < 1e-9

    def test_noisy_fit_close(self, rng):
        fit = fit_compute_costs(
            synthetic_compute_samples(2e-9, 5e-9, 1e-6, rng, noise=0.02)
        )
        assert fit.time_per_nnz == pytest.approx(2e-9, rel=0.3)
        assert fit.relative_rms < 0.1

    def test_clamps_negative_coefficients(self, rng):
        # Pure-overhead timings: nnz/rows coefficients unidentifiable but
        # never negative.
        samples = [(100, 10, 1e-6), (500, 50, 1e-6), (2000, 100, 1e-6), (50, 5, 1e-6)]
        fit = fit_compute_costs(samples)
        assert fit.time_per_nnz >= 0 and fit.time_per_row >= 0

    def test_too_few_samples(self):
        with pytest.raises(CalibrationError):
            fit_compute_costs([(1, 1, 1.0), (2, 2, 2.0)])

    def test_degenerate_samples(self):
        # rows always nnz/10: rank deficient.
        samples = [(100, 10, 1.0), (200, 20, 2.0), (300, 30, 3.0)]
        with pytest.raises(CalibrationError):
            fit_compute_costs(samples)

    def test_bad_shape(self):
        with pytest.raises(CalibrationError):
            fit_compute_costs([(1.0, 2.0)])


class TestBarrierFit:
    def test_recovers_log_model_below_cores(self):
        base, coeff = 1e-6, 0.5e-6
        samples = [(T, base + coeff * np.log2(T)) for T in (2, 4, 8, 16, 32, 64)]
        fit = fit_barrier_costs(samples, cores=68)
        assert fit.barrier_base == pytest.approx(base, rel=1e-6)
        assert fit.barrier_log_coeff == pytest.approx(coeff, rel=1e-6)
        assert fit.barrier_oversub_exp == 0.0

    def test_recovers_oversubscription_exponent(self):
        base, coeff, p, cores = 1e-6, 0.5e-6, 2.0, 68
        samples = []
        for T in (4, 16, 68, 136, 272):
            t = (base + coeff * np.log2(T)) * max(1.0, T / cores) ** p
            samples.append((T, t))
        fit = fit_barrier_costs(samples, cores=cores)
        assert fit.barrier_oversub_exp == pytest.approx(p, abs=0.06)
        assert fit.relative_rms < 0.02

    def test_too_few(self):
        with pytest.raises(CalibrationError):
            fit_barrier_costs([(4, 1e-6)], cores=8)

    def test_bad_threads(self):
        with pytest.raises(CalibrationError):
            fit_barrier_costs([(0, 1e-6), (2, 2e-6)], cores=8)


class TestCalibratedMachine:
    def test_bundles_fits(self, rng):
        compute = synthetic_compute_samples(3e-9, 6e-9, 2e-6, rng)
        barrier = [(T, 1e-6 * (1 + np.log2(T))) for T in (2, 8, 32)]
        m = calibrated_machine(KNL, compute, barrier, name="fitted")
        assert m.name == "fitted"
        assert m.time_per_nnz == pytest.approx(3e-9, rel=1e-6)
        assert m.barrier_base == pytest.approx(1e-6, rel=1e-4)
        # Untouched fields survive.
        assert m.cores == KNL.cores
        assert m.jitter_sigma == KNL.jitter_sigma

    def test_partial_calibration(self):
        m = calibrated_machine(KNL, barrier_samples=[(2, 1e-6), (8, 2e-6), (32, 3e-6)])
        assert m.time_per_nnz == KNL.time_per_nnz  # compute untouched

    def test_fitted_machine_usable_in_simulator(self, rng):
        """End to end: fit a machine, run the simulator with it."""
        from repro.matrices.laplacian import fd_laplacian_2d
        from repro.runtime.shared import SharedMemoryJacobi

        compute = synthetic_compute_samples(5e-9, 1e-8, 3e-6, rng)
        m = calibrated_machine(KNL, compute)
        A = fd_laplacian_2d(6, 6)
        b = rng.uniform(-1, 1, 36)
        sim = SharedMemoryJacobi(A, b, n_threads=6, machine=m, seed=0)
        res = sim.run_async(tol=1e-4, max_iterations=20_000)
        assert res.converged
