"""Method-aware replay: the bridge checks each method's own norm bound."""

import numpy as np
import pytest

from repro.matrices.laplacian import fd_laplacian_2d
from repro.methods import StepAsyncSOR
from repro.observability import Tracer
from repro.observability.replay import replay_report
from repro.runtime.distributed import DistributedJacobi
from repro.runtime.shared import SharedMemoryJacobi


def _problem():
    A = fd_laplacian_2d(5, 5)
    b = np.ones(A.nrows)
    return A, b


def _traced_distributed(A, b, **kwargs):
    tracer = Tracer(trace_reads=True)
    sim = DistributedJacobi(A, b, n_ranks=3, seed=9, **kwargs)
    sim.run_async(tol=1e-8, max_iterations=120, tracer=tracer)
    return tracer.events()


def test_default_replay_is_jacobi_residual_check():
    A, b = _problem()
    events = _traced_distributed(A, b)
    report = replay_report(events, A, b)
    assert report.method == "jacobi"
    assert report.norm == "residual_l1"
    assert report.guarantee.holds
    assert report.valid_sequence and report.monotone
    assert report.errors == []  # error tracking is the sup-norm check's


def test_sor_replay_checks_error_sup_norm():
    A, b = _problem()
    events = _traced_distributed(A, b, method="sor")
    report = replay_report(events, A, b, method="sor")
    assert report.method == "sor"
    assert report.norm == "error_sup"
    assert report.guarantee.holds
    assert report.valid_sequence and report.monotone
    assert len(report.errors) == report.n_steps + 1
    assert report.errors[-1] < report.errors[0]
    # The replayed iterate really is the sequential replay's endpoint.
    x_true = np.linalg.solve(A.to_dense(), b)
    assert np.max(np.abs(report.x - x_true)) == pytest.approx(
        report.errors[-1]
    )
    assert "error sup-norm" in report.verdict


def test_sor_replay_with_omega_above_one_asserts_nothing():
    A, b = _problem()
    method = StepAsyncSOR(omega=1.5)
    events = _traced_distributed(A, b, method=method)
    report = replay_report(events, A, b, method=method)
    assert report.norm == "error_sup"
    assert not report.guarantee.holds
    # No enforcement when the hypotheses fail: violations never recorded.
    assert report.monotone and report.violations == []


def test_momentum_replay_has_no_norm_check():
    A, b = _problem()
    spec = {"kind": "richardson2", "alpha": 0.2, "beta": 0.3}
    events = _traced_distributed(A, b, method=spec)
    report = replay_report(events, A, b, method=spec)
    assert report.method == "richardson2"
    assert report.norm is None and report.guarantee.norm is None
    assert report.valid_sequence and report.monotone
    assert "no per-step norm check" in report.verdict


def test_shared_memory_sor_trace_replays_monotone():
    A, b = _problem()
    tracer = Tracer(trace_reads=True)
    sim = SharedMemoryJacobi(A, b, n_threads=3, seed=4, method="sor")
    sim.run_async(tol=1e-8, max_iterations=120, tracer=tracer)
    report = replay_report(tracer.events(), A, b, method="sor")
    assert report.valid_sequence and report.monotone
    assert report.errors[-1] < report.errors[0]


def test_empty_trace_still_reports_method():
    A, b = _problem()
    report = replay_report([], A, b, method="sor")
    assert report.n_steps == 0
    assert report.method == "sor" and report.norm == "error_sup"
    assert report.residuals and report.monotone
