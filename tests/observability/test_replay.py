"""The trace→reconstruction bridge, end to end against both simulators.

The acceptance checks for the observability layer: a real shared-memory
run and a real distributed run, captured through the tracer with per-row
read versions, must replay through the Section IV-A reconstruction into a
valid propagation-matrix sequence whose residual 1-norm never increases
(Theorem 1 — both systems are weakly diagonally dominant Laplacians), and
tracing itself must never perturb a simulated trajectory.
"""

import numpy as np
import pytest

from repro.core.model import AsyncJacobiModel
from repro.core.schedules import SynchronousSchedule
from repro.faults import FaultPlan, RankCrash
from repro.matrices.laplacian import fd_laplacian_1d, fd_laplacian_2d
from repro.observability import JSONLSink, Metrics, NullSink, Tracer
from repro.observability.replay import replay_report, to_execution_trace
from repro.runtime.distributed import DistributedJacobi
from repro.runtime.shared import SharedMemoryJacobi
from repro.util.errors import ScheduleError


@pytest.fixture(scope="module")
def system():
    A = fd_laplacian_2d(6, 6)
    return A, np.ones(A.nrows)


class TestSharedMemoryReplay:
    def test_wdd_trace_replays_monotone(self, system):
        A, b = system
        tracer = Tracer(trace_reads=True)
        sim = SharedMemoryJacobi(A, b, n_threads=4, seed=11)
        result = sim.run_async(tol=1e-6, max_iterations=150, tracer=tracer)
        report = replay_report(tracer.events(), A, b)
        assert report.valid_sequence
        assert report.monotone, report.violations[:5]
        assert report.n_relaxations == result.relaxation_counts[-1]
        assert 0.0 < report.fraction_propagated <= 1.0
        # The replayed trajectory ends at least as converged as observed.
        assert report.residuals[-1] <= report.residuals[0]

    def test_tracer_reads_match_record_trace(self, system):
        """The shared pending-reads bookkeeping feeds both consumers alike."""
        A, b = system
        tracer = Tracer(trace_reads=True)
        result = SharedMemoryJacobi(A, b, n_threads=3, seed=5).run_async(
            tol=1e-6, max_iterations=60, record_trace=True, tracer=tracer
        )
        from_events = to_execution_trace(tracer.events(), A)
        assert len(from_events) == len(result.trace)
        for a, c in zip(from_events, result.trace):
            assert (a.row, a.index, a.reads) == (c.row, c.index, c.reads)

    def test_trajectory_invariance(self, system):
        A, b = system
        kwargs = dict(tol=1e-6, max_iterations=100)
        base = SharedMemoryJacobi(A, b, n_threads=4, seed=3).run_async(**kwargs)
        traced = SharedMemoryJacobi(A, b, n_threads=4, seed=3).run_async(
            tracer=Tracer(trace_reads=True), **kwargs
        )
        assert np.array_equal(base.x, traced.x)
        assert base.times == traced.times
        assert base.residual_norms == traced.residual_norms

    def test_null_tracer_emits_nothing(self, system):
        A, b = system
        tracer = Tracer(sinks=[NullSink()])
        SharedMemoryJacobi(A, b, n_threads=2, seed=0).run_async(
            tol=1e-4, max_iterations=20, tracer=tracer
        )
        assert tracer.events() == []
        assert tracer._seq == 0  # resolved away: no event was even built

    def test_instrument_and_tracer_compose(self, system):
        """One instrumentation path: perf counters unchanged by tracing."""
        A, b = system
        kwargs = dict(tol=1e-6, max_iterations=60, instrument=True)
        base = SharedMemoryJacobi(A, b, n_threads=4, seed=9).run_async(**kwargs)
        metrics = Metrics()
        traced = SharedMemoryJacobi(A, b, n_threads=4, seed=9).run_async(
            tracer=Tracer(metrics=metrics, trace_reads=True), **kwargs
        )
        assert base.perf.events == traced.perf.events
        assert base.perf.full_recomputes == traced.perf.full_recomputes
        # No double-counting: metrics relaxations == the result's own count.
        assert metrics.counter("relaxations").value == traced.relaxation_counts[-1]
        assert metrics.counter("steps").value == int(traced.iterations.sum())


class TestDistributedReplay:
    def test_wdd_trace_replays_monotone(self, system):
        A, b = system
        metrics = Metrics()
        tracer = Tracer(metrics=metrics, trace_reads=True)
        sim = DistributedJacobi(A, b, n_ranks=4, seed=7)
        result = sim.run_async(tol=1e-6, max_iterations=80, tracer=tracer)
        report = replay_report(tracer.events(), A, b)
        assert report.valid_sequence
        assert report.monotone, report.violations[:5]
        assert report.n_relaxations == result.relaxation_counts[-1]
        assert metrics.counter("messages_sent").value > 0
        assert metrics.histogram("message_latency").count > 0

    def test_trajectory_invariance(self, system):
        A, b = system
        kwargs = dict(tol=1e-6, max_iterations=80)
        base = DistributedJacobi(A, b, n_ranks=4, seed=2).run_async(**kwargs)
        traced = DistributedJacobi(A, b, n_ranks=4, seed=2).run_async(
            tracer=Tracer(trace_reads=True), **kwargs
        )
        assert np.array_equal(base.x, traced.x)
        assert base.times == traced.times

    def test_reliable_faulty_run_replays_monotone(self, system):
        """Crash + reliable puts + detection still yields a Theorem 1 trace."""
        A, b = system
        tracer = Tracer(trace_reads=True)
        plan = FaultPlan([RankCrash(agent=2, at=2e-5)])
        sim = DistributedJacobi(
            A, b, n_ranks=4, seed=4, fault_plan=plan, fault_seed=13,
            recovery="freeze",
        )
        result = sim.run_async(tol=1e-8, max_iterations=40, tracer=tracer)
        kinds = {e.kind for e in tracer.events()}
        assert "ack" in kinds  # the reliable protocol was on
        report = replay_report(tracer.events(), A, b)
        assert report.monotone, report.violations[:5]
        assert report.n_relaxations == result.relaxation_counts[-1]

    def test_detection_events_emitted(self, system):
        A, b = system
        tracer = Tracer(trace_reads=False)
        plan = FaultPlan([RankCrash(agent=1, at=1e-5)])
        sim = DistributedJacobi(
            A, b, n_ranks=3, seed=6, fault_plan=plan, fault_seed=1,
            recovery="freeze", heartbeat_interval=2e-5,
        )
        sim.run_async(tol=1e-10, max_iterations=200, tracer=tracer)
        events = tracer.events()
        dead = [e for e in events if e.kind == "detect"]
        assert any(e.data["target"] == 1 and e.data["status"] == "dead" for e in dead)
        assert any(
            e.kind == "fault" and e.data["reason"] == "crash" and e.agent == 1
            for e in events
        )

    def test_jsonl_roundtrip_replays(self, system, tmp_path):
        """An archived trace replays identically to the in-memory one."""
        A, b = system
        path = tmp_path / "dist.jsonl"
        tracer = Tracer(
            sinks=[JSONLSink(path)], trace_reads=True
        )
        DistributedJacobi(A, b, n_ranks=3, seed=8).run_async(
            tol=1e-5, max_iterations=40, tracer=tracer
        )
        tracer.close()
        report = replay_report(JSONLSink.read(path), A, b)
        assert report.valid_sequence and report.monotone


class TestModelExecutorReplay:
    def test_synchronous_model_trace_replays_exactly(self):
        A = fd_laplacian_1d(16)
        b = np.ones(16)
        tracer = Tracer()
        model = AsyncJacobiModel(A, b)
        result = model.run(
            SynchronousSchedule(16), tol=1e-8, max_steps=50,
            record_every=1, tracer=tracer,
        )
        report = replay_report(tracer.events(), A, b)
        assert report.valid_sequence and report.monotone
        # Exact-information synthesis: the replay IS the original run.
        assert report.fraction_propagated == 1.0
        np.testing.assert_allclose(report.x, result.x, rtol=1e-12)

    def test_mismatched_reads_rejected(self):
        A = fd_laplacian_1d(4)
        tracer = Tracer(trace_reads=True)
        tracer.relax(0.0, 0, [0, 1], reads=[{1: 0}])  # 2 rows, 1 read dict
        with pytest.raises(ScheduleError, match="read dicts"):
            to_execution_trace(tracer.events(), A)

    def test_empty_trace_report(self):
        A = fd_laplacian_1d(4)
        report = replay_report([], A, np.ones(4))
        assert report.n_relaxations == 0
        assert report.monotone and report.valid_sequence
        assert len(report.residuals) == 1
        assert "0 relaxations" in report.verdict
