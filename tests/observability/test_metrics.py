"""Metrics registry: instruments, event derivation, export."""

import json
import math

import pytest

from repro.observability import Histogram, Metrics, TraceEvent, Tracer
from repro.observability import events as ev


class TestInstruments:
    def test_counter(self):
        m = Metrics()
        m.counter("x").inc()
        m.counter("x").inc(4)
        assert m.counter("x").value == 5

    def test_gauge(self):
        m = Metrics()
        m.gauge("g").set(2.5, time=1.0)
        assert m.gauge("g").value == 2.5
        assert m.gauge("g").time == 1.0

    def test_histogram_buckets_and_stats(self):
        h = Histogram(bounds=(1.0, 10.0))
        for v in (0.5, 5.0, 50.0):
            h.observe(v)
        assert h.count == 3
        assert h.mean == pytest.approx(55.5 / 3)
        assert h.min == 0.5 and h.max == 50.0
        assert h.bucket_counts == [1, 1, 1]
        assert h.summary()["buckets"] == {"<=1": 1, "<=10": 1, "overflow": 1}

    def test_histogram_empty_mean_is_nan(self):
        assert math.isnan(Histogram().mean)

    def test_histogram_rejects_unsorted_bounds(self):
        with pytest.raises(ValueError):
            Histogram(bounds=(2.0, 1.0))

    def test_per_agent_keying(self):
        m = Metrics()
        m.counter("relaxations", agent=1).inc(7)
        assert m.counter("relaxations").value == 0
        assert m.counter("relaxations", agent=1).value == 7


class TestEventDerivation:
    def _event(self, kind, time=0.0, agent=None, **data):
        return TraceEvent(kind=kind, time=time, seq=0, agent=agent, data=data)

    def test_relax_counts_and_staleness(self):
        m = Metrics()
        m.record_event(
            self._event(ev.RELAX, agent=2, rows=[0, 1, 2], staleness=[0, 1, 5])
        )
        assert m.counter("relaxations").value == 3
        assert m.counter("relaxations", agent=2).value == 3
        assert m.counter("steps").value == 1
        assert m.histogram("staleness").count == 3

    def test_messages_and_latency(self):
        m = Metrics()
        m.record_event(self._event(ev.SEND, agent=0, dst=1, n_values=4))
        m.record_event(
            self._event(ev.RECV, agent=1, src=0, n_values=4, latency=2e-6)
        )
        assert m.counter("messages_sent").value == 1
        assert m.counter("messages_received").value == 1
        assert m.histogram("message_latency").max == 2e-6

    def test_fault_and_detect_reasons(self):
        m = Metrics()
        m.record_event(self._event(ev.FAULT, agent=1, reason="crash"))
        m.record_event(self._event(ev.FAULT, agent=1, reason="put_dropped"))
        m.record_event(self._event(ev.DETECT, target=1, status="dead"))
        assert m.counter("faults").value == 2
        assert m.counter("faults.crash").value == 1
        assert m.counter("detections.dead").value == 1

    def test_residual_decay_rate(self):
        m = Metrics()
        m.record_event(self._event(ev.OBSERVE, time=0.0, residual=1.0))
        m.record_event(self._event(ev.OBSERVE, time=2.0, residual=1e-4))
        # Four decades over two time units.
        assert m.gauge("residual_decay_rate").value == pytest.approx(2.0)
        assert m.gauge("residual").value == 1e-4

    def test_convergence_gauge(self):
        m = Metrics()
        m.record_event(self._event(ev.CONVERGENCE, time=3.5, residual=1e-7, tol=1e-6))
        assert m.gauge("converged_at").value == 3.5

    def test_delay_and_ack(self):
        m = Metrics()
        m.record_event(self._event(ev.DELAY, agent=0, seconds=0.25))
        m.record_event(self._event(ev.ACK, agent=0, src=1, seq=0))
        assert m.counter("delays").value == 1
        assert m.histogram("delay_seconds").sum == 0.25
        assert m.counter("acks_received").value == 1


class TestExport:
    def test_as_dict_labels(self):
        m = Metrics()
        m.counter("relaxations").inc(10)
        m.counter("relaxations", agent=3).inc(4)
        m.gauge("residual").set(0.5)
        m.histogram("staleness").observe(1)
        d = m.as_dict()
        assert d["relaxations"] == 10
        assert d["relaxations/agent3"] == 4
        assert d["residual"] == 0.5
        assert d["staleness"]["count"] == 1

    def test_to_json_writes_file(self, tmp_path):
        m = Metrics()
        m.counter("x").inc()
        path = tmp_path / "metrics.json"
        text = m.to_json(path)
        assert json.loads(text) == {"x": 1}
        assert json.loads(path.read_text()) == {"x": 1}

    def test_tracer_integration_single_path(self):
        # One instrumentation path: the tracer feeds metrics, nothing else.
        m = Metrics()
        tracer = Tracer(metrics=m)
        tracer.relax(0.0, 0, [0, 1])
        tracer.relax(1.0, 1, [2])
        assert m.counter("relaxations").value == 3
        assert len(tracer.events()) == 2
