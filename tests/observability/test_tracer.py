"""Tracer core: events, sinks, enablement, serialization."""

import json

import numpy as np
import pytest

from repro.observability import (
    JSONLSink,
    NullSink,
    RingBufferSink,
    SCHEMA_VERSION,
    TraceEvent,
    Tracer,
)
from repro.observability import events as ev
from repro.observability.tracer import resolve


class TestTraceEvent:
    def test_json_roundtrip(self):
        event = TraceEvent(
            kind=ev.RELAX, time=1.5, seq=3, agent=2,
            data={"rows": [0, 1], "staleness": [0, 2]},
        )
        back = TraceEvent.from_json_dict(event.to_json_dict())
        assert back.kind == event.kind
        assert back.time == event.time
        assert back.seq == event.seq
        assert back.agent == event.agent
        assert back.data == event.data

    def test_numpy_payloads_serialize(self):
        event = TraceEvent(
            kind=ev.RELAX, time=0.0, seq=0,
            data={"rows": np.arange(3), "lag": np.int64(4)},
        )
        payload = json.dumps(event.to_json_dict())
        assert json.loads(payload)["data"]["rows"] == [0, 1, 2]

    def test_all_kind_constants_registered(self):
        assert ev.RELAX in ev.KINDS
        assert ev.RUN_END in ev.KINDS
        assert ev.REQUEST in ev.KINDS  # schema v2
        assert len(ev.KINDS) == 12


class TestSinks:
    def test_ring_buffer_keeps_newest(self):
        sink = RingBufferSink(capacity=2)
        for k in range(5):
            sink.emit(TraceEvent(kind=ev.RELAX, time=float(k), seq=k))
        assert [e.seq for e in sink.events()] == [3, 4]
        assert sink.dropped == 3
        assert len(sink) == 2

    def test_ring_buffer_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            RingBufferSink(capacity=0)

    def test_null_sink_is_disabled(self):
        assert not NullSink().enabled
        assert not Tracer(sinks=[NullSink()]).enabled
        assert resolve(Tracer(sinks=[NullSink()])) is None
        assert resolve(None) is None

    def test_jsonl_roundtrip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JSONLSink(path)
        tracer = Tracer(sinks=[sink])
        tracer.relax(0.5, 1, [0, 1])
        tracer.run_end(1.0, True, 2)
        tracer.close()
        events = JSONLSink.read(path)
        assert [e.kind for e in events] == [ev.RELAX, ev.RUN_END]
        header = json.loads(path.read_text().splitlines()[0])
        assert header["schema_version"] == SCHEMA_VERSION

    def test_jsonl_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            json.dumps({"kind": "__header__", "schema_version": -1}) + "\n"
        )
        with pytest.raises(ValueError, match="schema version"):
            JSONLSink.read(path)
        (tmp_path / "headerless.jsonl").write_text('{"kind": "relax"}\n')
        with pytest.raises(ValueError, match="header"):
            JSONLSink.read(tmp_path / "headerless.jsonl")

    def test_jsonl_concurrent_emitters_never_interleave(self, tmp_path):
        """Thread-safety regression: parallel emits, whole lines, no loss.

        The solver service hands events to one JSONLSink from executor
        threads; without the sink's lock, concurrent writes interleave
        partial lines or tear a rotation. Every line must parse, every
        event must survive, rotated files included.
        """
        import threading

        path = tmp_path / "threads.jsonl"
        sink = JSONLSink(path, max_bytes=32768, backups=50)
        n_threads, per_thread = 8, 200
        barrier = threading.Barrier(n_threads)

        def emit(worker):
            barrier.wait()
            for k in range(per_thread):
                sink.emit(
                    TraceEvent(
                        kind=ev.REQUEST,
                        time=float(k),
                        seq=worker * per_thread + k,
                        data={"phase": "submit", "worker": worker, "k": k},
                    )
                )

        threads = [
            threading.Thread(target=emit, args=(w,)) for w in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        sink.close()
        seen = set()
        for p in tmp_path.glob("threads.jsonl*"):
            for line in p.read_text().splitlines():
                payload = json.loads(line)  # torn lines would fail here
                if payload.get("kind") == "__header__":
                    continue
                seen.add((payload["data"]["worker"], payload["data"]["k"]))
        assert len(seen) == n_threads * per_thread

    def test_jsonl_rotation(self, tmp_path):
        path = tmp_path / "rot.jsonl"
        sink = JSONLSink(path, max_bytes=300, backups=2)
        tracer = Tracer(sinks=[sink])
        for k in range(50):
            tracer.relax(float(k), 0, [k])
        tracer.close()
        assert (tmp_path / "rot.jsonl.1").exists()
        assert not (tmp_path / "rot.jsonl.3").exists()
        # Every live file (current + rotations) starts with a valid header.
        for p in sorted(tmp_path.glob("rot.jsonl*")):
            first = json.loads(p.read_text().splitlines()[0])
            assert first["kind"] == "__header__"
        # The newest events are in the current file.
        assert JSONLSink.read(path)[-1].data["rows"] == [49]


class TestTracer:
    def test_seq_is_monotonic_across_kinds(self):
        tracer = Tracer()
        tracer.run_start("X", 4)
        tracer.relax(0.0, 0, [0])
        tracer.observe(0.1, 0.5, 1)
        seqs = [e.seq for e in tracer.events()]
        assert seqs == sorted(seqs) == list(range(3))

    def test_fans_out_to_all_enabled_sinks(self):
        a, b = RingBufferSink(), RingBufferSink()
        tracer = Tracer(sinks=[a, NullSink(), b])
        tracer.relax(0.0, 0, [0])
        assert len(a) == len(b) == 1

    def test_events_empty_without_ring(self, tmp_path):
        tracer = Tracer(sinks=[JSONLSink(tmp_path / "t.jsonl")])
        tracer.relax(0.0, 0, [0])
        assert tracer.events() == []
        tracer.close()

    def test_metrics_only_tracer_is_enabled(self):
        from repro.observability import Metrics

        metrics = Metrics()
        tracer = Tracer(sinks=[NullSink()], metrics=metrics)
        assert tracer.enabled
        tracer.relax(0.0, 0, [0, 1])
        assert metrics.counter("relaxations").value == 2

    def test_wall_stamp_populated(self):
        tracer = Tracer()
        tracer.relax(0.0, 0, [0])
        assert tracer.events()[0].wall > 0.0
