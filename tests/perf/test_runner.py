"""Parallel cached runner: ordering, memoization, graceful degradation."""

import concurrent.futures

from repro.perf.cache import ExperimentCache
from repro.perf.runner import _cell_token, _worker_count, run_cells

# ``dict`` is a convenient module-level, picklable cell function: it
# returns (a copy of) its config, which makes ordering trivially checkable
# even through a process pool.
CONFIGS = [{"i": i} for i in range(5)]


def counting_cell_factory():
    calls = []

    def cell(config):
        calls.append(config["i"])
        return config["i"] * 10

    return cell, calls


class TestSerial:
    def test_results_in_input_order(self, tmp_path):
        cache = ExperimentCache(root=tmp_path, enabled=True)
        out = run_cells(dict, CONFIGS, cache=cache, max_workers=1)
        assert out == CONFIGS

    def test_second_run_hits_cache(self, tmp_path):
        cache = ExperimentCache(root=tmp_path, enabled=True)
        cell, calls = counting_cell_factory()
        first = run_cells(cell, CONFIGS, cache=cache, max_workers=1)
        second = run_cells(cell, CONFIGS, cache=cache, max_workers=1)
        assert first == second == [i * 10 for i in range(5)]
        assert len(calls) == 5  # no re-execution
        assert cache.hits == 5

    def test_use_cache_false_bypasses(self, tmp_path):
        cache = ExperimentCache(root=tmp_path, enabled=True)
        cell, calls = counting_cell_factory()
        run_cells(cell, CONFIGS, cache=cache, max_workers=1, use_cache=False)
        run_cells(cell, CONFIGS, cache=cache, max_workers=1, use_cache=False)
        assert len(calls) == 10
        assert cache.hits == 0 and cache.misses == 0

    def test_partial_cache_runs_only_misses(self, tmp_path):
        cache = ExperimentCache(root=tmp_path, enabled=True)
        cell, calls = counting_cell_factory()
        run_cells(cell, CONFIGS[:2], cache=cache, max_workers=1)
        out = run_cells(cell, CONFIGS, cache=cache, max_workers=1)
        assert out == [i * 10 for i in range(5)]
        assert sorted(calls) == [0, 1, 2, 3, 4]  # 0,1 only ran once

    def test_empty_configs(self, tmp_path):
        cache = ExperimentCache(root=tmp_path, enabled=True)
        assert run_cells(dict, [], cache=cache) == []


class TestParallel:
    def test_pool_path_preserves_order(self, tmp_path):
        cache = ExperimentCache(root=tmp_path, enabled=True)
        out = run_cells(dict, CONFIGS, cache=cache, max_workers=2)
        assert out == CONFIGS

    def test_pool_failure_falls_back_to_serial(self, tmp_path, monkeypatch):
        class ExplodingPool:
            def __init__(self, *args, **kwargs):
                raise OSError("no semaphores here")

        monkeypatch.setattr(
            concurrent.futures, "ProcessPoolExecutor", ExplodingPool
        )
        cache = ExperimentCache(root=tmp_path, enabled=True)
        out = run_cells(dict, CONFIGS, cache=cache, max_workers=4)
        assert out == CONFIGS

    def test_single_pending_item_stays_serial(self, tmp_path, monkeypatch):
        def forbidden_pool(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("pool must not start for one pending cell")

        monkeypatch.setattr(
            concurrent.futures, "ProcessPoolExecutor", forbidden_pool
        )
        cache = ExperimentCache(root=tmp_path, enabled=True)
        out = run_cells(dict, CONFIGS[:1], cache=cache, max_workers=8)
        assert out == CONFIGS[:1]


class TestWorkerCount:
    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL", "7")
        assert _worker_count(3) == 3
        assert _worker_count(0) == 0

    def test_env_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL", "4")
        assert _worker_count(None) == 4
        monkeypatch.setenv("REPRO_PARALLEL", "0")
        assert _worker_count(None) == 0

    def test_garbage_env_falls_back_to_cpu_count(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL", "many")
        assert _worker_count(None) >= 1

    def test_default_is_cpu_count(self, monkeypatch):
        monkeypatch.delenv("REPRO_PARALLEL", raising=False)
        assert _worker_count(None) >= 1


class TestCellToken:
    def test_token_includes_function_identity(self):
        t1 = _cell_token(dict, {"x": 1})
        t2 = _cell_token(list, {"x": 1})
        assert t1 != t2
        assert t1["cell"] == "builtins.dict"
        assert t1["config"] == {"x": 1}

    def test_different_functions_do_not_collide_in_cache(self, tmp_path):
        cache = ExperimentCache(root=tmp_path, enabled=True)
        cache.store(_cell_token(dict, {"x": 1}), "from-dict")
        hit, _ = cache.lookup(_cell_token(list, {"x": 1}))
        assert not hit
