"""Experiment cache: content-hash keys, env controls, atomic storage."""

import os
import pickle
import threading
import time

import numpy as np
import pytest

from repro.perf.cache import (
    ExperimentCache,
    _canonical,
    cache_enabled,
    code_version,
    default_cache_dir,
)


@pytest.fixture
def cache(tmp_path):
    return ExperimentCache(root=tmp_path, enabled=True)


class TestKeying:
    def test_key_is_stable_and_order_insensitive(self, cache):
        a = cache.key({"seed": 1, "tol": 1e-3})
        b = cache.key({"tol": 1e-3, "seed": 1})
        assert a == b
        assert len(a) == 64

    def test_key_distinguishes_configs(self, cache):
        assert cache.key({"seed": 1}) != cache.key({"seed": 2})

    def test_key_includes_code_version(self, cache, monkeypatch):
        before = cache.key({"seed": 1})
        monkeypatch.setattr("repro.perf.cache._code_version_cache", "f" * 16)
        assert cache.key({"seed": 1}) != before

    def test_tuple_and_list_configs_collide(self, cache):
        assert cache.key({"seeds": (1, 2)}) == cache.key({"seeds": [1, 2]})

    def test_numpy_scalars_canonicalize(self, cache):
        assert cache.key({"tol": np.float64(0.5)}) == cache.key({"tol": 0.5})

    def test_non_json_config_rejected(self):
        with pytest.raises(TypeError):
            _canonical({"bad": object()})

    def test_code_version_format(self):
        v = code_version()
        assert len(v) == 16
        int(v, 16)  # hex digest


class TestStorage:
    def test_miss_then_hit(self, cache):
        config = {"seed": 7}
        hit, value = cache.lookup(config)
        assert not hit and value is None
        cache.store(config, {"answer": 42})
        hit, value = cache.lookup(config)
        assert hit and value == {"answer": 42}
        assert cache.hits == 1 and cache.misses == 1

    def test_get_or_run_runs_once(self, cache):
        calls = []

        def cell(config):
            calls.append(config)
            return config["x"] * 2

        assert cache.get_or_run({"x": 3}, cell) == 6
        assert cache.get_or_run({"x": 3}, cell) == 6
        assert len(calls) == 1

    def test_corrupt_entry_is_a_miss(self, cache):
        config = {"seed": 1}
        cache.store(config, "fine")
        path = cache._path(cache.key(config))
        path.write_bytes(b"not a pickle")
        hit, _ = cache.lookup(config)
        assert not hit

    def test_store_is_atomic_no_tmp_left(self, cache, tmp_path):
        cache.store({"seed": 1}, list(range(100)))
        leftovers = list(tmp_path.rglob("*.tmp"))
        assert leftovers == []

    def test_clear_removes_entries(self, cache):
        for s in range(3):
            cache.store({"seed": s}, s)
        assert cache.clear() == 3
        assert not cache.lookup({"seed": 0})[0]

    def test_stored_values_roundtrip_pickle(self, cache):
        value = {"arr": np.arange(5), "nested": [(1, 2.5)]}
        cache.store({"k": 1}, value)
        hit, back = cache.lookup({"k": 1})
        assert hit
        np.testing.assert_array_equal(back["arr"], value["arr"])


class TestConcurrency:
    """The service shares one cache across threads; races must be benign."""

    def test_concurrent_writers_one_complete_value_survives(self, cache, tmp_path):
        config = {"contended": True}
        payloads = [{"writer": w, "data": list(range(2000))} for w in range(8)]
        barrier = threading.Barrier(len(payloads))

        def write(payload):
            barrier.wait()
            for _ in range(20):
                cache.store(config, payload)

        threads = [threading.Thread(target=write, args=(p,)) for p in payloads]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        hit, value = cache.lookup(config)
        assert hit
        # Last-writer-wins is fine; a torn/merged value is not.
        assert value in payloads
        assert list(tmp_path.rglob("*.tmp")) == []

    def test_reader_never_sees_a_partial_write(self, cache):
        """The double-read race: lookups racing os.replace stay complete.

        A reader that opened the old file keeps reading the old complete
        pickle; one that opens after the rename sees the new complete
        pickle. Nothing in between may surface — not a torn value, not a
        spurious exception.
        """
        config = {"raced": True}
        a = {"tag": "a", "blob": bytes(200_000)}
        b = {"tag": "b", "blob": bytes(200_001)}
        cache.store(config, a)
        stop = threading.Event()
        problems = []

        def writer():
            while not stop.is_set():
                cache.store(config, a)
                cache.store(config, b)

        def reader():
            while not stop.is_set():
                try:
                    hit, value = cache.lookup(config)
                except Exception as exc:  # noqa: BLE001 - the race under test
                    problems.append(f"lookup raised {exc!r}")
                    return
                if hit and value["tag"] not in ("a", "b"):
                    problems.append(f"torn value {value['tag']!r}")
                    return
                if hit and len(value["blob"]) not in (200_000, 200_001):
                    problems.append("torn blob")
                    return

        threads = [threading.Thread(target=writer)] + [
            threading.Thread(target=reader) for _ in range(3)
        ]
        for t in threads:
            t.start()
        time.sleep(0.4)
        stop.set()
        for t in threads:
            t.join()
        assert problems == []

    def test_hit_miss_counters_consistent_under_concurrent_lookups(self, cache):
        cache.store({"present": True}, "value")
        n_threads, per_thread = 8, 50
        barrier = threading.Barrier(n_threads)

        def look(i):
            barrier.wait()
            for j in range(per_thread):
                # Alternate hits and misses from every thread.
                if j % 2:
                    cache.lookup({"present": True})
                else:
                    cache.lookup({"absent": (i, j)})

        threads = [threading.Thread(target=look, args=(i,)) for i in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert cache.hits + cache.misses == n_threads * per_thread
        assert cache.hits == n_threads * per_thread // 2


class TestEnvironmentControls:
    def test_repro_no_cache_disables(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        assert not cache_enabled()
        cache = ExperimentCache(root=tmp_path)
        assert not cache.enabled
        cache.store({"seed": 1}, "value")
        assert not cache.lookup({"seed": 1})[0]
        assert list(tmp_path.rglob("*.pkl")) == []

    @pytest.mark.parametrize("value", ["1", "true", "YES", "on"])
    def test_truthy_spellings(self, value, monkeypatch):
        monkeypatch.setenv("REPRO_NO_CACHE", value)
        assert not cache_enabled()

    @pytest.mark.parametrize("value", ["", "0", "false", "off"])
    def test_falsy_spellings(self, value, monkeypatch):
        monkeypatch.setenv("REPRO_NO_CACHE", value)
        assert cache_enabled()

    def test_enabled_recheck_after_env_flip(self, tmp_path, monkeypatch):
        cache = ExperimentCache(root=tmp_path)
        monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
        assert cache.enabled
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        assert not cache.enabled

    def test_forced_enabled_ignores_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        cache = ExperimentCache(root=tmp_path, enabled=True)
        cache.store({"seed": 1}, "value")
        assert cache.lookup({"seed": 1})[0]

    def test_repro_cache_dir_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "elsewhere"))
        assert default_cache_dir() == tmp_path / "elsewhere"
        monkeypatch.delenv("REPRO_CACHE_DIR")
        assert default_cache_dir().name == "repro-async-jacobi"
