"""Batched trial engine: bit-identity with the sequential executor."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.model import AsyncJacobiModel
from repro.core.schedules import (
    DelayedRowsSchedule,
    RandomSubsetSchedule,
    SynchronousSchedule,
)
from repro.matrices.laplacian import fd_laplacian_2d, paper_fd_matrix
from repro.matrices.sparse import CSRMatrix
from repro.perf.batched import BatchedAsyncJacobiModel
from repro.util.errors import ShapeError, SingularMatrixError
from repro.util.rng import as_rng


def _trials(n, T, seed0=100):
    B = np.empty((n, T))
    X0 = np.empty((n, T))
    for t in range(T):
        rng = as_rng(seed0 + t)
        B[:, t] = rng.uniform(-1, 1, n)
        X0[:, t] = rng.uniform(-1, 1, n)
    return B, X0


def assert_bit_identical(A, make_schedule, T=4, **run_kwargs):
    """Batched run == per-trial sequential loop, bit for bit."""
    B, X0 = _trials(A.nrows, T)
    batched = BatchedAsyncJacobiModel(A, B).run(
        make_schedule(), X0=X0, **run_kwargs
    )
    for t in range(T):
        seq = AsyncJacobiModel(A, B[:, t].copy()).run(
            make_schedule(), x0=X0[:, t].copy(), **run_kwargs
        )
        tr = batched.trial(t)
        np.testing.assert_array_equal(tr.x, seq.x)
        assert tr.residual_norms == seq.residual_norms
        assert tr.times == seq.times
        assert tr.relaxation_counts == seq.relaxation_counts
        assert tr.converged == seq.converged
        assert tr.steps == seq.steps
        assert tr.relaxations == seq.relaxations


class TestBitIdentity:
    @pytest.mark.parametrize("mode", ["incremental", "full"])
    def test_synchronous_fd68(self, mode):
        A = paper_fd_matrix(68)
        assert_bit_identical(
            A, lambda: SynchronousSchedule(68), tol=1e-3,
            max_steps=20_000, residual_mode=mode,
        )

    @pytest.mark.parametrize("mode", ["incremental", "full"])
    def test_delayed_row_fd68(self, mode):
        A = paper_fd_matrix(68)
        assert_bit_identical(
            A, lambda: DelayedRowsSchedule(68, {34: 20}), tol=1e-3,
            max_steps=50_000, residual_mode=mode,
        )

    @pytest.mark.parametrize("mode", ["incremental", "full"])
    def test_sparse_subset_schedule(self, mode):
        """Subset steps take the CSC scatter path, not the dense one."""
        A = paper_fd_matrix(68)
        assert_bit_identical(
            A, lambda: RandomSubsetSchedule(68, 0.2, seed=7), tol=1e-3,
            max_steps=50_000, residual_mode=mode,
        )

    def test_record_every_and_recompute_every(self):
        A = fd_laplacian_2d(9, 8)
        assert_bit_identical(
            A, lambda: RandomSubsetSchedule(A.nrows, 0.15, seed=3),
            tol=5e-3, max_steps=50_000, record_every=3, recompute_every=16,
        )

    def test_staggered_convergence_freezes_trials(self):
        """Trials converging at different steps freeze with their history."""
        A = paper_fd_matrix(68)
        B, X0 = _trials(68, 4)
        # Make trial 0 start at the solution-adjacent iterate so it
        # converges long before the others.
        X0[:, 0] *= 1e-6
        B[:, 0] *= 1e-3
        res = BatchedAsyncJacobiModel(A, B).run(
            SynchronousSchedule(68), X0=X0, tol=1e-3, max_steps=20_000
        )
        assert res.converged.all()
        assert len(set(res.steps.tolist())) > 1
        for t in range(4):
            seq = AsyncJacobiModel(A, B[:, t].copy()).run(
                SynchronousSchedule(68), x0=X0[:, t].copy(), tol=1e-3,
                max_steps=20_000,
            )
            assert res.trial(t).residual_norms == seq.residual_norms

    @settings(max_examples=10, deadline=None)
    @given(
        n=st.integers(min_value=6, max_value=24),
        T=st.integers(min_value=1, max_value=5),
        seed=st.integers(min_value=0, max_value=1_000),
        mode=st.sampled_from(["incremental", "full"]),
    )
    def test_property_random_wdd_systems(self, n, T, seed, mode):
        """Random diagonally dominant systems stay bitwise identical."""
        rng = np.random.default_rng(seed)
        dense = np.where(rng.random((n, n)) < 0.3, rng.standard_normal((n, n)), 0.0)
        dense[np.arange(n), np.arange(n)] = n + rng.uniform(1.0, 2.0, n)
        A = CSRMatrix.from_dense(dense)
        fraction = 0.3 + 0.4 * ((seed % 3) / 2.0)
        assert_bit_identical(
            A,
            lambda: RandomSubsetSchedule(n, fraction, seed=seed + 1),
            T=T, tol=1e-4, max_steps=20_000, residual_mode=mode,
        )


class TestIncrementalAccuracy:
    def test_incremental_matches_full_on_paper_matrix(self):
        """Satellite criterion: <= 1e-12 relative at working tolerance."""
        A = paper_fd_matrix(68)
        B, X0 = _trials(68, 3)
        sched = lambda: RandomSubsetSchedule(68, 0.2, seed=11)
        kwargs = dict(X0=X0, tol=1e-4, max_steps=200_000, recompute_every=64)
        model = BatchedAsyncJacobiModel(A, B)
        inc = model.run(sched(), residual_mode="incremental", **kwargs)
        full = model.run(sched(), residual_mode="full", **kwargs)
        for t in range(3):
            a = np.asarray(inc.trial(t).residual_norms)
            b = np.asarray(full.trial(t).residual_norms)
            m = min(a.size, b.size)
            rel = np.abs(a[:m] - b[:m]) / np.maximum(np.abs(b[:m]), 1e-300)
            assert rel.max() <= 1e-12
            np.testing.assert_allclose(inc.trial(t).x, full.trial(t).x, rtol=1e-10)

    def test_dense_steps_are_exact(self):
        """Dense steps recompute the residual: zero drift by construction."""
        A = paper_fd_matrix(68)
        B, X0 = _trials(68, 2)
        model = BatchedAsyncJacobiModel(A, B)
        kwargs = dict(X0=X0, tol=1e-8, max_steps=50_000)
        inc = model.run(SynchronousSchedule(68), residual_mode="incremental", **kwargs)
        full = model.run(SynchronousSchedule(68), residual_mode="full", **kwargs)
        for t in range(2):
            assert inc.trial(t).residual_norms == full.trial(t).residual_norms


class TestValidation:
    def test_rejects_non_square(self):
        A = CSRMatrix.from_dense(np.ones((3, 4)))
        with pytest.raises(ShapeError):
            BatchedAsyncJacobiModel(A, np.ones((3, 2)))

    def test_rejects_zero_diagonal(self):
        dense = np.eye(4)
        dense[2, 2] = 0.0
        with pytest.raises(SingularMatrixError):
            BatchedAsyncJacobiModel(CSRMatrix.from_dense(dense), np.ones((4, 2)))

    def test_rejects_bad_b_shape(self):
        A = fd_laplacian_2d(3, 3)
        with pytest.raises(ShapeError):
            BatchedAsyncJacobiModel(A, np.ones(A.nrows))

    def test_rejects_bad_x0_shape(self):
        A = fd_laplacian_2d(3, 3)
        model = BatchedAsyncJacobiModel(A, np.ones((A.nrows, 2)))
        with pytest.raises(ShapeError):
            model.run(SynchronousSchedule(A.nrows), X0=np.ones((A.nrows, 3)))

    def test_rejects_schedule_size_mismatch(self):
        A = fd_laplacian_2d(3, 3)
        model = BatchedAsyncJacobiModel(A, np.ones((A.nrows, 2)))
        with pytest.raises(ShapeError):
            model.run(SynchronousSchedule(A.nrows + 1))

    def test_rejects_bad_residual_mode(self):
        A = fd_laplacian_2d(3, 3)
        model = BatchedAsyncJacobiModel(A, np.ones((A.nrows, 2)))
        with pytest.raises(ValueError):
            model.run(SynchronousSchedule(A.nrows), residual_mode="lazy")

    def test_rejects_bad_omega(self):
        A = fd_laplacian_2d(3, 3)
        with pytest.raises(ValueError):
            BatchedAsyncJacobiModel(A, np.ones((A.nrows, 2)), omega=2.5)
