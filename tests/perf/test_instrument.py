"""PerfCounters and the instrument=True hooks across executors."""

import numpy as np
import pytest

from repro.core.model import AsyncJacobiModel
from repro.core.schedules import SynchronousSchedule
from repro.matrices.laplacian import fd_laplacian_2d, paper_fd_matrix
from repro.perf.batched import BatchedAsyncJacobiModel
from repro.perf.instrument import PerfCounters
from repro.runtime.distributed import DistributedJacobi
from repro.runtime.shared import SharedMemoryJacobi
from repro.util.rng import as_rng


class TestPerfCounters:
    def test_tick_tock_accumulates(self):
        perf = PerfCounters()
        perf.tock_spmv(perf.tick())
        perf.tock_residual(perf.tick())
        assert perf.spmv_calls == 1 and perf.residual_evals == 1
        assert perf.spmv_seconds >= 0.0 and perf.residual_seconds >= 0.0

    def test_dispatch_is_remainder_and_nonnegative(self):
        perf = PerfCounters(spmv_seconds=0.5, residual_seconds=0.3, total_seconds=1.0)
        assert perf.dispatch_seconds == pytest.approx(0.2)
        perf.total_seconds = 0.1
        assert perf.dispatch_seconds == 0.0

    def test_merge_sums_fields(self):
        a = PerfCounters(spmv_seconds=1.0, spmv_calls=2, events=3)
        b = PerfCounters(spmv_seconds=0.5, spmv_calls=1, events=4)
        assert a.merge(b) is a
        assert a.spmv_seconds == 1.5 and a.spmv_calls == 3 and a.events == 7

    def test_as_dict_and_summary(self):
        perf = PerfCounters(total_seconds=1.0, extra={"trials": 5})
        d = perf.as_dict()
        assert d["total_seconds"] == 1.0 and d["trials"] == 5
        assert "dispatch" in perf.summary()

    def test_delivery_counters_merge_and_digest(self):
        a = PerfCounters(
            puts_coalesced=3, delivery_flushes=4, delivery_edges_flushed=10,
            delivery_batch_max=5, ledger_scatter_width=7,
        )
        b = PerfCounters(
            puts_coalesced=1, delivery_flushes=2, delivery_edges_flushed=4,
            delivery_batch_max=3, ledger_scatter_width=1,
        )
        a.merge(b)
        assert a.puts_coalesced == 4 and a.delivery_flushes == 6
        assert a.delivery_edges_flushed == 14
        assert a.delivery_batch_max == 5  # widest flush, not a sum
        assert a.ledger_scatter_width == 8
        digest = a.delivery_summary()
        assert "4 puts coalesced" in digest and "max 5" in digest
        assert a.as_dict()["delivery_flushes"] == 6
        # No flushes -> empty digest, so callers can print conditionally.
        assert PerfCounters().delivery_summary() == ""

    def test_native_counters_merge_and_digest(self):
        a = PerfCounters(
            backend="native", native_calls=10, native_rows_relaxed=120,
            native_build_ms=1800.0,
        )
        b = PerfCounters(
            backend="native", native_calls=5, native_rows_relaxed=60,
        )
        a.merge(b)
        assert a.backend == "native"  # same backend survives the merge
        assert a.native_calls == 15 and a.native_rows_relaxed == 180
        assert a.native_build_ms == 1800.0
        digest = a.native_summary()
        assert "15 kernel calls" in digest and "180 rows" in digest
        assert "native 15 calls/180 rows" in a.summary()
        d = a.as_dict()
        assert d["backend"] == "native" and d["native_calls"] == 15
        # Mixed backends relabel; zero native calls keep digests silent.
        a.merge(PerfCounters(backend="block"))
        assert a.backend == "mixed"
        clean = PerfCounters()
        assert clean.native_summary() == ""
        assert "native" not in clean.summary()

    def test_merge_method_and_backend_mixing_semantics(self):
        # Same labels survive a merge unchanged.
        a = PerfCounters(method="jacobi", backend="block")
        a.merge(PerfCounters(method="jacobi", backend="block"))
        assert a.method == "jacobi" and a.backend == "block"
        # A mismatch on either axis relabels that axis (and only it).
        a.merge(PerfCounters(method="sor", backend="block"))
        assert a.method == "mixed" and a.backend == "block"
        a.merge(PerfCounters(method="sor", backend="native"))
        assert a.method == "mixed" and a.backend == "mixed"
        # "mixed" is sticky: no later merge can un-mix an axis, even one
        # whose label matches what the aggregate started as.
        a.merge(PerfCounters(method="jacobi", backend="block"))
        assert a.method == "mixed" and a.backend == "mixed"
        a.merge(PerfCounters(method="mixed", backend="mixed"))
        assert a.method == "mixed" and a.backend == "mixed"
        # Numeric accumulation is unaffected by label mixing.
        totals = PerfCounters(method="jacobi", spmv_calls=1, native_calls=2)
        totals.merge(PerfCounters(method="sor", spmv_calls=3, native_calls=4))
        assert totals.spmv_calls == 4 and totals.native_calls == 6
        assert totals.as_dict()["method"] == "mixed"

    def test_distributed_batched_run_fills_delivery_counters(self, rng):
        from repro.matrices.laplacian import fd_laplacian_2d
        from repro.runtime.distributed import DistributedJacobi

        A = fd_laplacian_2d(8, 8)
        b = rng.uniform(-1, 1, A.shape[0])
        sim = DistributedJacobi(A, b, n_ranks=4, seed=3)
        res = sim.run_async(tol=1e-8, max_iterations=300, instrument=True)
        perf = res.perf
        assert perf.delivery_flushes > 0
        assert perf.delivery_edges_flushed >= perf.delivery_flushes
        assert perf.delivery_batch_max >= 1
        assert "puts coalesced" in perf.delivery_summary()
        # The eager-delivery arm keeps the counters at zero.
        res2 = sim.run_async(
            tol=1e-8, max_iterations=300, instrument=True, delivery="event"
        )
        assert res2.perf.delivery_flushes == 0
        assert res2.perf.delivery_summary() == ""


@pytest.fixture
def system(rng):
    A = paper_fd_matrix(68)
    b = rng.uniform(-1, 1, 68)
    x0 = rng.uniform(-1, 1, 68)
    return A, b, x0


class TestExecutorHooks:
    def test_model_run_attaches_perf(self, system):
        A, b, x0 = system
        res = AsyncJacobiModel(A, b).run(
            SynchronousSchedule(68), x0=x0, tol=1e-3, max_steps=5000,
            instrument=True,
        )
        assert res.perf is not None
        assert res.perf.events == res.steps
        assert res.perf.spmv_calls > 0
        assert res.perf.total_seconds > 0.0

    def test_model_run_default_has_no_perf(self, system):
        A, b, x0 = system
        res = AsyncJacobiModel(A, b).run(
            SynchronousSchedule(68), x0=x0, tol=1e-3, max_steps=5000
        )
        assert res.perf is None

    def test_batched_run_attaches_perf(self, system):
        A, _, _ = system
        rng = as_rng(0)
        B = rng.uniform(-1, 1, (68, 3))
        res = BatchedAsyncJacobiModel(A, B).run(
            SynchronousSchedule(68), tol=1e-3, max_steps=5000, instrument=True
        )
        assert res.perf is not None
        assert res.perf.spmv_calls > 0
        assert res.perf.events > 0

    def test_shared_run_async_attaches_perf(self, system):
        A, b, x0 = system
        sim = SharedMemoryJacobi(A, b, n_threads=4, seed=1)
        res = sim.run_async(
            x0=x0, tol=1e-3, max_iterations=2000, instrument=True
        )
        assert res.perf is not None
        assert res.perf.events > 0
        assert res.perf.residual_evals > 0

    def test_distributed_run_async_attaches_perf(self):
        A = fd_laplacian_2d(8, 8)
        rng = as_rng(2)
        b = rng.uniform(-1, 1, A.nrows)
        sim = DistributedJacobi(A, b, n_ranks=4, seed=3)
        res = sim.run_async(tol=1e-3, max_iterations=2000, instrument=True)
        assert res.perf is not None
        assert res.perf.events > 0
