"""Documentation guards: the README's code must actually run."""

import re
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parents[1]


def python_blocks(markdown: str):
    return re.findall(r"```python\n(.*?)```", markdown, flags=re.DOTALL)


class TestReadme:
    @pytest.fixture(scope="class")
    def readme(self):
        return (ROOT / "README.md").read_text()

    def test_quickstart_block_executes(self, readme):
        blocks = python_blocks(readme)
        assert blocks, "README must contain a python quickstart"
        namespace = {}
        exec(compile(blocks[0], "<README quickstart>", "exec"), namespace)
        result = namespace["result"]
        assert result.converged

    def test_mentions_all_deliverable_docs(self, readme):
        for doc in ("DESIGN.md", "EXPERIMENTS.md", "docs/theory.md", "docs/simulators.md",
                    "docs/fault_tolerance.md", "docs/performance.md",
                    "docs/observability.md", "docs/architecture.md"):
            assert doc in readme

    def test_every_example_listed(self, readme):
        for script in sorted((ROOT / "examples").glob("*.py")):
            assert script.name in readme, f"README must list examples/{script.name}"


class TestDesignDoc:
    def test_experiment_index_covers_every_figure(self):
        design = (ROOT / "DESIGN.md").read_text()
        for exp in ("Table I", "Fig 2", "Fig 3", "Fig 4", "Fig 5", "Fig 6",
                    "Fig 7", "Fig 8", "Fig 9", "Thm 1"):
            assert exp in design, f"DESIGN.md experiment index must cover {exp}"

    def test_experiments_doc_tracks_results(self):
        experiments = (ROOT / "EXPERIMENTS.md").read_text()
        for section in ("Figure 3", "Figure 5", "Figure 6", "Figure 9", "Theorem 1"):
            assert section in experiments


class TestBenchmarkCoverage:
    def test_one_bench_per_table_and_figure(self):
        benches = {p.name for p in (ROOT / "benchmarks").glob("bench_*.py")}
        for required in (
            "bench_table1.py", "bench_fig1.py", "bench_fig2.py", "bench_fig3.py",
            "bench_fig4.py", "bench_fig5.py", "bench_fig6.py", "bench_fig7.py",
            "bench_fig8.py", "bench_fig9.py", "bench_ablations.py",
            "bench_faults.py", "bench_observability.py",
        ):
            assert required in benches
