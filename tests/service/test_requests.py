"""SolveRequest validation, canonical specs and content-hash keys."""

import pytest

from repro.service.requests import (
    BadRequestError,
    SolveRequest,
    group_key,
    spec_key,
)


def req(**overrides):
    base = dict(
        matrix={"family": "fd_2d", "args": {"nx": 6, "ny": 6}},
        schedule={"kind": "random_subset", "fraction": 0.5, "seed": 1},
    )
    base.update(overrides)
    return SolveRequest(**base)


class TestValidation:
    def test_minimal_request_builds(self):
        r = req()
        assert r.tol == 1e-6 and r.b_seed == 0

    def test_unknown_matrix_family_rejected(self):
        with pytest.raises(BadRequestError, match="family"):
            req(matrix={"family": "hilbert", "args": {}})

    def test_matrix_must_be_spec_dict(self):
        with pytest.raises(BadRequestError):
            req(matrix="fd_2d")

    def test_unknown_schedule_kind_rejected(self):
        with pytest.raises(BadRequestError, match="schedule kind"):
            req(schedule={"kind": "round_robin"})

    def test_fault_masked_needs_plan(self):
        with pytest.raises(BadRequestError, match="plan"):
            req(schedule={"kind": "fault_masked", "dt": 1.0, "seed": 0})

    @pytest.mark.parametrize(
        "field,value",
        [
            ("omega", 0.0),
            ("omega", 2.0),
            ("tol", 0.0),
            ("tol", -1e-6),
            ("max_steps", 0),
            ("record_every", 0),
            ("agents", 0),
            ("residual_mode", "exact"),
            ("deadline", 0.0),
        ],
    )
    def test_bad_parameters_rejected(self, field, value):
        with pytest.raises(BadRequestError):
            req(**{field: value})

    def test_bad_method_rejected(self):
        with pytest.raises(BadRequestError, match="method"):
            req(method="conjugate_gradient")

    def test_typed_errors_are_value_errors_too(self):
        with pytest.raises(ValueError):
            req(tol=-1.0)


class TestKeys:
    def test_key_is_content_hash_of_spec(self):
        assert req().key() == spec_key(req().spec())

    def test_equal_requests_share_a_key(self):
        assert req(b_seed=3).key() == req(b_seed=3).key()

    def test_b_seed_changes_key_not_group(self):
        a, b = req(b_seed=0), req(b_seed=1)
        assert a.key() != b.key()
        assert a.group_key() == b.group_key()

    def test_x0_seed_changes_key_not_group(self):
        a, b = req(x0_seed=None), req(x0_seed=5)
        assert a.key() != b.key()
        assert a.group_key() == b.group_key()

    def test_schedule_seed_changes_group(self):
        a = req()
        b = req(schedule={"kind": "random_subset", "fraction": 0.5, "seed": 2})
        assert a.group_key() != b.group_key()

    def test_tol_changes_group(self):
        assert req(tol=1e-4).group_key() != req(tol=1e-6).group_key()

    def test_method_changes_group(self):
        assert req(method="damped_jacobi").group_key() != req().group_key()

    def test_deadline_not_part_of_identity(self):
        # The deadline shapes scheduling, never the computation: requests
        # differing only in deadline are the same cache/dedup entry.
        assert req(deadline=1.0).key() == req(deadline=9.0).key()
        assert "deadline" not in req(deadline=1.0).spec()

    def test_group_key_strips_only_trial_fields(self):
        spec = req(b_seed=7, x0_seed=9).spec()
        assert group_key(spec) == group_key({**spec, "b_seed": 0, "x0_seed": None})

    def test_method_forms_canonicalize_to_one_key(self):
        # None, the name, the spec dict and a live instance are all the
        # same computation; they must share cache/dedup/coalescing keys.
        from repro.methods import make_method

        keys = {
            req(method=None).key(),
            req(method="jacobi").key(),
            req(method={"kind": "jacobi", "omega": 1.0}).key(),
            req(method=make_method("jacobi")).key(),
        }
        assert len(keys) == 1
