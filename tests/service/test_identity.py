"""Bit-identity: service answers equal direct model execution exactly.

The service's core guarantee: whether a request runs alone through
:class:`~repro.core.model.AsyncJacobiModel`, pooled through
``run_cells``, or coalesced into a
:class:`~repro.perf.batched.BatchedAsyncJacobiModel` column, the response
bytes are identical — coalescing is scheduling, never arithmetic.
"""

import asyncio

import numpy as np
import pytest

from repro.core.model import AsyncJacobiModel
from repro.service import executor
from repro.service.requests import BadRequestError, SolveRequest
from repro.service.server import SolverService


def request(b_seed=0, x0_seed=None, seed=7, **overrides):
    base = dict(
        matrix={"family": "fd_2d", "args": {"nx": 5, "ny": 5}},
        schedule={"kind": "random_subset", "fraction": 0.5, "seed": seed},
        b_seed=b_seed,
        x0_seed=x0_seed,
        tol=1e-8,
        max_steps=3000,
    )
    base.update(overrides)
    return SolveRequest(**base)


def assert_identical(got: dict, want: dict):
    """Field-by-field exact equality of two result dicts."""
    assert np.array_equal(np.asarray(got["x"]), np.asarray(want["x"]))
    assert got["converged"] == want["converged"]
    assert got["steps"] == want["steps"]
    assert got["relaxations"] == want["relaxations"]
    assert got["times"] == want["times"]
    assert got["residual_norms"] == want["residual_norms"]
    assert got["relaxation_counts"] == want["relaxation_counts"]


class TestExecutorIdentity:
    def test_run_single_matches_direct_model(self):
        spec = request(b_seed=3).spec()
        built = executor.build_problem(spec)
        model = AsyncJacobiModel(built["A"], built["b"], omega=spec["omega"])
        res = model.run(
            built["schedule"],
            x0=built["x0"],
            tol=spec["tol"],
            max_steps=spec["max_steps"],
            record_every=spec["record_every"],
            residual_mode=spec["residual_mode"],
            recompute_every=spec["recompute_every"],
        )
        assert_identical(executor.run_single(spec), executor._result_dict(res))

    def test_run_group_matches_run_single_per_trial(self):
        specs = [
            request(b_seed=0).spec(),
            request(b_seed=1).spec(),
            request(b_seed=2, x0_seed=11).spec(),
        ]
        grouped = executor.run_group(specs)
        assert len(grouped) == 3
        for spec, got in zip(specs, grouped):
            assert_identical(got, executor.run_single(spec))

    def test_run_group_rejects_mixed_classes(self):
        with pytest.raises(BadRequestError, match="coalescing class"):
            executor.run_group([request(seed=1).spec(), request(seed=2).spec()])

    def test_run_group_empty(self):
        assert executor.run_group([]) == []


class TestServiceIdentity:
    def test_coalesced_responses_equal_direct_execution(self):
        reqs = [request(b_seed=t) for t in range(4)]
        direct = [executor.run_single(r.spec()) for r in reqs]

        async def drive():
            async with SolverService(
                use_cache=False, batch_window=0.05, max_queue=16
            ) as svc:
                results = await asyncio.gather(*(svc.submit(r) for r in reqs))
                return results, svc.stats()

        results, stats = asyncio.run(drive())
        # The whole class must actually have been coalesced, so this
        # compares the batched path, not four singleton runs.
        assert stats["batches"] >= 1 and stats["max_coalesced"] == 4
        for got, want in zip(results, direct):
            assert_identical(got, want)

    def test_singleton_response_equals_direct_execution(self):
        req = request(b_seed=9)

        async def drive():
            async with SolverService(
                use_cache=False, batch_window=0.0, max_queue=4
            ) as svc:
                result = await svc.submit(req)
                return result, svc.stats()

        result, stats = asyncio.run(drive())
        assert stats["batches"] == 0 and stats["executions"] == 1
        assert_identical(result, executor.run_single(req.spec()))

    def test_cache_token_matches_run_cells_namespace(self):
        """All dispatch paths must share one cache namespace."""
        from repro.perf.runner import _cell_token

        spec = request().spec()
        assert executor.cache_token(spec) == _cell_token(executor.run_single, spec)
