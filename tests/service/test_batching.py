"""Window coalescing: class grouping, chunking, singleton fallout."""

import pytest

from repro.service.batching import CoalescePlan, coalesce


def plan_of(groups, max_batch=64):
    """Coalesce entries named ``(group, index)`` keyed on the group."""
    entries = [(g, i) for i, g in enumerate(groups)]
    return coalesce(entries, lambda e: e[0], max_batch=max_batch)


class TestCoalesce:
    def test_empty_window(self):
        plan = plan_of([])
        assert plan.batches == [] and plan.singletons == []
        assert plan.executions == 0 and plan.coalesced == 0

    def test_all_unique_become_singletons(self):
        plan = plan_of(["a", "b", "c"])
        assert plan.batches == []
        assert [e[0] for e in plan.singletons] == ["a", "b", "c"]
        assert plan.executions == 3

    def test_one_class_becomes_one_batch(self):
        plan = plan_of(["a"] * 5)
        assert len(plan.batches) == 1 and len(plan.batches[0]) == 5
        assert plan.singletons == []
        assert plan.executions == 1 and plan.coalesced == 5

    def test_mixed_window(self):
        plan = plan_of(["a", "b", "a", "c", "b", "a"])
        sizes = {b[0][0]: len(b) for b in plan.batches}
        assert sizes == {"a": 3, "b": 2}
        assert [e[0] for e in plan.singletons] == ["c"]
        assert plan.executions == 3 and plan.coalesced == 5

    def test_arrival_order_preserved_inside_batches(self):
        plan = plan_of(["a", "b", "a", "b", "a"])
        batch_a = next(b for b in plan.batches if b[0][0] == "a")
        assert [e[1] for e in batch_a] == [0, 2, 4]

    def test_oversized_class_chunked_at_max_batch(self):
        plan = plan_of(["a"] * 7, max_batch=3)
        assert [len(b) for b in plan.batches] == [3, 3]
        # The trailing size-1 chunk cannot batch with itself.
        assert len(plan.singletons) == 1
        assert plan.executions == 3 and plan.coalesced == 6

    def test_exact_multiple_chunks_cleanly(self):
        plan = plan_of(["a"] * 6, max_batch=3)
        assert [len(b) for b in plan.batches] == [3, 3]
        assert plan.singletons == []

    def test_max_batch_must_allow_pairs(self):
        with pytest.raises(ValueError, match="max_batch"):
            plan_of(["a", "a"], max_batch=1)

    def test_plan_counts_are_consistent(self):
        plan = plan_of(["a"] * 9 + ["b"] + ["c"] * 2, max_batch=4)
        assert plan.coalesced + len(plan.singletons) == 12
        assert plan.executions == len(plan.batches) + len(plan.singletons)

    def test_default_plan_is_empty(self):
        plan = CoalescePlan()
        assert plan.executions == 0 and plan.coalesced == 0
