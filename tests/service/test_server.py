"""SolverService behavior: single-flight, shedding, deadlines, tracing.

Executor stubs (monkeypatched into :mod:`repro.service.executor`) make
the scheduling behavior observable without paying for real solves; the
real-solve end-to-end paths live in ``test_identity.py``.
"""

import asyncio
import threading
import time

import pytest

from repro.observability.sinks import JSONLSink
from repro.service import executor
from repro.service.requests import (
    DeadlineExceededError,
    ServiceClosedError,
    ServiceOverloadedError,
    SolveRequest,
)
from repro.service.server import SolverService


def request(b_seed=0, seed=7, **overrides):
    base = dict(
        matrix={"family": "fd_2d", "args": {"nx": 4, "ny": 4}},
        schedule={"kind": "random_subset", "fraction": 0.5, "seed": seed},
        b_seed=b_seed,
        tol=1e-4,
        max_steps=200,
    )
    base.update(overrides)
    return SolveRequest(**base)


class SlowStub:
    """Replacement executor that sleeps and counts calls (thread-safe)."""

    def __init__(self, delay=0.0, fail_b_seeds=()):
        self.delay = delay
        self.fail_b_seeds = set(fail_b_seeds)
        self.calls = 0
        self._lock = threading.Lock()

    def _one(self, spec):
        if self.delay:
            time.sleep(self.delay)
        if spec["b_seed"] in self.fail_b_seeds:
            raise RuntimeError(f"injected failure for b_seed={spec['b_seed']}")
        return {"b_seed": spec["b_seed"], "stub": True}

    def run_single(self, spec):
        with self._lock:
            self.calls += 1
        return self._one(spec)

    def run_group(self, specs):
        with self._lock:
            self.calls += 1
        return [self._one(s) for s in specs]


@pytest.fixture
def stub(monkeypatch):
    """Swap both executor entry points for one counting stub."""
    stub = SlowStub()
    monkeypatch.setattr(executor, "run_single", stub.run_single)
    monkeypatch.setattr(executor, "run_group", stub.run_group)
    return stub


class TestSingleFlight:
    def test_identical_concurrent_requests_compute_once(self, stub):
        stub.delay = 0.02
        req = request()

        async def drive():
            async with SolverService(use_cache=False, batch_window=0.01) as svc:
                results = await asyncio.gather(*(svc.submit(req) for _ in range(6)))
                return results, svc.stats()

        results, stats = asyncio.run(drive())
        assert stub.calls == 1
        assert stats["single_flight_joins"] == 5
        assert stats["executions"] == 1 and stats["completed"] == 1
        assert all(r == results[0] for r in results)

    def test_sequential_resubmission_recomputes_without_cache(self, stub):
        req = request()

        async def drive():
            async with SolverService(use_cache=False, batch_window=0.0) as svc:
                first = await svc.submit(req)
                second = await svc.submit(req)
                return first, second

        first, second = asyncio.run(drive())
        # The twin had already left flight; without a cache it recomputes.
        assert stub.calls == 2 and first == second


class TestAdmissionControl:
    def test_overload_sheds_with_typed_error_and_bounded_queue(self, stub):
        stub.delay = 0.05
        # Distinct coalescing classes: nothing joins, nothing batches.
        reqs = [request(seed=s) for s in range(10)]

        async def drive():
            async with SolverService(
                use_cache=False, batch_window=0.0, max_queue=2
            ) as svc:
                outcomes = await asyncio.gather(
                    *(svc.submit(r) for r in reqs), return_exceptions=True
                )
                return outcomes, svc.stats()

        outcomes, stats = asyncio.run(asyncio.wait_for(drive(), timeout=30))
        shed = [o for o in outcomes if isinstance(o, ServiceOverloadedError)]
        done = [o for o in outcomes if isinstance(o, dict)]
        assert len(shed) == 8 and len(done) == 2
        # No unbounded queue growth: pending never exceeded the bound.
        assert stats["max_pending_seen"] <= 2
        assert stats["rejected"] == 8 and stats["completed"] == 2

    def test_sustained_overload_never_grows_the_queue(self, stub):
        stub.delay = 0.01

        async def drive():
            async with SolverService(
                use_cache=False, batch_window=0.0, max_queue=3
            ) as svc:
                for wave in range(5):
                    await asyncio.gather(
                        *(
                            svc.submit(request(seed=100 * wave + i))
                            for i in range(8)
                        ),
                        return_exceptions=True,
                    )
                return svc.stats()

        stats = asyncio.run(asyncio.wait_for(drive(), timeout=30))
        assert stats["max_pending_seen"] <= 3
        assert stats["rejected"] + stats["completed"] == 40

    def test_rejection_is_immediate_not_a_hang(self, stub):
        stub.delay = 0.2

        async def drive():
            async with SolverService(
                use_cache=False, batch_window=0.0, max_queue=1
            ) as svc:
                first = asyncio.ensure_future(svc.submit(request(seed=1)))
                await asyncio.sleep(0)  # let it occupy the queue slot
                t0 = time.perf_counter()
                with pytest.raises(ServiceOverloadedError):
                    await svc.submit(request(seed=2))
                shed_latency = time.perf_counter() - t0
                await first
                return shed_latency

        shed_latency = asyncio.run(drive())
        assert shed_latency < 0.1  # shed while the slow solve still ran


class TestDeadlines:
    def test_expired_queued_request_is_shed_typed(self, stub):
        stub.delay = 0.15

        async def drive():
            async with SolverService(use_cache=False, batch_window=0.0) as svc:
                blocker = asyncio.ensure_future(svc.submit(request(seed=1)))
                await asyncio.sleep(0.03)  # blocker now executing
                with pytest.raises(DeadlineExceededError):
                    await svc.submit(request(seed=2, deadline=0.01))
                await blocker
                return svc.stats()

        stats = asyncio.run(drive())
        assert stats["expired"] == 1
        assert stats["errors"] == 0  # expiry is not an error
        assert stats["completed"] == 1

    def test_default_deadline_applies_to_bare_requests(self, stub):
        stub.delay = 0.15

        async def drive():
            async with SolverService(
                use_cache=False, batch_window=0.0, default_deadline=0.01
            ) as svc:
                blocker = asyncio.ensure_future(
                    svc.submit(request(seed=1, deadline=10.0))
                )
                await asyncio.sleep(0.03)
                with pytest.raises(DeadlineExceededError):
                    await svc.submit(request(seed=2))
                await blocker
                return svc.stats()

        assert asyncio.run(drive())["expired"] == 1


class TestFailureIsolation:
    def test_bad_request_cannot_fail_its_window_mates(self, stub):
        stub.fail_b_seeds = {13}
        good, bad = request(seed=1), request(seed=2, b_seed=13)

        async def drive():
            async with SolverService(use_cache=False, batch_window=0.05) as svc:
                outcomes = await asyncio.gather(
                    svc.submit(good), svc.submit(bad), return_exceptions=True
                )
                return outcomes, svc.stats()

        (good_out, bad_out), stats = asyncio.run(drive())
        assert isinstance(good_out, dict) and good_out["b_seed"] == 0
        assert isinstance(bad_out, RuntimeError)
        assert stats["completed"] == 1 and stats["errors"] == 1


class TestLifecycle:
    def test_submit_before_start_and_after_stop_rejected(self, stub):
        async def drive():
            svc = SolverService(use_cache=False)
            with pytest.raises(ServiceClosedError):
                await svc.submit(request())
            await svc.start()
            await svc.submit(request())
            await svc.stop()
            with pytest.raises(ServiceClosedError):
                await svc.submit(request())

        asyncio.run(drive())

    def test_stop_drains_admitted_work(self, stub):
        stub.delay = 0.02

        async def drive():
            svc = SolverService(use_cache=False, batch_window=0.0)
            await svc.start()
            pending = [
                asyncio.ensure_future(svc.submit(request(seed=s))) for s in range(3)
            ]
            await asyncio.sleep(0)  # enqueue before stopping
            await svc.stop()
            return await asyncio.gather(*pending), svc.stats()

        results, stats = asyncio.run(asyncio.wait_for(drive(), timeout=30))
        assert len(results) == 3 and stats["completed"] == 3

    def test_constructor_validates_knobs(self):
        for kwargs in (
            {"max_queue": 0},
            {"batch_window": -1.0},
            {"max_batch": 1},
            {"window_cap": 0},
        ):
            with pytest.raises(ValueError):
                SolverService(**kwargs)


class TestCaching:
    def test_results_survive_service_restarts_via_shared_cache(self, tmp_path):
        # Real executor on purpose: the singleton path's run_cells must
        # store under the token submit() later consults, and that parity
        # only holds for the real module-level cell function.
        from repro.perf.cache import ExperimentCache

        req = request()

        async def drive(root):
            async with SolverService(
                cache=ExperimentCache(root=root), batch_window=0.0
            ) as svc:
                result = await svc.submit(req)
                return result, svc.stats()

        first, stats1 = asyncio.run(drive(tmp_path))
        second, stats2 = asyncio.run(drive(tmp_path))
        assert stats1["cache_hits"] == 0 and stats1["executions"] == 1
        assert stats2["cache_hits"] == 1 and stats2["executions"] == 0
        assert stats2["cache_hit_rate"] == 1.0
        import numpy as np

        assert np.array_equal(np.asarray(second["x"]), np.asarray(first["x"]))
        assert second["residual_norms"] == first["residual_norms"]

    def test_batched_results_land_in_the_shared_cache(self, tmp_path):
        # Results split out of a coalesced batch must answer later
        # identical requests from the cache, same as singleton results.
        from repro.perf.cache import ExperimentCache

        reqs = [request(b_seed=t) for t in range(3)]

        async def drive(root):
            async with SolverService(
                cache=ExperimentCache(root=root), batch_window=0.05, max_queue=8
            ) as svc:
                await asyncio.gather(*(svc.submit(r) for r in reqs))
                return svc.stats()

        stats1 = asyncio.run(drive(tmp_path))
        stats2 = asyncio.run(drive(tmp_path))
        assert stats1["batches"] == 1 and stats1["cache_hits"] == 0
        assert stats2["cache_hits"] == 3 and stats2["executions"] == 0


class TestObservability:
    def test_trace_jsonl_and_metrics_capture_the_lifecycle(self, stub, tmp_path):
        trace = tmp_path / "service_trace.jsonl"
        reqs = [request(b_seed=t) for t in range(3)]

        async def drive():
            async with SolverService(
                use_cache=False, batch_window=0.05, trace_path=trace
            ) as svc:
                await asyncio.gather(*(svc.submit(r) for r in reqs))
                return svc

        svc = asyncio.run(drive())
        events = JSONLSink.read(trace)
        assert events and all(e.kind == "request" for e in events)
        phases = [e.data["phase"] for e in events]
        assert phases.count("submit") == 3
        assert phases.count("dispatch") == 3
        assert phases.count("complete") == 3
        batch_sizes = {e.data["batch"] for e in events if e.data["phase"] == "dispatch"}
        assert batch_sizes == {3}  # the class coalesced into one batch
        completes = [e for e in events if e.data["phase"] == "complete"]
        assert all(e.data["latency"] >= 0 for e in completes)
        # The wired Metrics registry derived the same story from events.
        assert svc.metrics.counter("service.submit").value == 3
        assert svc.metrics.counter("service.complete").value == 3
        assert svc.metrics.histogram("service.latency").count == 3
