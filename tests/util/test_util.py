"""Utility helpers: norms, RNG policy, validation, error hierarchy."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.matrices.laplacian import fd_laplacian_1d
from repro.util import (
    ConvergenceError,
    PartitionError,
    ReproError,
    ScheduleError,
    ShapeError,
    SimulationError,
    SingularMatrixError,
    as_rng,
    check_index,
    check_nonnegative,
    check_positive,
    check_probability,
    check_square,
    check_vector,
    norm_1,
    norm_2,
    norm_inf,
    relative_residual_norm,
    residual,
    spawn_rngs,
)
from repro.util.norms import vector_norm


class TestNorms:
    def test_known_values(self):
        v = [3.0, -4.0]
        assert norm_1(v) == 7.0
        assert norm_2(v) == 5.0
        assert norm_inf(v) == 4.0

    def test_empty_inf_norm(self):
        assert norm_inf([]) == 0.0

    def test_vector_norm_dispatch(self):
        v = [1.0, -2.0]
        assert vector_norm(v, 1) == 3.0
        assert vector_norm(v, "inf") == 2.0
        with pytest.raises(ValueError):
            vector_norm(v, 3)

    def test_residual_and_relative(self):
        A = fd_laplacian_1d(5)
        x = np.ones(5)
        b = A @ x
        np.testing.assert_allclose(residual(A, x, b), np.zeros(5), atol=1e-15)
        assert relative_residual_norm(A, x, b) < 1e-14

    def test_relative_residual_zero_rhs(self):
        A = fd_laplacian_1d(3)
        x = np.ones(3)
        # ||b|| = 0: falls back to the absolute norm.
        assert relative_residual_norm(A, x, np.zeros(3)) == norm_1(A @ x)


class TestRng:
    def test_as_rng_idempotent(self):
        g = np.random.default_rng(0)
        assert as_rng(g) is g

    def test_as_rng_seed_reproducible(self):
        assert as_rng(7).random() == as_rng(7).random()

    def test_spawn_independent_streams(self):
        a, b = spawn_rngs(0, 2)
        assert a.random() != b.random()

    def test_spawn_reproducible(self):
        xs = [g.random() for g in spawn_rngs(3, 4)]
        ys = [g.random() for g in spawn_rngs(3, 4)]
        assert xs == ys

    def test_spawn_from_generator(self):
        children = spawn_rngs(np.random.default_rng(1), 3)
        assert len(children) == 3

    def test_spawn_negative_count(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)


class TestValidation:
    def test_check_positive(self):
        assert check_positive(2, "x") == 2.0
        for bad in (0, -1, float("nan"), float("inf"), "a"):
            with pytest.raises(ValueError):
                check_positive(bad, "x")

    def test_check_nonnegative(self):
        assert check_nonnegative(0, "x") == 0.0
        with pytest.raises(ValueError):
            check_nonnegative(-0.1, "x")

    def test_check_probability(self):
        assert check_probability(0.5, "p") == 0.5
        with pytest.raises(ValueError):
            check_probability(1.01, "p")

    def test_check_square(self):
        check_square(np.zeros((3, 3)))
        with pytest.raises(ShapeError):
            check_square(np.zeros((2, 3)))

    def test_check_vector(self):
        v = check_vector([1, 2, 3], 3)
        assert v.dtype == np.float64
        with pytest.raises(ShapeError):
            check_vector([1, 2], 3)

    def test_check_index(self):
        assert check_index(2, 5) == 2
        with pytest.raises(IndexError):
            check_index(5, 5)
        with pytest.raises(ValueError):
            check_index(1.5, 5)


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [ShapeError, SingularMatrixError, ConvergenceError, ScheduleError,
         PartitionError, SimulationError],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_value_errors_catchable_as_builtin(self):
        assert issubclass(ShapeError, ValueError)
        assert issubclass(SimulationError, RuntimeError)

    def test_convergence_error_carries_history(self):
        err = ConvergenceError("no", history=[1.0, 0.5])
        assert err.history == [1.0, 0.5]


@settings(max_examples=50, deadline=None)
@given(st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=30))
def test_property_norm_inequalities(values):
    """||v||_inf <= ||v||_2 <= ||v||_1 for every vector."""
    assert norm_inf(values) <= norm_2(values) + 1e-9
    assert norm_2(values) <= norm_1(values) + 1e-9
