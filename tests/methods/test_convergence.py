"""Convergence properties the new methods are on the hook for.

Vigna's sup-norm bound for step-async SOR across the M-matrix ladder,
Richardson's spectral window (convergence inside, divergence outside),
and the ``python -m repro methods`` experiment claims as assertions.
"""

import numpy as np
import pytest

from repro.core.model import AsyncJacobiModel
from repro.core.schedules import SynchronousSchedule
from repro.experiments import methods as methods_experiment
from repro.matrices.laplacian import fd_laplacian_1d, fd_laplacian_2d
from repro.matrices.properties import is_m_matrix_like
from repro.methods import Richardson, StepAsyncSOR
from repro.methods.kernels import sor_step_dense

#: The M-matrix ladder Vigna's bound is checked on (all FD Laplacians are
#: M-matrices: positive diagonal, nonpositive off-diagonals, WDD).
M_MATRIX_LADDER = [
    ("fd1d_8", lambda: fd_laplacian_1d(8)),
    ("fd1d_24", lambda: fd_laplacian_1d(24)),
    ("fd2d_4x4", lambda: fd_laplacian_2d(4, 4)),
    ("fd2d_5x7", lambda: fd_laplacian_2d(5, 7)),
    ("fd2d_6x6", lambda: fd_laplacian_2d(6, 6)),
]


@pytest.mark.parametrize(
    "name,build", M_MATRIX_LADDER, ids=[n for n, _ in M_MATRIX_LADDER]
)
@pytest.mark.parametrize("omega", [1.0, 0.8])
def test_sor_sup_norm_never_increases_on_m_matrix(name, build, omega):
    """Random stale blocks in random order: the error sup-norm is monotone."""
    A = build()
    assert is_m_matrix_like(A)
    method = StepAsyncSOR(omega=omega)
    assert method.guarantee(A).holds
    rng = np.random.default_rng(17)
    b = rng.uniform(-1, 1, A.nrows)
    x_true = np.linalg.solve(A.to_dense(), b)
    scale = method.scale(A)
    x = rng.standard_normal(A.nrows)  # arbitrary start, large error
    err0 = err = np.max(np.abs(x - x_true))
    for _ in range(200):
        k = int(rng.integers(1, A.nrows + 1))
        rows = rng.choice(A.nrows, size=k, replace=False)
        sor_step_dense(A, b, scale, x, rows)
        new_err = np.max(np.abs(x - x_true))
        assert new_err <= err * (1 + 1e-9) + 1e-13
        err = new_err
    # Real progress too, not just a stall (rate varies with conditioning:
    # the 1-D n=24 rung contracts slowly but still strictly).
    assert err < err0 * 0.7


def test_sor_sup_norm_bound_voided_above_omega_one():
    A = fd_laplacian_2d(4, 4)
    assert not StepAsyncSOR(omega=1.7).guarantee(A).holds


def _sync_richardson_residuals(A, alpha, steps):
    b = np.zeros(A.nrows)
    x0 = np.random.default_rng(5).standard_normal(A.nrows)
    model = AsyncJacobiModel(A, b, method=Richardson(alpha=alpha))
    result = model.run(
        SynchronousSchedule(A.nrows),
        x0=x0,
        tol=np.finfo(float).tiny,
        max_steps=steps,
        residual_norm_ord=2,
        residual_mode="full",
    )
    return np.asarray(result.residual_norms)


def test_richardson_converges_inside_window_diverges_outside():
    A = fd_laplacian_2d(6, 6)
    lo, hi = Richardson.spectral_window(A)
    assert lo == 0.0 and hi > 0.0

    inside = _sync_richardson_residuals(A, 0.9 * hi, 120)
    assert inside[-1] < inside[0] * 1e-2

    outside = _sync_richardson_residuals(A, 1.2 * hi, 120)
    assert outside[-1] > outside[0] * 1e2


def test_richardson_optimal_rate_is_sharp():
    A = fd_laplacian_2d(6, 6)
    res = _sync_richardson_residuals(A, Richardson.optimal_alpha(A), 300)
    tail = 100
    observed = (res[-1] / res[-1 - tail]) ** (1.0 / tail)
    predicted = Richardson.optimal_rate(A)
    assert abs(observed - predicted) <= 0.02 * predicted


def test_methods_experiment_claims_all_pass():
    claims = methods_experiment.run()
    assert [c.name for c in claims] == [
        "richardson==jacobi",
        "richardson-rate",
        "sor-supnorm",
    ]
    for claim in claims:
        assert claim.passed, f"{claim.name}: {claim.detail}"
    report = methods_experiment.format_report(claims)
    assert "PASS — all claims reproduced" in report
