"""Scenario matrix shared by the golden fixture and the bit-identity test.

Each scenario names one executor configuration exercised by the
``method="jacobi"`` bit-identity guarantee. ``run_scenario(name)`` runs it
with the executor's *default* relaxation rule (exactly what pre-refactor
main executed — the goldens in ``golden_jacobi.json`` were generated from
that code); ``run_scenario(name, method_kwargs=True)`` re-runs it asking
for the same rule explicitly through the ``method=`` flag. Both must agree
with the golden bit for bit.

Scenarios whose golden uses ``local_sweep="gauss_seidel"`` double as the
step-asynchronous SOR oracle: ``method="sor"`` with the same ``omega``
must reproduce them exactly (a sequential sweep with scale ``omega/d`` is
the same arithmetic).
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.core.model import AsyncJacobiModel
from repro.core.schedules import RandomSubsetSchedule, SynchronousSchedule
from repro.matrices.laplacian import fd_laplacian_2d
from repro.perf.batched import BatchedAsyncJacobiModel
from repro.runtime.distributed import DistributedJacobi
from repro.runtime.shared import SharedMemoryJacobi
from repro.util.rng import as_rng

GOLDEN_PATH = Path(__file__).with_name("golden_jacobi.json")

_GRID = (4, 5)
_TOL = 1e-8
_MODEL_TOL = 1e-12


def _problem():
    A = fd_laplacian_2d(*_GRID)
    b = as_rng(3).uniform(-1, 1, A.nrows)
    return A, b


#: name -> (executor, ctor kwargs, run kwargs, method ctor override).
#: The override is what the bit-identity test passes instead of relying on
#: the default rule; for Jacobi scenarios it is simply ``method="jacobi"``.
SCENARIOS = {
    "model_incremental_w1": (
        "model", {"omega": 1.0}, {"residual_mode": "incremental"}, {"method": "jacobi"},
    ),
    "model_full_w075": (
        "model", {"omega": 0.75}, {"residual_mode": "full"}, {"method": "jacobi"},
    ),
    "model_dense_steps_w1": (
        "model", {"omega": 1.0}, {"schedule": "sync"}, {"method": "jacobi"},
    ),
    "batched_w1": ("batched", {"omega": 1.0}, {}, {"method": "jacobi"}),
    "shared_engine_w1": ("shared", {"omega": 1.0}, {}, {"method": "jacobi"}),
    "shared_engine_w075": ("shared", {"omega": 0.75}, {}, {"method": "jacobi"}),
    "shared_legacy_w1": (
        "shared", {"omega": 1.0}, {"legacy_engine": True}, {"method": "jacobi"},
    ),
    "shared_sync_w1": ("shared", {"omega": 1.0}, {"sync": True}, {"method": "jacobi"}),
    "dist_event_w1": (
        "distributed", {"omega": 1.0}, {"delivery": "event"}, {"method": "jacobi"},
    ),
    "dist_batched_w1": (
        "distributed", {"omega": 1.0}, {"delivery": "batched"}, {"method": "jacobi"},
    ),
    "dist_block_w1": (
        "distributed",
        {"omega": 1.0},
        {"delivery": "batched", "relax_backend": "block"},
        {"method": "jacobi"},
    ),
    "dist_legacy_w1": (
        "distributed", {"omega": 1.0}, {"legacy_engine": True}, {"method": "jacobi"},
    ),
    "dist_sync_w1": ("distributed", {"omega": 1.0}, {"sync": True}, {"method": "jacobi"}),
    # Gauss-Seidel goldens: the step-async SOR oracle (method="sor" must
    # reproduce these without being told local_sweep explicitly).
    "dist_gs_w1": (
        "distributed",
        {"omega": 1.0, "local_sweep": "gauss_seidel"},
        {},
        {"method": "sor"},
    ),
    "dist_gs_w075": (
        "distributed",
        {"omega": 0.75, "local_sweep": "gauss_seidel"},
        {},
        {"method": "sor"},
    ),
}


def run_scenario(name: str, method_kwargs: bool = False) -> dict:
    """Run one scenario; returns exact-roundtrip floats for comparison."""
    executor, ctor, runkw, override = SCENARIOS[name]
    A, b = _problem()
    n = A.nrows
    ctor = dict(ctor)
    runkw = dict(runkw)
    if method_kwargs:
        base = {k: v for k, v in ctor.items() if k != "local_sweep"}
        ctor = {**base, **override}
    if executor == "model":
        sched_kind = runkw.pop("schedule", "random")
        if sched_kind == "sync":
            sched = SynchronousSchedule(n)
        else:
            sched = RandomSubsetSchedule(n, fraction=0.6, seed=11)
        res = AsyncJacobiModel(A, b, **ctor).run(
            sched, tol=_MODEL_TOL, max_steps=160, **runkw
        )
        return _pack(res.x, res.residual_norms)
    if executor == "batched":
        B = np.column_stack([b, 2.0 * b, as_rng(4).uniform(-1, 1, n)])
        sched = RandomSubsetSchedule(n, fraction=0.6, seed=11)
        res = BatchedAsyncJacobiModel(A, B, **ctor).run(
            sched, tol=_MODEL_TOL, max_steps=160, **runkw
        )
        flat = np.concatenate([np.asarray(h) for h in res.residual_norms])
        return _pack(res.x.ravel(), flat)
    if executor == "shared":
        sync = runkw.pop("sync", False)
        sim = SharedMemoryJacobi(A, b, n_threads=3, seed=5, **ctor)
        if sync:
            res = sim.run_sync(tol=_TOL, max_iterations=200)
        else:
            res = sim.run_async(tol=_TOL, max_iterations=120, **runkw)
        return _pack(res.x, res.residual_norms)
    sync = runkw.pop("sync", False)
    sim = DistributedJacobi(A, b, n_ranks=3, seed=7, **ctor)
    if sync:
        res = sim.run_sync(tol=_TOL, max_iterations=200)
    else:
        res = sim.run_async(tol=_TOL, max_iterations=120, **runkw)
    return _pack(res.x, res.residual_norms)


def _pack(x, residual_norms) -> dict:
    return {
        "x": [float(v) for v in np.asarray(x).ravel()],
        "residual_norms": [float(v) for v in residual_norms],
    }


def load_goldens() -> dict:
    """The committed pre-refactor trajectories."""
    return json.loads(GOLDEN_PATH.read_text())


def main() -> None:
    """Regenerate the golden fixture (run only on pre-refactor main)."""
    goldens = {name: run_scenario(name) for name in SCENARIOS}
    GOLDEN_PATH.write_text(json.dumps(goldens, indent=1) + "\n")
    print(f"wrote {GOLDEN_PATH} ({len(goldens)} scenarios)")


if __name__ == "__main__":
    main()
