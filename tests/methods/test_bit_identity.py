"""The method refactor's contract: ``method="jacobi"`` changed nothing.

Every scenario in :mod:`tests.methods.trajectories` runs twice — once with
the executor's default relaxation rule (what pre-refactor main executed;
the committed goldens were generated from that code) and once asking for
the same rule explicitly through the ``method=`` flag — and both must
match the golden trajectory *bit for bit*: final iterate and full residual
history. The Gauss-Seidel scenarios double as the SOR oracle:
``method="sor"`` must reproduce ``local_sweep="gauss_seidel"`` exactly.
"""

import pytest

from tests.methods.trajectories import SCENARIOS, load_goldens, run_scenario

GOLDENS = load_goldens()


def test_golden_covers_every_scenario():
    assert sorted(GOLDENS) == sorted(SCENARIOS)


@pytest.mark.parametrize(
    "method_kwargs", [False, True], ids=["default", "method-flag"]
)
@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_trajectory_matches_golden(name, method_kwargs):
    got = run_scenario(name, method_kwargs=method_kwargs)
    want = GOLDENS[name]
    assert got["x"] == want["x"], f"{name}: final iterate differs from golden"
    assert got["residual_norms"] == want["residual_norms"], (
        f"{name}: residual history differs from golden"
    )
