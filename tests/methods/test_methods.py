"""Unit tests for the iteration-method family itself.

Construction and round-tripping (:func:`repro.methods.make_method`),
parameter validation, scale vectors, per-matrix guarantees, the
sequential/momentum kernels, and the executor legality rules.
"""

import numpy as np
import pytest

from repro.matrices.laplacian import fd_laplacian_1d, fd_laplacian_2d
from repro.matrices.sparse import CSRMatrix
from repro.methods import (
    DampedJacobi,
    Jacobi,
    Method,
    MethodError,
    Richardson,
    Richardson2,
    StepAsyncSOR,
    legal_method_kinds,
    make_method,
    scaled_rowsum_condition,
)
from repro.methods.kernels import (
    momentum_dx,
    sor_block_pending,
    sor_step_dense,
    sor_step_incremental,
)
from repro.methods.registry import METHODS
from repro.runtime.distributed import DistributedJacobi
from repro.util.errors import ReproError, SingularMatrixError


@pytest.fixture
def lap():
    return fd_laplacian_2d(4, 4)


# ---------------------------------------------------------------- make_method


def test_none_resolves_to_jacobi_at_executor_omega():
    m = make_method(None, omega=0.75)
    assert isinstance(m, Jacobi) and m.omega == 0.75


def test_string_specs_use_omega_as_primary_knob():
    assert make_method("jacobi", omega=0.5) == Jacobi(omega=0.5)
    assert make_method("sor", omega=0.9) == StepAsyncSOR(omega=0.9)
    assert make_method("richardson", omega=0.25) == Richardson(alpha=0.25)
    assert make_method("richardson2", omega=0.25).alpha == 0.25
    assert make_method("damped_jacobi", omega=0.5) == DampedJacobi(omega=0.5)


def test_dict_spec_round_trips_every_method():
    examples = [
        Jacobi(omega=0.8),
        DampedJacobi(),
        Richardson(alpha=0.3),
        Richardson2(alpha=0.3, beta=0.4),
        StepAsyncSOR(omega=1.0),
    ]
    assert {type(m).__name__ for m in examples} == {
        cls.__name__ for cls in METHODS.values()
    }
    for m in examples:
        again = make_method(m.spec())
        assert again == m and again.spec() == m.spec()


def test_method_instances_pass_through():
    m = StepAsyncSOR(omega=0.7)
    assert make_method(m) is m


@pytest.mark.parametrize(
    "bad",
    [
        "gauss_seidel_but_misspelled",
        {"kind": "nope"},
        {"omega": 1.0},  # missing kind
        {"kind": "jacobi", "alpha": 1.0},  # wrong parameter name
        3.14,
    ],
)
def test_bad_specs_raise_method_error(bad):
    with pytest.raises(MethodError):
        make_method(bad)


def test_method_error_is_value_error_and_repro_error():
    assert issubclass(MethodError, ValueError)
    assert issubclass(MethodError, ReproError)


# ----------------------------------------------------------------- validation


@pytest.mark.parametrize(
    "ctor",
    [
        lambda: Jacobi(omega=0.0),
        lambda: Jacobi(omega=2.0),
        lambda: DampedJacobi(omega=1.5),
        lambda: Richardson(alpha=0.0),
        lambda: Richardson(alpha=-1.0),
        lambda: Richardson2(alpha=0.5, beta=1.0),
        lambda: Richardson2(alpha=0.5, beta=-0.1),
        lambda: StepAsyncSOR(omega=2.0),
    ],
)
def test_out_of_range_parameters_raise(ctor):
    with pytest.raises(MethodError):
        ctor()


def test_richardson_tolerates_zero_diagonal_jacobi_does_not():
    A = CSRMatrix.from_dense(np.array([[0.0, 1.0], [1.0, 2.0]]))
    Richardson(alpha=0.1).validate(A)
    with pytest.raises(SingularMatrixError):
        Jacobi().validate(A)
    with pytest.raises(SingularMatrixError):
        StepAsyncSOR().validate(A)


# -------------------------------------------------------- scales & kind flags


def test_jacobi_scale_is_exactly_omega_over_diag(lap):
    m = Jacobi(omega=0.75)
    assert np.array_equal(m.scale(lap), 0.75 / lap.diagonal())


def test_richardson_scale_is_uniform(lap):
    assert np.array_equal(
        Richardson(alpha=0.3).scale(lap), np.full(lap.nrows, 0.3)
    )


def test_kind_flags():
    assert Jacobi().is_scaled and Richardson().is_scaled
    assert DampedJacobi().is_scaled
    assert not StepAsyncSOR().is_scaled
    assert StepAsyncSOR().kind == "sequential"
    assert not Richardson2().is_scaled
    assert Richardson2().kind == "momentum"
    assert Jacobi().beta == 0.0 and Richardson2(beta=0.3).beta == 0.3


def test_eq_and_hash_follow_spec():
    assert Jacobi(omega=1.0) == Jacobi(omega=1.0)
    assert Jacobi(omega=1.0) != Jacobi(omega=0.9)
    # Same arithmetic, different name: deliberately distinct specs.
    assert DampedJacobi(omega=0.5) != Jacobi(omega=0.5)
    assert len({Jacobi(), Jacobi(), StepAsyncSOR()}) == 2


# ----------------------------------------------------------------- guarantees


def test_jacobi_guarantee_on_wdd_matrix(lap):
    g = Jacobi().guarantee(lap)
    assert g.norm == "residual_l1" and g.holds


def test_jacobi_guarantee_fails_off_dominance():
    A = CSRMatrix.from_dense(np.array([[1.0, 3.0], [0.5, 1.0]]))
    g = Jacobi().guarantee(A)
    assert g.norm == "residual_l1" and not g.holds


def test_richardson_guarantee_tracks_rowsum_condition(lap):
    # alpha small enough: |1 - alpha*d| + alpha*offdiag = 1 on a Laplacian.
    assert Richardson(alpha=0.1).guarantee(lap).holds
    assert not Richardson(alpha=1.9).guarantee(lap).holds


def test_sor_guarantee_needs_m_matrix_and_omega_at_most_one(lap):
    assert StepAsyncSOR(omega=1.0).guarantee(lap).holds
    g = StepAsyncSOR(omega=1.5).guarantee(lap)
    assert g.norm == "error_sup" and not g.holds
    pos_offdiag = CSRMatrix.from_dense(np.array([[2.0, 1.0], [1.0, 2.0]]))
    assert not StepAsyncSOR(omega=1.0).guarantee(pos_offdiag).holds


def test_momentum_has_no_guarantee(lap):
    g = Richardson2(alpha=0.1, beta=0.3).guarantee(lap)
    assert g.norm is None and not g.holds


def test_scaled_rowsum_condition_matches_manual(lap):
    scale = 1.0 / lap.diagonal()
    dense = lap.to_dense()
    manual = []
    for i in range(lap.nrows):
        off = np.sum(np.abs(dense[i])) - abs(dense[i, i])
        manual.append(abs(1 - scale[i] * dense[i, i]) + scale[i] * off <= 1 + 1e-12)
    assert np.array_equal(scaled_rowsum_condition(lap, scale), manual)


def test_base_method_guarantee_is_none(lap):
    assert Method().guarantee(lap).norm is None


# -------------------------------------------------------------------- kernels


def _reference_gs(A, b, scale, x0, rows):
    """Forward Gauss-Seidel over ``rows`` on a dense copy."""
    dense = A.to_dense()
    x = x0.copy()
    for i in rows:
        x[i] += scale[i] * (b[i] - dense[i] @ x)
    return x


def test_sor_step_dense_is_forward_gauss_seidel(lap):
    rng = np.random.default_rng(0)
    b = rng.uniform(-1, 1, lap.nrows)
    scale = 1.0 / lap.diagonal()
    rows = np.array([3, 0, 7, 4, 3])  # out of order, with a repeat
    x = rng.standard_normal(lap.nrows)
    want = _reference_gs(lap, b, scale, x, rows)
    dx = sor_step_dense(lap, b, scale, x, rows)
    # Sparse gather vs dense dot sum in different orders: last-bit slack.
    np.testing.assert_allclose(x, want, rtol=0, atol=1e-14)
    assert dx.shape == (rows.size,)


def test_sor_step_incremental_matches_dense(lap):
    rng = np.random.default_rng(1)
    b = rng.uniform(-1, 1, lap.nrows)
    scale = 0.9 / lap.diagonal()
    rows = np.arange(5)
    x_dense = rng.standard_normal(lap.nrows)
    x_inc = x_dense.copy()
    r = b - lap.matvec(x_inc)
    sor_step_dense(lap, b, scale, x_dense, rows)
    sor_step_incremental(lap, scale, x_inc, r, rows)
    np.testing.assert_allclose(x_inc, x_dense, rtol=0, atol=1e-13)
    np.testing.assert_allclose(
        r, b - lap.matvec(x_inc), rtol=0, atol=1e-12
    )


def test_sor_block_pending_matches_dense_without_committing(lap):
    rng = np.random.default_rng(2)
    b = rng.uniform(-1, 1, lap.nrows)
    scale = 1.0 / lap.diagonal()
    lo, hi = 4, 9
    x = rng.standard_normal(lap.nrows)
    x_ref = x.copy()
    sor_step_dense(lap, b, scale, x_ref, np.arange(lo, hi))
    out = np.empty(hi - lo)
    before = x.copy()
    sor_block_pending(lap, b, scale, x, lo, hi, out)
    assert np.array_equal(x, before)  # pending buffer, no commit
    assert np.array_equal(out, x_ref[lo:hi])


def test_momentum_dx_reference_semantics(lap):
    rng = np.random.default_rng(3)
    scale = np.full(lap.nrows, 0.2)
    x = rng.standard_normal(lap.nrows)
    x_prev = rng.standard_normal(lap.nrows)
    r = rng.standard_normal(lap.nrows)
    rows = np.array([1, 5, 6])
    want = scale[rows] * r[rows] + 0.4 * (x[rows] - x_prev[rows])
    pre = x[rows].copy()
    dx = momentum_dx(scale, r, x, x_prev, rows, 0.4)
    assert np.array_equal(dx, want)
    assert np.array_equal(x_prev[rows], pre)  # state advances at relax time


# ------------------------------------------------------------------- legality


def test_legal_method_kinds_cover_family():
    for executor in ("model", "shared", "distributed"):
        assert legal_method_kinds(executor) == tuple(METHODS)
    with pytest.raises(MethodError):
        legal_method_kinds("gpu")


def test_momentum_refuses_gauss_seidel_sweep(lap):
    b = np.ones(lap.nrows)
    with pytest.raises(MethodError):
        DistributedJacobi(
            lap,
            b,
            n_ranks=2,
            method={"kind": "richardson2", "alpha": 0.2, "beta": 0.3},
            local_sweep="gauss_seidel",
        )


def test_sor_forces_sequential_sweep(lap):
    b = np.ones(lap.nrows)
    sim = DistributedJacobi(lap, b, n_ranks=2, method="sor")
    assert sim.local_sweep == "gauss_seidel"


def test_fd_1d_is_in_family_domain():
    # The 1-D ladder rung used by convergence tests satisfies both
    # guarantee hypotheses, so methods agree it is a friendly matrix.
    A = fd_laplacian_1d(12)
    assert Jacobi().guarantee(A).holds
    assert StepAsyncSOR().guarantee(A).holds
