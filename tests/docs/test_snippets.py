"""Every fenced python block in the documentation must actually run.

Blocks are executed *cumulatively per file* in one namespace, so later
blocks may build on names defined by earlier ones (the docs read top to
bottom). A block immediately preceded by an ``<!-- snippet: no-run -->``
marker is only compiled, not executed — for snippets with placeholder
values the reader is meant to substitute.
"""

import re
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parents[2]

NO_RUN = "<!-- snippet: no-run -->"
FENCE = re.compile(r"```python\n(.*?)```", flags=re.DOTALL)

DOC_FILES = sorted(p.relative_to(ROOT) for p in (ROOT / "docs").glob("*.md"))
DOC_FILES += [Path("README.md"), Path("EXPERIMENTS.md")]


def blocks_of(path: Path):
    """Yield ``(index, source, runnable)`` for each python block in a doc."""
    text = (ROOT / path).read_text()
    for index, match in enumerate(FENCE.finditer(text)):
        prefix = text[: match.start()].rstrip()
        runnable = not prefix.endswith(NO_RUN)
        yield index, match.group(1), runnable


@pytest.mark.parametrize("doc", DOC_FILES, ids=str)
def test_python_snippets_execute(doc):
    namespace = {}
    found = 0
    for index, source, runnable in blocks_of(doc):
        found += 1
        code = compile(source, f"<{doc} block {index}>", "exec")
        if runnable:
            exec(code, namespace)
    if found == 0:
        pytest.skip(f"{doc} has no python blocks")


def test_docs_with_snippets_are_covered():
    """The docs that teach by example keep at least one runnable block."""
    for doc in (
        "docs/fault_tolerance.md",
        "docs/observability.md",
        "docs/methods.md",
        "README.md",
    ):
        assert any(runnable for _, _, runnable in blocks_of(Path(doc))), doc
