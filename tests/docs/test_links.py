"""Markdown cross-references must point at files that exist."""

from pathlib import Path

import pytest

import tools.check_doc_links as checker

ROOT = Path(__file__).resolve().parents[2]


def test_no_broken_relative_links():
    broken = checker.broken_links(ROOT)
    assert not broken, "\n".join(f"{d}: {t}" for d, t in broken)


def test_checker_catches_a_broken_link(tmp_path):
    (tmp_path / "doc.md").write_text("see [missing](gone/nowhere.md)\n")
    broken = checker.broken_links(tmp_path, files=[tmp_path / "doc.md"])
    assert broken == [(tmp_path / "doc.md", "gone/nowhere.md")]


def test_checker_ignores_external_and_fragment_links(tmp_path):
    (tmp_path / "doc.md").write_text(
        "[w](https://example.com) [m](mailto:x@y.z) [s](#section)\n"
    )
    assert checker.broken_links(tmp_path, files=[tmp_path / "doc.md"]) == []


@pytest.mark.parametrize(
    "doc,targets",
    [
        ("README.md", ["docs/observability.md", "docs/architecture.md"]),
        ("docs/simulators.md", ["docs/fault_tolerance.md", "docs/performance.md"]),
        ("EXPERIMENTS.md", ["docs/fault_tolerance.md", "docs/observability.md"]),
        (
            "docs/methods.md",
            [
                "docs/theory.md",
                "docs/observability.md",
                "docs/chaos.md",
                "docs/performance.md",
            ],
        ),
    ],
)
def test_subsystem_docs_are_cross_referenced(doc, targets):
    text = (ROOT / doc).read_text()
    for target in targets:
        assert target in text, f"{doc} must mention {target}"
