"""Docstring coverage (ruff D1xx equivalent) for the documented subsystems.

CI runs ``ruff check`` with ``pydocstyle`` D1 rules over
``src/repro/observability``, ``src/repro/perf``, ``src/repro/methods``
and ``src/repro/service`` (see ``pyproject.toml``);
ruff is not available in every environment, so this AST-based check keeps
the same guarantee enforceable by the plain test suite: every public
module, class, function and method in those packages carries a docstring.
"""

import ast
from pathlib import Path

import pytest

SRC = Path(__file__).resolve().parents[2] / "src" / "repro"
PACKAGES = ("observability", "perf", "methods", "service")


def _public_defs(path: Path):
    """Yield ``(qualname, node)`` for every def that D1xx would flag."""
    tree = ast.parse(path.read_text())
    yield "<module>", tree
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if not node.name.startswith("_"):
                yield node.name, node
        elif isinstance(node, ast.ClassDef):
            yield node.name, node
            for sub in node.body:
                # D107 (__init__) is ignored: constructor parameters are
                # documented in the numpydoc class docstring instead.
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    if not sub.name.startswith("_"):
                        yield f"{node.name}.{sub.name}", sub


MODULES = sorted(
    p for pkg in PACKAGES for p in (SRC / pkg).rglob("*.py")
)


@pytest.mark.parametrize("module", MODULES, ids=lambda p: str(p.relative_to(SRC)))
def test_public_api_is_documented(module):
    if module.name == "__init__.py" and not module.read_text().strip():
        pytest.skip("empty package marker")
    missing = [
        name for name, node in _public_defs(module)
        if ast.get_docstring(node) is None
    ]
    assert not missing, f"{module}: missing docstrings on {missing}"
