"""The one-call solver front-end."""

import numpy as np
import pytest

from repro import CSRMatrix, SolveResult, solve
from repro.matrices.laplacian import fd_laplacian_2d


@pytest.fixture
def system(rng):
    A = fd_laplacian_2d(7, 7)
    x_exact = rng.standard_normal(49)
    return A, A @ x_exact, x_exact


ALL_METHODS = [
    "jacobi",
    "gauss_seidel",
    "multicolor_gs",
    "block_jacobi",
    "async_model",
    "shared_sim",
    "distributed_sim",
    "threads",
]


@pytest.mark.parametrize("method", ALL_METHODS)
def test_every_method_solves(system, method):
    A, b, x_exact = system
    kwargs = {"seed": 0} if method in ("shared_sim", "distributed_sim") else {}
    result = solve(A, b, method=method, tol=1e-6, max_iterations=5000, **kwargs)
    assert isinstance(result, SolveResult)
    assert result.converged
    assert result.method == method
    np.testing.assert_allclose(result.x, x_exact, atol=1e-3)


def test_sor_needs_omega(system):
    A, b, _ = system
    result = solve(A, b, method="sor", omega=1.4, tol=1e-6)
    assert result.converged


def test_dense_input_accepted(system, rng):
    A, b, x_exact = system
    result = solve(A.to_dense(), b, method="jacobi", tol=1e-6, max_iterations=5000)
    np.testing.assert_allclose(result.x, x_exact, atol=1e-3)


def test_bad_input_dim():
    with pytest.raises(Exception):
        solve(np.zeros(3), np.zeros(3))


def test_unknown_method(system):
    A, b, _ = system
    with pytest.raises(ValueError, match="unknown method"):
        solve(A, b, method="quantum")


def test_custom_schedule_forwarded(system):
    from repro.core.schedules import SynchronousSchedule

    A, b, _ = system
    result = solve(
        A, b, method="async_model", schedule=SynchronousSchedule(A.nrows), tol=1e-5
    )
    assert result.converged


def test_residual_history_populated(system):
    A, b, _ = system
    result = solve(A, b, method="jacobi", tol=1e-5, max_iterations=5000)
    assert len(result.residual_norms) == result.iterations + 1
    assert result.residual_norms[-1] < 1e-5


def test_simulation_info_exposed(system):
    A, b, _ = system
    result = solve(A, b, method="shared_sim", n_threads=7, mode="sync", seed=1, tol=1e-4)
    sim = result.info["simulation"]
    assert sim.mode == "sync"
    assert sim.total_time > 0


def test_distributed_eager_passthrough(system):
    A, b, _ = system
    result = solve(
        A, b, method="distributed_sim", n_ranks=7, mode="async", seed=1,
        eager=True, tol=1e-4, max_iterations=20_000,
    )
    assert result.converged
    assert result.info["simulation"].mode == "eager"


def test_block_jacobi_with_explicit_labels(system, rng):
    import numpy as np

    A, b, x_exact = system
    labels = np.zeros(A.nrows, dtype=np.int64)
    labels[A.nrows // 2 :] = 1
    result = solve(A, b, method="block_jacobi", labels=labels, tol=1e-6,
                   max_iterations=5000)
    assert result.converged
    np.testing.assert_allclose(result.x, x_exact, atol=1e-3)


def test_perf_counters_exposed(system):
    A, b, _ = system
    result = solve(A, b, method="shared_sim", n_threads=7, mode="async", seed=1,
                   tol=1e-4, instrument=True)
    assert result.perf is not None
    assert result.perf.events > 0
    assert result.perf.total_seconds > 0

    plain = solve(A, b, method="shared_sim", n_threads=7, mode="async", seed=1,
                  tol=1e-4)
    assert plain.perf is None
