"""The ``python -m repro`` experiment runner."""

import pytest

from repro.__main__ import EXPERIMENTS, main


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_no_args_lists(self, capsys):
        assert main([]) == 0
        assert "available experiments" in capsys.readouterr().out

    def test_unknown_experiment(self, capsys):
        assert main(["bogus"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_registry_complete(self):
        assert set(EXPERIMENTS) == {
            "table1", "fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7",
            "fig8", "fig9", "ablations", "seeds", "scale", "faults", "trace",
            "methods",
        }

    def test_run_one_experiment(self, capsys):
        # fig1 is the cheapest full experiment.
        assert main(["fig1"]) == 0
        out = capsys.readouterr().out
        assert "=== fig1" in out
        assert "{p1, p2}" in out

    def test_no_cache_flag_sets_env(self, capsys, monkeypatch):
        import os

        monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
        try:
            assert main(["--no-cache", "list"]) == 0
            assert os.environ.get("REPRO_NO_CACHE") == "1"
            from repro.perf.cache import cache_enabled

            assert not cache_enabled()
        finally:
            # main() mutates the real environment; don't leak the flag
            # into later tests.
            os.environ.pop("REPRO_NO_CACHE", None)

    def test_no_cache_flag_documented(self, capsys):
        assert main([]) == 0
        assert "--no-cache" in capsys.readouterr().out


class TestListGrouping:
    def test_list_groups_by_subsystem(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "paper tables & figures" in out
        assert "parameter studies" in out
        assert "subsystem scenarios" in out

    def test_list_shows_descriptions(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        # One-line docstring summaries ride along with the names.
        assert "Table I" in out
        assert "Ablation" in out

    def test_list_mentions_chaos_tool(self, capsys):
        assert main(["list"]) == 0
        assert "chaos" in capsys.readouterr().out

    def test_list_mentions_serve_tool(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "serve" in out
        assert "p50/p99" in out


class TestChaosCommand:
    def test_chaos_small_budget(self, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["chaos", "--budget", "3", "--seed", "0",
                     "--report", str(tmp_path / "r.jsonl")]) == 0
        out = capsys.readouterr().out
        assert "3/3" in out
        report = (tmp_path / "r.jsonl").read_text().strip().splitlines()
        assert len(report) == 4  # one line per scenario + summary
        import json

        assert "summary" in json.loads(report[-1])

    def test_chaos_rejects_negative_budget(self, capsys):
        assert main(["chaos", "--budget", "-1"]) == 2

    def test_chaos_help_does_not_run(self, capsys):
        import pytest

        with pytest.raises(SystemExit) as exc:
            main(["chaos", "--help"])
        assert exc.value.code == 0
        assert "--shrink" in capsys.readouterr().out


class TestServeCommand:
    def test_serve_tiny_demo(self, capsys):
        # Small enough to finish in seconds; --no-baseline skips the
        # serial timing pass (the benchmark covers the speedup claim).
        assert main(["serve", "--requests", "8", "--groups", "2",
                     "--no-baseline"]) == 0
        out = capsys.readouterr().out
        assert "=== serve" in out
        assert "p50" in out and "coalescing" in out
        assert "0 failed" in out

    def test_serve_writes_trace(self, capsys, tmp_path):
        trace = tmp_path / "serve_trace.jsonl"
        assert main(["serve", "--requests", "4", "--groups", "1",
                     "--no-baseline", "--trace", str(trace)]) == 0
        assert f"request trace written to {trace}" in capsys.readouterr().out
        from repro.observability.sinks import JSONLSink

        events = JSONLSink.read(trace)
        assert events and all(e.kind == "request" for e in events)

    def test_serve_rejects_bad_counts(self, capsys):
        assert main(["serve", "--requests", "0"]) == 2
        assert main(["serve", "--groups", "0"]) == 2

    def test_serve_help_does_not_run(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["serve", "--help"])
        assert exc.value.code == 0
        assert "--max-batch" in capsys.readouterr().out
