"""Exact-solve block Jacobi (additive Schwarz baseline)."""

import numpy as np
import pytest

from repro.core.iteration import block_jacobi, jacobi
from repro.matrices.laplacian import fd_laplacian_2d
from repro.partition.partitioner import bfs_bisection_partition, contiguous_partition
from repro.util.errors import ShapeError


@pytest.fixture
def system(rng):
    A = fd_laplacian_2d(8, 8)
    x_exact = rng.standard_normal(64)
    return A, A @ x_exact, x_exact


class TestBlockJacobi:
    def test_single_block_is_direct_solve(self, system):
        """One block covering everything solves in one sweep."""
        A, b, x_exact = system
        labels = np.zeros(A.nrows, dtype=np.int64)
        hist = block_jacobi(A, b, labels, tol=1e-10)
        assert hist.iterations == 1
        np.testing.assert_allclose(hist.x, x_exact, atol=1e-8)

    def test_one_row_blocks_equal_point_jacobi(self, system):
        A, b, _ = system
        labels = np.arange(A.nrows)
        hb = block_jacobi(A, b, labels, tol=1e-6, max_iterations=5000)
        hj = jacobi(A, b, tol=1e-6, max_iterations=5000)
        assert hb.iterations == hj.iterations
        np.testing.assert_allclose(hb.x, hj.x, rtol=1e-12)

    def test_bigger_blocks_fewer_sweeps(self, system):
        """Exact block solves converge in fewer sweeps than point Jacobi."""
        A, b, _ = system
        point = jacobi(A, b, tol=1e-6, max_iterations=5000)
        blocks = block_jacobi(
            A, b, bfs_bisection_partition(A, 4), tol=1e-6, max_iterations=5000
        )
        assert blocks.converged
        assert blocks.iterations < point.iterations

    def test_contiguous_blocks_converge(self, system):
        A, b, x_exact = system
        hist = block_jacobi(
            A, b, contiguous_partition(A.nrows, 8), tol=1e-8, max_iterations=5000
        )
        assert hist.converged
        np.testing.assert_allclose(hist.x, x_exact, atol=1e-5)

    def test_label_validation(self, system):
        A, b, _ = system
        with pytest.raises(ShapeError):
            block_jacobi(A, b, np.zeros(3, dtype=np.int64))
        labels = np.zeros(A.nrows, dtype=np.int64)
        labels[0] = 2  # label 1 empty
        with pytest.raises(ShapeError):
            block_jacobi(A, b, labels)

    def test_divergence_possible(self):
        """Block Jacobi is additive: it can still diverge where multiplicative
        methods would not."""
        from repro.matrices.sparse import CSRMatrix

        dense = np.array(
            [[1.0, 0.0, 0.9, 0.9],
             [0.0, 1.0, 0.9, 0.9],
             [0.9, 0.9, 1.0, 0.0],
             [0.9, 0.9, 0.0, 1.0]]
        )
        A = CSRMatrix.from_dense(dense)
        labels = np.array([0, 0, 1, 1])
        hist = block_jacobi(A, [1.0, 1.0, 1.0, 1.0], labels, tol=1e-6, max_iterations=60)
        assert not hist.converged
        assert hist.residual_norms[-1] > hist.residual_norms[0]
