"""Propagation matrices and Theorem 1 (the paper's core math)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.propagation import (
    apply_error_propagation,
    apply_residual_propagation,
    error_propagation_matrix,
    matrix_norm_1,
    matrix_norm_inf,
    relaxation_mask,
    residual_propagation_matrix,
    spectral_radius_dense,
    theorem1_report,
    two_by_two_propagation,
)
from repro.matrices.laplacian import fd_laplacian_2d
from repro.matrices.sparse import CSRMatrix
from repro.util.errors import ScheduleError, ShapeError


def _wdd_unit_matrix(rng, n, density=0.5):
    """Random symmetric W.D.D. matrix with unit diagonal (paper setting)."""
    off = np.where(rng.random((n, n)) < density, rng.standard_normal((n, n)), 0.0)
    off = (off + off.T) / 2
    np.fill_diagonal(off, 0.0)
    max_row = max(float(np.sum(np.abs(off), axis=1).max()), 1e-12)
    # Dividing by the max row sum keeps every |offdiag| row sum <= 1 while
    # preserving symmetry: W.D.D. with unit diagonal.
    dense = np.eye(n) + off * (rng.uniform(0.3, 1.0) / max_row)
    return CSRMatrix.from_dense(dense)


class TestMask:
    def test_mask_from_rows(self):
        mask = relaxation_mask(5, [0, 3])
        np.testing.assert_array_equal(mask, [True, False, False, True, False])

    def test_rejects_out_of_range(self):
        with pytest.raises(ScheduleError):
            relaxation_mask(4, [4])

    def test_rejects_duplicates(self):
        with pytest.raises(ScheduleError):
            relaxation_mask(4, [1, 1])

    def test_empty_mask(self):
        assert not relaxation_mask(3, []).any()


class TestStructure:
    def test_inactive_rows_are_unit_basis(self, small_fd):
        """Row i of G-hat is e_i^T for every delayed row (Section IV-A)."""
        n = small_fd.nrows
        mask = relaxation_mask(n, np.arange(0, n, 2))
        G = error_propagation_matrix(small_fd, mask).to_dense()
        for i in np.nonzero(~mask)[0]:
            expected = np.zeros(n)
            expected[i] = 1.0
            np.testing.assert_array_equal(G[i], expected)

    def test_inactive_columns_are_unit_basis(self, small_fd):
        """Column i of H-hat is e_i for every delayed row."""
        n = small_fd.nrows
        mask = relaxation_mask(n, np.arange(0, n, 3))
        H = residual_propagation_matrix(small_fd, mask).to_dense()
        for i in np.nonzero(~mask)[0]:
            expected = np.zeros(n)
            expected[i] = 1.0
            np.testing.assert_array_equal(H[:, i], expected)

    def test_full_mask_gives_iteration_matrix(self, small_fd):
        """All rows active => G-hat == G == I - A (unit diagonal)."""
        n = small_fd.nrows
        mask = np.ones(n, dtype=bool)
        G = error_propagation_matrix(small_fd, mask).to_dense()
        np.testing.assert_allclose(G, np.eye(n) - small_fd.to_dense(), atol=1e-14)

    def test_symmetric_unit_diag_G_equals_H(self, small_fd):
        """For symmetric unit-diagonal A: H-hat = G-hat^T."""
        n = small_fd.nrows
        mask = relaxation_mask(n, [1, 5, 9])
        G = error_propagation_matrix(small_fd, mask).to_dense()
        H = residual_propagation_matrix(small_fd, mask).to_dense()
        np.testing.assert_allclose(H, G.T, atol=1e-14)

    def test_general_diagonal_handled(self, random_csr, rng):
        """Non-unit diagonals: G-hat = I - D-hat D^{-1} A."""
        n = random_csr.nrows
        mask = relaxation_mask(n, rng.choice(n, size=n // 2, replace=False))
        G = error_propagation_matrix(random_csr, mask).to_dense()
        dense = random_csr.to_dense()
        Dinv = np.diag(1.0 / np.diag(dense))
        Dhat = np.diag(mask.astype(float))
        np.testing.assert_allclose(G, np.eye(n) - Dhat @ Dinv @ dense, atol=1e-13)


class TestMatrixFreeApply:
    def test_error_apply_matches_matrix(self, small_fd, rng):
        n = small_fd.nrows
        mask = relaxation_mask(n, rng.choice(n, size=n // 3, replace=False))
        e = rng.standard_normal(n)
        G = error_propagation_matrix(small_fd, mask)
        np.testing.assert_allclose(
            apply_error_propagation(small_fd, mask, e), G @ e, rtol=1e-12
        )

    def test_residual_apply_matches_matrix(self, small_fd, rng):
        n = small_fd.nrows
        mask = relaxation_mask(n, rng.choice(n, size=n // 2, replace=False))
        r = rng.standard_normal(n)
        H = residual_propagation_matrix(small_fd, mask)
        np.testing.assert_allclose(
            apply_residual_propagation(small_fd, mask, r), H @ r, rtol=1e-12
        )

    def test_error_step_equals_iteration_step(self, fd_system, rng):
        """e(k+1) = G-hat e(k) is exactly the masked Jacobi error recursion."""
        A, b, x_exact = fd_system
        n = A.nrows
        mask = relaxation_mask(n, rng.choice(n, size=n // 2, replace=False))
        x = rng.standard_normal(n)
        # Perform the masked relaxation on x.
        active = np.nonzero(mask)[0]
        x_new = x.copy()
        x_new[active] += b[active] - A.row_matvec(active, x)
        # And propagate the error directly.
        e_new = apply_error_propagation(A, mask, x_exact - x)
        np.testing.assert_allclose(x_exact - x_new, e_new, atol=1e-12)

    def test_residual_step_consistency(self, fd_system, rng):
        """r(k+1) = H-hat r(k) matches recomputing b - A x(k+1)."""
        A, b, _ = fd_system
        n = A.nrows
        mask = relaxation_mask(n, rng.choice(n, size=n // 2, replace=False))
        x = rng.standard_normal(n)
        r = b - A @ x
        active = np.nonzero(mask)[0]
        x_new = x.copy()
        x_new[active] += r[active]
        np.testing.assert_allclose(
            b - A @ x_new, apply_residual_propagation(A, mask, r), atol=1e-12
        )


class TestTheorem1:
    def test_theorem1_on_fd(self, small_fd):
        """W.D.D. A + delayed rows => all four quantities equal 1."""
        n = small_fd.nrows
        mask = relaxation_mask(n, np.delete(np.arange(n), [n // 2]))
        rep = theorem1_report(small_fd, mask)
        assert rep.n_delayed == 1
        assert rep.theorem1_holds

    def test_theorem1_many_delayed(self, small_fd, rng):
        n = small_fd.nrows
        active = rng.choice(n, size=n // 4, replace=False)
        rep = theorem1_report(small_fd, relaxation_mask(n, active))
        assert rep.theorem1_holds

    def test_no_delay_radius_below_one(self, small_fd):
        """All rows active: G-hat = G with rho < 1 (no unit eigenvalue)."""
        n = small_fd.nrows
        rep = theorem1_report(small_fd, np.ones(n, dtype=bool))
        assert rep.g_spectral_radius < 1.0

    def test_norms_without_dense_radius(self, small_fd):
        rep = theorem1_report(small_fd, relaxation_mask(small_fd.nrows, [0]), dense_radius=False)
        assert np.isnan(rep.g_spectral_radius)
        assert rep.g_norm_inf == pytest.approx(1.0)


class TestTwoByTwo:
    def test_eq11_structure(self):
        """Eq. 11: explicit forms with alpha = -A21/A11... (unit scaled)."""
        dense = np.array([[1.0, 0.4], [0.4, 1.0]])
        A = CSRMatrix.from_dense(dense)
        G, H = two_by_two_propagation(A, delayed_row=0)
        np.testing.assert_allclose(G, [[1.0, 0.0], [-0.4, 0.0]])
        np.testing.assert_allclose(H, [[1.0, -0.4], [0.0, 0.0]])

    def test_one_step_convergence(self, rng):
        """Applying G-hat twice equals applying it once: the 2x2 error
        converges in one application (why [22] saw no speedup)."""
        a = rng.uniform(-0.9, 0.9)
        dense = np.array([[1.0, a], [a, 1.0]])
        A = CSRMatrix.from_dense(dense)
        for row in (0, 1):
            G, H = two_by_two_propagation(A, delayed_row=row)
            np.testing.assert_allclose(G @ G, G, atol=1e-14)
            np.testing.assert_allclose(H @ H, H, atol=1e-14)

    def test_rejects_wrong_shape(self, small_fd):
        with pytest.raises(ShapeError):
            two_by_two_propagation(small_fd, 0)


class TestDampedPropagation:
    def test_omega_scales_off_identity_part(self, small_fd, rng):
        """G-hat(omega) = I - omega D-hat A: the active rows interpolate
        between identity (omega -> 0) and the Jacobi rows (omega = 1)."""
        n = small_fd.nrows
        mask = relaxation_mask(n, rng.choice(n, size=n // 2, replace=False))
        G1 = error_propagation_matrix(small_fd, mask, omega=1.0).to_dense()
        Gh = error_propagation_matrix(small_fd, mask, omega=0.5).to_dense()
        I = np.eye(n)
        np.testing.assert_allclose(Gh - I, 0.5 * (G1 - I), atol=1e-13)

    def test_damped_apply_matches_matrix(self, small_fd, rng):
        n = small_fd.nrows
        mask = relaxation_mask(n, rng.choice(n, size=n // 3, replace=False))
        e = rng.standard_normal(n)
        G = error_propagation_matrix(small_fd, mask, omega=1.3)
        np.testing.assert_allclose(
            apply_error_propagation(small_fd, mask, e, omega=1.3), G @ e, rtol=1e-12
        )
        H = residual_propagation_matrix(small_fd, mask, omega=1.3)
        np.testing.assert_allclose(
            apply_residual_propagation(small_fd, mask, e, omega=1.3), H @ e, rtol=1e-12
        )

    def test_omega_validation(self, small_fd):
        mask = np.ones(small_fd.nrows, dtype=bool)
        for bad in (0.0, 2.0, -1.0):
            with pytest.raises(ValueError):
                error_propagation_matrix(small_fd, mask, omega=bad)

    def test_damped_theorem1_still_holds(self, small_fd):
        """Underdamping keeps ||G-hat||_inf = 1 for W.D.D. A with a delayed
        row: the delayed row's unit-basis row is untouched by omega, and
        active rows have |1 - omega| + omega * (offdiag sum) <= 1."""
        n = small_fd.nrows
        mask = relaxation_mask(n, np.delete(np.arange(n), [2]))
        G = error_propagation_matrix(small_fd, mask, omega=0.5)
        assert matrix_norm_inf(G) == pytest.approx(1.0)


class TestNorms:
    def test_matrix_norms_match_numpy(self, random_csr):
        dense = random_csr.to_dense()
        assert matrix_norm_inf(random_csr) == pytest.approx(
            np.linalg.norm(dense, ord=np.inf)
        )
        assert matrix_norm_1(random_csr) == pytest.approx(np.linalg.norm(dense, ord=1))

    def test_spectral_radius_dense(self):
        A = CSRMatrix.from_dense(np.array([[0.0, 1.0], [-2.0, 0.0]]))
        assert spectral_radius_dense(A) == pytest.approx(np.sqrt(2.0))


@settings(max_examples=30, deadline=None)
@given(st.integers(3, 14), st.integers(0, 2**31 - 1), st.floats(0.1, 0.9))
def test_property_theorem1_random_wdd(n, seed, delay_frac):
    """Theorem 1 holds for arbitrary random W.D.D. matrices and masks."""
    rng = np.random.default_rng(seed)
    A = _wdd_unit_matrix(rng, n)
    n_delayed = max(1, int(delay_frac * n))
    delayed = rng.choice(n, size=n_delayed, replace=False)
    mask = np.ones(n, dtype=bool)
    mask[delayed] = False
    if not mask.any():
        mask[0] = True
    rep = theorem1_report(A, mask)
    assert rep.g_norm_inf == pytest.approx(1.0, abs=1e-9)
    assert rep.h_norm_1 == pytest.approx(1.0, abs=1e-9)
    assert rep.g_spectral_radius == pytest.approx(1.0, abs=1e-7)
    assert rep.h_spectral_radius == pytest.approx(1.0, abs=1e-7)


@settings(max_examples=30, deadline=None)
@given(st.integers(3, 12), st.integers(0, 2**31 - 1))
def test_property_norm_never_increases_for_wdd(n, seed):
    """Consequence of Theorem 1: ||G-hat e||_inf <= ||e||_inf and
    ||H-hat r||_1 <= ||r||_1 for any mask on W.D.D. A."""
    rng = np.random.default_rng(seed)
    A = _wdd_unit_matrix(rng, n)
    mask = rng.random(n) < 0.5
    e = rng.standard_normal(n)
    out_e = apply_error_propagation(A, mask, e)
    out_r = apply_residual_propagation(A, mask, e)
    assert np.max(np.abs(out_e)) <= np.max(np.abs(e)) + 1e-12
    assert np.sum(np.abs(out_r)) <= np.sum(np.abs(e)) + 1e-12
