"""Classical stationary methods: exactness, convergence, orderings."""

import numpy as np
import pytest

from repro.core.iteration import (
    gauss_seidel,
    greedy_coloring,
    jacobi,
    multicolor_gauss_seidel,
    sor,
)
from repro.matrices.laplacian import fd_laplacian_1d, fd_laplacian_2d
from repro.matrices.sparse import CSRMatrix
from repro.util.errors import ShapeError, SingularMatrixError


class TestJacobi:
    def test_solves_fd_system(self, fd_system):
        A, b, x_exact = fd_system
        hist = jacobi(A, b, tol=1e-8, max_iterations=5000)
        assert hist.converged
        np.testing.assert_allclose(hist.x, x_exact, atol=1e-5)

    def test_matches_manual_sweeps(self, tiny_fd, rng):
        """One call's iterates equal hand-rolled x + D^{-1}(b - Ax)."""
        A = tiny_fd
        b = rng.standard_normal(A.nrows)
        hist = jacobi(A, b, tol=1e-300, max_iterations=3)
        dense = A.to_dense()
        x = np.zeros(A.nrows)
        d = np.diag(dense)
        for _ in range(3):
            x = x + (b - dense @ x) / d
        np.testing.assert_allclose(hist.x, x, rtol=1e-13)

    def test_residual_history_monotone_for_fd(self, fd_system):
        """For normal G with rho < 1 the residual decreases monotonically."""
        A, b, _ = fd_system
        hist = jacobi(A, b, tol=1e-6, max_iterations=3000)
        res = np.asarray(hist.residual_norms)
        assert np.all(np.diff(res) <= 1e-14)

    def test_divergence_recorded(self):
        """rho(G) > 1: residual history grows, converged False."""
        dense = np.array([[1.0, 2.0], [2.0, 1.0]])  # rho(G) = 2
        A = CSRMatrix.from_dense(dense)
        hist = jacobi(A, [1.0, 1.0], tol=1e-3, max_iterations=50)
        assert not hist.converged
        assert hist.residual_norms[-1] > hist.residual_norms[0]

    def test_zero_iterations_if_converged(self, small_fd):
        hist = jacobi(small_fd, np.zeros(small_fd.nrows), x0=np.zeros(small_fd.nrows))
        assert hist.iterations == 0

    def test_rejects_zero_diagonal(self):
        A = CSRMatrix.from_dense(np.array([[0.0, 1.0], [1.0, 1.0]]))
        with pytest.raises(SingularMatrixError):
            jacobi(A, [1.0, 1.0])

    def test_rejects_rectangular(self):
        A = CSRMatrix.from_dense(np.ones((2, 3)))
        with pytest.raises(ShapeError):
            jacobi(A, np.ones(3))

    def test_rejects_bad_tol(self, small_fd):
        with pytest.raises(ValueError):
            jacobi(small_fd, np.zeros(small_fd.nrows), tol=0.0)


class TestGaussSeidel:
    def test_faster_than_jacobi(self, fd_system):
        """Classic: GS converges in roughly half the Jacobi sweeps."""
        A, b, _ = fd_system
        j = jacobi(A, b, tol=1e-6, max_iterations=5000)
        g = gauss_seidel(A, b, tol=1e-6, max_iterations=5000)
        assert g.converged
        assert g.iterations < 0.75 * j.iterations

    def test_matches_dense_triangular_solve(self, tiny_fd, rng):
        """One GS sweep equals (D+L)^{-1} (b - U x)."""
        A = tiny_fd
        b = rng.standard_normal(A.nrows)
        hist = gauss_seidel(A, b, tol=1e-300, max_iterations=1)
        dense = A.to_dense()
        DL = np.tril(dense)
        U = np.triu(dense, k=1)
        expected = np.linalg.solve(DL, b - U @ np.zeros(A.nrows))
        np.testing.assert_allclose(hist.x, expected, rtol=1e-12)

    def test_sor_optimal_beats_gs(self):
        """SOR with near-optimal omega beats plain GS on the 1-D Laplacian."""
        n = 30
        A = fd_laplacian_1d(n)
        rng = np.random.default_rng(0)
        b = rng.standard_normal(n)
        rho_j = np.cos(np.pi / (n + 1))
        omega_opt = 2.0 / (1.0 + np.sqrt(1.0 - rho_j**2))
        gs = gauss_seidel(A, b, tol=1e-8, max_iterations=10_000)
        s = sor(A, b, omega=omega_opt, tol=1e-8, max_iterations=10_000)
        assert s.converged
        assert s.iterations < 0.5 * gs.iterations

    def test_sor_rejects_bad_omega(self, small_fd):
        with pytest.raises(ValueError):
            sor(small_fd, np.zeros(small_fd.nrows), omega=2.5)


class TestColoring:
    def test_coloring_is_proper(self, small_fd):
        colors = greedy_coloring(small_fd)
        for i in range(small_fd.nrows):
            assert np.all(colors[small_fd.neighbors(i)] != colors[i])

    def test_grid_needs_two_colors(self):
        """A bipartite grid graph takes exactly 2 greedy colors."""
        A = fd_laplacian_2d(5, 5)
        assert greedy_coloring(A).max() == 1


class TestMulticolorGS:
    def test_converges_like_gs(self, fd_system):
        A, b, x_exact = fd_system
        hist = multicolor_gauss_seidel(A, b, tol=1e-8, max_iterations=5000)
        assert hist.converged
        np.testing.assert_allclose(hist.x, x_exact, atol=1e-5)

    def test_red_black_equals_color_sweeps(self, tiny_fd, rng):
        """One multicolor sweep = masked Jacobi per color class, in order."""
        A = tiny_fd
        b = rng.standard_normal(A.nrows)
        colors = greedy_coloring(A)
        hist = multicolor_gauss_seidel(A, b, colors=colors, tol=1e-300, max_iterations=1)
        dense = A.to_dense()
        x = np.zeros(A.nrows)
        d = np.diag(dense)
        for c in range(colors.max() + 1):
            mask = colors == c
            r = b - dense @ x
            x[mask] += r[mask] / d[mask]
        np.testing.assert_allclose(hist.x, x, rtol=1e-13)

    def test_invalid_colors_shape(self, small_fd):
        with pytest.raises(ShapeError):
            multicolor_gauss_seidel(
                small_fd, np.zeros(small_fd.nrows), colors=np.zeros(3, dtype=np.int64)
            )
