"""Trace reconstruction: the Figure 1 examples and structural invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.reconstruct import (
    ExecutionTrace,
    Relaxation,
    reconstruct_propagation_steps,
)
from repro.util.errors import ScheduleError


def fig1a_trace():
    """Paper Figure 1(a): expressible as Phi = {4}, {1, 2}, {3} (1-based)."""
    tr = ExecutionTrace(4)
    tr.record(0, 1.0, {1: 0, 2: 0})  # p1 reads s12=0, s13=0
    tr.record(3, 2.0, {1: 0, 2: 0})  # p4 reads s42=0, s43=0
    tr.record(1, 3.0, {0: 0, 3: 1})  # p2 reads s21=0, s24=1
    tr.record(2, 4.0, {0: 1, 3: 1})  # p3 reads s31=1, s34=1
    return tr


def fig1b_trace():
    """Paper Figure 1(b): p3's relaxation cannot be expressed."""
    tr = ExecutionTrace(4)
    tr.record(3, 1.0, {1: 0, 2: 0})
    tr.record(0, 2.0, {1: 1, 2: 0})  # s12 = 1
    tr.record(1, 3.0, {0: 0, 3: 1})
    tr.record(2, 4.0, {0: 1, 3: 0})  # s34 = 0 (old)
    return tr


class TestPaperExamples:
    def test_fig1a_fully_propagated(self):
        rec = reconstruct_propagation_steps(fig1a_trace())
        assert rec.fraction_propagated == 1.0
        # The paper's ordering: {4}, {1, 2}, {3} (0-based: {3}, {0,1}, {2}).
        assert [s.tolist() for s in rec.phi] == [[3], [0, 1], [2]]

    def test_fig1b_three_of_four(self):
        rec = reconstruct_propagation_steps(fig1b_trace())
        assert rec.propagated == 3
        assert rec.non_propagated == 1
        # p3 (row 2) is the out-of-band relaxation.
        flags = dict(zip((r.row for r in fig1b_trace()), rec.flags))
        assert flags[2] is False


class TestInvariants:
    def test_sequential_trace_fully_propagated(self):
        """Strictly sequential relaxations reading current values are all
        expressible (each its own Phi step)."""
        n = 6
        tr = ExecutionTrace(n)
        ver = [0] * n
        t = 0.0
        rng = np.random.default_rng(0)
        for _ in range(50):
            i = int(rng.integers(0, n))
            t += 1.0
            nbrs = [(i - 1) % n, (i + 1) % n]
            tr.record(i, t, {j: ver[j] for j in nbrs})
            ver[i] += 1
        rec = reconstruct_propagation_steps(tr)
        assert rec.fraction_propagated == 1.0

    def test_synchronous_trace_single_steps(self):
        """Lockstep rounds reading the previous round are one Phi step each."""
        n = 5
        tr = ExecutionTrace(n)
        for k in range(4):
            for i in range(n):
                tr.record(i, float(k), {j: k for j in range(n) if j != i})
        rec = reconstruct_propagation_steps(tr)
        assert rec.fraction_propagated == 1.0
        assert len(rec.phi) == 4
        for step in rec.phi:
            np.testing.assert_array_equal(step, np.arange(n))

    def test_every_relaxation_accounted(self):
        tr = fig1b_trace()
        rec = reconstruct_propagation_steps(tr)
        assert rec.total == len(tr) == 4
        assert len(rec.flags) == 4

    def test_phi_rows_unique_per_step(self):
        rec = reconstruct_propagation_steps(fig1a_trace())
        for step in rec.phi:
            assert len(step) == len(set(step.tolist()))

    def test_phi_relaxation_count_matches(self):
        rec = reconstruct_propagation_steps(fig1a_trace())
        assert sum(len(s) for s in rec.phi) == rec.propagated

    def test_genuinely_stale_read_costs_one(self):
        """Two relaxations of row 0 read row 1 at version 0, and row 1 reads
        row 0 at version 0: at most one of the conflicting reads can be
        ordered consistently, so exactly one relaxation is non-propagated
        (either row 0's second — stale after row 1 merges with the first —
        or row 1's; both orderings are valid and cost one)."""
        tr = ExecutionTrace(2)
        tr.record(0, 1.0, {1: 0})
        tr.record(0, 2.0, {1: 0})
        tr.record(1, 3.0, {0: 0})
        rec = reconstruct_propagation_steps(tr)
        assert rec.propagated == 2
        assert rec.non_propagated == 1

    def test_empty_trace(self):
        rec = reconstruct_propagation_steps(ExecutionTrace(3))
        assert rec.total == 0
        assert rec.fraction_propagated == 1.0


class TestExecutionTrace:
    def test_indices_increment_per_row(self):
        tr = ExecutionTrace(2)
        r1 = tr.record(0, 0.0, {})
        r2 = tr.record(0, 1.0, {})
        assert (r1.index, r2.index) == (1, 2)
        assert len(tr.relaxations_of(0)) == 2
        assert len(tr.relaxations_of(1)) == 0

    def test_validation(self):
        tr = ExecutionTrace(2)
        with pytest.raises(ScheduleError):
            tr.record(5, 0.0, {})
        with pytest.raises(ScheduleError):
            tr.record(0, 0.0, {9: 0})
        with pytest.raises(ScheduleError):
            tr.record(0, 0.0, {1: -1})
        with pytest.raises(ScheduleError):
            ExecutionTrace(0)


@settings(max_examples=25, deadline=None)
@given(st.integers(2, 8), st.integers(5, 40), st.integers(0, 2**31 - 1))
def test_property_sequential_real_executions_fully_propagate(n, steps, seed):
    """Any sequential execution whose reads are the then-current versions
    reconstructs at 100% — reconstruction never undercounts the easy case."""
    rng = np.random.default_rng(seed)
    tr = ExecutionTrace(n)
    ver = [0] * n
    for t in range(steps):
        i = int(rng.integers(0, n))
        nbrs = rng.choice(n, size=min(3, n), replace=False)
        tr.record(i, float(t), {int(j): ver[j] for j in nbrs if j != i})
        ver[i] += 1
    rec = reconstruct_propagation_steps(tr)
    assert rec.fraction_propagated == 1.0


@settings(max_examples=20, deadline=None)
@given(st.integers(2, 6), st.integers(4, 24), st.integers(0, 2**31 - 1))
def test_property_flags_partition_total(n, steps, seed):
    """propagated + non_propagated == total, flags align with the trace."""
    rng = np.random.default_rng(seed)
    tr = ExecutionTrace(n)
    ver = [0] * n
    for t in range(steps):
        i = int(rng.integers(0, n))
        # Occasionally record a deliberately stale read.
        reads = {}
        for j in range(n):
            if j == i:
                continue
            v = ver[j]
            if rng.random() < 0.2 and v > 0:
                v -= 1
            reads[j] = v
        tr.record(i, float(t), reads)
        ver[i] += 1
    rec = reconstruct_propagation_steps(tr)
    assert rec.propagated + rec.non_propagated == steps
    assert sum(rec.flags) == rec.propagated
