"""Interlacing and decoupling analysis (Sections IV-C/D)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.analysis import (
    check_interlacing,
    connected_components,
    decoupling_report,
    full_eigenvalues,
    submatrix_eigenvalues,
)
from repro.matrices.laplacian import fd_laplacian_2d
from repro.matrices.sparse import CSRMatrix


class TestEigenvalues:
    def test_full_eigenvalues_sorted(self, small_fd):
        lam = full_eigenvalues(small_fd)
        assert np.all(np.diff(lam) >= 0)
        assert lam.size == small_fd.nrows

    def test_submatrix_eigenvalues_match_dense(self, small_fd, rng):
        active = np.sort(rng.choice(small_fd.nrows, size=10, replace=False))
        mu = submatrix_eigenvalues(small_fd, active)
        G = np.eye(small_fd.nrows) - small_fd.to_dense()
        expected = np.sort(np.linalg.eigvalsh(G[np.ix_(active, active)]))
        np.testing.assert_allclose(mu, expected, atol=1e-10)


class TestInterlacing:
    def test_holds_on_fd(self, small_fd, rng):
        active = np.sort(rng.choice(small_fd.nrows, size=20, replace=False))
        check = check_interlacing(small_fd, active)
        assert check.holds
        assert check.n == small_fd.nrows and check.m == 20

    def test_single_active_row(self, small_fd):
        check = check_interlacing(small_fd, np.array([3]))
        assert check.holds

    def test_all_active_rows(self, small_fd):
        check = check_interlacing(small_fd, np.arange(small_fd.nrows))
        assert check.holds
        np.testing.assert_allclose(check.mu, check.lam, atol=1e-12)


class TestComponents:
    def test_connected_grid(self, small_fd):
        comps = connected_components(small_fd)
        assert len(comps) == 1
        assert comps[0].size == small_fd.nrows

    def test_two_components(self):
        dense = np.zeros((4, 4))
        dense[[0, 1], [1, 0]] = 1.0
        dense[[2, 3], [3, 2]] = 1.0
        np.fill_diagonal(dense, 2.0)
        comps = connected_components(CSRMatrix.from_dense(dense))
        assert [c.tolist() for c in comps] == [[0, 1], [2, 3]]

    def test_isolated_rows(self):
        comps = connected_components(CSRMatrix.from_dense(np.eye(3)))
        assert len(comps) == 3


class TestDecoupling:
    def test_deleting_a_grid_line_decouples(self):
        """Removing one full grid line splits a 2-D grid into two blocks,
        each with smaller spectral radius (the Section IV-D mechanism)."""
        nx, ny = 7, 5
        A = fd_laplacian_2d(nx, ny)
        middle_line = np.arange(3 * ny, 4 * ny)  # grid line ix=3
        active = np.setdiff1d(np.arange(nx * ny), middle_line)
        rep = decoupling_report(A, active)
        assert rep.n_blocks == 2
        assert rep.block_sizes == [3 * ny, 3 * ny]
        assert rep.rho_submatrix <= rep.rho_full + 1e-12
        assert rep.rho_max_block < rep.rho_full

    def test_rho_chain_ordering(self, small_fd, rng):
        """rho(block) <= rho(G-tilde) <= rho(G) for random active sets."""
        n = small_fd.nrows
        for _ in range(5):
            active = np.sort(rng.choice(n, size=n // 2, replace=False))
            rep = decoupling_report(small_fd, active)
            assert rep.rho_max_block <= rep.rho_submatrix + 1e-10
            assert rep.rho_submatrix <= rep.rho_full + 1e-10

    def test_more_delays_smaller_radius(self, rng):
        """Growing the delayed set shrinks (weakly) the active radius —
        why more concurrency improves asynchronous convergence."""
        A = fd_laplacian_2d(8, 8)
        n = A.nrows
        order = rng.permutation(n)
        radii = []
        for m in (60, 40, 20, 8):
            rep = decoupling_report(A, np.sort(order[:m]))
            radii.append(rep.rho_submatrix)
        assert all(radii[i + 1] <= radii[i] + 1e-10 for i in range(len(radii) - 1))


class TestPropagationNormHistory:
    def test_wdd_delayed_schedule_all_ones(self, small_fd):
        """Theorem 1 along a schedule: with a delayed row every step's norms
        are exactly 1."""
        from repro.core.analysis import propagation_norm_history
        from repro.core.schedules import DelayedRowsSchedule

        sched = DelayedRowsSchedule(small_fd.nrows, {3: None})
        hist = propagation_norm_history(small_fd, sched, steps=5)
        assert len(hist) == 5
        for g_inf, h_1 in hist:
            assert g_inf == pytest.approx(1.0)
            assert h_1 == pytest.approx(1.0)

    def test_full_steps_dip_below_one_for_strict_dominance(self):
        """All rows active on a strictly dominant matrix: norms < 1."""
        from repro.core.analysis import propagation_norm_history
        from repro.core.schedules import SynchronousSchedule
        from repro.matrices.suitesparse import parabolic_fem_like

        A = parabolic_fem_like(100)
        hist = propagation_norm_history(A, SynchronousSchedule(A.nrows), steps=2)
        for g_inf, h_1 in hist:
            assert g_inf < 1.0
            assert h_1 < 1.0


@settings(max_examples=25, deadline=None)
@given(st.integers(4, 12), st.integers(1, 11), st.integers(0, 2**31 - 1))
def test_property_interlacing_random_symmetric(n, m, seed):
    """Cauchy interlacing for arbitrary random symmetric unit-diagonal A."""
    m = min(m, n)
    rng = np.random.default_rng(seed)
    off = rng.standard_normal((n, n)) * (rng.random((n, n)) < 0.6)
    off = (off + off.T) / 2
    np.fill_diagonal(off, 0.0)
    A = CSRMatrix.from_dense(np.eye(n) + 0.3 * off)
    active = np.sort(rng.choice(n, size=m, replace=False))
    assert check_interlacing(A, active).holds
