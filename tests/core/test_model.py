"""Model executors: equivalence with classical methods, delays, staleness."""

import numpy as np
import pytest

from repro.core.iteration import gauss_seidel, jacobi
from repro.core.model import (
    AsyncJacobiModel,
    StaleAsyncJacobiModel,
    StalenessModel,
    model_speedup,
)
from repro.core.schedules import (
    BlockSequentialSchedule,
    DelayedRowsSchedule,
    SynchronousSchedule,
    TraceSchedule,
)
from repro.matrices.laplacian import paper_fd_matrix
from repro.util.errors import ShapeError


@pytest.fixture
def system(rng):
    A = paper_fd_matrix(68)
    b = rng.uniform(-1, 1, 68)
    x0 = rng.uniform(-1, 1, 68)
    return A, b, x0


class TestModelEquivalences:
    def test_synchronous_schedule_is_jacobi(self, system):
        """Model + all-rows schedule == classical synchronous Jacobi."""
        A, b, x0 = system
        model = AsyncJacobiModel(A, b)
        res = model.run(SynchronousSchedule(A.nrows), x0=x0, tol=1e-6, max_steps=5000)
        hist = jacobi(A, b, x0=x0, tol=1e-6, max_iterations=5000)
        assert res.steps == hist.iterations
        np.testing.assert_allclose(res.x, hist.x, rtol=1e-12)
        np.testing.assert_allclose(res.residual_norms, hist.residual_norms, rtol=1e-10)

    def test_one_row_blocks_is_gauss_seidel(self, system):
        """Model + single-row sequential schedule == Gauss-Seidel (Eq. 9)."""
        A, b, x0 = system
        n = A.nrows
        model = AsyncJacobiModel(A, b)
        sched = BlockSequentialSchedule(np.arange(n))
        res = model.run(sched, x0=x0, tol=1e-300, max_steps=3 * n, record_every=n)
        hist = gauss_seidel(A, b, x0=x0, tol=1e-300, max_iterations=3)
        np.testing.assert_allclose(res.x, hist.x, rtol=1e-12)

    def test_multiplicative_beats_additive(self, system):
        """Block-sequential (multiplicative) needs fewer relaxations than
        synchronous Jacobi — the Section IV-B asymptotic claim."""
        A, b, x0 = system
        n = A.nrows
        model = AsyncJacobiModel(A, b)
        sync = model.run(SynchronousSchedule(n), x0=x0, tol=1e-4, max_steps=10_000)
        from repro.partition.partitioner import contiguous_partition

        seq = model.run(
            BlockSequentialSchedule(contiguous_partition(n, 17)),
            x0=x0, tol=1e-4, max_steps=200_000, record_every=17,
        )
        assert seq.relaxations_to_tolerance(1e-4) < sync.relaxations_to_tolerance(1e-4)


class TestDelayedRuns:
    def test_frozen_row_still_reduces_residual(self, system):
        """Theorem 1 consequence: even a never-relaxing row leaves a
        decreasing residual (Fig. 4 largest-delay curve)."""
        A, b, x0 = system
        model = AsyncJacobiModel(A, b)
        res = model.run(
            DelayedRowsSchedule(A.nrows, {34: None}), x0=x0, tol=1e-300, max_steps=300
        )
        r = np.asarray(res.residual_norms)
        assert r[-1] < 0.1 * r[0]
        assert np.all(np.diff(r) <= 1e-12)  # L1 norm never increases (W.D.D.)

    def test_speedup_grows_then_plateaus(self, system):
        """Figure 3 shape: monotone-ish growth, then saturation."""
        A, b, x0 = system
        speedups = []
        for delay in (5, 20, 100):
            s, _, _ = model_speedup(A, b, delay=delay, x0=x0, tol=1e-3)
            speedups.append(s)
        assert speedups[0] < speedups[1] <= speedups[2] * 1.05
        assert speedups[2] > 10

    def test_zero_delay_speedup_is_one(self, system):
        A, b, x0 = system
        s, _, _ = model_speedup(A, b, delay=0, x0=x0)
        assert s == pytest.approx(1.0)

    def test_sawtooth_at_large_delay(self, system):
        """At large-but-finite delays the async residual stalls between the
        delayed row's relaxations and drops when it fires."""
        A, b, x0 = system
        model = AsyncJacobiModel(A, b)
        res = model.run(
            DelayedRowsSchedule(A.nrows, {34: 60}), x0=x0, tol=1e-300, max_steps=240
        )
        r = np.asarray(res.residual_norms)
        # Drops at the delayed row's firing steps are much larger than the
        # stalled decay right before them.
        drop_at_fire = r[59] - r[60]
        stall_before = r[58] - r[59]
        assert drop_at_fire > 5 * max(stall_before, 1e-16)


class TestRecording:
    def test_record_every(self, system):
        A, b, x0 = system
        model = AsyncJacobiModel(A, b)
        res = model.run(
            SynchronousSchedule(A.nrows), x0=x0, tol=1e-300, max_steps=10, record_every=5
        )
        assert len(res.times) == 3  # t=0 plus steps 5 and 10
        assert res.relaxation_counts[-1] == 10 * A.nrows

    def test_time_to_tolerance_inf_when_unreached(self, system):
        A, b, x0 = system
        model = AsyncJacobiModel(A, b)
        res = model.run(SynchronousSchedule(A.nrows), x0=x0, tol=1e-300, max_steps=5)
        assert res.time_to_tolerance(1e-300) == float("inf")

    def test_max_time_stops_run(self, system):
        A, b, x0 = system
        model = AsyncJacobiModel(A, b)
        res = model.run(
            SynchronousSchedule(A.nrows, delay=2.0), x0=x0, tol=1e-300, max_steps=100, max_time=9.0
        )
        assert res.steps == 4  # steps at t=2,4,6,8; t=10 exceeds max_time

    def test_schedule_size_mismatch(self, system):
        A, b, _ = system
        model = AsyncJacobiModel(A, b)
        with pytest.raises(ShapeError):
            model.run(SynchronousSchedule(10))


class TestStaleness:
    def test_zero_lag_matches_exact_model(self, system):
        A, b, x0 = system
        sched_a = SynchronousSchedule(A.nrows)
        sched_b = SynchronousSchedule(A.nrows)
        exact = AsyncJacobiModel(A, b).run(sched_a, x0=x0, tol=1e-6, max_steps=2000)
        stale = StaleAsyncJacobiModel(A, b, StalenessModel(max_lag=0)).run(
            sched_b, x0=x0, tol=1e-6, max_steps=2000
        )
        np.testing.assert_allclose(stale.x, exact.x, rtol=1e-12)
        assert stale.steps == exact.steps

    def test_stale_still_converges(self, system):
        """Bounded staleness keeps convergence (Chazan-Miranker regime)."""
        A, b, x0 = system
        model = StaleAsyncJacobiModel(A, b, StalenessModel(max_lag=4, seed=0))
        res = model.run(SynchronousSchedule(A.nrows), x0=x0, tol=1e-4, max_steps=20_000)
        assert res.converged

    def test_stale_slower_than_exact(self, system):
        """Staleness costs steps — the ablation's headline."""
        A, b, x0 = system
        sched = SynchronousSchedule(A.nrows)
        exact = AsyncJacobiModel(A, b).run(sched, x0=x0, tol=1e-4, max_steps=50_000)
        stale = StaleAsyncJacobiModel(A, b, StalenessModel(max_lag=6, seed=0)).run(
            SynchronousSchedule(A.nrows), x0=x0, tol=1e-4, max_steps=50_000
        )
        assert stale.steps > exact.steps

    def test_staleness_model_validation(self):
        with pytest.raises(ValueError):
            StalenessModel(max_lag=-1)
        with pytest.raises(ValueError):
            StalenessModel(max_lag=1, distribution="weird")


class TestDampedModel:
    def test_damped_sync_matches_classical_damped_jacobi(self, system):
        A, b, x0 = system
        omega = 0.7
        model = AsyncJacobiModel(A, b, omega=omega)
        res = model.run(SynchronousSchedule(A.nrows), x0=x0, tol=1e-300, max_steps=3)
        dense = A.to_dense()
        x = x0.copy()
        d = np.diag(dense)
        for _ in range(3):
            x = x + omega * (b - dense @ x) / d
        np.testing.assert_allclose(res.x, x, rtol=1e-12)

    def test_omega_validation(self, system):
        A, b, _ = system
        with pytest.raises(ValueError):
            AsyncJacobiModel(A, b, omega=2.5)

    def test_overrelaxation_converges_when_stable(self, system):
        """omega slightly above 1 still converges on the FD matrix
        (rho(I - omega A) < 1 for omega < 2 / lambda_max)."""
        A, b, x0 = system
        model = AsyncJacobiModel(A, b, omega=1.05)
        res = model.run(SynchronousSchedule(A.nrows), x0=x0, tol=1e-4, max_steps=20_000)
        assert res.converged


class TestTraceReplay:
    def test_trace_schedule_runs(self, system):
        A, b, x0 = system
        n = A.nrows
        steps = [(float(k), np.arange(n)) for k in range(1, 6)]
        model = AsyncJacobiModel(A, b)
        res = model.run(TraceSchedule(n, steps), x0=x0, tol=1e-300)
        assert res.steps == 5
        assert res.relaxations == 5 * n


class TestIncrementalResiduals:
    """Incremental residual maintenance in the sequential executor."""

    def test_dense_schedule_is_exact(self, system):
        """Dense steps recompute the residual: histories are bitwise
        identical between modes, with no drift at any tolerance."""
        A, b, x0 = system
        model = AsyncJacobiModel(A, b)
        kwargs = dict(x0=x0, tol=1e-8, max_steps=50_000)
        inc = model.run(SynchronousSchedule(A.nrows), residual_mode="incremental", **kwargs)
        full = model.run(SynchronousSchedule(A.nrows), residual_mode="full", **kwargs)
        assert inc.residual_norms == full.residual_norms
        np.testing.assert_array_equal(inc.x, full.x)

    def test_sparse_schedule_within_tolerance(self, system):
        """Satellite criterion: <= 1e-12 relative drift at the paper's
        working tolerance on the FD matrix."""
        from repro.core.schedules import RandomSubsetSchedule

        A, b, x0 = system
        model = AsyncJacobiModel(A, b)
        kwargs = dict(x0=x0, tol=1e-4, max_steps=200_000, recompute_every=64)
        sched = lambda: RandomSubsetSchedule(A.nrows, 0.2, seed=11)
        inc = model.run(sched(), residual_mode="incremental", **kwargs)
        full = model.run(sched(), residual_mode="full", **kwargs)
        a = np.asarray(inc.residual_norms)
        f = np.asarray(full.residual_norms)
        m = min(a.size, f.size)
        rel = np.abs(a[:m] - f[:m]) / np.maximum(np.abs(f[:m]), 1e-300)
        assert rel.max() <= 1e-12

    def test_periodic_recompute_bounds_drift(self, system):
        """A tiny recompute_every must agree with full mode even on long
        sparse-step runs (the safeguard works)."""
        from repro.core.schedules import RandomSubsetSchedule

        A, b, x0 = system
        model = AsyncJacobiModel(A, b)
        kwargs = dict(x0=x0, tol=1e-6, max_steps=300_000)
        sched = lambda: RandomSubsetSchedule(A.nrows, 0.1, seed=5)
        tight = model.run(sched(), residual_mode="incremental",
                          recompute_every=8, **kwargs)
        full = model.run(sched(), residual_mode="full", **kwargs)
        assert tight.converged == full.converged
        np.testing.assert_allclose(tight.x, full.x, rtol=1e-8)

    def test_convergence_is_confirmed(self, system):
        """Termination is re-checked on a fresh residual, so a converged
        result's last recorded norm matches an exact recomputation."""
        from repro.util.norms import relative_residual_norm

        A, b, x0 = system
        res = AsyncJacobiModel(A, b).run(
            SynchronousSchedule(A.nrows), x0=x0, tol=1e-3, max_steps=50_000
        )
        assert res.converged
        exact = relative_residual_norm(A, res.x, b)
        assert abs(res.residual_norms[-1] - exact) <= 1e-12 * max(exact, 1e-300)

    def test_rejects_bad_residual_mode(self, system):
        A, b, x0 = system
        with pytest.raises(ValueError):
            AsyncJacobiModel(A, b).run(
                SynchronousSchedule(A.nrows), x0=x0, residual_mode="lazy"
            )
