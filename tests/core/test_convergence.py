"""Convergence diagnostics: rates, divergence/stall detection, tracker."""

import numpy as np
import pytest

from repro.core.convergence import (
    ResidualTracker,
    asymptotic_rate,
    detect_divergence,
    detect_stall,
)
from repro.core.iteration import jacobi
from repro.matrices.laplacian import fd_laplacian_1d
from repro.matrices.properties import jacobi_spectral_radius


class TestAsymptoticRate:
    def test_exact_geometric(self):
        history = [0.5**k for k in range(40)]
        assert asymptotic_rate(history) == pytest.approx(0.5, abs=1e-9)

    def test_estimates_jacobi_rho(self, rng):
        """The measured tail rate of synchronous Jacobi approximates rho(G)."""
        n = 20
        A = fd_laplacian_1d(n)
        b = rng.standard_normal(n)
        hist = jacobi(A, b, tol=1e-12, max_iterations=400)
        rho = jacobi_spectral_radius(A)
        assert asymptotic_rate(hist.residual_norms) == pytest.approx(rho, abs=0.02)

    def test_too_short_is_nan(self):
        assert np.isnan(asymptotic_rate([1.0, 0.5]))

    def test_ignores_nonpositive(self):
        history = [1.0, 0.5, 0.0, 0.25, 0.125, 0.0625]
        assert asymptotic_rate(history) < 1.0


class TestDetectors:
    def test_divergence_detected(self):
        history = [1.0, 0.5, 0.1, 200.0]
        assert detect_divergence(history, factor=1e3)

    def test_monotone_decay_not_divergent(self):
        assert not detect_divergence([2.0 * 0.9**k for k in range(50)])

    def test_sawtooth_not_divergent(self):
        """Small local rises (racy noise) must not trip the detector."""
        history = [1.0, 0.5, 0.55, 0.3, 0.32, 0.2]
        assert not detect_divergence(history)

    def test_stall_detected(self):
        history = [1.0, 0.5] + [0.1] * 30
        assert detect_stall(history, window=20)

    def test_progress_is_not_a_stall(self):
        history = [0.9**k for k in range(40)]
        assert not detect_stall(history, window=20)

    def test_short_history_no_stall(self):
        assert not detect_stall([1.0, 1.0], window=20)


class TestResidualTracker:
    def test_converged(self):
        tr = ResidualTracker(tol=1e-3)
        verdict = None
        for r in (1.0, 0.1, 1e-4):
            verdict = tr.update(r)
        assert verdict.status == "converged"
        assert verdict.best == 1e-4

    def test_warming_up_then_converging(self):
        tr = ResidualTracker(tol=1e-12, window=5)
        for k in range(4):
            v = tr.update(0.8**k)
        assert v.status == "warming-up"
        for k in range(4, 12):
            v = tr.update(0.8**k)
        assert v.status == "converging"
        assert v.rate == pytest.approx(0.8, abs=1e-9)

    def test_diverging(self):
        tr = ResidualTracker(tol=1e-12, window=3, divergence_factor=100.0)
        tr.update(1.0)
        tr.update(0.01)
        v = tr.update(5.0)  # 500x over the best
        assert v.status == "diverging"

    def test_nonfinite_counts_as_divergence(self):
        tr = ResidualTracker(tol=1e-3)
        v = tr.update(float("inf"))
        assert v.status == "diverging"
        v = tr.update(float("nan"))
        assert v.status == "diverging"
        assert tr.count == 2

    def test_stalled(self):
        tr = ResidualTracker(tol=1e-12, window=5, stall_decay=1e-3)
        for _ in range(10):
            v = tr.update(0.5)
        assert v.status == "stalled"

    def test_validation(self):
        with pytest.raises(ValueError):
            ResidualTracker(tol=0.0)
        with pytest.raises(ValueError):
            ResidualTracker(tol=1e-3, window=1)
