"""Update-set schedules: timing laws, fairness, validation."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.schedules import (
    BlockSequentialSchedule,
    DelayedRowsSchedule,
    OverlappedBlockSchedule,
    RandomSubsetSchedule,
    SynchronousSchedule,
    TraceSchedule,
)
from repro.partition.partitioner import contiguous_partition
from repro.util.errors import ScheduleError


def take(schedule, k):
    return list(itertools.islice(schedule.steps(), k))


class TestSynchronous:
    def test_all_rows_every_step(self):
        sched = SynchronousSchedule(5)
        for step in take(sched, 4):
            np.testing.assert_array_equal(step.rows, np.arange(5))
        assert sched.is_synchronous

    def test_time_scales_with_delay(self):
        sched = SynchronousSchedule(3, delay=7.0)
        times = [s.time for s in take(sched, 3)]
        assert times == [7.0, 14.0, 21.0]

    def test_rejects_nonpositive_delay(self):
        with pytest.raises(ScheduleError):
            SynchronousSchedule(3, delay=0.0)


class TestDelayedRows:
    def test_delayed_row_fires_at_multiples(self):
        sched = DelayedRowsSchedule(4, {2: 3})
        steps = take(sched, 6)
        for k, step in enumerate(steps, start=1):
            has_row2 = 2 in step.rows
            assert has_row2 == (k % 3 == 0)
            # All other rows fire every step.
            assert {0, 1, 3} <= set(step.rows.tolist())

    def test_infinite_delay_never_fires(self):
        sched = DelayedRowsSchedule(4, {1: None})
        for step in take(sched, 10):
            assert 1 not in step.rows

    def test_inf_float_equals_none(self):
        s1 = DelayedRowsSchedule(4, {1: float("inf")})
        assert s1.delays[1] is None

    def test_multiple_delays(self):
        sched = DelayedRowsSchedule(6, {0: 2, 5: 3})
        steps = take(sched, 6)
        assert 0 in steps[1].rows and 0 not in steps[0].rows
        assert 5 in steps[2].rows and 5 not in steps[1].rows

    def test_rejects_bad_delay(self):
        with pytest.raises(ScheduleError):
            DelayedRowsSchedule(4, {0: 0})
        with pytest.raises(ScheduleError):
            DelayedRowsSchedule(4, {0: 1.5})
        with pytest.raises(ScheduleError):
            DelayedRowsSchedule(4, {9: 2})


class TestRandomSubset:
    def test_expected_fraction(self):
        sched = RandomSubsetSchedule(200, 0.3, seed=0)
        fractions = [s.rows.size / 200 for s in take(sched, 50)]
        assert 0.25 < np.mean(fractions) < 0.35

    def test_never_empty(self):
        sched = RandomSubsetSchedule(3, 0.05, seed=1)
        for step in take(sched, 30):
            assert step.rows.size >= 1

    def test_rejects_bad_fraction(self):
        with pytest.raises(ScheduleError):
            RandomSubsetSchedule(5, 0.0)
        with pytest.raises(ScheduleError):
            RandomSubsetSchedule(5, 1.5)


class TestBlockSequential:
    def test_cycles_blocks_in_order(self):
        labels = contiguous_partition(6, 3)
        steps = take(BlockSequentialSchedule(labels), 6)
        np.testing.assert_array_equal(steps[0].rows, [0, 1])
        np.testing.assert_array_equal(steps[1].rows, [2, 3])
        np.testing.assert_array_equal(steps[2].rows, [4, 5])
        np.testing.assert_array_equal(steps[3].rows, [0, 1])  # wraps

    def test_one_row_blocks_is_gauss_seidel_order(self):
        labels = np.arange(5)
        steps = take(BlockSequentialSchedule(labels), 5)
        assert [s.rows.tolist() for s in steps] == [[0], [1], [2], [3], [4]]

    def test_shuffle_is_fair_per_round(self):
        labels = contiguous_partition(8, 4)
        steps = take(BlockSequentialSchedule(labels, shuffle=True, seed=3), 8)
        first_round = np.sort(np.concatenate([s.rows for s in steps[:4]]))
        np.testing.assert_array_equal(first_round, np.arange(8))

    def test_rejects_empty_block(self):
        with pytest.raises(ScheduleError):
            BlockSequentialSchedule(np.array([0, 0, 2, 2]))  # label 1 empty


class TestOverlappedBlocks:
    def test_concurrency_block_count(self):
        labels = contiguous_partition(12, 6)
        sched = OverlappedBlockSchedule(labels, concurrency=2, seed=0)
        for step in take(sched, 3):
            assert step.rows.size == 4  # 2 blocks x 2 rows

    def test_round_fairness(self):
        """Every block relaxes exactly once per round."""
        labels = contiguous_partition(12, 6)
        sched = OverlappedBlockSchedule(labels, concurrency=4, seed=1)
        steps = take(sched, 2)  # ceil(6/4) = 2 steps per round
        seen = np.sort(np.concatenate([s.rows for s in steps]))
        np.testing.assert_array_equal(seen, np.arange(12))

    def test_extremes(self):
        labels = contiguous_partition(6, 3)
        full = OverlappedBlockSchedule(labels, concurrency=3, seed=0)
        step = take(full, 1)[0]
        np.testing.assert_array_equal(step.rows, np.arange(6))  # == synchronous
        single = OverlappedBlockSchedule(labels, concurrency=1, seed=0)
        assert take(single, 1)[0].rows.size == 2  # == block sequential

    def test_rejects_bad_concurrency(self):
        labels = contiguous_partition(6, 3)
        with pytest.raises(ScheduleError):
            OverlappedBlockSchedule(labels, concurrency=0)
        with pytest.raises(ScheduleError):
            OverlappedBlockSchedule(labels, concurrency=4)


class TestTraceSchedule:
    def test_replay(self):
        sched = TraceSchedule(4, [(0.5, [0, 1]), (1.0, [2]), (1.5, [3])])
        steps = take(sched, 10)  # exhausts after 3
        assert len(steps) == 3
        assert len(sched) == 3
        np.testing.assert_array_equal(steps[1].rows, [2])

    def test_rejects_decreasing_times(self):
        with pytest.raises(ScheduleError):
            TraceSchedule(4, [(1.0, [0]), (0.5, [1])])

    def test_rejects_out_of_range_rows(self):
        with pytest.raises(ScheduleError):
            TraceSchedule(2, [(0.0, [5])])


@settings(max_examples=25, deadline=None)
@given(st.integers(1, 30), st.integers(2, 9), st.integers(0, 2**31 - 1))
def test_property_delayed_schedule_coverage(n, delay, seed):
    """Over `delay` consecutive steps every row relaxes at least once
    (assumption 2 of Section II-B: all rows eventually relax)."""
    rng = np.random.default_rng(seed)
    row = int(rng.integers(0, n))
    sched = DelayedRowsSchedule(n, {row: delay})
    seen = set()
    for step in itertools.islice(sched.steps(), delay):
        seen.update(step.rows.tolist())
    assert seen == set(range(n))
