"""Propagation-matrix extensions for the method family.

The scaled forms must coincide with the historical ``omega`` forms for
Jacobi scales; the sequential product must be exactly what one SOR block
step does to the error; the momentum companion must drive the stacked
error of a second-order step.
"""

import numpy as np
import pytest

from repro.core.propagation import (
    error_propagation_matrix,
    matrix_norm_1,
    matrix_norm_inf,
    relaxation_mask,
    residual_propagation_matrix,
    scaled_error_propagation_matrix,
    scaled_residual_propagation_matrix,
    scaled_theorem1_report,
    second_order_companion_matrix,
    sequential_propagation_matrix,
)
from repro.matrices.laplacian import fd_laplacian_2d
from repro.methods import Jacobi, Richardson, StepAsyncSOR
from repro.methods.kernels import sor_step_dense
from repro.util.errors import ShapeError


@pytest.fixture
def lap():
    return fd_laplacian_2d(4, 4)


@pytest.fixture
def mask(lap):
    return relaxation_mask(lap.nrows, [0, 2, 3, 5, 9, 11, 14])


def test_scaled_forms_reduce_to_omega_forms_for_jacobi(lap, mask):
    for omega in (1.0, 0.75):
        scale = Jacobi(omega=omega).scale(lap)
        G = scaled_error_propagation_matrix(lap, mask, scale)
        H = scaled_residual_propagation_matrix(lap, mask, scale)
        assert np.array_equal(
            G.to_dense(), error_propagation_matrix(lap, mask, omega).to_dense()
        )
        assert np.array_equal(
            H.to_dense(),
            residual_propagation_matrix(lap, mask, omega).to_dense(),
        )


def test_scaled_error_matrix_drives_the_error(lap, mask):
    rng = np.random.default_rng(0)
    scale = Richardson(alpha=0.3).scale(lap)
    b = rng.uniform(-1, 1, lap.nrows)
    x_true = np.linalg.solve(lap.to_dense(), b)
    x = rng.standard_normal(lap.nrows)
    r = b - lap.matvec(x)
    x_new = x.copy()
    x_new[mask] += scale[mask] * r[mask]
    G = scaled_error_propagation_matrix(lap, mask, scale)
    np.testing.assert_allclose(
        x_new - x_true, G.matvec(x - x_true), rtol=0, atol=1e-12
    )


def test_scaled_residual_matrix_drives_the_residual(lap, mask):
    rng = np.random.default_rng(1)
    scale = Jacobi(omega=0.9).scale(lap)
    b = rng.uniform(-1, 1, lap.nrows)
    x = rng.standard_normal(lap.nrows)
    r = b - lap.matvec(x)
    x_new = x.copy()
    x_new[mask] += scale[mask] * r[mask]
    H = scaled_residual_propagation_matrix(lap, mask, scale)
    np.testing.assert_allclose(
        b - lap.matvec(x_new), H.matvec(r), rtol=0, atol=1e-12
    )


def test_sequential_matrix_is_one_sor_block_step(lap):
    rng = np.random.default_rng(2)
    scale = StepAsyncSOR(omega=0.9).scale(lap)
    rows = np.array([5, 2, 9, 2, 0])  # unordered, with a duplicate
    b = rng.uniform(-1, 1, lap.nrows)
    x_true = np.linalg.solve(lap.to_dense(), b)
    x = rng.standard_normal(lap.nrows)
    e = x - x_true
    M = sequential_propagation_matrix(lap, rows, scale)
    sor_step_dense(lap, b, scale, x, rows)
    np.testing.assert_allclose(
        x - x_true, M.matvec(e), rtol=0, atol=1e-12
    )


def test_sequential_matrix_contracts_sup_norm_on_m_matrix(lap):
    scale = StepAsyncSOR(omega=1.0).scale(lap)
    M = sequential_propagation_matrix(lap, np.arange(lap.nrows), scale)
    assert matrix_norm_inf(M) <= 1.0 + 1e-12


def test_companion_matrix_drives_stacked_error(lap):
    rng = np.random.default_rng(3)
    n = lap.nrows
    alpha, beta = 0.25, 0.4
    scale = np.full(n, alpha)
    mask = relaxation_mask(n, [0, 1, 4, 7, 8, 13])
    b = rng.uniform(-1, 1, n)
    x_true = np.linalg.solve(lap.to_dense(), b)
    x = rng.standard_normal(n)
    x_prev = rng.standard_normal(n)
    # One momentum step on the masked rows.
    r = b - lap.matvec(x)
    dx = scale[mask] * r[mask] + beta * (x[mask] - x_prev[mask])
    x_new = x.copy()
    new_prev = x.copy()
    new_prev[~mask] = x_prev[~mask]
    x_new[mask] += dx
    C = second_order_companion_matrix(lap, mask, scale, beta)
    stacked = np.concatenate([x - x_true, x_prev - x_true])
    out = C @ stacked
    np.testing.assert_allclose(out[:n], x_new - x_true, rtol=0, atol=1e-12)
    np.testing.assert_allclose(out[n:], x - x_true, rtol=0, atol=1e-12)


def test_companion_matrix_rejects_bad_beta(lap, mask):
    scale = np.full(lap.nrows, 0.2)
    with pytest.raises(ValueError):
        second_order_companion_matrix(lap, mask, scale, 1.0)


def test_scaled_theorem1_report_norms_are_one_for_legal_scale(lap, mask):
    report = scaled_theorem1_report(lap, mask, Jacobi().scale(lap))
    assert report.theorem1_holds
    assert report.n_active == int(np.sum(mask))


def test_scaled_theorem1_report_flags_illegal_scale(lap, mask):
    report = scaled_theorem1_report(lap, mask, Richardson(alpha=1.9).scale(lap))
    assert not report.theorem1_holds
    assert report.g_norm_inf > 1.0


def test_scale_shape_checked(lap, mask):
    with pytest.raises(ShapeError):
        scaled_error_propagation_matrix(lap, mask, np.ones(3))


def test_h_norm_matches_dense_1_norm(lap, mask):
    scale = Jacobi(omega=0.8).scale(lap)
    H = scaled_residual_propagation_matrix(lap, mask, scale)
    dense = np.abs(H.to_dense()).sum(axis=0).max()
    assert matrix_norm_1(H) == pytest.approx(dense)
