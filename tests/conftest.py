"""Shared fixtures for the test suite."""

import numpy as np
import pytest

from repro.matrices.laplacian import fd_laplacian_1d, fd_laplacian_2d
from repro.matrices.sparse import CSRMatrix


@pytest.fixture
def rng():
    """Deterministic RNG for tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_fd():
    """A small 2-D FD Laplacian (unit diagonal, W.D.D., SPD)."""
    return fd_laplacian_2d(6, 7)


@pytest.fixture
def tiny_fd():
    """A tiny 1-D Laplacian for exactness checks."""
    return fd_laplacian_1d(8)


@pytest.fixture
def random_csr(rng):
    """A random sparse square matrix with guaranteed nonzero diagonal."""
    n = 25
    dense = np.where(rng.random((n, n)) < 0.15, rng.standard_normal((n, n)), 0.0)
    dense[np.arange(n), np.arange(n)] = rng.uniform(1.0, 2.0, n)
    return CSRMatrix.from_dense(dense)


@pytest.fixture
def fd_system(small_fd, rng):
    """(A, b, x_exact) with a consistent right-hand side."""
    n = small_fd.nrows
    x_exact = rng.standard_normal(n)
    b = small_fd @ x_exact
    return small_fd, b, x_exact
