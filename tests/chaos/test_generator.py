"""Determinism and well-formedness of the chaos scenario generator."""

import json

import pytest

from repro.chaos import build_scenario, generate_spec, generate_specs
from repro.chaos.generator import MATRIX_LADDERS, _matrix_rows
from repro.chaos.harness import _MATRIX_FAMILIES
from repro.matrices import is_weakly_diagonally_dominant


class TestDeterminism:
    def test_same_seed_same_specs(self):
        assert generate_specs(0, 25) == generate_specs(0, 25)
        assert generate_specs(3, 10) == generate_specs(3, 10)

    def test_budget_is_a_prefix(self):
        assert generate_specs(0, 25)[:10] == generate_specs(0, 10)

    def test_different_seeds_differ(self):
        assert generate_specs(0, 10) != generate_specs(1, 10)

    def test_index_independence(self):
        # Scenario i does not depend on scenarios before it.
        assert generate_spec(0, 7) == generate_specs(0, 8)[7]

    def test_specs_are_plain_json(self):
        specs = generate_specs(0, 25)
        assert specs == json.loads(json.dumps(specs))

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError, match="nonnegative"):
            generate_specs(0, -1)


class TestGeneratedSpace:
    def test_all_specs_buildable(self):
        # Every generated spec satisfies executor contracts by construction.
        for spec in generate_specs(0, 60):
            build_scenario(spec)

    def test_executor_mix(self):
        kinds = {s["executor"] for s in generate_specs(0, 60)}
        assert kinds == {"shared", "distributed", "model"}

    def test_plan_kinds_match_executor(self):
        for spec in generate_specs(0, 60):
            kinds = {e["kind"] for e in spec["plan"]["events"]}
            if spec["executor"] == "shared":
                assert kinds <= {"crash"}
            elif spec["executor"] == "model":
                assert kinds <= {"crash", "drop"}

    def test_crash_agents_within_range(self):
        for spec in generate_specs(0, 60):
            for event in spec["plan"]["events"]:
                if event["kind"] == "crash":
                    assert 0 <= event["agent"] < spec["agents"]

    def test_ladder_matrices_are_wdd(self):
        for family, ladder in MATRIX_LADDERS.items():
            for args in ladder:
                A = _MATRIX_FAMILIES[family](**args)
                assert is_weakly_diagonally_dominant(A), (family, args)
                assert A.nrows == _matrix_rows(family, args)

    def test_ladders_ordered_small_to_large(self):
        for family, ladder in MATRIX_LADDERS.items():
            sizes = [_matrix_rows(family, args) for args in ladder]
            assert sizes == sorted(sizes), family


class TestNativeBackendDraw:
    """The native relax backend enters specs only via the toolchain probe."""

    def test_no_native_draws_when_probe_fails(self, monkeypatch):
        from repro.perf import native

        monkeypatch.setenv("REPRO_NO_NATIVE", "1")
        native._reset_probe_cache()
        try:
            specs = generate_specs(0, 120)
            assert all(
                s.get("distributed", {}).get("relax_backend") != "native"
                for s in specs
            )
        finally:
            monkeypatch.delenv("REPRO_NO_NATIVE")
            native._reset_probe_cache()

    def test_native_draw_is_an_append_only_upgrade(self, monkeypatch):
        """Disabling native changes relax_backend and nothing else.

        The coin is flipped after every legacy draw, so the pre-native
        stream of each (seed, index) pair — matrices, plans, methods,
        every other knob — is identical with and without a toolchain.
        """
        from repro.perf import native

        monkeypatch.setenv("REPRO_NO_NATIVE", "1")
        native._reset_probe_cache()
        try:
            plain = generate_specs(3, 60)
        finally:
            monkeypatch.delenv("REPRO_NO_NATIVE")
            native._reset_probe_cache()
        with_probe = generate_specs(3, 60)
        for a, b in zip(plain, with_probe):
            if "distributed" in b and b["distributed"]["relax_backend"] == "native":
                b = json.loads(json.dumps(b))
                b["distributed"]["relax_backend"] = a["distributed"]["relax_backend"]
            assert a == b

    @pytest.mark.skipif(
        not __import__("repro.perf.native", fromlist=["native_available"])
        .native_available(),
        reason="no C toolchain: the generator never draws native here",
    )
    def test_native_specs_are_legal_and_sor_free(self):
        specs = generate_specs(0, 200)
        native_specs = [
            s
            for s in specs
            if s.get("distributed", {}).get("relax_backend") == "native"
        ]
        # With a working toolchain the 25% coin lands often in 200 draws.
        assert native_specs, "no native spec drawn in 200 scenarios"
        for s in native_specs:
            assert s["executor"] == "distributed"
            assert s["method"]["kind"] != "sor"
            build_scenario(s)  # must construct without validation errors

    def test_shrinker_resets_native_backend(self):
        """A native spec shrinks toward relax_backend="auto" like any knob."""
        from repro.chaos.shrink import _config_candidates

        spec = next(s for s in generate_specs(0, 50) if "distributed" in s)
        spec["distributed"]["relax_backend"] = "native"
        candidates = _config_candidates(spec)
        assert any(
            c["distributed"]["relax_backend"] == "auto"
            for c in candidates
            if "distributed" in c
        )
