"""Determinism and well-formedness of the chaos scenario generator."""

import json

import pytest

from repro.chaos import build_scenario, generate_spec, generate_specs
from repro.chaos.generator import MATRIX_LADDERS, _matrix_rows
from repro.chaos.harness import _MATRIX_FAMILIES
from repro.matrices import is_weakly_diagonally_dominant


class TestDeterminism:
    def test_same_seed_same_specs(self):
        assert generate_specs(0, 25) == generate_specs(0, 25)
        assert generate_specs(3, 10) == generate_specs(3, 10)

    def test_budget_is_a_prefix(self):
        assert generate_specs(0, 25)[:10] == generate_specs(0, 10)

    def test_different_seeds_differ(self):
        assert generate_specs(0, 10) != generate_specs(1, 10)

    def test_index_independence(self):
        # Scenario i does not depend on scenarios before it.
        assert generate_spec(0, 7) == generate_specs(0, 8)[7]

    def test_specs_are_plain_json(self):
        specs = generate_specs(0, 25)
        assert specs == json.loads(json.dumps(specs))

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError, match="nonnegative"):
            generate_specs(0, -1)


class TestGeneratedSpace:
    def test_all_specs_buildable(self):
        # Every generated spec satisfies executor contracts by construction.
        for spec in generate_specs(0, 60):
            build_scenario(spec)

    def test_executor_mix(self):
        kinds = {s["executor"] for s in generate_specs(0, 60)}
        assert kinds == {"shared", "distributed", "model"}

    def test_plan_kinds_match_executor(self):
        for spec in generate_specs(0, 60):
            kinds = {e["kind"] for e in spec["plan"]["events"]}
            if spec["executor"] == "shared":
                assert kinds <= {"crash"}
            elif spec["executor"] == "model":
                assert kinds <= {"crash", "drop"}

    def test_crash_agents_within_range(self):
        for spec in generate_specs(0, 60):
            for event in spec["plan"]["events"]:
                if event["kind"] == "crash":
                    assert 0 <= event["agent"] < spec["agents"]

    def test_ladder_matrices_are_wdd(self):
        for family, ladder in MATRIX_LADDERS.items():
            for args in ladder:
                A = _MATRIX_FAMILIES[family](**args)
                assert is_weakly_diagonally_dominant(A), (family, args)
                assert A.nrows == _matrix_rows(family, args)

    def test_ladders_ordered_small_to_large(self):
        for family, ladder in MATRIX_LADDERS.items():
            sizes = [_matrix_rows(family, args) for args in ladder]
            assert sizes == sorted(sizes), family
