"""Corpus regression: every archived reproducer keeps reproducing.

Entries that carry a ``mutation`` must fail under that mutation (the
seeded bug is still catchable) *and* pass without it (the reproducer pins
the mutation, not an unrelated engine regression). Entries without a
mutation are archived engine bugs: once the engine is fixed they must
pass, so a failure here is a regression of a previously-fixed bug.
"""

from pathlib import Path

import pytest

from repro.chaos import load_reproducer, run_scenario

CORPUS = Path(__file__).parent / "corpus"
ENTRIES = sorted(CORPUS.glob("*.json"))


def test_corpus_is_not_empty():
    assert ENTRIES, "the chaos corpus should ship at least one reproducer"


@pytest.mark.parametrize("path", ENTRIES, ids=lambda p: p.stem)
def test_reproducer(path):
    entry = load_reproducer(path)
    scenario = entry["scenario"]
    if entry.get("mutation"):
        mutated = run_scenario(scenario)
        assert not mutated["ok"], f"{path.name}: seeded bug no longer caught"
        got = {f["property"] for f in mutated["failures"]}
        assert got & set(entry["properties"]), (
            f"{path.name}: failure mode changed — archived "
            f"{entry['properties']}, got {sorted(got)}"
        )
        clean = dict(scenario)
        clean.pop("mutation")
        verdict = run_scenario(clean)
        assert verdict["ok"], (
            f"{path.name}: scenario fails even without its mutation: "
            f"{verdict['failures']}"
        )
    else:
        verdict = run_scenario(scenario)
        assert verdict["ok"], (
            f"{path.name}: previously-fixed engine bug is back: "
            f"{verdict['failures']}"
        )
