"""End-to-end proof the campaign catches seeded bugs and minimizes them.

This is the acceptance loop for the whole chaos subsystem: break one
invariant on purpose (a mutation from :mod:`repro.chaos.mutations`), run a
real campaign, watch the property harness flag it, shrink a failure to a
minimal reproducer, archive it, and replay the archive.
"""

from repro.chaos import (
    MUTATIONS,
    archive_reproducer,
    generate_spec,
    load_reproducer,
    mutation_context,
    run_campaign,
    run_scenario,
    shrink_spec,
)
from repro.chaos.shrink import spec_events


class TestMutationMachinery:
    def test_registry_names(self):
        assert set(MUTATIONS) == {"silent_fault_trace", "silent_observe_trace"}

    def test_context_restores_tracer(self):
        from repro.observability.tracer import Tracer

        original = Tracer.fault
        with mutation_context("silent_fault_trace"):
            assert Tracer.fault is not original
        assert Tracer.fault is original

    def test_unknown_mutation_is_loud(self):
        import pytest

        with pytest.raises(KeyError):
            with mutation_context("nonexistent_bug"):
                pass


class TestSeededBugIsCaughtAndShrunk:
    def test_silent_fault_trace_end_to_end(self, tmp_path):
        # 1. The seeded bug: fault incidents vanish from the trace stream.
        campaign = run_campaign(
            12, seed=0, use_cache=False, max_workers=0,
            mutation="silent_fault_trace",
        )
        assert campaign.failed > 0
        assert "telemetry" in campaign.by_property

        # 2. Shrink the first failure to a minimal reproducer.
        failing = next(
            (s, v)
            for s, v in zip(campaign.specs, campaign.verdicts)
            if not v["ok"]
        )
        result = shrink_spec(*failing)
        assert result["events"] <= 3  # the acceptance bound
        assert not result["verdict"]["ok"]

        # 3. Archive it and replay the archive cold.
        path = archive_reproducer(result["spec"], result["verdict"], tmp_path)
        entry = load_reproducer(path)
        replay = run_scenario(entry["scenario"])
        assert not replay["ok"]
        assert {f["property"] for f in replay["failures"]} & set(entry["properties"])

        # 4. The same scenario without the bug is clean: the reproducer
        #    pins the mutation, not some unrelated engine problem.
        clean = dict(entry["scenario"])
        clean.pop("mutation")
        assert run_scenario(clean)["ok"]

    def test_silent_observe_trace_is_caught(self):
        # The observe invariant breaks on any traced simulator scenario,
        # even with zero fault events.
        spec = generate_spec(0, 0)  # shared-memory scenario
        assert spec["executor"] == "shared"
        spec["mutation"] = "silent_observe_trace"
        verdict = run_scenario(spec)
        assert not verdict["ok"]
        assert any(f["property"] == "telemetry" for f in verdict["failures"])
        assert any("observe" in f["detail"] for f in verdict["failures"])

    def test_shrunk_reproducer_needs_no_events_for_observe_bug(self):
        spec = generate_spec(0, 0)
        spec["mutation"] = "silent_observe_trace"
        verdict = run_scenario(spec)
        result = shrink_spec(spec, verdict)
        # The observe bug is unconditional, so shrinking deletes the
        # entire fault plan.
        assert len(spec_events(result["spec"])) == 0
