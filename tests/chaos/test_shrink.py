"""The greedy shrinker and the corpus archive round-trip."""

import json

import pytest

from repro.chaos import (
    archive_reproducer,
    generate_spec,
    load_reproducer,
    run_scenario,
    shrink_spec,
)
from repro.chaos.shrink import _config_candidates, _event_candidates, spec_events


def _failing_spec():
    """A cheap distributed scenario that fails under silent_fault_trace."""
    spec = generate_spec(0, 2)  # distributed, has a firing drop burst
    spec["mutation"] = "silent_fault_trace"
    return spec


class TestCandidates:
    def test_event_deletion_candidates(self):
        spec = generate_spec(0, 2)
        n_events = len(spec_events(spec))
        assert n_events > 0
        deletions = [
            c for c in _event_candidates(spec) if len(spec_events(c)) < n_events
        ]
        assert len(deletions) == n_events

    def test_candidates_do_not_mutate_input(self):
        spec = generate_spec(0, 2)
        frozen = json.dumps(spec, sort_keys=True)
        _event_candidates(spec)
        _config_candidates(spec)
        assert json.dumps(spec, sort_keys=True) == frozen

    def test_config_candidates_shrink_knobs(self):
        spec = generate_spec(0, 2)
        cands = _config_candidates(spec)
        assert any(c["max_iterations"] < spec["max_iterations"] for c in cands)


class TestShrink:
    def test_shrinks_to_few_events_and_preserves_failure(self):
        spec = _failing_spec()
        verdict = run_scenario(spec)
        assert not verdict["ok"]
        result = shrink_spec(spec, verdict)
        assert result["events"] <= 3
        assert result["events"] <= len(spec_events(spec))
        assert not result["verdict"]["ok"]
        # Same failure mode survived the shrink.
        orig = {f["property"] for f in verdict["failures"]}
        kept = {f["property"] for f in result["verdict"]["failures"]}
        assert orig & kept
        # And the minimized spec still reproduces from scratch.
        assert not run_scenario(result["spec"])["ok"]

    def test_requires_failing_verdict(self):
        spec = generate_spec(0, 0)
        with pytest.raises(ValueError, match="failing verdict"):
            shrink_spec(spec, run_scenario(spec))


class TestCorpusIO:
    def test_archive_and_load_roundtrip(self, tmp_path):
        spec = _failing_spec()
        verdict = run_scenario(spec)
        path = archive_reproducer(spec, verdict, tmp_path)
        assert path.parent == tmp_path
        entry = load_reproducer(path)
        assert entry["scenario"] == spec
        assert entry["mutation"] == "silent_fault_trace"
        assert entry["properties"] == sorted({f["property"] for f in verdict["failures"]})

    def test_archive_is_stable_json(self, tmp_path):
        spec = _failing_spec()
        verdict = run_scenario(spec)
        p1 = archive_reproducer(spec, verdict, tmp_path)
        text = p1.read_text()
        p2 = archive_reproducer(spec, verdict, tmp_path)
        assert p1 == p2 and p2.read_text() == text

    def test_load_rejects_bad_version(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"version": 99}))
        with pytest.raises(ValueError, match="version"):
            load_reproducer(path)

    def test_load_rejects_missing_fields(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"version": 1, "properties": []}))
        with pytest.raises(ValueError, match="missing"):
            load_reproducer(path)
