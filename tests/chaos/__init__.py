"""The chaos campaign: generator, harness, shrinker, mutations, corpus."""
