"""The property harness: builders, verdicts, and spec-error taxonomy."""

import numpy as np
import pytest

from repro.chaos import ChaosSpecError, build_scenario, generate_spec, run_scenario
from repro.chaos.harness import agent_labels, build_delay, build_schedule
from repro.chaos.properties import (
    check_finiteness,
    check_liveness,
    check_theorem1_history,
)
from repro.runtime.delays import NO_DELAY, HangDelay


def _spec_for(executor, budget=40, seed=0):
    for i in range(budget):
        spec = generate_spec(seed, i)
        if spec["executor"] == executor:
            return spec
    raise AssertionError(f"no {executor} scenario in the first {budget}")


class TestBuilders:
    def test_unknown_executor(self):
        spec = generate_spec(0, 0) | {"executor": "quantum"}
        with pytest.raises(ChaosSpecError, match="unknown executor"):
            build_scenario(spec)

    def test_unknown_matrix_family(self):
        spec = generate_spec(0, 0)
        spec["matrix"] = {"family": "hilbert", "args": {}}
        with pytest.raises(ChaosSpecError, match="matrix family"):
            build_scenario(spec)

    def test_agents_out_of_range(self):
        spec = generate_spec(0, 0)
        spec["agents"] = 10_000
        with pytest.raises(ChaosSpecError, match="out of range"):
            build_scenario(spec)

    def test_plan_crash_beyond_agents(self):
        spec = _spec_for("distributed")
        spec["plan"]["events"] = [{"kind": "crash", "agent": 99, "at": 0.0}]
        with pytest.raises(ChaosSpecError, match="crashes agent 99"):
            build_scenario(spec)

    def test_shared_rejects_message_faults(self):
        spec = _spec_for("shared")
        spec["plan"]["events"] = [
            {"kind": "drop", "start": 0.0, "duration": 1.0, "probability": 0.5}
        ]
        with pytest.raises(ChaosSpecError, match="only crash"):
            build_scenario(spec)

    def test_bad_fault_plan_spec(self):
        spec = generate_spec(0, 0)
        spec["plan"]["events"] = [{"kind": "crash", "agent": 0, "att": 0.0}]
        with pytest.raises(ChaosSpecError, match="fault plan"):
            build_scenario(spec)

    def test_delay_kinds(self):
        assert build_delay({"kind": "none"}) is NO_DELAY
        assert isinstance(
            build_delay({"kind": "hang", "hang_times": [[0, 1e-5]]}), HangDelay
        )
        with pytest.raises(ChaosSpecError, match="unknown delay"):
            build_delay({"kind": "psychic"})

    def test_agent_labels_contiguous(self):
        labels = agent_labels(10, 3)
        assert labels.tolist() == sorted(labels.tolist())
        assert set(labels.tolist()) == {0, 1, 2}

    def test_fresh_schedules_replay_identically(self):
        spec = _spec_for("model")
        s1, s2 = build_schedule(spec), build_schedule(spec)
        import itertools

        rows1 = [st.rows.tolist() for st in itertools.islice(s1.steps(), 10)]
        rows2 = [st.rows.tolist() for st in itertools.islice(s2.steps(), 10)]
        assert rows1 == rows2


class TestVerdicts:
    @pytest.mark.parametrize("executor", ["shared", "distributed", "model"])
    def test_verdict_shape_and_determinism(self, executor):
        spec = _spec_for(executor)
        v1 = run_scenario(spec)
        v2 = run_scenario(spec)
        assert v1 == v2  # bit-stable verdicts, no wall-clock inside
        assert v1["executor"] == executor
        assert v1["ok"] and v1["failures"] == []
        assert set(v1["checks"].values()) == {"pass"}
        assert "theorem1" in v1["checks"] and "finiteness" in v1["checks"]

    def test_engine_exception_becomes_no_crash_failure(self, monkeypatch):
        from repro.runtime import shared as shared_mod

        def boom(self, **kwargs):
            raise RuntimeError("engine exploded")

        monkeypatch.setattr(shared_mod.SharedMemoryJacobi, "run_async", boom)
        verdict = run_scenario(_spec_for("shared"))
        assert not verdict["ok"]
        assert verdict["failures"][0]["property"] == "no_crash"
        assert "engine exploded" in verdict["failures"][0]["detail"]


class TestPropertyChecks:
    def test_theorem1_history_flags_rise(self):
        assert check_theorem1_history([1.0, 0.5, 0.6])
        assert not check_theorem1_history([1.0, 0.5, 0.5, 0.1])

    def test_finiteness_flags_nan_and_inf(self):
        assert check_finiteness(np.array([1.0, np.nan]), [1.0])
        assert check_finiteness(np.array([1.0]), [1.0, np.inf])
        assert not check_finiteness(np.array([1.0]), [1.0, 0.5])

    def test_liveness_flags_stalled_agent(self):
        from repro.faults import FaultPlan
        from repro.runtime.results import SimulationResult

        result = SimulationResult(
            x=np.zeros(4),
            converged=False,
            residual_norms=[1.0, 0.5],
            iterations=np.array([10, 0, 10, 10]),
            total_time=1.0,
        )
        out = check_liveness(result, FaultPlan(), max_iterations=10)
        assert any("never relaxed" in v["detail"] for v in out)
        # The same profile is fine when agent 1 is scripted dead or hung.
        assert not check_liveness(
            result, FaultPlan(), exempt_agents={1}, max_iterations=10
        )

    def test_liveness_eager_starvation_gate(self):
        from repro.faults import FaultPlan
        from repro.runtime.results import SimulationResult

        result = SimulationResult(
            x=np.zeros(2),
            converged=False,
            residual_norms=[1.0, 0.9],
            iterations=np.array([3, 3]),
            total_time=1.0,
        )
        strict = check_liveness(result, FaultPlan(), eager=True, max_iterations=50)
        assert any(v["property"] == "liveness" for v in strict)
        assert not check_liveness(
            result,
            FaultPlan(),
            eager=True,
            eager_may_starve=True,
            max_iterations=50,
        )
