"""Real-thread racy backend (Section V, on actual threads)."""

import numpy as np
import pytest

from repro.core.iteration import jacobi
from repro.matrices.laplacian import fd_laplacian_2d
from repro.threads.backend import ThreadedJacobi
from repro.util.errors import ShapeError


@pytest.fixture
def system(rng):
    A = fd_laplacian_2d(10, 10)
    b = rng.uniform(-1, 1, 100)
    return A, b


class TestSyncThreads:
    def test_sync_matches_jacobi(self, system, rng):
        """Barriered threads are numerically exact Jacobi."""
        A, b = system
        x0 = rng.uniform(-1, 1, 100)
        res = ThreadedJacobi(A, b, n_threads=4, mode="sync").solve(
            x0=x0, tol=1e-6, max_iterations=5000
        )
        hist = jacobi(A, b, x0=x0, tol=1e-6, max_iterations=5000)
        assert res.converged
        assert res.iterations[0] == hist.iterations
        np.testing.assert_allclose(res.x, hist.x, rtol=1e-10)

    def test_all_threads_same_iteration_count(self, system):
        A, b = system
        res = ThreadedJacobi(A, b, n_threads=3, mode="sync").solve(tol=1e-4)
        assert len(set(res.iterations.tolist())) == 1


class TestAsyncThreads:
    def test_racy_converges(self, system):
        A, b = system
        res = ThreadedJacobi(A, b, n_threads=4, mode="async").solve(
            tol=1e-6, max_iterations=5000
        )
        assert res.converged
        np.testing.assert_allclose(A @ res.x, b, atol=1e-4)

    def test_single_thread_equals_jacobi(self, system):
        A, b = system
        res = ThreadedJacobi(A, b, n_threads=1, mode="async").solve(
            tol=1e-6, max_iterations=5000
        )
        hist = jacobi(A, b, tol=1e-6, max_iterations=5000)
        assert res.iterations[0] == hist.iterations
        np.testing.assert_allclose(res.x, hist.x, rtol=1e-10)

    def test_sleeping_thread_lags_but_system_converges(self, system):
        """The paper's delayed-thread experiment on real threads: the
        sleeper relaxes far less; everyone still converges."""
        A, b = system
        res = ThreadedJacobi(
            A, b, n_threads=4, mode="async", sleep_us={1: 300}
        ).solve(tol=1e-5, max_iterations=20_000)
        assert res.converged
        others = np.delete(res.iterations, 1)
        assert res.iterations[1] < others.min()

    def test_max_iterations_bounds_run(self, system):
        A, b = system
        res = ThreadedJacobi(A, b, n_threads=2, mode="async").solve(
            tol=1e-300, max_iterations=40
        )
        assert not res.converged
        assert np.all(res.iterations <= 41)  # may overshoot by the final check


class TestValidation:
    def test_bad_mode(self, system):
        A, b = system
        with pytest.raises(ValueError):
            ThreadedJacobi(A, b, n_threads=2, mode="racy")

    def test_thread_bounds(self, system):
        A, b = system
        with pytest.raises(ShapeError):
            ThreadedJacobi(A, b, n_threads=0)
