"""FE stiffness generator: the paper's sync-divergent matrix."""

import numpy as np
import pytest

from repro.matrices.fem import PAPER_FE_ROWS, fe_laplacian_square, paper_fe_matrix
from repro.matrices.properties import (
    is_spd,
    is_weakly_diagonally_dominant,
    jacobi_spectral_radius,
    wdd_fraction,
)
from repro.util.errors import ShapeError


class TestFELaplacian:
    def test_shape_and_symmetry(self):
        A = fe_laplacian_square(100, seed=1)
        assert A.shape == (100, 100)
        assert A.is_symmetric(tol=1e-10)

    def test_unit_diagonal(self):
        A = fe_laplacian_square(80, seed=2)
        np.testing.assert_allclose(A.diagonal(), np.ones(80), atol=1e-12)

    def test_spd_small(self):
        assert is_spd(fe_laplacian_square(60, seed=3))

    def test_isotropic_stiffness_row_property(self):
        """Unscaled isotropic P1 Laplace stiffness has (near-)zero row sums
        on interior rows away from the boundary (partition of unity)."""
        A = fe_laplacian_square(200, seed=4, scaled=False)
        dense = A.to_dense()
        row_sums = np.abs(dense.sum(axis=1))
        # Rows coupled to eliminated boundary nodes keep a positive excess;
        # a clear majority of interior rows must sum to ~0.
        near_zero = np.mean(row_sums < 1e-9)
        assert near_zero > 0.5

    def test_deterministic_mesh(self):
        assert fe_laplacian_square(90, seed=5) == fe_laplacian_square(90, seed=5)

    def test_different_seeds_differ(self):
        assert fe_laplacian_square(90, seed=5) != fe_laplacian_square(90, seed=6)

    def test_too_few_points(self):
        with pytest.raises(ShapeError):
            fe_laplacian_square(2)

    def test_stretch_increases_radius(self):
        """Anisotropy pushes the Jacobi spectral radius up."""
        r1 = jacobi_spectral_radius(fe_laplacian_square(300, seed=7, stretch=1.0))
        r4 = jacobi_spectral_radius(fe_laplacian_square(300, seed=7, stretch=4.0))
        assert r4 > r1


@pytest.mark.slow
class TestPaperFEMatrix:
    """Locks the properties Figure 6 depends on (full 3081-row matrix)."""

    @pytest.fixture(scope="class")
    def A(self):
        return paper_fe_matrix()

    def test_paper_row_count(self, A):
        assert A.nrows == PAPER_FE_ROWS == 3081

    def test_nnz_close_to_paper(self, A):
        # Paper: 20,971. The random Delaunay mesh gives 21,177.
        assert abs(A.nnz - 20_971) / 20_971 < 0.05

    def test_sync_jacobi_diverges(self, A):
        """rho(G) > 1: the premise of Figure 6."""
        assert jacobi_spectral_radius(A, iters=3000) > 1.0

    def test_not_wdd_but_partially(self, A):
        """Not W.D.D. overall, but a sizeable fraction of rows are
        (paper: about half; stand-in: about a third)."""
        assert not is_weakly_diagonally_dominant(A)
        assert 0.2 < wdd_fraction(A) < 0.6
