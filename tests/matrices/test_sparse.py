"""CSRMatrix kernels, validated against dense NumPy and scipy oracles."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings, strategies as st

from repro.matrices.sparse import CSRMatrix, _concat_ranges
from repro.util.errors import ShapeError, SingularMatrixError


def _random_dense(rng, n, m, density=0.3):
    dense = np.where(rng.random((n, m)) < density, rng.standard_normal((n, m)), 0.0)
    return dense


class TestConstruction:
    def test_from_dense_roundtrip(self, rng):
        dense = _random_dense(rng, 7, 9)
        A = CSRMatrix.from_dense(dense)
        np.testing.assert_array_equal(A.to_dense(), dense)

    def test_from_coo_sums_duplicates(self):
        A = CSRMatrix.from_coo([0, 0, 1], [1, 1, 0], [2.0, 3.0, 4.0], (2, 2))
        expected = np.array([[0.0, 5.0], [4.0, 0.0]])
        np.testing.assert_array_equal(A.to_dense(), expected)

    def test_from_coo_empty(self):
        A = CSRMatrix.from_coo([], [], [], (3, 3))
        assert A.nnz == 0
        np.testing.assert_array_equal(A.to_dense(), np.zeros((3, 3)))

    def test_identity(self):
        I = CSRMatrix.identity(5)
        np.testing.assert_array_equal(I.to_dense(), np.eye(5))

    def test_scipy_roundtrip(self, rng):
        dense = _random_dense(rng, 6, 6)
        A = CSRMatrix.from_dense(dense)
        back = CSRMatrix.from_scipy(A.to_scipy())
        assert back == A

    def test_rejects_unsorted_columns(self):
        with pytest.raises(ShapeError):
            CSRMatrix([0, 2], [1, 0], [1.0, 2.0], (1, 2))

    def test_rejects_duplicate_columns(self):
        with pytest.raises(ShapeError):
            CSRMatrix([0, 2], [1, 1], [1.0, 2.0], (1, 2))

    def test_rejects_bad_indptr(self):
        with pytest.raises(ShapeError):
            CSRMatrix([0, 2, 1], [0, 1], [1.0, 2.0], (2, 2))

    def test_rejects_out_of_range_columns(self):
        with pytest.raises(ShapeError):
            CSRMatrix.from_coo([0], [5], [1.0], (2, 2))

    def test_rejects_out_of_range_rows(self):
        with pytest.raises(ShapeError):
            CSRMatrix.from_coo([7], [0], [1.0], (2, 2))


class TestKernels:
    def test_matvec_matches_dense(self, rng):
        dense = _random_dense(rng, 11, 13)
        A = CSRMatrix.from_dense(dense)
        x = rng.standard_normal(13)
        np.testing.assert_allclose(A @ x, dense @ x, rtol=1e-13)

    def test_matvec_empty_rows(self):
        A = CSRMatrix.from_coo([1], [0], [3.0], (3, 2))
        np.testing.assert_array_equal(A @ np.array([2.0, 1.0]), [0.0, 6.0, 0.0])

    def test_matvec_shape_error(self, small_fd):
        with pytest.raises(ShapeError):
            small_fd.matvec(np.zeros(small_fd.ncols + 1))

    def test_matmul_dense_matrix(self, rng):
        dense = _random_dense(rng, 5, 6)
        A = CSRMatrix.from_dense(dense)
        X = rng.standard_normal((6, 3))
        np.testing.assert_allclose(A @ X, dense @ X, rtol=1e-13)

    def test_row_matvec_matches_slice(self, rng):
        dense = _random_dense(rng, 12, 12)
        A = CSRMatrix.from_dense(dense)
        x = rng.standard_normal(12)
        rows = np.array([0, 3, 7, 11])
        np.testing.assert_allclose(A.row_matvec(rows, x), dense[rows] @ x, rtol=1e-13)

    def test_row_matvec_empty(self, small_fd, rng):
        out = small_fd.row_matvec(np.array([], dtype=np.int64), rng.standard_normal(small_fd.ncols))
        assert out.shape == (0,)

    def test_row_slice(self, rng):
        dense = _random_dense(rng, 8, 5)
        A = CSRMatrix.from_dense(dense)
        rows = np.array([6, 2, 2, 0])
        np.testing.assert_array_equal(A.row_slice(rows).to_dense(), dense[rows])

    def test_submatrix_principal(self, rng):
        dense = _random_dense(rng, 10, 10)
        A = CSRMatrix.from_dense(dense)
        keep = np.array([1, 4, 5, 9])
        np.testing.assert_array_equal(
            A.submatrix(keep).to_dense(), dense[np.ix_(keep, keep)]
        )

    def test_submatrix_rectangular(self, rng):
        dense = _random_dense(rng, 6, 8)
        A = CSRMatrix.from_dense(dense)
        rows = np.array([0, 5])
        cols = np.array([7, 1, 3])
        np.testing.assert_array_equal(
            A.submatrix(rows, cols).to_dense(), dense[np.ix_(rows, cols)]
        )

    def test_diagonal(self, rng):
        dense = _random_dense(rng, 7, 7)
        A = CSRMatrix.from_dense(dense)
        np.testing.assert_array_equal(A.diagonal(), np.diag(dense))

    def test_transpose(self, rng):
        dense = _random_dense(rng, 5, 9)
        A = CSRMatrix.from_dense(dense)
        np.testing.assert_array_equal(A.transpose().to_dense(), dense.T)

    def test_scale_rows_and_columns(self, rng):
        dense = _random_dense(rng, 6, 6)
        A = CSRMatrix.from_dense(dense)
        s = rng.uniform(0.5, 2.0, 6)
        np.testing.assert_allclose(A.scale_rows(s).to_dense(), np.diag(s) @ dense)
        np.testing.assert_allclose(A.scale_columns(s).to_dense(), dense @ np.diag(s))

    def test_add_scaled_identity(self, rng):
        dense = _random_dense(rng, 6, 6)
        A = CSRMatrix.from_dense(dense)
        out = A.add_scaled_identity(2.5, beta=0.5)
        np.testing.assert_allclose(out.to_dense(), 0.5 * dense + 2.5 * np.eye(6))

    def test_off_diagonal_row_sums(self, rng):
        dense = _random_dense(rng, 8, 8)
        A = CSRMatrix.from_dense(dense)
        expected = np.sum(np.abs(dense), axis=1) - np.abs(np.diag(dense))
        np.testing.assert_allclose(A.off_diagonal_row_sums(), expected, rtol=1e-13)

    def test_neighbors_excludes_diagonal(self, small_fd):
        for i in (0, small_fd.nrows // 2, small_fd.nrows - 1):
            nbrs = small_fd.neighbors(i)
            assert i not in nbrs
            cols, _ = small_fd.row_entries(i)
            assert set(nbrs) == set(cols) - {i}


class TestTransformations:
    def test_unit_diagonal_scaling(self, rng):
        dense = _random_dense(rng, 7, 7)
        dense = dense + dense.T + 10 * np.eye(7)
        A = CSRMatrix.from_dense(dense)
        scaled, dsqrt = A.unit_diagonal_scaled()
        np.testing.assert_allclose(scaled.diagonal(), np.ones(7), atol=1e-12)
        # D^{1/2} (SAS) D^{1/2} == A
        recon = scaled.scale_rows(dsqrt).scale_columns(dsqrt)
        np.testing.assert_allclose(recon.to_dense(), dense, rtol=1e-12)

    def test_unit_diagonal_requires_positive_diagonal(self):
        A = CSRMatrix.from_dense(np.array([[1.0, 0.0], [0.0, -2.0]]))
        with pytest.raises(SingularMatrixError):
            A.unit_diagonal_scaled()

    def test_jacobi_iteration_matrix(self, rng):
        dense = _random_dense(rng, 6, 6) + 5 * np.eye(6)
        A = CSRMatrix.from_dense(dense)
        G = A.jacobi_iteration_matrix()
        expected = np.eye(6) - np.diag(1.0 / np.diag(dense)) @ dense
        np.testing.assert_allclose(G.to_dense(), expected, rtol=1e-12, atol=1e-14)

    def test_jacobi_iteration_matrix_zero_diag(self):
        A = CSRMatrix.from_dense(np.array([[0.0, 1.0], [1.0, 1.0]]))
        with pytest.raises(SingularMatrixError):
            A.jacobi_iteration_matrix()

    def test_is_symmetric(self, small_fd, rng):
        assert small_fd.is_symmetric()
        dense = _random_dense(rng, 5, 5)
        dense[0, 1], dense[1, 0] = 1.0, 2.0
        assert not CSRMatrix.from_dense(dense).is_symmetric()


class TestConcatRanges:
    def test_basic(self):
        out = _concat_ranges(np.array([2, 10]), np.array([3, 2]))
        np.testing.assert_array_equal(out, [2, 3, 4, 10, 11])

    def test_empty_segments(self):
        out = _concat_ranges(np.array([5, 7, 9]), np.array([0, 2, 0]))
        np.testing.assert_array_equal(out, [7, 8])

    def test_all_empty(self):
        assert _concat_ranges(np.array([], dtype=np.int64), np.array([], dtype=np.int64)).size == 0


@settings(max_examples=40, deadline=None)
@given(st.integers(1, 12), st.integers(1, 12), st.integers(0, 2**31 - 1))
def test_property_dense_roundtrip_and_matvec(n, m, seed):
    """Round-trip and SpMV agree with dense for arbitrary shapes."""
    rng = np.random.default_rng(seed)
    dense = np.where(rng.random((n, m)) < 0.4, rng.standard_normal((n, m)), 0.0)
    A = CSRMatrix.from_dense(dense)
    np.testing.assert_array_equal(A.to_dense(), dense)
    x = rng.standard_normal(m)
    np.testing.assert_allclose(A @ x, dense @ x, rtol=1e-12, atol=1e-12)


@settings(max_examples=30, deadline=None)
@given(st.integers(2, 10), st.integers(0, 2**31 - 1))
def test_property_transpose_involution(n, seed):
    """Transposing twice is the identity; matches scipy's transpose."""
    rng = np.random.default_rng(seed)
    dense = np.where(rng.random((n, n)) < 0.4, rng.standard_normal((n, n)), 0.0)
    A = CSRMatrix.from_dense(dense)
    assert A.transpose().transpose() == A
    st_dense = sp.csr_matrix(dense).T.toarray()
    np.testing.assert_array_equal(A.transpose().to_dense(), st_dense)


@settings(max_examples=30, deadline=None)
@given(st.integers(2, 10), st.integers(0, 2**31 - 1))
def test_property_row_matvec_consistent_with_matvec(n, seed):
    """row_matvec over all rows equals matvec."""
    rng = np.random.default_rng(seed)
    dense = np.where(rng.random((n, n)) < 0.5, rng.standard_normal((n, n)), 0.0)
    A = CSRMatrix.from_dense(dense)
    x = rng.standard_normal(n)
    np.testing.assert_allclose(
        A.row_matvec(np.arange(n), x), A @ x, rtol=1e-12, atol=1e-12
    )


class TestBatchedKernels:
    """2-D SpMV, the CSC view, and the incremental-residual scatter."""

    def test_matmat_matches_scipy(self, rng):
        dense = _random_dense(rng, 12, 9)
        A = CSRMatrix.from_dense(dense)
        X = rng.standard_normal((9, 4))
        np.testing.assert_allclose(A.matmat(X), sp.csr_matrix(dense) @ X)

    def test_matmat_columns_bit_identical_to_matvec(self, rng):
        dense = _random_dense(rng, 30, 30)
        A = CSRMatrix.from_dense(dense)
        X = rng.standard_normal((30, 5))
        out = A.matmat(X)
        for t in range(5):
            np.testing.assert_array_equal(
                out[:, t], A.matvec(np.ascontiguousarray(X[:, t]))
            )

    def test_matmat_zero_columns(self, small_fd):
        out = small_fd.matmat(np.empty((small_fd.ncols, 0)))
        assert out.shape == (small_fd.nrows, 0)

    def test_matmat_shape_error(self, small_fd):
        with pytest.raises(ShapeError):
            small_fd.matmat(np.ones((small_fd.ncols + 1, 2)))

    def test_matmul_dispatches_on_ndim(self, rng):
        dense = _random_dense(rng, 8, 8)
        A = CSRMatrix.from_dense(dense)
        x = rng.standard_normal(8)
        X = rng.standard_normal((8, 3))
        np.testing.assert_array_equal(A @ x, A.matvec(x))
        np.testing.assert_array_equal(A @ X, A.matmat(X))
        with pytest.raises(ShapeError):
            A @ np.ones((2, 2, 2))

    def test_matmat_bins_cache_reused(self, small_fd, rng):
        X = rng.standard_normal((small_fd.ncols, 3))
        first = small_fd.matmat(X)
        bins = small_fd._matmat_bins[3]
        second = small_fd.matmat(X + 1.0)
        assert small_fd._matmat_bins[3] is bins  # built once per T
        np.testing.assert_allclose(
            second - first, small_fd.matmat(np.ones_like(X)), rtol=1e-12, atol=1e-12
        )

    def test_row_matvec_batched_matches_1d(self, rng):
        dense = _random_dense(rng, 20, 20)
        A = CSRMatrix.from_dense(dense)
        rows = np.array([0, 3, 7, 19], dtype=np.int64)
        X = rng.standard_normal((20, 4))
        out = A.row_matvec(rows, X)
        for t in range(4):
            np.testing.assert_array_equal(
                out[:, t], A.row_matvec(rows, np.ascontiguousarray(X[:, t]))
            )

    def test_csc_arrays_roundtrip(self, rng):
        dense = _random_dense(rng, 10, 13)
        A = CSRMatrix.from_dense(dense)
        colptr, row_ind, vals = A.csc_arrays()
        rebuilt = np.zeros((10, 13))
        for j in range(13):
            lo, hi = colptr[j], colptr[j + 1]
            rebuilt[row_ind[lo:hi], j] = vals[lo:hi]
            assert np.all(np.diff(row_ind[lo:hi]) > 0)  # sorted rows
        np.testing.assert_array_equal(rebuilt, dense)
        assert A.csc_arrays() is A.csc_arrays()  # cached

    @pytest.mark.parametrize("cols", [[0], [2, 5], [0, 1, 2, 3]])
    def test_subtract_columns_update_vector(self, rng, cols):
        dense = _random_dense(rng, 14, 14)
        A = CSRMatrix.from_dense(dense)
        cols = np.asarray(cols, dtype=np.int64)
        dx = rng.standard_normal(cols.size)
        r = rng.standard_normal(14)
        expected = r - dense[:, cols] @ dx
        A.subtract_columns_update(r, cols, dx)
        np.testing.assert_allclose(r, expected, rtol=1e-13, atol=1e-13)

    def test_subtract_columns_update_batched(self, rng):
        dense = _random_dense(rng, 14, 14)
        A = CSRMatrix.from_dense(dense)
        cols = np.array([1, 6, 9], dtype=np.int64)
        DX = rng.standard_normal((3, 4))
        R = rng.standard_normal((14, 4))
        expected = R - dense[:, cols] @ DX
        A.subtract_columns_update(R, cols, DX)
        np.testing.assert_allclose(R, expected, rtol=1e-13, atol=1e-13)

    def test_subtract_columns_update_span_untouched_rows(self):
        """Rows outside the touched span must not even be written."""
        dense = np.zeros((9, 9))
        dense[3, 4] = 2.0
        dense[5, 4] = -1.0
        A = CSRMatrix.from_dense(dense)
        r = np.full(9, np.nan)  # NaN canaries outside the span
        r[3:6] = 1.0
        A.subtract_columns_update(r, np.array([4]), np.array([0.5]))
        assert np.isnan(r[:3]).all() and np.isnan(r[6:]).all()
        np.testing.assert_allclose(r[3:6], [0.0, 1.0, 1.5])

    def test_subtract_columns_update_empty_cases(self, small_fd, rng):
        r = rng.standard_normal(small_fd.nrows)
        before = r.copy()
        small_fd.subtract_columns_update(r, np.empty(0, dtype=np.int64), np.empty(0))
        np.testing.assert_array_equal(r, before)
        R = rng.standard_normal((small_fd.nrows, 0))
        small_fd.subtract_columns_update(
            R, np.array([1]), np.empty((1, 0))
        )
