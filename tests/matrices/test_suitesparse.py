"""SuiteSparse stand-ins: the Table I contract."""

import numpy as np
import pytest

from repro.matrices.properties import (
    is_irreducible,
    jacobi_spectral_radius,
)
from repro.matrices.suitesparse import (
    FIGURE7_PROBLEMS,
    PAPER_PROBLEMS,
    dubcova2_like,
    ecology2_like,
    g3_circuit_like,
    load_problem,
    parabolic_fem_like,
    thermal2_like,
)
from repro.util.errors import ShapeError


class TestCatalog:
    def test_seven_problems_in_paper_order(self):
        assert list(PAPER_PROBLEMS) == [
            "thermal2",
            "G3_circuit",
            "ecology2",
            "apache2",
            "parabolic_fem",
            "thermomech_dm",
            "Dubcova2",
        ]

    def test_paper_counts_recorded(self):
        spec = PAPER_PROBLEMS["thermal2"]
        assert spec.paper_rows == 1_227_087
        assert spec.paper_nnz == 8_579_355

    def test_figure7_excludes_dubcova2(self):
        assert "Dubcova2" not in FIGURE7_PROBLEMS
        assert len(FIGURE7_PROBLEMS) == 6

    def test_load_problem_unknown(self):
        with pytest.raises(KeyError, match="available"):
            load_problem("nosuch")

    def test_load_problem_size_override(self):
        A = load_problem("ecology2", n=100)
        assert A.nrows == 100


# Reduced sizes keep the spectral checks fast in CI; built once per session.
_SMALL_N = {"thermal2": 900, "G3_circuit": 1200, "ecology2": 900,
            "apache2": 1000, "parabolic_fem": 900, "thermomech_dm": 800,
            "Dubcova2": 900}
_CACHE = {}


def _standin(name):
    if name not in _CACHE:
        _CACHE[name] = PAPER_PROBLEMS[name].build(n=_SMALL_N[name])
    return _CACHE[name]


@pytest.mark.parametrize("name", list(PAPER_PROBLEMS))
class TestStandInProperties:
    """Every stand-in preserves the property its Table I role requires."""

    @pytest.fixture
    def matrix(self, name):
        return _standin(name)

    def test_symmetric_unit_diagonal(self, name, matrix):
        assert matrix.is_symmetric(tol=1e-9)
        np.testing.assert_allclose(matrix.diagonal(), 1.0, atol=1e-9)

    def test_irreducible(self, name, matrix):
        assert is_irreducible(matrix)

    def test_jacobi_convergence_matches_paper(self, name, matrix):
        rho = jacobi_spectral_radius(matrix, iters=4000)
        if PAPER_PROBLEMS[name].jacobi_converges:
            assert rho < 1.0, f"{name} stand-in must be Jacobi-convergent"
        else:
            assert rho > 1.0, f"{name} stand-in must be Jacobi-divergent"


class TestSpecificGenerators:
    def test_parabolic_fem_strongly_dominant(self):
        """The implicit-Euler shift makes Jacobi converge fast."""
        A = parabolic_fem_like(400)
        assert jacobi_spectral_radius(A) < 0.6

    def test_ecology2_is_grid(self):
        A = ecology2_like(400)
        # 20x20 grid: 400 + 2 * (2 * 20 * 19) nonzeros.
        assert A.nrows == 400
        assert A.nnz == 400 + 2 * (2 * 20 * 19)

    def test_g3_circuit_deterministic(self):
        assert g3_circuit_like(300, seed=1) == g3_circuit_like(300, seed=1)

    def test_thermal2_slow_but_convergent(self):
        rho = jacobi_spectral_radius(thermal2_like(900))
        assert 0.9 < rho < 1.0

    def test_dubcova2_divergent_across_sizes(self):
        for n in (400, 900):
            assert jacobi_spectral_radius(dubcova2_like(n), iters=4000) > 1.0

    def test_size_validation(self):
        with pytest.raises(ShapeError):
            thermal2_like(4)


class TestLoadReal:
    """load_real: real .mtx files when present, verified stand-ins otherwise."""

    def test_stand_in_fallback_without_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_SUITESPARSE_DIR", raising=False)
        from repro.matrices.suitesparse import load_real, real_matrix_path

        assert real_matrix_path("thermal2") is None
        A, info = load_real("thermomech_dm", n=100, seed=17)
        assert info["source"] == "stand-in"
        assert info["name"] == "thermomech_dm"
        assert info["rows"] == A.nrows == 100
        assert info["nnz"] == A.nnz
        assert "path" not in info

    def test_missing_file_falls_back(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SUITESPARSE_DIR", str(tmp_path))
        from repro.matrices.suitesparse import load_real, real_matrix_path

        assert real_matrix_path("ecology2") is None
        _, info = load_real("ecology2", n=100)
        assert info["source"] == "stand-in"

    @pytest.mark.parametrize("layout", ["flat", "nested"])
    def test_real_file_read_and_scaled(self, tmp_path, monkeypatch, layout):
        """A dropped-in .mtx is read, unit-diagonal scaled, and attributed."""
        from repro.matrices.io import write_matrix_market
        from repro.matrices.laplacian import fd_laplacian_2d
        from repro.matrices.suitesparse import load_real

        A = fd_laplacian_2d(5, 5, scaled=False)
        if layout == "flat":
            path = tmp_path / "apache2.mtx"
        else:
            (tmp_path / "apache2").mkdir()
            path = tmp_path / "apache2" / "apache2.mtx"
        write_matrix_market(A, path)
        monkeypatch.setenv("REPRO_SUITESPARSE_DIR", str(tmp_path))
        got, info = load_real("apache2")
        assert info["source"] == "suitesparse"
        assert info["path"] == str(path)
        assert info["rows"] == 25 and info["nnz"] == A.nnz
        np.testing.assert_array_equal(got.diagonal(), np.ones(25))
        scaled, _ = A.unit_diagonal_scaled()
        assert got == scaled

    def test_unknown_name_rejected_before_any_io(self, monkeypatch):
        monkeypatch.delenv("REPRO_SUITESPARSE_DIR", raising=False)
        from repro.matrices.suitesparse import load_real

        with pytest.raises(KeyError, match="unknown problem"):
            load_real("not_in_table_1")
