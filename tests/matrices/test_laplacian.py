"""FD Laplacian generators: paper-exact counts and structural properties."""

import numpy as np
import pytest

from repro.matrices.laplacian import (
    PAPER_FD_GRIDS,
    fd_laplacian_1d,
    fd_laplacian_2d,
    fd_laplacian_3d,
    near_square_grid,
    paper_fd_matrix,
)
from repro.matrices.properties import (
    is_irreducible,
    is_spd,
    is_weakly_diagonally_dominant,
)
from repro.util.errors import ShapeError


class TestPaperMatrices:
    @pytest.mark.parametrize("rows,nnz", [(40, 174), (68, 298), (272, 1294), (4624, 22848)])
    def test_exact_paper_counts(self, rows, nnz):
        """The four FD matrices match the paper's (rows, nnz) exactly."""
        A = paper_fd_matrix(rows)
        assert A.nrows == rows
        assert A.nnz == nnz

    def test_unknown_size_raises(self):
        with pytest.raises(KeyError, match="40"):
            paper_fd_matrix(41)

    @pytest.mark.parametrize("rows", sorted(PAPER_FD_GRIDS))
    def test_paper_matrix_is_irreducibly_wdd(self, rows):
        """Section VII-A: FD matrices are irreducibly W.D.D."""
        A = paper_fd_matrix(rows)
        assert is_weakly_diagonally_dominant(A)
        assert is_irreducible(A)

    def test_paper_matrix_spd(self):
        assert is_spd(paper_fd_matrix(40))


class TestGenerators:
    def test_1d_structure(self):
        A = fd_laplacian_1d(5, scaled=False)
        expected = 2 * np.eye(5) - np.eye(5, k=1) - np.eye(5, k=-1)
        np.testing.assert_array_equal(A.to_dense(), expected)

    def test_1d_scaled_unit_diagonal(self):
        A = fd_laplacian_1d(5)
        np.testing.assert_allclose(A.diagonal(), np.ones(5))
        assert A.is_symmetric(tol=1e-14)

    def test_2d_unscaled_stencil(self):
        A = fd_laplacian_2d(3, 3, scaled=False)
        d = A.to_dense()
        np.testing.assert_array_equal(np.diag(d), np.full(9, 4.0))
        # Center node (1,1) -> index 4 couples to 1, 3, 5, 7.
        assert sorted(np.nonzero(d[4])[0]) == [1, 3, 4, 5, 7]
        np.testing.assert_array_equal(d[4, [1, 3, 5, 7]], [-1, -1, -1, -1])

    def test_2d_symmetry_and_scaling(self):
        A = fd_laplacian_2d(4, 6)
        assert A.is_symmetric(tol=1e-14)
        np.testing.assert_allclose(A.diagonal(), np.ones(24))

    def test_2d_matches_kron_construction(self):
        nx, ny = 4, 5
        A = fd_laplacian_2d(nx, ny, scaled=False).to_dense()
        T = lambda k: 2 * np.eye(k) - np.eye(k, k=1) - np.eye(k, k=-1)
        expected = np.kron(T(nx), np.eye(ny)) + np.kron(np.eye(nx), T(ny))
        np.testing.assert_array_equal(A, expected)

    def test_3d_stencil_count(self):
        A = fd_laplacian_3d(3, 3, 3, scaled=False)
        assert A.nrows == 27
        d = A.to_dense()
        np.testing.assert_array_equal(np.diag(d), np.full(27, 6.0))
        # Center node has 6 neighbors.
        center = 13
        assert np.count_nonzero(d[center]) == 7

    def test_3d_wdd_spd(self):
        A = fd_laplacian_3d(3, 4, 2)
        assert is_weakly_diagonally_dominant(A)
        assert is_spd(A)

    @pytest.mark.parametrize("bad", [0, -3])
    def test_invalid_sizes(self, bad):
        with pytest.raises(ShapeError):
            fd_laplacian_1d(bad)
        with pytest.raises(ShapeError):
            fd_laplacian_2d(bad, 3)
        with pytest.raises(ShapeError):
            fd_laplacian_3d(2, bad, 2)


class TestNearSquareGrid:
    @pytest.mark.parametrize("n,expected", [(16, (4, 4)), (12, (4, 3)), (7, (7, 1)), (1, (1, 1))])
    def test_factors(self, n, expected):
        assert near_square_grid(n) == expected

    def test_product_preserved(self):
        for n in range(1, 60):
            a, b = near_square_grid(n)
            assert a * b == n

    def test_invalid(self):
        with pytest.raises(ShapeError):
            near_square_grid(0)
