"""General stencils: anisotropy, variable coefficients, 9-point."""

import numpy as np
import pytest

from repro.core.iteration import greedy_coloring
from repro.matrices.laplacian import fd_laplacian_2d
from repro.matrices.properties import is_spd, jacobi_spectral_radius
from repro.matrices.stencil import (
    anisotropic_laplacian_2d,
    nine_point_laplacian_2d,
    variable_coefficient_laplacian_2d,
)
from repro.util.errors import ShapeError


class TestAnisotropic:
    def test_eps_one_is_plain_laplacian(self):
        assert anisotropic_laplacian_2d(5, 6, eps=1.0) == fd_laplacian_2d(5, 6)

    def test_unscaled_stencil_values(self):
        A = anisotropic_laplacian_2d(3, 3, eps=0.25, scaled=False)
        d = A.to_dense()
        assert d[4, 4] == pytest.approx(2.5)  # 2 (eps + 1)
        assert d[4, 1] == pytest.approx(-0.25)  # x-neighbor
        assert d[4, 3] == pytest.approx(-1.0)  # y-neighbor

    def test_spd(self):
        assert is_spd(anisotropic_laplacian_2d(5, 5, eps=0.1))

    def test_scaled_radius_is_eps_invariant(self):
        """After unit-diagonal scaling, rho(G) = (eps cos(pi h) + cos(pi h))
        / (1 + eps) = cos(pi h): anisotropy does not change the Jacobi
        radius — it redistributes the coupling onto the strong direction."""
        iso = jacobi_spectral_radius(anisotropic_laplacian_2d(8, 8, eps=1.0))
        strong = jacobi_spectral_radius(anisotropic_laplacian_2d(8, 8, eps=0.01))
        assert strong == pytest.approx(iso, abs=1e-3)

    def test_strong_anisotropy_nearly_decouples_lines(self):
        """eps -> 0 shrinks the scaled x-couplings toward zero: the domain
        behaves like independent y-lines (the decoupling that makes line
        and block methods win on anisotropic problems)."""
        A = anisotropic_laplacian_2d(6, 6, eps=1e-3)
        dense = A.to_dense()
        x_coupling = abs(dense[0, 6])  # neighbor along x (stride ny=6)
        y_coupling = abs(dense[0, 1])
        assert x_coupling < 0.01 * y_coupling

    def test_eps_validation(self):
        with pytest.raises(ValueError):
            anisotropic_laplacian_2d(4, 4, eps=0.0)


class TestVariableCoefficient:
    def test_constant_coefficient_matches_laplacian(self):
        A = variable_coefficient_laplacian_2d(4, 5, coefficient=lambda x, y: 1.0)
        B = fd_laplacian_2d(4, 5, scaled=False)
        np.testing.assert_allclose(A.to_dense(), B.to_dense(), atol=1e-13)

    def test_symmetric_m_matrix(self):
        A = variable_coefficient_laplacian_2d(6, 6, seed=1, contrast=2.0)
        assert A.is_symmetric(tol=1e-12)
        dense = A.to_dense()
        off = dense - np.diag(np.diag(dense))
        assert np.all(off <= 0)  # M-matrix sign pattern
        assert np.all(np.diag(dense) > 0)

    def test_spd_with_high_contrast(self):
        assert is_spd(variable_coefficient_laplacian_2d(5, 5, seed=2, contrast=3.0))

    def test_deterministic_random_field(self):
        a = variable_coefficient_laplacian_2d(5, 5, seed=3)
        b = variable_coefficient_laplacian_2d(5, 5, seed=3)
        assert a == b

    def test_rejects_nonpositive_coefficient(self):
        with pytest.raises(ValueError):
            variable_coefficient_laplacian_2d(3, 3, coefficient=lambda x, y: -1.0)

    def test_jacobi_converges_after_scaling(self, rng):
        A = variable_coefficient_laplacian_2d(8, 8, seed=4, contrast=1.5, scaled=True)
        assert jacobi_spectral_radius(A) < 1.0


class TestNinePoint:
    def test_stencil_weights(self):
        A = nine_point_laplacian_2d(3, 3, scaled=False)
        d = A.to_dense()
        assert d[4, 4] == pytest.approx(20.0 / 6.0)
        assert d[4, 1] == pytest.approx(-4.0 / 6.0)  # edge neighbor
        assert d[4, 0] == pytest.approx(-1.0 / 6.0)  # corner neighbor
        assert np.count_nonzero(d[4]) == 9

    def test_symmetric_spd(self):
        A = nine_point_laplacian_2d(5, 4)
        assert A.is_symmetric(tol=1e-12)
        assert is_spd(A)

    def test_needs_four_colors(self):
        """Corner couplings break bipartiteness: greedy coloring uses 4."""
        A = nine_point_laplacian_2d(6, 6)
        assert greedy_coloring(A).max() + 1 == 4

    def test_jacobi_converges(self):
        assert jacobi_spectral_radius(nine_point_laplacian_2d(8, 8)) < 1.0


class TestValidation:
    def test_bad_grid(self):
        with pytest.raises(ShapeError):
            anisotropic_laplacian_2d(0, 3)
        with pytest.raises(ShapeError):
            nine_point_laplacian_2d(3, -1)
