"""Matrix property analysis: W.D.D. checks, spectra, reports."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.matrices.laplacian import fd_laplacian_1d, fd_laplacian_2d
from repro.matrices.properties import (
    analyze,
    is_irreducible,
    is_spd,
    is_weakly_diagonally_dominant,
    jacobi_spectral_radius,
    symmetric_extreme_eigenvalues,
    wdd_fraction,
    wdd_rows,
)
from repro.matrices.sparse import CSRMatrix


class TestWDD:
    def test_wdd_rows_exact(self):
        dense = np.array([[2.0, -1.0, 0.0], [-1.0, 1.5, -1.0], [0.0, -3.0, 2.0]])
        A = CSRMatrix.from_dense(dense)
        np.testing.assert_array_equal(wdd_rows(A), [True, False, False])
        assert not is_weakly_diagonally_dominant(A)
        assert wdd_fraction(A) == pytest.approx(1 / 3)

    def test_equality_counts_as_wdd(self):
        dense = np.array([[1.0, -1.0], [-1.0, 1.0]])
        assert is_weakly_diagonally_dominant(CSRMatrix.from_dense(dense))

    def test_fd_is_wdd(self, small_fd):
        assert is_weakly_diagonally_dominant(small_fd)
        assert wdd_fraction(small_fd) == 1.0


class TestIrreducibility:
    def test_connected_grid(self, small_fd):
        assert is_irreducible(small_fd)

    def test_block_diagonal_is_reducible(self):
        dense = np.array(
            [[2.0, -1.0, 0.0, 0.0], [-1.0, 2.0, 0.0, 0.0], [0.0, 0.0, 2.0, -1.0], [0.0, 0.0, -1.0, 2.0]]
        )
        assert not is_irreducible(CSRMatrix.from_dense(dense))

    def test_single_row(self):
        assert is_irreducible(CSRMatrix.from_dense(np.array([[1.0]])))

    def test_diagonal_only(self):
        assert not is_irreducible(CSRMatrix.from_dense(np.eye(3)))


class TestSpectra:
    def test_extreme_eigenvalues_match_dense(self, small_fd):
        lmin, lmax = symmetric_extreme_eigenvalues(small_fd)
        eigs = np.linalg.eigvalsh(small_fd.to_dense())
        assert lmin == pytest.approx(eigs[0], abs=1e-6)
        assert lmax == pytest.approx(eigs[-1], abs=1e-6)

    def test_jacobi_radius_1d_analytic(self):
        """For the scaled 1-D Laplacian, rho(G) = cos(pi/(n+1))."""
        n = 12
        A = fd_laplacian_1d(n)
        rho = jacobi_spectral_radius(A)
        assert rho == pytest.approx(np.cos(np.pi / (n + 1)), abs=1e-6)

    def test_jacobi_radius_2d_analytic(self):
        nx, ny = 5, 6
        A = fd_laplacian_2d(nx, ny)
        expected = (np.cos(np.pi / (nx + 1)) + np.cos(np.pi / (ny + 1))) / 2
        assert jacobi_spectral_radius(A) == pytest.approx(expected, abs=1e-6)

    def test_jacobi_radius_nonsymmetric_fallback(self):
        dense = np.array([[2.0, 1.0], [0.0, 2.0]])
        A = CSRMatrix.from_dense(dense)
        G = np.eye(2) - np.diag(1 / np.diag(dense)) @ dense
        expected = np.max(np.abs(np.linalg.eigvals(G)))
        assert jacobi_spectral_radius(A) == pytest.approx(expected, abs=1e-6)


class TestSPD:
    def test_fd_spd(self, small_fd):
        assert is_spd(small_fd)

    def test_indefinite(self):
        assert not is_spd(CSRMatrix.from_dense(np.array([[1.0, 0.0], [0.0, -1.0]])))

    def test_nonsymmetric(self):
        assert not is_spd(CSRMatrix.from_dense(np.array([[1.0, 0.5], [0.0, 1.0]])))


class TestAnalyze:
    def test_report_fields(self, small_fd):
        rep = analyze(small_fd, name="fd")
        assert rep.name == "fd"
        assert rep.nrows == small_fd.nrows
        assert rep.nnz == small_fd.nnz
        assert rep.symmetric and rep.wdd and rep.irreducible
        assert rep.jacobi_converges
        assert 0 < rep.jacobi_rho < 1


@settings(max_examples=25, deadline=None)
@given(st.integers(2, 12), st.integers(0, 2**31 - 1))
def test_property_sdd_implies_jacobi_radius_below_one(n, seed):
    """Strict diagonal dominance => rho(G) < 1 (classical theorem)."""
    rng = np.random.default_rng(seed)
    off = rng.standard_normal((n, n))
    np.fill_diagonal(off, 0.0)
    row_sums = np.sum(np.abs(off), axis=1)
    dense = off + np.diag(row_sums + rng.uniform(0.1, 1.0, n))
    A = CSRMatrix.from_dense(dense)
    assert is_weakly_diagonally_dominant(A)
    assert jacobi_spectral_radius(A, iters=4000) < 1.0 + 1e-9
