"""Partitioner invariants: balance, coverage, cut quality, permutations."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.matrices.laplacian import fd_laplacian_2d
from repro.partition.partitioner import (
    bfs_bisection_partition,
    contiguous_partition,
    edge_cut,
    part_sizes,
    partition_permutation,
)
from repro.util.errors import PartitionError


class TestContiguousPartition:
    def test_balanced_sizes(self):
        labels = contiguous_partition(10, 3)
        np.testing.assert_array_equal(part_sizes(labels, 3), [4, 3, 3])

    def test_exact_division(self):
        labels = contiguous_partition(12, 4)
        np.testing.assert_array_equal(part_sizes(labels, 4), [3, 3, 3, 3])

    def test_labels_nondecreasing(self):
        labels = contiguous_partition(17, 5)
        assert np.all(np.diff(labels) >= 0)

    def test_one_part(self):
        assert np.all(contiguous_partition(7, 1) == 0)

    def test_one_row_per_part(self):
        np.testing.assert_array_equal(contiguous_partition(4, 4), [0, 1, 2, 3])

    @pytest.mark.parametrize("n,parts", [(3, 5), (0, 1), (4, 0)])
    def test_infeasible(self, n, parts):
        with pytest.raises(PartitionError):
            contiguous_partition(n, parts)


class TestBFSBisection:
    @pytest.mark.parametrize("parts", [1, 2, 3, 5, 8, 13])
    def test_covers_all_rows_balanced(self, parts):
        A = fd_laplacian_2d(9, 9)
        labels = bfs_bisection_partition(A, parts)
        sizes = part_sizes(labels, parts)
        assert sizes.sum() == 81
        assert sizes.min() >= 81 // parts - 1  # near-balance
        assert sizes.max() <= -(-81 // parts) + 1

    def test_parts_are_connected(self):
        """Graph-grown parts of a connected grid must be connected."""
        from repro.matrices.properties import is_irreducible

        A = fd_laplacian_2d(8, 8)
        labels = bfs_bisection_partition(A, 4)
        for p in range(4):
            rows = np.nonzero(labels == p)[0]
            assert is_irreducible(A.submatrix(rows))

    def test_better_cut_than_random(self, rng):
        A = fd_laplacian_2d(12, 12)
        labels = bfs_bisection_partition(A, 6)
        random_labels = rng.permutation(np.repeat(np.arange(6), 24))
        assert edge_cut(A, labels) < edge_cut(A, random_labels)

    def test_infeasible(self):
        A = fd_laplacian_2d(2, 2)
        with pytest.raises(PartitionError):
            bfs_bisection_partition(A, 5)


class TestEdgeCut:
    def test_zero_for_single_part(self, small_fd):
        labels = np.zeros(small_fd.nrows, dtype=np.int64)
        assert edge_cut(small_fd, labels) == 0

    def test_known_cut_1d_chain(self):
        from repro.matrices.laplacian import fd_laplacian_1d

        A = fd_laplacian_1d(6)
        labels = contiguous_partition(6, 2)
        assert edge_cut(A, labels) == 1  # one chain edge crosses the split

    def test_grid_split_cut(self):
        # 4x4 grid split into two 8-row halves along x: cut = ny = 4.
        A = fd_laplacian_2d(4, 4)
        labels = contiguous_partition(16, 2)
        assert edge_cut(A, labels) == 4


class TestPermutation:
    def test_permutation_makes_parts_contiguous(self, rng):
        labels = rng.integers(0, 4, size=30)
        labels[:4] = [0, 1, 2, 3]  # ensure all parts nonempty
        perm = partition_permutation(labels)
        permuted = labels[perm]
        assert np.all(np.diff(permuted) >= 0)

    def test_stable_within_part(self):
        labels = np.array([1, 0, 1, 0, 1])
        perm = partition_permutation(labels)
        np.testing.assert_array_equal(perm, [1, 3, 0, 2, 4])


@settings(max_examples=30, deadline=None)
@given(st.integers(1, 40), st.integers(1, 10))
def test_property_contiguous_partition_invariants(n, parts):
    """Sizes differ by at most 1 and every row is assigned exactly once."""
    if parts > n:
        with pytest.raises(PartitionError):
            contiguous_partition(n, parts)
        return
    labels = contiguous_partition(n, parts)
    sizes = part_sizes(labels, parts)
    assert sizes.sum() == n
    assert sizes.max() - sizes.min() <= 1
    assert labels.min() == 0 and labels.max() == parts - 1
