"""RCM ordering and bandwidth, plus the Chazan-Miranker criterion."""

import numpy as np
import pytest

from repro.matrices.laplacian import fd_laplacian_1d, fd_laplacian_2d
from repro.matrices.properties import (
    chazan_miranker_converges,
    chazan_miranker_radius,
    jacobi_spectral_radius,
)
from repro.matrices.sparse import CSRMatrix
from repro.partition.partitioner import bandwidth, contiguous_partition, edge_cut, rcm_ordering


class TestRCM:
    def test_is_permutation(self, small_fd):
        perm = rcm_ordering(small_fd)
        np.testing.assert_array_equal(np.sort(perm), np.arange(small_fd.nrows))

    def test_reduces_bandwidth_of_shuffled_grid(self, rng):
        """Scramble a grid, then RCM: the bandwidth comes back down."""
        A = fd_laplacian_2d(7, 7)
        shuffle = rng.permutation(A.nrows)
        shuffled = A.submatrix(shuffle)
        perm = rcm_ordering(shuffled)
        restored = shuffled.submatrix(perm)
        assert bandwidth(restored) < bandwidth(shuffled)
        assert bandwidth(restored) <= 2 * bandwidth(A)

    def test_chain_gets_optimal_bandwidth(self):
        """A path graph reordered by RCM must have bandwidth 1."""
        rng = np.random.default_rng(5)
        A = fd_laplacian_1d(20)
        shuffled = A.submatrix(rng.permutation(20))
        restored = shuffled.submatrix(rcm_ordering(shuffled))
        assert bandwidth(restored) == 1

    def test_disconnected_graph_covered(self):
        dense = np.eye(4)
        dense[0, 1] = dense[1, 0] = -0.5
        A = CSRMatrix.from_dense(dense)
        perm = rcm_ordering(A)
        np.testing.assert_array_equal(np.sort(perm), np.arange(4))

    def test_improves_contiguous_partition_cut(self, rng):
        """RCM + contiguous blocks approximates a real graph partition."""
        A = fd_laplacian_2d(10, 10)
        shuffled = A.submatrix(rng.permutation(A.nrows))
        labels = contiguous_partition(A.nrows, 5)
        cut_before = edge_cut(shuffled, labels)
        reordered = shuffled.submatrix(rcm_ordering(shuffled))
        cut_after = edge_cut(reordered, labels)
        assert cut_after < cut_before


class TestBandwidth:
    def test_diagonal(self):
        assert bandwidth(CSRMatrix.identity(4)) == 0

    def test_tridiagonal(self):
        assert bandwidth(fd_laplacian_1d(6)) == 1

    def test_empty(self):
        assert bandwidth(CSRMatrix.from_coo([], [], [], (3, 3))) == 0


class TestChazanMiranker:
    def test_wdd_matrix_guaranteed(self, small_fd):
        """Strictly dominant rows exist: rho(|G|) < 1 for the FD matrix."""
        assert chazan_miranker_converges(small_fd)

    def test_radius_at_least_jacobi_radius(self, small_fd):
        assert (
            chazan_miranker_radius(small_fd)
            >= jacobi_spectral_radius(small_fd) - 1e-8
        )

    def test_equal_for_nonnegative_off_diagonal(self):
        """When G = |G| (all off-diagonal entries of A nonpositive),
        the two radii coincide — true for the FD Laplacians."""
        A = fd_laplacian_1d(15)
        assert chazan_miranker_radius(A) == pytest.approx(
            jacobi_spectral_radius(A), abs=1e-6
        )

    def test_sign_sensitive(self, rng):
        """Mixed signs can push rho(|G|) above 1 while rho(G) stays below —
        the gap the paper's transient analysis lives in."""
        n = 12
        off = rng.standard_normal((n, n)) * 0.35
        off = (off + off.T) / 2
        np.fill_diagonal(off, 0.0)
        A = CSRMatrix.from_dense(np.eye(n) + off)
        assert chazan_miranker_radius(A) >= jacobi_spectral_radius(A) - 1e-8

    def test_dense_oracle(self, random_csr):
        G = random_csr.jacobi_iteration_matrix().to_dense()
        expected = float(np.max(np.abs(np.linalg.eigvals(np.abs(G)))))
        assert chazan_miranker_radius(random_csr, iters=6000) == pytest.approx(
            expected, abs=1e-5
        )
