"""Domain decomposition: ownership, neighbors, ghost-layer symmetry."""

import numpy as np
import pytest

from repro.matrices.laplacian import fd_laplacian_2d
from repro.partition.partitioner import bfs_bisection_partition, contiguous_partition
from repro.partition.subdomain import DomainDecomposition
from repro.util.errors import PartitionError


@pytest.fixture
def decomposition():
    A = fd_laplacian_2d(8, 8)
    labels = bfs_bisection_partition(A, 5)
    return A, DomainDecomposition(A, labels)


class TestDecomposition:
    def test_rows_partition_exactly(self, decomposition):
        A, dd = decomposition
        all_rows = np.concatenate([s.rows for s in dd])
        np.testing.assert_array_equal(np.sort(all_rows), np.arange(A.nrows))

    def test_local_matrix_is_row_slice(self, decomposition):
        A, dd = decomposition
        for sub in dd:
            np.testing.assert_array_equal(
                sub.matrix.to_dense(), A.to_dense()[sub.rows]
            )

    def test_send_recv_mirror(self, decomposition):
        """p's receive list from q is exactly q's send list to p."""
        _, dd = decomposition
        for sub in dd:
            for q, cols in sub.recv_from.items():
                np.testing.assert_array_equal(dd[q].send_to[sub.rank], cols)

    def test_ghosts_cover_external_columns(self, decomposition):
        """Every off-part column of a subdomain's rows is a ghost."""
        A, dd = decomposition
        for sub in dd:
            own = set(sub.rows.tolist())
            ghosts = set(sub.ghost_columns.tolist())
            for i in sub.rows:
                for j in A.neighbors(i):
                    if int(j) not in own:
                        assert int(j) in ghosts

    def test_ghost_owners_correct(self, decomposition):
        _, dd = decomposition
        labels = dd.labels
        for sub in dd:
            for q, cols in sub.recv_from.items():
                assert np.all(labels[cols] == q)

    def test_neighbors_symmetric(self, decomposition):
        """Symmetric matrix => the neighbor relation is symmetric."""
        _, dd = decomposition
        for sub in dd:
            for q in sub.neighbors:
                assert sub.rank in dd[q].neighbors

    def test_metrics(self, decomposition):
        A, dd = decomposition
        assert dd.total_ghost_values() > 0
        assert dd.max_local_nnz() <= A.nnz
        assert sum(s.local_nnz() for s in dd) == A.nnz

    def test_single_part_has_no_ghosts(self):
        A = fd_laplacian_2d(4, 4)
        dd = DomainDecomposition(A, np.zeros(16, dtype=np.int64))
        assert dd[0].ghost_columns.size == 0
        assert dd[0].neighbors == []

    def test_contiguous_labels(self):
        A = fd_laplacian_2d(6, 6)
        dd = DomainDecomposition(A, contiguous_partition(36, 4))
        assert len(dd) == 4
        for sub in dd:
            assert np.all(np.diff(sub.rows) == 1)


class TestValidation:
    def test_rejects_rectangular(self):
        from repro.matrices.sparse import CSRMatrix

        A = CSRMatrix.from_dense(np.ones((2, 3)))
        with pytest.raises(PartitionError):
            DomainDecomposition(A, np.zeros(2, dtype=np.int64))

    def test_rejects_wrong_label_length(self, small_fd):
        with pytest.raises(PartitionError):
            DomainDecomposition(small_fd, np.zeros(3, dtype=np.int64))

    def test_rejects_empty_part(self, small_fd):
        labels = np.zeros(small_fd.nrows, dtype=np.int64)
        labels[0] = 2  # part 1 empty
        with pytest.raises(PartitionError, match="own no rows"):
            DomainDecomposition(small_fd, labels)

    def test_rejects_negative_labels(self, small_fd):
        labels = np.zeros(small_fd.nrows, dtype=np.int64)
        labels[0] = -1
        with pytest.raises(PartitionError):
            DomainDecomposition(small_fd, labels)
