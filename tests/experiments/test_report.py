"""Report formatting helpers used by every experiment."""

import math

import pytest

from repro.experiments.report import downsample, format_series, format_table


class TestFormatTable:
    def test_alignment_and_header(self):
        text = format_table(["name", "value"], [("a", 1), ("long-name", 2.5)])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert set(lines[1]) <= {"-", " "}
        assert len(lines) == 4
        # Columns align: each line equally wide or shorter only by rstrip.
        assert "long-name" in lines[3]

    def test_float_formatting(self):
        text = format_table(["v"], [(0.000123,), (12345.6,), (1.5,), (0.0,)])
        assert "1.230e-04" in text
        assert "1.235e+04" in text
        assert "1.5" in text
        assert "\n0" in text

    def test_inf_nan(self):
        text = format_table(["v"], [(float("inf"),), (float("nan"),)])
        assert "inf" in text and "nan" in text

    def test_empty_rows(self):
        text = format_table(["a", "b"], [])
        assert len(text.splitlines()) == 2

    def test_mixed_types(self):
        text = format_table(["x"], [("str",), (7,), (True,)])
        assert "str" in text and "7" in text and "True" in text


class TestFormatSeries:
    def test_title_and_columns(self):
        text = format_series("curve", [1, 2], [0.5, 0.25], "k", "res")
        assert text.startswith("curve\n")
        assert "k" in text and "res" in text
        assert "0.25" in text


class TestDownsample:
    def test_short_series_untouched(self):
        xs, ys = downsample([1, 2, 3], [4, 5, 6], max_points=10)
        assert xs == [1, 2, 3] and ys == [4, 5, 6]

    def test_keeps_endpoints(self):
        xs = list(range(100))
        ys = [x * x for x in xs]
        dx, dy = downsample(xs, ys, max_points=7)
        assert len(dx) == 7
        assert dx[0] == 0 and dx[-1] == 99
        assert dy[-1] == 99 * 99

    def test_monotone_subsequence(self):
        xs = list(range(50))
        dx, _ = downsample(xs, xs, max_points=9)
        assert dx == sorted(dx)
        assert len(set(dx)) == len(dx)

    def test_exact_max_points(self):
        xs = list(range(20))
        dx, _ = downsample(xs, xs, max_points=20)
        assert dx == xs
