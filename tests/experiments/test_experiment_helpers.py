"""Pure helper functions inside the experiment modules."""

import numpy as np
import pytest

from repro.experiments import fig1, fig2, fig3, fig4, fig5, fig7, fig8, seeds
from repro.runtime.machine import CPU20, KNL


class TestFig1Helpers:
    def test_traces_match_paper_reads(self):
        a = fig1.example_a_trace()
        assert len(a) == 4
        p2 = a.relaxations_of(1)[0]
        assert p2.reads == {0: 0, 3: 1}  # s21=0, s24=1

    def test_run_matches_paper(self):
        res_a, res_b = fig1.run()
        assert res_a.phi == [[4], [1, 2], [3]]
        assert res_b.propagated == 3

    def test_report_text(self):
        text = fig1.format_report(fig1.run())
        assert "{p4}, {p1, p2}, {p3}" in text


class TestFig2Helpers:
    def test_instrumented_profile_overrides_costs(self):
        m = fig2.instrumented(KNL)
        assert m.iteration_overhead > KNL.iteration_overhead
        assert m.time_per_nnz < KNL.time_per_nnz
        # Non-cost structure preserved.
        assert m.cores == KNL.cores and m.smt == KNL.smt

    def test_thread_grids_match_paper(self):
        assert fig2.CPU_THREADS == (5, 10, 20, 40)
        assert fig2.PHI_THREADS == (17, 34, 68, 136, 272)
        assert max(fig2.CPU_THREADS) <= CPU20.max_threads
        assert max(fig2.PHI_THREADS) <= KNL.max_threads


class TestFig3Helpers:
    def test_point_fields(self):
        p = fig3.Fig3Point(source="model", delay=5.0, speedup=4.0, sync_time=20.0, async_time=5.0)
        assert p.speedup == 4.0

    def test_format_report_splits_sources(self):
        pts = [
            fig3.Fig3Point("model", 0.0, 1.0, 10.0, 10.0),
            fig3.Fig3Point("simulator", 0.0, 2.0, 10.0, 5.0),
        ]
        text = fig3.format_report(pts)
        assert "steps" in text and "microseconds" in text


class TestFig4Sawtooth:
    def _curve(self, residuals):
        return fig4.Fig4Curve(
            source="model", mode="async", delay=1.0,
            times=list(range(len(residuals))), residual_norms=residuals,
        )

    def test_stall_then_drop_detected(self):
        res = []
        r = 1.0
        for block in range(6):
            res.extend([r] * 10)  # stall
            r *= 1e-2  # sharp drop
            res.append(r)
        assert fig4.has_sawtooth(self._curve(res))

    def test_smooth_decay_not_sawtooth(self):
        res = [0.9**k for k in range(80)]
        assert not fig4.has_sawtooth(self._curve(res))

    def test_short_history_false(self):
        assert not fig4.has_sawtooth(self._curve([1.0, 0.5]))

    def test_flat_history_false(self):
        assert not fig4.has_sawtooth(self._curve([1.0] * 40))


class TestFig5Point:
    def test_speedup(self):
        p = fig5.Fig5Point(
            n_threads=8, sync_time_to_tol=4.0, async_time_to_tol=2.0,
            sync_iterations=10, async_iterations=9,
            sync_time_100=1.0, async_time_100=0.5,
        )
        assert p.speedup == 2.0


class TestFig7Helpers:
    def test_ranks_for_caps_at_rows(self):
        assert fig7.ranks_for(800, 128) == 100  # 800 // 8
        assert fig7.ranks_for(10_000, 1) == 4
        assert fig7.ranks_for(9, 1) == 1

    def _curve(self, rpn, res):
        return fig7.Fig7Curve(
            problem="p", mode="async", nodes=1, n_ranks=4,
            relaxations_per_n=rpn, residual_norms=res,
        )

    def test_relaxations_to_residual(self):
        c = self._curve([0, 10, 20, 30], [1.0, 0.5, 1e-4, 1e-5])
        assert fig7.relaxations_to_residual(c, 1e-3) == 20
        assert fig7.relaxations_to_residual(c, 1e-9) == float("inf")

    def test_residual_at_relaxations(self):
        c = self._curve([0, 10, 20], [1.0, 0.5, 0.1])
        assert fig7.residual_at_relaxations(c, 15.0) == 0.5
        assert fig7.residual_at_relaxations(c, 100.0) == 0.1


class TestFig8Point:
    def test_speedup(self):
        p = fig8.Fig8Point(problem="x", n_ranks=4, sync_time=3.0, async_time=1.5)
        assert p.speedup == 2.0


class TestSeedsHelpers:
    def test_study_statistics(self):
        s = seeds.SeedStudy(metric="m", samples=[1.0, 2.0, 3.0])
        assert s.mean == 2.0
        assert s.low == 1.0 and s.high == 3.0
        assert s.std == pytest.approx(np.std([1.0, 2.0, 3.0]))

    def test_report_renders(self):
        s = seeds.SeedStudy(metric="m", samples=[1.0, 2.0])
        assert "mean" in seeds.format_report([s])
