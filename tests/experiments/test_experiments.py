"""Experiment runners: quick (reduced-parameter) executions of every
table/figure, checking the paper's qualitative claims hold."""

import numpy as np
import pytest

from repro.experiments import (
    ablations,
    fig2,
    fig3,
    fig4,
    fig5,
    fig6,
    fig7,
    fig8,
    fig9,
    table1,
)


class TestTable1:
    def test_every_standin_matches_paper_role(self):
        rows = table1.run(rho_iters=1500)
        assert len(rows) == 7
        for row in rows:
            assert row.matches_expectation, row.name
        by_name = {r.name: r for r in rows}
        assert not by_name["Dubcova2"].jacobi_converges

    def test_report_renders(self):
        text = table1.format_report(table1.run(rho_iters=500))
        assert "thermal2" in text and "Dubcova2" in text


class TestFig2:
    def test_fractions_majority_and_best_at_max_threads(self):
        points = fig2.run(iterations=12)
        assert len(points) == len(fig2.CPU_THREADS) + len(fig2.PHI_THREADS)
        for p in points:
            assert 0.5 <= p.fraction_propagated <= 1.0
        for platform, counts in (("CPU", fig2.CPU_THREADS), ("Phi", fig2.PHI_THREADS)):
            sub = [p for p in points if p.platform == platform]
            best = max(sub, key=lambda p: p.fraction_propagated)
            assert best.n_threads == counts[-1] or best.fraction_propagated > 0.99

    def test_report_renders(self):
        text = fig2.format_report(fig2.run(iterations=6))
        assert "fraction propagated" in text


class TestFig3:
    def test_model_speedup_monotone_then_plateau(self):
        points = fig3.run_model()
        speedups = [p.speedup for p in points]
        assert speedups[0] == pytest.approx(1.0)
        assert speedups[-1] > 10
        # Non-decreasing up to 5% noise.
        for a, b in zip(speedups, speedups[1:]):
            assert b > a * 0.95

    def test_simulator_speedup_grows_with_delay(self):
        points = fig3.run_simulator(samples=1, max_iterations=200_000)
        by_delay = {p.delay: p.speedup for p in points}
        assert by_delay[0] > 1.0  # async slightly faster even with no delay
        assert by_delay[3000] > 3 * by_delay[0]


class TestFig4:
    def test_model_curves_and_sawtooth(self):
        curves = fig4.run_model(tol=1e-4, max_steps=2500)
        asy = {c.delay: c for c in curves if c.mode == "async"}
        sync = {c.delay: c for c in curves if c.mode == "sync"}
        # Sync curves shift right with delay.
        assert sync[100.0].times[-1] > sync[0.0].times[-1]
        # The large-delay async curve shows the saw-tooth.
        assert fig4.has_sawtooth(asy[100.0])
        # No-delay curves do not.
        assert not fig4.has_sawtooth(asy[0.0])

    def test_largest_delay_still_reduces_residual(self):
        curves = fig4.run_model(tol=1e-4, max_steps=1500)
        worst = [c for c in curves if c.mode == "async"][-1]
        assert worst.final_residual < 0.5 * worst.residual_norms[0]


class TestFig5:
    def test_paper_claims_small_grid(self):
        points = fig5.run(threads=(17, 68, 136, 272), max_iterations=12_000)
        by_t = {p.n_threads: p for p in points}
        # Async fastest at max threads; sync best strictly below it.
        best_async = min(points, key=lambda p: p.async_time_to_tol)
        best_sync = min(points, key=lambda p: p.sync_time_to_tol)
        assert best_async.n_threads == 272
        assert best_sync.n_threads < 272
        # Large speedup at 272 (paper: over 10x; measured 4-10x depending
        # on the right-hand side — see EXPERIMENTS.md).
        assert by_t[272].speedup > 4
        # Async iteration count decreases with threads (68 -> 272).
        assert by_t[272].async_iterations < by_t[68].async_iterations
        # Fig 5(b): per-100-iteration time higher at 272 than 68 for sync.
        assert by_t[272].sync_time_100 > by_t[68].sync_time_100


class TestFig6:
    def test_sync_diverges_async_rescued_by_threads(self):
        result = fig6.run(max_iterations=1600, long_run_iterations=1800)
        sync = [c for c in result["panel_a"] if c.mode == "sync"]
        assert all(c.diverged for c in sync)
        asy = {c.n_threads: c for c in result["panel_a"] if c.mode == "async"}
        # 68 threads fails; 272 threads converges decisively.
        assert asy[68].final_residual > 1e2 * asy[272].final_residual
        assert asy[272].final_residual < 1e-1
        # Panel (b): the long run keeps the residual down (no later blowup).
        assert result["panel_b"].final_residual < 1e-1


class TestFig7:
    def test_async_improves_with_nodes_on_smallest_problem(self):
        curves = fig7.run(
            problems=("thermomech_dm",), node_counts=(1, 25), max_iterations=250,
            tol=1e-4,
        )
        target = 1e-3
        sync_rel = fig7.relaxations_to_residual(
            next(c for c in curves if c.mode == "sync"), target
        )
        async_rel = {
            c.nodes: fig7.relaxations_to_residual(c, target)
            for c in curves
            if c.mode == "async"
        }
        # More nodes => fewer relaxations to the target residual.
        assert async_rel[25] < async_rel[1]
        # And the high-node async beats sync per relaxation.
        assert async_rel[25] < sync_rel

    def test_report_renders(self):
        curves = fig7.run(problems=("thermomech_dm",), node_counts=(1,), max_iterations=60)
        assert "thermomech_dm" in fig7.format_report(curves)
        assert "relax/n" in fig7.format_curves(curves)


class TestFig8:
    def test_async_faster_and_sync_degrades(self):
        points = fig8.run(
            problems=("thermomech_dm", "parabolic_fem"),
            rank_counts=(4, 64),
            max_iterations=1500,
        )
        for p in points:
            assert p.async_time < p.sync_time, p
        tdm = {p.n_ranks: p for p in points if p.problem == "thermomech_dm"}
        assert tdm[64].sync_time > tdm[4].sync_time  # sync scaling collapse


class TestFig9:
    def test_dubcova2_rescued_by_nodes(self):
        curves = fig9.run(node_counts=(1, 32), max_iterations=900)
        sync = next(c for c in curves if c.mode == "sync")
        assert not sync.converged
        assert sync.final_residual > sync.residual_norms[0]
        asy = {c.nodes: c for c in curves if c.mode == "async"}
        assert asy[32].final_residual < 0.05 * asy[32].residual_norms[0]
        assert asy[32].final_residual < asy[1].final_residual


class TestAblations:
    def test_staleness_costs_relaxations(self):
        rows = ablations.staleness_ablation(max_lag_values=(0, 8))
        lag0, lag8 = rows[0].metric, rows[1].metric
        assert lag8 >= lag0

    def test_multiplicative_schedules_beat_synchronous(self):
        rows = {r.config: r.metric for r in ablations.schedule_ablation()}
        assert rows["block sequential"] < rows["synchronous"]
        assert rows["overlapped c=4"] < rows["overlapped c=12"] * 1.1

    def test_interlacing_rho_shrinks_with_delays(self):
        rows = [r for r in ablations.interlacing_ablation() if "worst" not in r.config]
        radii = [r.metric for r in rows]
        assert all(b <= a + 1e-9 for a, b in zip(radii, radii[1:]))

    def test_delay_distributions_all_converge(self):
        rows = ablations.delay_distribution_ablation()
        assert len(rows) == 3
        for r in rows:
            assert np.isfinite(r.metric)

    def test_report_renders(self):
        text = ablations.format_report(ablations.interlacing_ablation())
        assert "interlacing" in text
