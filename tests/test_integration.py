"""Cross-module integration tests.

These exercise the pipelines the paper's experiments rely on:
simulator trace -> reconstruction -> model replay; model vs simulator
convergence agreement; damped relaxations end-to-end; solver front-end
round trips on stand-in problems.
"""

import numpy as np
import pytest

from repro import solve
from repro.core.iteration import jacobi
from repro.core.model import AsyncJacobiModel
from repro.core.reconstruct import reconstruct_propagation_steps
from repro.core.schedules import SynchronousSchedule, TraceSchedule
from repro.matrices.laplacian import fd_laplacian_2d, paper_fd_matrix
from repro.matrices.suitesparse import load_problem
from repro.runtime.distributed import DistributedJacobi
from repro.runtime.shared import SharedMemoryJacobi


class TestTraceToModelPipeline:
    """Simulator trace -> Phi reconstruction -> model replay."""

    def test_reconstructed_steps_replay_in_model(self, rng):
        """The Phi steps recovered from a simulator trace form a valid
        schedule; replaying them through the exact-information model reduces
        the residual just like the simulator did."""
        from repro.experiments.fig2 import instrumented
        from repro.runtime.machine import KNL

        A = fd_laplacian_2d(6, 6)
        n = A.nrows
        b = rng.uniform(-1, 1, n)
        x0 = rng.uniform(-1, 1, n)
        sim = SharedMemoryJacobi(A, b, n_threads=6, machine=instrumented(KNL), seed=3)
        sim_res = sim.run_async(
            x0=x0, tol=1e-300, max_iterations=30, record_trace=True
        )
        rec = reconstruct_propagation_steps(sim_res.trace)
        assert rec.fraction_propagated > 0.5

        steps = [(float(k + 1), rows) for k, rows in enumerate(rec.phi)]
        model = AsyncJacobiModel(A, b)
        replay = model.run(TraceSchedule(n, steps), x0=x0, tol=1e-300)
        assert replay.relaxations == rec.propagated
        # The replay reduces the residual comparably (the non-propagated
        # relaxations are the only difference).
        assert replay.final_residual < 2 * sim_res.final_residual + 1e-12

    def test_fully_propagated_trace_replays_near_exactly(self, rng):
        """For a single-threaded run the trace is a perfect Jacobi history:
        replaying it reproduces the simulator's final iterate exactly."""
        A = fd_laplacian_2d(5, 5)
        n = A.nrows
        b = rng.uniform(-1, 1, n)
        x0 = rng.uniform(-1, 1, n)
        sim = SharedMemoryJacobi(A, b, n_threads=1, seed=0)
        sim_res = sim.run_async(x0=x0, tol=1e-300, max_iterations=12, record_trace=True)
        rec = reconstruct_propagation_steps(sim_res.trace)
        assert rec.fraction_propagated == 1.0
        steps = [(float(k + 1), rows) for k, rows in enumerate(rec.phi)]
        replay = AsyncJacobiModel(A, b).run(TraceSchedule(n, steps), x0=x0, tol=1e-300)
        np.testing.assert_allclose(replay.x, sim_res.x, rtol=1e-12)


class TestModelSimulatorAgreement:
    """The paper's Figure 3/4 agreement claim, as a test."""

    def test_speedup_shapes_agree(self, rng):
        from repro.core.model import model_speedup
        from repro.runtime.delays import ConstantDelay

        A = paper_fd_matrix(68)
        b = rng.uniform(-1, 1, 68)
        x0 = rng.uniform(-1, 1, 68)
        # Model at delay 40 steps.
        m_speedup, _, _ = model_speedup(A, b, delay=40, x0=x0, tol=1e-3)
        # Simulator at an equivalent large delay.
        sim = SharedMemoryJacobi(
            A, b, n_threads=68, seed=5, delay=ConstantDelay({34: 1e-3})
        )
        ra = sim.run_async(x0=x0, tol=1e-3, max_iterations=400_000, observe_every=68)
        rs = sim.run_sync(x0=x0, tol=1e-3, max_iterations=20_000)
        s_speedup = rs.time_to_tolerance(1e-3) / ra.time_to_tolerance(1e-3)
        # Both in the plateau regime: same order of magnitude.
        assert 0.3 < m_speedup / s_speedup < 3.0

    def test_sync_channels_identical(self, rng):
        """Classical Jacobi == model sync schedule == shared sync sim ==
        distributed sync sim, bit-for-bit on the iterates."""
        A = fd_laplacian_2d(7, 7)
        n = A.nrows
        b = rng.uniform(-1, 1, n)
        x0 = rng.uniform(-1, 1, n)
        hist = jacobi(A, b, x0=x0, tol=1e-5, max_iterations=5000)
        model = AsyncJacobiModel(A, b).run(
            SynchronousSchedule(n), x0=x0, tol=1e-5, max_steps=5000
        )
        shared = SharedMemoryJacobi(A, b, n_threads=7, seed=0).run_sync(
            x0=x0, tol=1e-5, max_iterations=5000
        )
        dist = DistributedJacobi(A, b, n_ranks=7, seed=0).run_sync(
            x0=x0, tol=1e-5, max_iterations=5000
        )
        for other in (model.x, shared.x, dist.x):
            np.testing.assert_allclose(other, hist.x, rtol=1e-13)


class TestDampingAcrossBackends:
    def test_damped_consistency(self, rng):
        """omega flows identically through model, shared and distributed."""
        A = fd_laplacian_2d(6, 6)
        n = A.nrows
        b = rng.uniform(-1, 1, n)
        x0 = rng.uniform(-1, 1, n)
        omega = 0.75
        model = AsyncJacobiModel(A, b, omega=omega).run(
            SynchronousSchedule(n), x0=x0, tol=1e-300, max_steps=4
        )
        shared = SharedMemoryJacobi(A, b, n_threads=4, seed=0, omega=omega).run_sync(
            x0=x0, tol=1e-300, max_iterations=4
        )
        dist = DistributedJacobi(A, b, n_ranks=4, seed=0, omega=omega).run_sync(
            x0=x0, tol=1e-300, max_iterations=4
        )
        np.testing.assert_allclose(shared.x, model.x, rtol=1e-13)
        np.testing.assert_allclose(dist.x, model.x, rtol=1e-13)

    def test_damped_async_on_divergent_matrix(self, rng):
        """Damping makes even the low-thread asynchronous run converge on
        the Figure 6 matrix — asynchrony and damping are complementary."""
        from repro.matrices.fem import fe_laplacian_square

        A = fe_laplacian_square(500, seed=7, stretch=6.0)
        n = A.nrows
        b = rng.uniform(-1, 1, n)
        x0 = rng.uniform(-1, 1, n)
        plain = SharedMemoryJacobi(A, b, n_threads=10, seed=1)
        damped = SharedMemoryJacobi(A, b, n_threads=10, seed=1, omega=0.8)
        rp = plain.run_async(x0=x0, tol=1e-3, max_iterations=1200)
        rd = damped.run_async(x0=x0, tol=1e-3, max_iterations=2000)
        assert rd.final_residual < 1e-2
        assert rd.final_residual < rp.final_residual


class TestCrossBackendProperties:
    """Hypothesis-driven equivalences across all execution channels."""

    def test_property_sync_equivalence_random_systems(self):
        from hypothesis import given, settings, strategies as st

        from repro.matrices.sparse import CSRMatrix

        @settings(max_examples=10, deadline=None)
        @given(st.integers(4, 12), st.integers(0, 2**31 - 1))
        def check(n, seed):
            rng = np.random.default_rng(seed)
            off = rng.standard_normal((n, n)) * (rng.random((n, n)) < 0.5)
            off = (off + off.T) / 2
            np.fill_diagonal(off, 0.0)
            max_row = max(float(np.sum(np.abs(off), axis=1).max()), 1e-12)
            A = CSRMatrix.from_dense(np.eye(n) + 0.8 * off / max_row)
            b = rng.uniform(-1, 1, n)
            x0 = rng.uniform(-1, 1, n)
            hist = jacobi(A, b, x0=x0, tol=1e-300, max_iterations=5)
            shared = SharedMemoryJacobi(
                A, b, n_threads=min(3, n), seed=0
            ).run_sync(x0=x0, tol=1e-300, max_iterations=5)
            dist = DistributedJacobi(
                A, b, n_ranks=min(3, n), partition="contiguous", seed=0
            ).run_sync(x0=x0, tol=1e-300, max_iterations=5)
            np.testing.assert_allclose(shared.x, hist.x, rtol=1e-12)
            np.testing.assert_allclose(dist.x, hist.x, rtol=1e-12)

        check()

    def test_shared_async_edge_parameters(self, rng):
        """observe_every=1, converged-at-start, and tiny matrices all work."""
        A = fd_laplacian_2d(3, 3)
        x_exact = rng.standard_normal(9)
        b = A @ x_exact
        sim = SharedMemoryJacobi(A, b, n_threads=3, seed=0)
        # Already converged at the initial guess: zero iterations.
        res = sim.run_async(x0=x_exact, tol=1e-6, max_iterations=100)
        assert res.converged
        assert res.relaxation_counts[-1] == 0
        # Finest observation granularity.
        res = sim.run_async(tol=1e-6, max_iterations=5000, observe_every=1)
        assert res.converged
        assert len(res.times) > res.mean_iterations  # one record per commit

    def test_damped_trace_recording(self, rng):
        """omega and record_trace compose."""
        A = fd_laplacian_2d(4, 4)
        b = rng.uniform(-1, 1, 16)
        sim = SharedMemoryJacobi(A, b, n_threads=4, seed=0, omega=0.9)
        res = sim.run_async(tol=1e-300, max_iterations=5, record_trace=True)
        assert len(res.trace) == 5 * 16


class TestEndToEndProblems:
    @pytest.mark.parametrize("name", ["thermomech_dm", "parabolic_fem"])
    def test_solve_on_standins(self, name, rng):
        A = load_problem(name)
        x_exact = rng.standard_normal(A.nrows)
        b = A @ x_exact
        res = solve(
            A, b, method="distributed_sim", n_ranks=16, mode="async",
            seed=0, tol=1e-7, max_iterations=20_000,
        )
        assert res.converged
        np.testing.assert_allclose(res.x, x_exact, atol=1e-3)

    def test_solver_omega_passthrough(self, rng):
        A = fd_laplacian_2d(6, 6)
        b = rng.uniform(-1, 1, 36)
        res = solve(
            A, b, method="shared_sim", n_threads=4, mode="sync", seed=0,
            omega=0.5, tol=1e-5, max_iterations=10_000,
        )
        assert res.converged
        assert res.info["simulation"].mode == "sync"
