"""Setup shim.

The container this reproduction targets has no network access and no
``wheel`` package, so PEP 660 editable installs (``pip install -e .``) cannot
build an editable wheel. This shim lets ``python setup.py develop`` provide
the same editable install with bare setuptools. All metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
