"""Executors for the paper's asynchronous Jacobi model.

Two executors:

* :class:`AsyncJacobiModel` — the Section IV-A model with the
  *exact-information* simplification: every relaxation reads the current
  iterate, so one parallel step is exactly Eq. 6,
  ``x <- (I - D-hat A) x + D-hat b``, applied matrix-free.
* :class:`StaleAsyncJacobiModel` — drops the simplification: each relaxing
  row reads neighbor values ``lag`` steps old (Eq. 5 with nontrivial
  ``s_ij``), with the lags drawn from a configurable staleness model. Used
  by the staleness ablation.

Both record the paper's convergence metric — relative residual 1-norm
against model time — and count row relaxations, so the experiments can plot
residual-vs-time (Fig. 4), speedups (Fig. 3), and residual-vs-relaxations
(Figs. 6/7/9 model counterparts).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.schedules import Schedule
from repro.matrices.sparse import CSRMatrix
from repro.methods import make_method
from repro.methods.kernels import sor_step_dense, sor_step_incremental
from repro.perf.instrument import PerfCounters
from repro.util.errors import ShapeError, SingularMatrixError
from repro.util.norms import relative_residual_norm, vector_norm
from repro.util.rng import as_rng
from repro.util.validation import check_positive, check_vector


@dataclass
class ModelResult:
    """Outcome of a model execution.

    Attributes
    ----------
    x
        Final iterate.
    converged
        Whether the relative residual reached the tolerance.
    steps
        Parallel steps executed.
    relaxations
        Total row relaxations across all steps.
    times
        Model time after each recorded step (index 0 = time 0, initial state).
    residual_norms
        Relative residual 1-norm at each recorded time.
    relaxation_counts
        Cumulative relaxations at each recorded time.
    perf
        Optional :class:`~repro.perf.instrument.PerfCounters` with
        per-kernel timings (recorded when the executor ran with
        ``instrument=True``).
    """

    x: np.ndarray
    converged: bool
    steps: int
    relaxations: int
    times: list = field(default_factory=list)
    residual_norms: list = field(default_factory=list)
    relaxation_counts: list = field(default_factory=list)
    perf: PerfCounters | None = None

    @property
    def final_residual(self) -> float:
        """Last recorded relative residual norm."""
        return self.residual_norms[-1]

    def time_to_tolerance(self, tol: float) -> float:
        """First recorded model time with residual below ``tol``.

        Returns ``inf`` if the tolerance was never reached.
        """
        for t, r in zip(self.times, self.residual_norms):
            if r < tol:
                return t
        return float("inf")

    def relaxations_to_tolerance(self, tol: float) -> float:
        """Cumulative relaxations at the first time residual < ``tol``."""
        for c, r in zip(self.relaxation_counts, self.residual_norms):
            if r < tol:
                return float(c)
        return float("inf")


class AsyncJacobiModel:
    """Exact-information model executor (Eq. 6 per step).

    Parameters
    ----------
    A
        Square system matrix with nonzero diagonal. The paper assumes
        symmetric A scaled to unit diagonal; the executor handles any
        nonzero diagonal by dividing through ``D^{-1}`` per relaxed row.
    b
        Right-hand side.
    omega
        Relaxation weight in (0, 2): 1.0 is plain Jacobi; < 1 damps each
        relaxation (useful for matrices where undamped Jacobi diverges).
    method
        Iteration method (see :mod:`repro.methods`): ``None`` (default)
        is Jacobi at ``omega`` — bit-identical to the historical executor
        — and accepts a name (``"jacobi"``, ``"damped_jacobi"``,
        ``"richardson"``, ``"richardson2"``, ``"sor"``), a spec dict, or
        a :class:`~repro.methods.Method` instance. Scaled methods reuse
        the vectorized hot path; ``"sor"`` relaxes each step's rows
        sequentially (latest values), ``"richardson2"`` carries one
        previous iterate for its momentum term.
    """

    def __init__(self, A: CSRMatrix, b, omega: float = 1.0, method=None):
        if A.nrows != A.ncols:
            raise ShapeError(f"matrix must be square, got {A.shape}")
        if not 0 < omega < 2:
            raise ValueError(f"omega must lie in (0, 2), got {omega}")
        self.method = make_method(method, omega=omega)
        if self.method.name != "richardson" and np.any(A.diagonal() == 0):
            raise SingularMatrixError("the model requires a nonzero diagonal")
        self.A = A
        self.n = A.nrows
        self.b = check_vector(b, self.n, "b")
        self.omega = float(omega)
        self._dinv = self.method.scale(A)

    def run(
        self,
        schedule: Schedule,
        x0=None,
        tol: float = 1e-3,
        max_steps: int = 100_000,
        max_time: float = float("inf"),
        record_every: int = 1,
        residual_norm_ord=1,
        residual_mode: str = "incremental",
        recompute_every: int = 64,
        instrument: bool = False,
        tracer=None,
    ) -> ModelResult:
        """Execute the model against ``schedule``.

        Stops at the first of: residual < ``tol``; ``max_steps`` parallel
        steps; schedule exhaustion; model time exceeding ``max_time``.
        ``record_every`` controls history resolution (every k-th step).

        ``residual_mode`` selects how the convergence metric is obtained.
        ``"incremental"`` (default) maintains ``r = b - A x`` in place:
        relaxing rows ``R`` reads ``r[R]`` directly and then only updates the
        residual entries in the column support of ``R`` (one CSC scatter
        instead of a row-subset SpMV plus a full SpMV per recorded step). A
        full recomputation every ``recompute_every`` relaxing steps bounds
        float drift, and any tolerance crossing is confirmed against a fresh
        residual before the run stops. ``"full"`` recomputes the residual
        from scratch at every recorded step (the naive reference path;
        bit-identical to the pre-incremental executor). Histories of the two
        modes agree to within accumulated rounding (~1e-14 relative between
        recomputations; see docs/performance.md).

        With ``instrument=True`` the result carries per-kernel
        :class:`~repro.perf.instrument.PerfCounters` as ``result.perf``.
        A live :class:`~repro.observability.Tracer` passed as ``tracer``
        receives structured relax/observe/convergence events (exact-
        information reads are synthesized at replay time, so relax events
        carry only the step's rows); ``tracer=None`` or an all-null-sink
        tracer leaves the hot loop untouched.
        """
        check_positive(tol, "tol")
        if residual_mode not in ("incremental", "full"):
            raise ValueError(
                f"residual_mode must be 'incremental' or 'full', got {residual_mode!r}"
            )
        if schedule.n != self.n:
            raise ShapeError(
                f"schedule is for n={schedule.n}, matrix has n={self.n}"
            )
        A, b, dinv = self.A, self.b, self._dinv
        x = np.zeros(self.n) if x0 is None else check_vector(x0, self.n, "x0").copy()
        incremental = residual_mode == "incremental"
        scaled = self.method.is_scaled
        sequential = self.method.kind == "sequential"
        beta = self.method.beta
        x_prev = x.copy() if self.method.kind == "momentum" else None
        perf = PerfCounters(method=self.method.name) if instrument else None
        run_start = time.perf_counter() if instrument else 0.0
        # Resolved once: a missing or all-null-sink tracer costs one branch
        # per event afterwards (see repro.observability.tracer.resolve).
        trc = tracer if (tracer is not None and tracer.enabled) else None
        if trc is not None:
            trc.run_start(
                "AsyncJacobiModel", self.n, omega=self.omega, tol=tol,
                residual_mode=residual_mode, method=self.method.name,
            )

        b_norm = vector_norm(b, residual_norm_ord)

        def relnorm(res_vec) -> float:
            num = vector_norm(res_vec, residual_norm_ord)
            return num / b_norm if b_norm > 0 else num

        r = b - A.matvec(x)
        res0 = relnorm(r)
        times = [0.0]
        residuals = [res0]
        counts = [0]
        relaxations = 0
        steps_done = 0
        steps_since_recompute = 0
        converged = res0 < tol

        if not converged:
            for step in schedule.steps():
                if steps_done >= max_steps or step.time > max_time:
                    break
                rows = step.rows
                if rows.size:
                    t0 = perf.tick() if perf is not None else 0.0
                    if incremental:
                        if scaled:
                            dx = dinv[rows] * r[rows]
                            x[rows] += dx
                        elif sequential:
                            # Updates x and keeps r maintained row by row;
                            # the tail scatter below must not run again.
                            sor_step_incremental(A, dinv, x, r, rows)
                        else:
                            dx = dinv[rows] * r[rows] + beta * (
                                x[rows] - x_prev[rows]
                            )
                            x_prev[rows] = x[rows]
                            x[rows] += dx
                        if rows.size >= self.n // 2:
                            # Dense step: a fresh SpMV costs the same as the
                            # scatter but is exact (and bit-identical to the
                            # naive path, which shares its accumulation
                            # order), so drift never accumulates.
                            r = b - A.matvec(x)
                            steps_since_recompute = 0
                        elif sequential:
                            steps_since_recompute += 1
                        else:
                            A.subtract_columns_update(r, rows, dx)
                            steps_since_recompute += 1
                    elif scaled:
                        rr = b[rows] - A.row_matvec(rows, x)
                        x[rows] += dinv[rows] * rr
                    elif sequential:
                        sor_step_dense(A, b, dinv, x, rows)
                    else:
                        rr = b[rows] - A.row_matvec(rows, x)
                        dx = dinv[rows] * rr + beta * (x[rows] - x_prev[rows])
                        x_prev[rows] = x[rows]
                        x[rows] += dx
                    if perf is not None:
                        perf.tock_spmv(t0)
                    relaxations += rows.size
                    if trc is not None:
                        trc.relax(step.time, None, rows)
                steps_done += 1
                if perf is not None:
                    perf.events += 1
                if (
                    incremental
                    and recompute_every
                    and steps_since_recompute >= recompute_every
                ):
                    r = b - A.matvec(x)
                    steps_since_recompute = 0
                    if perf is not None:
                        perf.full_recomputes += 1
                if steps_done % record_every == 0:
                    t0 = perf.tick() if perf is not None else 0.0
                    if incremental:
                        res = relnorm(r)
                        if res < tol:
                            # Confirm against drift before declaring victory.
                            r = b - A.matvec(x)
                            steps_since_recompute = 0
                            res = relnorm(r)
                            if perf is not None:
                                perf.full_recomputes += 1
                    else:
                        res = relative_residual_norm(A, x, b, ord=residual_norm_ord)
                    if perf is not None:
                        perf.tock_residual(t0)
                    times.append(step.time)
                    residuals.append(res)
                    counts.append(relaxations)
                    if trc is not None:
                        trc.observe(step.time, res, relaxations)
                    if res < tol:
                        converged = True
                        if trc is not None:
                            trc.convergence(step.time, res, tol)
                        break

        if trc is not None:
            trc.run_end(times[-1], converged, relaxations)
        if perf is not None:
            perf.total_seconds = time.perf_counter() - run_start
        return ModelResult(
            x=x,
            converged=converged,
            steps=steps_done,
            relaxations=relaxations,
            times=times,
            residual_norms=residuals,
            relaxation_counts=counts,
            perf=perf,
        )


class StalenessModel:
    """Draws per-relaxation read lags (how old the neighbor data is).

    ``lag`` of 0 reproduces the exact-information model. Lags are in parallel
    steps; a row relaxing at step k reads the iterate as of step ``k - lag``
    (clamped at 0).
    """

    def __init__(self, max_lag: int = 0, seed=None, distribution: str = "uniform"):
        if max_lag < 0:
            raise ValueError(f"max_lag must be >= 0, got {max_lag}")
        if distribution not in ("uniform", "constant"):
            raise ValueError(f"unknown staleness distribution {distribution!r}")
        self.max_lag = int(max_lag)
        self.distribution = distribution
        self.rng = as_rng(seed)

    def sample(self, n_rows: int) -> np.ndarray:
        """Lags for ``n_rows`` relaxing rows."""
        if self.max_lag == 0 or self.distribution == "constant":
            return np.full(n_rows, self.max_lag, dtype=np.int64)
        return self.rng.integers(0, self.max_lag + 1, size=n_rows)


class StaleAsyncJacobiModel(AsyncJacobiModel):
    """Model executor with bounded staleness (general Eq. 5).

    Keeps a ring buffer of the last ``max_lag + 1`` iterates; each relaxing
    row reads from the buffered iterate chosen by the staleness model. This
    satisfies the paper's assumption (1): reads are at most ``max_lag`` steps
    old, so new information always eventually propagates.
    """

    def __init__(self, A: CSRMatrix, b, staleness: StalenessModel, omega: float = 1.0):
        super().__init__(A, b, omega=omega)
        self.staleness = staleness

    def run(
        self,
        schedule: Schedule,
        x0=None,
        tol: float = 1e-3,
        max_steps: int = 100_000,
        max_time: float = float("inf"),
        record_every: int = 1,
        residual_norm_ord=1,
    ) -> ModelResult:
        check_positive(tol, "tol")
        if schedule.n != self.n:
            raise ShapeError(f"schedule is for n={schedule.n}, matrix has n={self.n}")
        A, b, dinv = self.A, self.b, self._dinv
        x = np.zeros(self.n) if x0 is None else check_vector(x0, self.n, "x0").copy()
        depth = self.staleness.max_lag + 1
        ring = [x.copy() for _ in range(depth)]

        res0 = relative_residual_norm(A, x, b, ord=residual_norm_ord)
        times, residuals, counts = [0.0], [res0], [0]
        relaxations = 0
        steps_done = 0
        converged = res0 < tol

        if not converged:
            for step in schedule.steps():
                if steps_done >= max_steps or step.time > max_time:
                    break
                rows = step.rows
                if rows.size:
                    lags = self.staleness.sample(rows.size)
                    new_vals = np.empty(rows.size)
                    # Group rows by lag so each group is one vectorized
                    # row_matvec against the corresponding buffered iterate.
                    for lag in np.unique(lags):
                        sel = lags == lag
                        src = ring[(steps_done - int(lag)) % depth] if lag else x
                        grp = rows[sel]
                        r = b[grp] - A.row_matvec(grp, src)
                        # Eq. 5: the relaxed value builds on the (stale)
                        # read of the row's own entry as well.
                        new_vals[sel] = src[grp] + dinv[grp] * r
                    x[rows] = new_vals
                    relaxations += rows.size
                steps_done += 1
                ring[steps_done % depth] = x.copy()
                if steps_done % record_every == 0:
                    res = relative_residual_norm(A, x, b, ord=residual_norm_ord)
                    times.append(step.time)
                    residuals.append(res)
                    counts.append(relaxations)
                    if res < tol:
                        converged = True
                        break

        return ModelResult(
            x=x,
            converged=converged,
            steps=steps_done,
            relaxations=relaxations,
            times=times,
            residual_norms=residuals,
            relaxation_counts=counts,
        )


def model_speedup(
    A: CSRMatrix,
    b,
    delay: int,
    delayed_row: int | None = None,
    tol: float = 1e-3,
    x0=None,
    max_steps: int = 200_000,
) -> tuple:
    """Sync-vs-async model comparison for one delayed row (Figure 3 point).

    Runs synchronous Jacobi with every sweep costing ``max(delay, 1)`` time
    units (everyone waits at the barrier for the sleeper) and asynchronous
    Jacobi where only ``delayed_row`` relaxes every ``delay`` steps. Returns
    ``(speedup, sync_result, async_result)`` with
    ``speedup = sync time-to-tol / async time-to-tol``.

    ``delay=0`` means no injected delay: both schedules are unit-cost and
    the speedup is 1 by construction (the real zero-delay speedup comes from
    natural jitter, which lives in the machine simulator, not the model).
    """
    from repro.core.schedules import DelayedRowsSchedule, SynchronousSchedule

    n = A.nrows
    if delayed_row is None:
        delayed_row = n // 2  # the paper delays a row near the middle
    model = AsyncJacobiModel(A, b)

    sync_sched = SynchronousSchedule(n, delay=float(max(delay, 1)))
    sync_res = model.run(sync_sched, x0=x0, tol=tol, max_steps=max_steps)

    if delay <= 1:
        async_sched = SynchronousSchedule(n, delay=1.0)
    else:
        async_sched = DelayedRowsSchedule(n, {delayed_row: int(delay)})
    async_res = model.run(async_sched, x0=x0, tol=tol, max_steps=max_steps)

    t_sync = sync_res.time_to_tolerance(tol)
    t_async = async_res.time_to_tolerance(tol)
    speedup = t_sync / t_async if np.isfinite(t_async) else float("nan")
    return speedup, sync_res, async_res
