"""Classical stationary iterative methods (the synchronous baselines).

Implements the methods of Section II: synchronous Jacobi (the paper's
baseline), Gauss-Seidel with natural ordering, SOR, and multicolor
Gauss-Seidel — the last being the limiting case of the paper's propagation
model when independent sets are relaxed one color at a time (Section IV-B,
Eq. 10).

All methods operate on :class:`~repro.matrices.sparse.CSRMatrix` and report
per-iteration relative residual 1-norms (the paper's convergence metric).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.matrices.sparse import CSRMatrix
from repro.util.errors import ShapeError, SingularMatrixError
from repro.util.norms import relative_residual_norm
from repro.util.validation import check_positive, check_vector


@dataclass
class IterationHistory:
    """Convergence record of a stationary iteration.

    Attributes
    ----------
    x
        Final iterate.
    converged
        Whether the relative residual dropped below the tolerance.
    iterations
        Number of full sweeps performed.
    residual_norms
        Relative residual 1-norm after each sweep (index 0 = initial).
    """

    x: np.ndarray
    converged: bool
    iterations: int
    residual_norms: list = field(default_factory=list)

    @property
    def final_residual(self) -> float:
        """Last recorded relative residual norm."""
        return self.residual_norms[-1]


def _prepare(A: CSRMatrix, b, x0):
    if A.nrows != A.ncols:
        raise ShapeError(f"matrix must be square, got {A.shape}")
    n = A.nrows
    b = check_vector(b, n, "b")
    x = (
        np.zeros(n)
        if x0 is None
        else check_vector(x0, n, "x0").copy()
    )
    d = A.diagonal()
    if np.any(d == 0):
        raise SingularMatrixError("stationary methods require a nonzero diagonal")
    return n, b, x, d


def jacobi(
    A: CSRMatrix,
    b,
    x0=None,
    tol: float = 1e-3,
    max_iterations: int = 1000,
    residual_norm_ord=1,
) -> IterationHistory:
    """Synchronous Jacobi: ``x <- x + D^{-1}(b - A x)``.

    This is the two-step residual/correction form the paper's implementations
    use (Section V): compute ``r = b - A x``, then ``x <- x + D^{-1} r``.
    Iterates until the relative residual norm falls below ``tol`` or
    ``max_iterations`` sweeps complete; divergence (``rho(G) > 1``) simply
    shows up as a growing residual history.
    """
    check_positive(tol, "tol")
    n, b, x, d = _prepare(A, b, x0)
    history = [relative_residual_norm(A, x, b, ord=residual_norm_ord)]
    k = 0
    while history[-1] >= tol and k < max_iterations:
        r = b - A.matvec(x)
        x += r / d
        history.append(relative_residual_norm(A, x, b, ord=residual_norm_ord))
        k += 1
    return IterationHistory(x=x, converged=history[-1] < tol, iterations=k, residual_norms=history)


def gauss_seidel(
    A: CSRMatrix,
    b,
    x0=None,
    tol: float = 1e-3,
    max_iterations: int = 1000,
    omega: float = 1.0,
    residual_norm_ord=1,
) -> IterationHistory:
    """Gauss-Seidel (natural ordering), or SOR for ``omega != 1``.

    Each sweep relaxes rows 0..n-1 in order, each row immediately seeing
    earlier updates — the fully multiplicative limit of the paper's model
    (one row per propagation matrix, Eq. 9).
    """
    check_positive(tol, "tol")
    if not 0 < omega < 2:
        raise ValueError(f"omega must lie in (0, 2) for convergence, got {omega}")
    n, b, x, d = _prepare(A, b, x0)
    history = [relative_residual_norm(A, x, b, ord=residual_norm_ord)]
    indptr, indices, data = A.indptr, A.indices, A.data
    k = 0
    while history[-1] >= tol and k < max_iterations:
        for i in range(n):
            lo, hi = indptr[i], indptr[i + 1]
            cols = indices[lo:hi]
            row = data[lo:hi]
            r_i = b[i] - float(row @ x[cols])
            x[i] += omega * r_i / d[i]
        history.append(relative_residual_norm(A, x, b, ord=residual_norm_ord))
        k += 1
    return IterationHistory(x=x, converged=history[-1] < tol, iterations=k, residual_norms=history)


def sor(A: CSRMatrix, b, omega: float, **kwargs) -> IterationHistory:
    """Successive over-relaxation: Gauss-Seidel with relaxation factor."""
    return gauss_seidel(A, b, omega=omega, **kwargs)


def block_jacobi(
    A: CSRMatrix,
    b,
    labels,
    x0=None,
    tol: float = 1e-3,
    max_iterations: int = 1000,
    residual_norm_ord=1,
) -> IterationHistory:
    """Block Jacobi with *exact* block solves (additive Schwarz, no overlap).

    Every sweep solves ``A_pp delta_p = r_p`` exactly for each block p (dense
    LU per block, factored once) and applies all corrections simultaneously.
    This is the additive counterpart of the paper's inexact multiplicative
    block relaxation (Section IV-B): distributed asynchronous Jacobi sits
    between point Jacobi (blocks of one row, inexact) and this method
    (whole-subdomain exact solves).
    """
    check_positive(tol, "tol")
    n, b, x, _ = _prepare(A, b, x0)
    labels = np.asarray(labels, dtype=np.int64)
    if labels.shape != (n,):
        raise ShapeError(f"labels must have shape ({n},), got {labels.shape}")
    blocks = [np.nonzero(labels == p)[0] for p in range(int(labels.max()) + 1)]
    if any(blk.size == 0 for blk in blocks):
        raise ShapeError("every block label must own at least one row")
    # Factor each diagonal block once.
    from scipy.linalg import lu_factor, lu_solve

    factors = []
    for blk in blocks:
        dense_block = A.submatrix(blk).to_dense()
        try:
            factors.append(lu_factor(dense_block))
        except Exception as exc:  # singular block
            raise SingularMatrixError(f"diagonal block is singular: {exc}") from exc

    history = [relative_residual_norm(A, x, b, ord=residual_norm_ord)]
    k = 0
    while history[-1] >= tol and k < max_iterations:
        r = b - A.matvec(x)
        for blk, fac in zip(blocks, factors):
            x[blk] += lu_solve(fac, r[blk])
        history.append(relative_residual_norm(A, x, b, ord=residual_norm_ord))
        k += 1
    return IterationHistory(x=x, converged=history[-1] < tol, iterations=k, residual_norms=history)


def greedy_coloring(A: CSRMatrix) -> np.ndarray:
    """Greedy vertex coloring of the matrix graph (first-fit, natural order).

    Returns an int64 color per row; rows sharing a color form an independent
    set, so they may be relaxed simultaneously without coupling — the
    multicolor Gauss-Seidel structure of Section IV-B.
    """
    n = A.nrows
    colors = np.full(n, -1, dtype=np.int64)
    for i in range(n):
        nbr_colors = set(colors[A.neighbors(i)].tolist())
        c = 0
        while c in nbr_colors:
            c += 1
        colors[i] = c
    return colors


def multicolor_gauss_seidel(
    A: CSRMatrix,
    b,
    x0=None,
    tol: float = 1e-3,
    max_iterations: int = 1000,
    colors=None,
    residual_norm_ord=1,
) -> IterationHistory:
    """Multicolor Gauss-Seidel: relax one independent set at a time.

    Every color-class update is a vectorized masked Jacobi step — i.e. the
    application of a propagation matrix ``G-hat`` with ``Psi(k)`` an
    independent set (Eq. 10). With a valid coloring this reproduces
    Gauss-Seidel convergence while exposing parallelism within each color.
    """
    check_positive(tol, "tol")
    n, b, x, d = _prepare(A, b, x0)
    colors = greedy_coloring(A) if colors is None else np.asarray(colors, dtype=np.int64)
    if colors.shape != (n,):
        raise ShapeError(f"colors must have shape ({n},), got {colors.shape}")
    classes = [np.nonzero(colors == c)[0] for c in range(int(colors.max()) + 1)]
    history = [relative_residual_norm(A, x, b, ord=residual_norm_ord)]
    k = 0
    while history[-1] >= tol and k < max_iterations:
        for rows in classes:
            r = b[rows] - A.row_matvec(rows, x)
            x[rows] += r / d[rows]
        history.append(relative_residual_norm(A, x, b, ord=residual_norm_ord))
        k += 1
    return IterationHistory(x=x, converged=history[-1] < tol, iterations=k, residual_norms=history)
