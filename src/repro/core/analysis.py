"""Interlacing and submatrix analysis (Sections IV-C and IV-D).

When rows are delayed, the evolving part of the iteration is governed by the
principal submatrix ``G-tilde`` of the iteration matrix G restricted to the
*active* rows (Eq. 13-16). Two consequences the paper draws, both computed
here:

* **Cauchy interlacing**: the eigenvalues ``mu_i`` of ``G-tilde`` (m active
  rows out of n) satisfy ``lambda_i <= mu_i <= lambda_{i+n-m}`` where
  ``lambda`` are G's eigenvalues — so a few delayed rows cannot make the
  active part converge much slower than full Jacobi.
* **Decoupling**: deleting rows can split the active submatrix graph into
  independent blocks; interlacing applies per block, and with many small
  blocks ``rho`` of each block can be far below ``rho(G-tilde)`` — the
  paper's explanation for *more concurrency => better asynchronous
  convergence* (and convergence where sync Jacobi diverges).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.matrices.sparse import CSRMatrix, _concat_ranges
from repro.util.errors import ShapeError


def jacobi_iteration_matrix_dense(A: CSRMatrix) -> np.ndarray:
    """Dense ``G = I - D^{-1} A`` (small matrices / analysis only)."""
    return np.eye(A.nrows) - (np.diag(1.0 / A.diagonal()) @ A.to_dense())


def active_submatrix(A: CSRMatrix, active_rows) -> CSRMatrix:
    """Principal submatrix ``A[active][:, active]`` (the G-tilde substrate)."""
    rows = np.asarray(active_rows, dtype=np.int64)
    return A.submatrix(rows)


def submatrix_eigenvalues(A: CSRMatrix, active_rows) -> np.ndarray:
    """Sorted eigenvalues of ``G-tilde = (I - A)[active][:, active]``.

    Assumes the paper's setting: symmetric A with unit diagonal, so
    ``G = I - A`` is symmetric and ``G-tilde`` is its principal submatrix.
    Dense computation — intended for analysis-scale matrices.
    """
    sub = active_submatrix(A, active_rows)
    Gt = np.eye(sub.nrows) - sub.to_dense()
    return np.sort(np.linalg.eigvalsh(Gt))


def full_eigenvalues(A: CSRMatrix) -> np.ndarray:
    """Sorted eigenvalues of ``G = I - A`` (symmetric unit-diagonal A)."""
    if A.nrows != A.ncols:
        raise ShapeError(f"matrix must be square, got {A.shape}")
    G = np.eye(A.nrows) - A.to_dense()
    return np.sort(np.linalg.eigvalsh(G))


@dataclass(frozen=True)
class InterlacingCheck:
    """Result of verifying the interlacing bounds for one active set."""

    n: int
    m: int
    violations: int
    max_violation: float
    mu: np.ndarray
    lam: np.ndarray

    @property
    def holds(self) -> bool:
        """Whether every bound holds to numerical tolerance."""
        return self.violations == 0


def check_interlacing(A: CSRMatrix, active_rows, atol: float = 1e-8) -> InterlacingCheck:
    """Verify ``lambda_i <= mu_i <= lambda_{i+n-m}`` for the active set.

    Follows the paper's indexing: with eigenvalues sorted ascending,
    ``mu_i`` of the m-by-m principal submatrix is bounded by ``lambda_i``
    and ``lambda_{i+n-m}`` of the full matrix.
    """
    lam = full_eigenvalues(A)
    mu = submatrix_eigenvalues(A, active_rows)
    n, m = lam.size, mu.size
    lower = lam[:m]
    upper = lam[n - m :]
    viol_low = np.maximum(lower - mu, 0.0)
    viol_high = np.maximum(mu - upper, 0.0)
    viol = np.maximum(viol_low, viol_high)
    bad = viol > atol
    return InterlacingCheck(
        n=n,
        m=m,
        violations=int(bad.sum()),
        max_violation=float(viol.max()) if viol.size else 0.0,
        mu=mu,
        lam=lam,
    )


def connected_components(A: CSRMatrix) -> list:
    """Connected components of the matrix graph, as arrays of row indices."""
    n = A.nrows
    comp = np.full(n, -1, dtype=np.int64)
    current = 0
    for seed in range(n):
        if comp[seed] >= 0:
            continue
        comp[seed] = current
        frontier = np.array([seed], dtype=np.int64)
        while frontier.size:
            starts = A.indptr[frontier]
            counts = A.indptr[frontier + 1] - starts
            nz = _concat_ranges(starts, counts)
            nbrs = A.indices[nz]
            nbrs = np.unique(nbrs[comp[nbrs] < 0])
            comp[nbrs] = current
            frontier = nbrs
        current += 1
    return [np.nonzero(comp == c)[0] for c in range(current)]


@dataclass(frozen=True)
class DecouplingReport:
    """Spectral consequences of restricting to an active row set."""

    m: int
    n_blocks: int
    block_sizes: list
    rho_full: float
    rho_submatrix: float
    rho_blocks: list

    @property
    def rho_max_block(self) -> float:
        """Largest block spectral radius (governs the decoupled iteration)."""
        return max(self.rho_blocks) if self.rho_blocks else 0.0


def propagation_norm_history(A: CSRMatrix, schedule, steps: int, omega: float = 1.0):
    """Per-step ``(||G-hat(k)||_inf, ||H-hat(k)||_1)`` along a schedule.

    The transient behaviour of an asynchronous run is governed by the norms
    of the propagation matrices actually applied (Section IV-C): for W.D.D.
    matrices every entry is exactly 1 whenever some row is delayed (Theorem
    1), and dips below 1 only when every row relaxes and the matrix is
    strictly dominant. Useful for checking whether a schedule can let the
    error grow on a *non*-W.D.D. matrix.
    """
    import itertools

    from repro.core.propagation import (
        error_propagation_matrix,
        matrix_norm_1,
        matrix_norm_inf,
        relaxation_mask,
        residual_propagation_matrix,
    )

    out = []
    for step in itertools.islice(schedule.steps(), int(steps)):
        mask = relaxation_mask(A.nrows, step.rows)
        G = error_propagation_matrix(A, mask, omega=omega)
        H = residual_propagation_matrix(A, mask, omega=omega)
        out.append((matrix_norm_inf(G), matrix_norm_1(H)))
    return out


def decoupling_report(A: CSRMatrix, active_rows) -> DecouplingReport:
    """Quantify submatrix decoupling for an active set (Section IV-D).

    Computes ``rho(G)``, ``rho(G-tilde)``, and the spectral radius of each
    decoupled diagonal block of ``G-tilde``, demonstrating the chain
    ``rho(block) <= rho(G-tilde) <= rho(G)`` (for the paper's symmetric
    case, where interlacing gives the second inequality in magnitude).
    """
    rows = np.asarray(active_rows, dtype=np.int64)
    lam = full_eigenvalues(A)
    rho_full = float(np.max(np.abs(lam)))
    sub = active_submatrix(A, rows)
    mu = np.linalg.eigvalsh(np.eye(sub.nrows) - sub.to_dense())
    rho_sub = float(np.max(np.abs(mu))) if mu.size else 0.0
    blocks = connected_components(sub)
    rho_blocks = []
    for blk in blocks:
        blk_mat = sub.submatrix(blk)
        eigs = np.linalg.eigvalsh(np.eye(blk_mat.nrows) - blk_mat.to_dense())
        rho_blocks.append(float(np.max(np.abs(eigs))))
    return DecouplingReport(
        m=rows.size,
        n_blocks=len(blocks),
        block_sizes=[int(b.size) for b in blocks],
        rho_full=rho_full,
        rho_submatrix=rho_sub,
        rho_blocks=rho_blocks,
    )
