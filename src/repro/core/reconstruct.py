"""Reconstructing propagation-matrix sequences from execution traces.

Section IV-A asks: given a history of *real* asynchronous relaxations — for
each relaxation of row i, which version ``s_ij`` of every neighbor j it read
— can the history be reordered into parallel steps ``Phi(1), Phi(2), ...``
such that each step is exactly one application of a propagation matrix?
A relaxation expressible this way is *propagated*; Figure 2 reports the
fraction of propagated relaxations in OpenMP traces.

The two conditions (paper, Section IV-A) for adding row i's next relaxation
to the current parallel step are:

1. every neighbor j has already relaxed exactly ``s_ij`` times — the
   relaxation reads the *current* state, neither future nor stale values;
2. relaxing i now must not strand another row whose pending relaxation still
   needs the current version of i (otherwise that row would later read an
   old version, which no propagation matrix can express).

The greedy scheduler here applies condition 1 to find ready relaxations and
condition 2 as an iterated pruning pass (rows relaxing *within the same
step* may read each other's current versions — they all read the pre-step
state). When no step can be formed, the earliest remaining relaxation (by
real execution time) is applied out-of-band and counted as non-propagated,
exactly like the p3 relaxation in the paper's Figure 1(b) example.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.util.errors import ScheduleError


@dataclass(frozen=True)
class Relaxation:
    """One recorded relaxation.

    Attributes
    ----------
    row
        The relaxed row.
    index
        1-based relaxation count of this row (its kappa after relaxing).
    time
        Real execution time of the write (ties broken by insertion order).
    reads
        ``{neighbor row: version read}`` — version v means "the value
        produced by that row's v-th relaxation" (0 = initial value). The
        row's read of itself may be included or omitted; self-reads of the
        current version are implied.
    """

    row: int
    index: int
    time: float
    reads: dict


class ExecutionTrace:
    """A time-ordered collection of relaxations for an n-row system."""

    def __init__(self, n: int):
        if n < 1:
            raise ScheduleError(f"n must be >= 1, got {n}")
        self.n = int(n)
        self._per_row = [[] for _ in range(self.n)]
        self._all = []

    def record(self, row: int, time: float, reads: dict) -> Relaxation:
        """Append a relaxation of ``row`` at ``time`` with the given reads."""
        if not 0 <= row < self.n:
            raise ScheduleError(f"row {row} out of range [0, {self.n})")
        clean = {}
        for j, ver in reads.items():
            j = int(j)
            if not 0 <= j < self.n:
                raise ScheduleError(f"read source {j} out of range [0, {self.n})")
            if ver < 0:
                raise ScheduleError(f"read version must be >= 0, got {ver}")
            clean[j] = int(ver)
        rel = Relaxation(
            row=int(row), index=len(self._per_row[row]) + 1, time=float(time), reads=clean
        )
        self._per_row[row].append(rel)
        self._all.append(rel)
        return rel

    def relaxations_of(self, row: int) -> list:
        """All relaxations of one row, in order."""
        return list(self._per_row[row])

    def __len__(self) -> int:
        return len(self._all)

    def __iter__(self):
        return iter(self._all)


@dataclass
class ReconstructionResult:
    """Output of :func:`reconstruct_propagation_steps`.

    Attributes
    ----------
    phi
        The parallel steps: each entry is the sorted array of rows relaxed
        together as one propagation matrix.
    applied
        The *full* application order the scheduler produced: one
        ``(rows, propagated)`` pair per application, parallel steps and
        out-of-band relaxations interleaved exactly as they were applied.
        Each entry is one propagation-matrix application, so replaying
        ``applied`` through the model executor reproduces the
        reconstructed trajectory (the observability replay bridge does
        exactly this).
    propagated
        Number of relaxations expressed via propagation matrices.
    non_propagated
        Relaxations that had to be applied out-of-band.
    flags
        For each input relaxation (in trace order), True if propagated.
    """

    phi: list = field(default_factory=list)
    applied: list = field(default_factory=list)
    propagated: int = 0
    non_propagated: int = 0
    flags: list = field(default_factory=list)

    @property
    def total(self) -> int:
        """Total relaxations considered."""
        return self.propagated + self.non_propagated

    @property
    def fraction_propagated(self) -> float:
        """The Figure 2 metric (1.0 for an empty trace)."""
        return self.propagated / self.total if self.total else 1.0


def reconstruct_propagation_steps(trace: ExecutionTrace) -> ReconstructionResult:
    """Reconstruct propagation-matrix steps from a trace.

    A time-ordered greedy with *deferral* and *merging*:

    * relaxations are replayed roughly in real commit order; relaxations
      that committed at the same instant (e.g. one thread's block) form one
      candidate batch;
    * condition 1 ("ready"): a relaxation can join a step only when it read
      exactly the current version of every neighbor;
    * condition 2 is enforced by deferral: if a still-pending relaxation q
      reads the current version of a candidate row r — so relaxing r now
      would force q to read an old value — then r is *deferred*, unless q
      is itself ready, in which case q is *merged* into the same step (both
      then read the pre-step state, which is legal);
    * if deferral empties the step, the original batch is applied anyway —
      the paper's "ignore the second condition" fallback (Fig. 1(b)) — and
      the stranded readers later count as non-propagated;
    * a pending relaxation that already reads some row at an *older* than
      current version can never be expressed; when nothing is ready, the
      earliest such relaxation is applied out-of-band as non-propagated.

    On the paper's two worked examples (Fig. 1) this yields exactly the
    published outcomes: (a) all four relaxations propagated via
    Phi = {4}, {1, 2}, {3}; (b) three propagated and p3's relaxation
    applied separately.
    """
    n = trace.n
    per_row = [trace.relaxations_of(i) for i in range(n)]
    next_idx = [0] * n  # index into per_row[i] of the pending relaxation
    version = [0] * n  # relaxations of row i applied so far
    flag_of = {}  # id(Relaxation) -> bool
    phi_steps = []
    applied_order = []  # (rows array, propagated) per application, in order

    def pending_list():
        return [per_row[i][next_idx[i]] for i in range(n) if next_idx[i] < len(per_row[i])]

    def is_ready(rel: Relaxation) -> bool:
        return all(version[j] == ver for j, ver in rel.reads.items() if j != rel.row)

    def is_stale(rel: Relaxation) -> bool:
        return any(version[j] > ver for j, ver in rel.reads.items() if j != rel.row)

    def apply_step(rels, propagated: bool) -> None:
        for rel in rels:
            flag_of[id(rel)] = propagated
            next_idx[rel.row] += 1
        # Versions advance only after the whole step: simultaneous
        # relaxations all read the pre-step state.
        for rel in rels:
            version[rel.row] += 1
        rows = np.asarray(sorted(r.row for r in rels), dtype=np.int64)
        applied_order.append((rows, propagated))
        if propagated:
            phi_steps.append(rows)

    remaining = len(trace)
    while remaining:
        pending = pending_list()
        ready = [rel for rel in pending if is_ready(rel)]
        if not ready:
            # Nothing expressible: apply the earliest pending relaxation
            # (real execution order) out-of-band.
            rel = min(pending, key=lambda r: (r.time, r.row))
            apply_step([rel], propagated=False)
            remaining -= 1
            continue

        # Group the pending frontier into *batches*: relaxations committed
        # at the same instant (one thread's block in the simulators) live or
        # die together — applying part of a batch would strand the rest.
        batch_time = {}  # row -> batch key of its pending relaxation
        batch_members = {}  # batch key -> {row: rel}
        for rel in pending:
            batch_time[rel.row] = rel.time
            batch_members.setdefault(rel.time, {})[rel.row] = rel
        ready_rows = {rel.row for rel in ready}
        ready_batches = sorted(
            t for t, members in batch_members.items() if set(members) <= ready_rows
        )
        # Batches where only some members are ready (a peer is stale or
        # future-waiting) can still seed a step with their ready part.
        partial_batches = sorted(
            t for t, members in batch_members.items()
            if t not in set(ready_batches) and (set(members) & ready_rows)
        )

        def build(seed_key):
            """Grow a step from one seed batch via batch-atomic defer/merge."""
            candidate = {
                row: rel
                for row, rel in batch_members[seed_key].items()
                if row in ready_rows
            }
            banned = set()
            for _ in range(len(batch_members) + 1):
                changed = False
                for q in pending:
                    if q.row in candidate or is_stale(q):
                        continue
                    needs = [
                        j
                        for j, ver in q.reads.items()
                        if j != q.row and j in candidate and ver == version[j]
                    ]
                    if not needs:
                        continue
                    qb = batch_time[q.row]
                    q_batch = batch_members[qb]
                    if (
                        qb not in banned
                        and set(q_batch) <= ready_rows
                    ):
                        candidate.update(q_batch)  # merge the whole batch
                    else:
                        # Defer every batch that q still needs at the
                        # current version; ban them so they cannot
                        # re-merge and oscillate.
                        for j in needs:
                            jb = batch_time[j]
                            banned.add(jb)
                            for row in batch_members[jb]:
                                candidate.pop(row, None)
                    changed = True
                    break  # re-scan from scratch after every change
                if not changed or not candidate:
                    break
            return candidate

        step = None
        for seed_key in ready_batches + partial_batches:
            candidate = build(seed_key)
            if candidate:
                step = candidate
                break
        if step is None:
            # Every seed was deferred to nothing; apply the earliest ready
            # batch anyway, ignoring condition 2 (the paper's Fig. 1(b)
            # move) — the stranded readers pay later.
            key = (ready_batches + partial_batches)[0]
            step = {
                row: rel
                for row, rel in batch_members[key].items()
                if row in ready_rows
            }
        apply_step(list(step.values()), propagated=True)
        remaining -= len(step)

    result = ReconstructionResult()
    result.phi = phi_steps
    result.applied = applied_order
    for rel in trace:
        is_prop = flag_of[id(rel)]
        result.flags.append(is_prop)
        if is_prop:
            result.propagated += 1
        else:
            result.non_propagated += 1
    return result
