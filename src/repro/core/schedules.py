"""Update-set schedules: which rows relax at each model step.

The paper's model is executed against a *schedule* — a sequence of sets
``Psi(k)`` of rows that relax at step ``k``, each step carrying a model time
(Section VII-B: "for the model, time is in unit steps"). The schedule
families here cover every scenario in the paper plus the ablations:

* :class:`SynchronousSchedule` — all rows every step; with a ``delay`` the
  whole step costs ``delay`` time units, modeling everyone waiting at the
  barrier for the slowest thread.
* :class:`DelayedRowsSchedule` — the Figure 3/4 scenario: delayed rows relax
  only every ``delay`` steps (``delay=None`` / ``inf`` = delayed forever),
  everyone else every step.
* :class:`RandomSubsetSchedule` — each step relaxes a uniformly random
  subset; a simple stand-in for uncoordinated asynchrony.
* :class:`BlockSequentialSchedule` — one block (subdomain) per step, in
  sweep order: the *fully multiplicative* limit (inexact multiplicative
  block relaxation, Section IV-B) that asynchronous Jacobi approaches as
  concurrency grows.
* :class:`OverlappedBlockSchedule` — ``concurrency`` randomly chosen blocks
  per step: intermediate between synchronous (all blocks) and fully
  multiplicative (one block). This is the knob that reproduces Figure 6's
  "more threads => more multiplicative => converges" effect in the model.
* :class:`TraceSchedule` — replay the relaxation sets of a recorded
  execution (bridging the simulators back into the model).

Schedules are infinite iterators of :class:`ScheduleStep`; executors consume
as many steps as they need.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from repro.util.errors import ScheduleError
from repro.util.rng import as_rng


@dataclass(frozen=True)
class ScheduleStep:
    """One parallel step: the model time at which it completes and Psi(k)."""

    time: float
    rows: np.ndarray


class Schedule:
    """Base class: an infinite iterable of :class:`ScheduleStep`.

    Subclasses implement :meth:`steps`. ``n`` is the number of rows of the
    system the schedule drives.
    """

    def __init__(self, n: int):
        if n < 1:
            raise ScheduleError(f"n must be >= 1, got {n}")
        self.n = int(n)

    def steps(self) -> Iterator[ScheduleStep]:
        """Yield schedule steps forever (or until the schedule is exhausted)."""
        raise NotImplementedError

    @property
    def is_synchronous(self) -> bool:
        """True when every step relaxes every row."""
        return False


class SynchronousSchedule(Schedule):
    """All rows relax every step; each step costs ``delay`` time units.

    ``delay`` models the barrier: with one thread sleeping ``delay`` units
    per iteration, synchronous Jacobi pays ``delay`` per sweep (Section
    VII-B: "all rows relax at multiples of delta to simulate waiting for the
    slowest process").
    """

    def __init__(self, n: int, delay: float = 1.0):
        super().__init__(n)
        if delay <= 0:
            raise ScheduleError(f"delay must be positive, got {delay}")
        self.delay = float(delay)

    def steps(self) -> Iterator[ScheduleStep]:
        rows = np.arange(self.n, dtype=np.int64)
        t = 0.0
        while True:
            t += self.delay
            yield ScheduleStep(time=t, rows=rows)

    @property
    def is_synchronous(self) -> bool:
        return True


class DelayedRowsSchedule(Schedule):
    """Asynchronous schedule with per-row delays (Figures 3 and 4).

    Non-delayed rows relax at every unit step; a row with delay ``d`` relaxes
    only at steps ``d, 2d, 3d, ...``. A delay of ``None`` (or ``inf``) means
    the row never relaxes again — the paper's "delayed until convergence"
    case, which still reduces the residual (Theorem 1).
    """

    def __init__(self, n: int, delays: dict):
        super().__init__(n)
        self.delays = {}
        for row, d in delays.items():
            row = int(row)
            if not 0 <= row < n:
                raise ScheduleError(f"delayed row {row} out of range [0, {n})")
            if d is not None and d != float("inf"):
                if d < 1 or int(d) != d:
                    raise ScheduleError(f"delay must be a positive integer, got {d!r}")
                d = int(d)
            else:
                d = None
            self.delays[row] = d

    def steps(self) -> Iterator[ScheduleStep]:
        base = np.ones(self.n, dtype=bool)
        k = 0
        while True:
            k += 1
            active = base.copy()
            for row, d in self.delays.items():
                active[row] = d is not None and k % d == 0
            yield ScheduleStep(time=float(k), rows=np.nonzero(active)[0])


class RandomSubsetSchedule(Schedule):
    """Each step relaxes an independent uniform random subset of rows.

    ``fraction`` is the expected fraction of active rows per step. Steps with
    an empty draw are re-drawn so every step does some work.
    """

    def __init__(self, n: int, fraction: float, seed=None):
        super().__init__(n)
        if not 0 < fraction <= 1:
            raise ScheduleError(f"fraction must lie in (0, 1], got {fraction}")
        self.fraction = float(fraction)
        self.rng = as_rng(seed)

    def steps(self) -> Iterator[ScheduleStep]:
        t = 0.0
        while True:
            t += 1.0
            while True:
                mask = self.rng.random(self.n) < self.fraction
                if mask.any():
                    break
            yield ScheduleStep(time=t, rows=np.nonzero(mask)[0])


def _blocks_from_labels(labels: np.ndarray) -> list:
    labels = np.asarray(labels, dtype=np.int64)
    if labels.min() < 0:
        raise ScheduleError("labels must be nonnegative")
    blocks = [np.nonzero(labels == p)[0] for p in range(int(labels.max()) + 1)]
    if any(b.size == 0 for b in blocks):
        raise ScheduleError("every block label must own at least one row")
    return blocks


class BlockSequentialSchedule(Schedule):
    """One block per step, cycling through blocks in a fixed or random order.

    This is inexact multiplicative block relaxation (Section IV-B): each
    block is relaxed with a single Jacobi step, and blocks build on each
    other multiplicatively. With one row per block and natural order it *is*
    Gauss-Seidel.
    """

    def __init__(self, labels, shuffle: bool = False, seed=None):
        labels = np.asarray(labels, dtype=np.int64)
        super().__init__(labels.shape[0])
        self.blocks = _blocks_from_labels(labels)
        self.shuffle = bool(shuffle)
        self.rng = as_rng(seed)

    def steps(self) -> Iterator[ScheduleStep]:
        t = 0.0
        while True:
            order = np.arange(len(self.blocks))
            if self.shuffle:
                self.rng.shuffle(order)
            for p in order:
                t += 1.0
                yield ScheduleStep(time=t, rows=self.blocks[p])


class OverlappedBlockSchedule(Schedule):
    """``concurrency`` random blocks relax simultaneously at each step.

    Interpolates between synchronous Jacobi (``concurrency = n_blocks``) and
    fully multiplicative block relaxation (``concurrency = 1``). Fairness is
    round-based: each round is a random permutation of the blocks consumed
    ``concurrency`` at a time, so every block relaxes exactly once per round.
    """

    def __init__(self, labels, concurrency: int, seed=None):
        labels = np.asarray(labels, dtype=np.int64)
        super().__init__(labels.shape[0])
        self.blocks = _blocks_from_labels(labels)
        if not 1 <= concurrency <= len(self.blocks):
            raise ScheduleError(
                f"concurrency must lie in [1, {len(self.blocks)}], got {concurrency}"
            )
        self.concurrency = int(concurrency)
        self.rng = as_rng(seed)

    def steps(self) -> Iterator[ScheduleStep]:
        t = 0.0
        nb = len(self.blocks)
        while True:
            order = self.rng.permutation(nb)
            for lo in range(0, nb, self.concurrency):
                t += 1.0
                chosen = order[lo : lo + self.concurrency]
                rows = np.concatenate([self.blocks[p] for p in chosen])
                yield ScheduleStep(time=t, rows=np.sort(rows))


class TraceSchedule(Schedule):
    """Replay an explicit finite sequence of (time, rows) steps.

    Used to re-run relaxation sets recorded by the machine simulators through
    the exact-information model executor.
    """

    def __init__(self, n: int, steps: Sequence):
        super().__init__(n)
        parsed = []
        last_t = -np.inf
        for item in steps:
            if isinstance(item, ScheduleStep):
                t, rows = item.time, item.rows
            else:
                t, rows = item
            rows = np.asarray(rows, dtype=np.int64)
            if rows.size and (rows.min() < 0 or rows.max() >= n):
                raise ScheduleError(f"step rows out of range [0, {n})")
            if t < last_t:
                raise ScheduleError("step times must be nondecreasing")
            last_t = t
            parsed.append(ScheduleStep(time=float(t), rows=rows))
        self._steps = parsed

    def steps(self) -> Iterator[ScheduleStep]:
        return iter(self._steps)

    def __len__(self) -> int:
        return len(self._steps)
