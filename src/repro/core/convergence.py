"""Convergence diagnostics for residual histories.

The paper reads everything off residual-norm curves: convergence rates,
divergence, stalls, and the saw-tooth of a delayed row. This module turns
those readings into code usable by solvers and experiments:

* :class:`ResidualTracker` — online tracker fed one norm at a time;
  classifies the run as converging/diverging/stalled and estimates the
  per-step contraction factor over a sliding window;
* :func:`asymptotic_rate` — least-squares estimate of the geometric decay
  rate of a history's tail (the observable counterpart of ``rho``);
* :func:`detect_divergence` / :func:`detect_stall` — the guards a
  production asynchronous solver needs, since Theorem 1 only promises
  non-increase for W.D.D. matrices.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.util.validation import check_positive


def asymptotic_rate(residual_norms, tail_fraction: float = 0.5) -> float:
    """Per-step geometric decay factor of a history's tail.

    Fits ``log(r_k) ~ a + k log(rate)`` by least squares over the last
    ``tail_fraction`` of the (positive) history. A value below 1 means
    convergence; for synchronous Jacobi it estimates ``rho(G)``.
    Returns NaN when fewer than three usable points exist.
    """
    res = np.asarray(residual_norms, dtype=float)
    res = res[res > 0]
    if res.size < 3:
        return float("nan")
    start = int(res.size * (1.0 - tail_fraction))
    tail = np.log(res[start:])
    if tail.size < 3:
        tail = np.log(res[-3:])
    k = np.arange(tail.size, dtype=float)
    slope = np.polyfit(k, tail, 1)[0]
    return float(np.exp(slope))


def detect_divergence(residual_norms, factor: float = 1e3) -> bool:
    """True when the residual grew by ``factor`` over its running minimum."""
    res = np.asarray(residual_norms, dtype=float)
    if res.size < 2:
        return False
    running_min = np.minimum.accumulate(res)
    return bool(np.any(res > factor * np.maximum(running_min, 1e-300)))


def detect_stall(residual_norms, window: int = 20, min_decay: float = 1e-3) -> bool:
    """True when the last ``window`` steps reduced the residual by less than
    ``min_decay`` in relative terms (log scale)."""
    res = np.asarray(residual_norms, dtype=float)
    res = res[res > 0]
    if res.size < window + 1:
        return False
    start, end = res[-window - 1], res[-1]
    return bool(end > start * (1.0 - min_decay))


@dataclass(frozen=True)
class TrackerVerdict:
    """Snapshot classification of an ongoing iteration."""

    status: str  # "converged" | "converging" | "stalled" | "diverging" | "warming-up"
    rate: float  # windowed per-step contraction estimate (NaN while warming up)
    best: float  # smallest residual seen


class ResidualTracker:
    """Online residual-norm tracker with windowed rate estimation.

    Feed norms with :meth:`update`; read the classification from
    :meth:`verdict`. Designed for asynchronous runs where the residual need
    not be monotone: divergence is judged against the running best, stalls
    against a sliding window.
    """

    def __init__(
        self,
        tol: float,
        window: int = 20,
        divergence_factor: float = 1e3,
        stall_decay: float = 1e-3,
    ):
        self.tol = check_positive(tol, "tol")
        if window < 2:
            raise ValueError(f"window must be >= 2, got {window}")
        self.window = int(window)
        self.divergence_factor = check_positive(divergence_factor, "divergence_factor")
        self.stall_decay = check_positive(stall_decay, "stall_decay")
        self._recent = deque(maxlen=self.window + 1)
        self._best = float("inf")
        self._count = 0

    def update(self, norm: float) -> TrackerVerdict:
        """Record one residual norm and return the current verdict."""
        norm = float(norm)
        if not np.isfinite(norm) or norm < 0:
            # Overflowed residuals count as divergence, not an error: racy
            # runs on divergent matrices genuinely produce inf.
            self._count += 1
            return TrackerVerdict(status="diverging", rate=float("inf"), best=self._best)
        self._recent.append(norm)
        self._best = min(self._best, norm)
        self._count += 1
        return self.verdict()

    @property
    def count(self) -> int:
        """Norms recorded so far."""
        return self._count

    def windowed_rate(self) -> float:
        """Geometric mean contraction over the current window (NaN early)."""
        if len(self._recent) < 2:
            return float("nan")
        first, last = self._recent[0], self._recent[-1]
        if first <= 0 or last <= 0:
            return float("nan")
        steps = len(self._recent) - 1
        return float((last / first) ** (1.0 / steps))

    def verdict(self) -> TrackerVerdict:
        """Classify the iteration right now."""
        rate = self.windowed_rate()
        if self._recent and self._recent[-1] < self.tol:
            return TrackerVerdict(status="converged", rate=rate, best=self._best)
        if self._recent and self._recent[-1] > self.divergence_factor * max(
            self._best, 1e-300
        ):
            return TrackerVerdict(status="diverging", rate=rate, best=self._best)
        if len(self._recent) <= self.window:
            return TrackerVerdict(status="warming-up", rate=rate, best=self._best)
        first, last = self._recent[0], self._recent[-1]
        if last > first * (1.0 - self.stall_decay):
            return TrackerVerdict(status="stalled", rate=rate, best=self._best)
        return TrackerVerdict(status="converging", rate=rate, best=self._best)
