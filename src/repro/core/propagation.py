"""Propagation matrices — the paper's central construct (Section IV-A).

A synchronous stationary method has a fixed iteration matrix; an
asynchronous method does not. The paper instead writes one *parallel step*
of asynchronous Jacobi, in which only the rows in ``Psi(k)`` relax, as

    x(k+1) = (I - D-hat(k) A) x(k) + D-hat(k) b          (Eq. 6)

where ``D-hat(k)`` is the diagonal 0/1 mask of relaxed rows (Eq. 7). The
error and residual then propagate through

    G-hat(k) = I - D-hat(k) A      (error propagation matrix)
    H-hat(k) = I - A D-hat(k)      (residual propagation matrix)   (Eq. 8)

Structurally: a *non*-relaxed row i makes row i of G-hat a unit basis vector,
and column i of H-hat a unit basis vector.

This module builds these matrices explicitly (for analysis on small
problems), applies them matrix-free (for the model executor), and computes
the Theorem 1 quantities: for weakly diagonally dominant A with at least one
delayed row, ``rho(G-hat) = ||G-hat||_inf = 1`` and
``rho(H-hat) = ||H-hat||_1 = 1``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.matrices.sparse import CSRMatrix
from repro.util.errors import ScheduleError, ShapeError, SingularMatrixError


def relaxation_mask(n: int, active_rows) -> np.ndarray:
    """Boolean mask (the diagonal of ``D-hat``) from a set of active rows.

    Raises :class:`ScheduleError` on out-of-range or duplicate rows, since a
    row cannot relax twice within one parallel step.
    """
    rows = np.asarray(active_rows, dtype=np.int64)
    if rows.ndim != 1:
        raise ScheduleError(f"active rows must be 1-D, got {rows.ndim}-D")
    if rows.size and (rows.min() < 0 or rows.max() >= n):
        raise ScheduleError(f"active rows out of range [0, {n})")
    mask = np.zeros(n, dtype=bool)
    mask[rows] = True
    if mask.sum() != rows.size:
        raise ScheduleError("active rows contain duplicates")
    return mask


def _check_mask(A: CSRMatrix, mask) -> np.ndarray:
    if A.nrows != A.ncols:
        raise ShapeError(f"matrix must be square, got {A.shape}")
    mask = np.asarray(mask)
    if mask.dtype != bool or mask.shape != (A.nrows,):
        raise ShapeError(f"mask must be a boolean array of shape ({A.nrows},)")
    return mask


def _inv_diagonal(A: CSRMatrix) -> np.ndarray:
    d = A.diagonal()
    if np.any(d == 0):
        raise SingularMatrixError("propagation matrices require a nonzero diagonal")
    return 1.0 / d


def _check_omega(omega: float) -> float:
    omega = float(omega)
    if not 0 < omega < 2:
        raise ValueError(f"omega must lie in (0, 2), got {omega}")
    return omega


def error_propagation_matrix(A: CSRMatrix, mask, omega: float = 1.0) -> CSRMatrix:
    """``G-hat = I - omega D-hat D^{-1} A`` as an explicit CSR matrix.

    Rows where ``mask`` is False are unit basis vectors; rows where it is
    True are the corresponding rows of the (damped) Jacobi iteration matrix
    ``G = I - omega D^{-1} A``. (For the paper's unit-diagonal A and
    ``omega = 1``, this is ``I - A`` with masked rows.)
    """
    mask = _check_mask(A, mask)
    omega = _check_omega(omega)
    dinv = _inv_diagonal(A)
    n = A.nrows
    rows_nz = A._row_of_nnz
    keep = mask[rows_nz]
    # -omega D^{-1}A on active rows...
    r = rows_nz[keep]
    c = A.indices[keep]
    v = -omega * A.data[keep] * dinv[r]
    # ...plus I everywhere.
    all_rows = np.concatenate((r, np.arange(n, dtype=np.int64)))
    all_cols = np.concatenate((c, np.arange(n, dtype=np.int64)))
    all_vals = np.concatenate((v, np.ones(n)))
    return CSRMatrix.from_coo(all_rows, all_cols, all_vals, (n, n))


def residual_propagation_matrix(A: CSRMatrix, mask, omega: float = 1.0) -> CSRMatrix:
    """``H-hat = I - omega A D-hat D^{-1}`` as an explicit CSR matrix.

    Columns where ``mask`` is False are unit basis vectors; the rest are
    columns of ``C = I - omega A D^{-1}``.
    """
    mask = _check_mask(A, mask)
    omega = _check_omega(omega)
    dinv = _inv_diagonal(A)
    n = A.nrows
    cols_nz = A.indices
    keep = mask[cols_nz]
    r = A._row_of_nnz[keep]
    c = cols_nz[keep]
    v = -omega * A.data[keep] * dinv[c]
    all_rows = np.concatenate((r, np.arange(n, dtype=np.int64)))
    all_cols = np.concatenate((c, np.arange(n, dtype=np.int64)))
    all_vals = np.concatenate((v, np.ones(n)))
    return CSRMatrix.from_coo(all_rows, all_cols, all_vals, (n, n))


def apply_error_propagation(A: CSRMatrix, mask, e: np.ndarray, omega: float = 1.0) -> np.ndarray:
    """Matrix-free ``G-hat @ e``: only active rows change.

    Equivalent to ``error_propagation_matrix(A, mask, omega) @ e`` but costs
    only O(nnz of the active rows).
    """
    mask = _check_mask(A, mask)
    omega = _check_omega(omega)
    dinv = _inv_diagonal(A)
    active = np.nonzero(mask)[0]
    out = np.array(e, dtype=np.float64, copy=True)
    out[active] -= omega * dinv[active] * A.row_matvec(
        active, np.asarray(e, dtype=np.float64)
    )
    return out


def apply_residual_propagation(A: CSRMatrix, mask, r: np.ndarray, omega: float = 1.0) -> np.ndarray:
    """Matrix-free ``H-hat @ r = r - omega A D^{-1} (D-hat r)``."""
    mask = _check_mask(A, mask)
    omega = _check_omega(omega)
    dinv = _inv_diagonal(A)
    r = np.asarray(r, dtype=np.float64)
    z = np.where(mask, omega * dinv * r, 0.0)
    return r - A.matvec(z)


def matrix_norm_inf(M: CSRMatrix) -> float:
    """Induced infinity norm: max absolute row sum."""
    sums = np.bincount(M._row_of_nnz, weights=np.abs(M.data), minlength=M.nrows)
    return float(sums.max()) if sums.size else 0.0


def matrix_norm_1(M: CSRMatrix) -> float:
    """Induced 1-norm: max absolute column sum."""
    sums = np.bincount(M.indices, weights=np.abs(M.data), minlength=M.ncols)
    return float(sums.max()) if sums.size else 0.0


def spectral_radius_dense(M: CSRMatrix) -> float:
    """Exact spectral radius via dense eigendecomposition (small M only)."""
    return float(np.max(np.abs(np.linalg.eigvals(M.to_dense()))))


@dataclass(frozen=True)
class PropagationReport:
    """The Theorem 1 quantities for one parallel step's mask."""

    n_active: int
    n_delayed: int
    g_norm_inf: float
    h_norm_1: float
    g_spectral_radius: float
    h_spectral_radius: float

    @property
    def theorem1_holds(self) -> bool:
        """Whether all four quantities equal 1 (to 1e-9), as Theorem 1 states."""
        return all(
            abs(v - 1.0) < 1e-9
            for v in (
                self.g_norm_inf,
                self.h_norm_1,
                self.g_spectral_radius,
                self.h_spectral_radius,
            )
        )


def theorem1_report(A: CSRMatrix, mask, dense_radius: bool = True) -> PropagationReport:
    """Compute the Theorem 1 quantities for ``A`` and an activity mask.

    ``dense_radius=False`` skips the O(n^3) exact spectral radii (set them to
    NaN) for matrices too large to densify.
    """
    mask = _check_mask(A, mask)
    G = error_propagation_matrix(A, mask)
    H = residual_propagation_matrix(A, mask)
    if dense_radius:
        g_rho = spectral_radius_dense(G)
        h_rho = spectral_radius_dense(H)
    else:
        g_rho = h_rho = float("nan")
    return PropagationReport(
        n_active=int(mask.sum()),
        n_delayed=int((~mask).sum()),
        g_norm_inf=matrix_norm_inf(G),
        h_norm_1=matrix_norm_1(H),
        g_spectral_radius=g_rho,
        h_spectral_radius=h_rho,
    )


def _check_scale(A: CSRMatrix, scale) -> np.ndarray:
    scale = np.asarray(scale, dtype=np.float64)
    if scale.shape != (A.nrows,):
        raise ShapeError(f"scale must be a vector of shape ({A.nrows},)")
    if np.any(scale < 0):
        raise ValueError("scale entries must be nonnegative")
    return scale


def scaled_error_propagation_matrix(A: CSRMatrix, mask, scale) -> CSRMatrix:
    """``G-hat = I - D-hat S A`` for a per-row scale vector ``S = diag(s)``.

    Generalizes :func:`error_propagation_matrix` from ``s = omega / d`` to
    any nonnegative scale — the parallel-step error propagator of every
    *scaled* method in :mod:`repro.methods` (Jacobi, damped Jacobi,
    Richardson). Pass ``scale = method.scale(A)``.
    """
    mask = _check_mask(A, mask)
    scale = _check_scale(A, scale)
    n = A.nrows
    rows_nz = A._row_of_nnz
    keep = mask[rows_nz]
    r = rows_nz[keep]
    c = A.indices[keep]
    v = -A.data[keep] * scale[r]
    all_rows = np.concatenate((r, np.arange(n, dtype=np.int64)))
    all_cols = np.concatenate((c, np.arange(n, dtype=np.int64)))
    all_vals = np.concatenate((v, np.ones(n)))
    return CSRMatrix.from_coo(all_rows, all_cols, all_vals, (n, n))


def scaled_residual_propagation_matrix(A: CSRMatrix, mask, scale) -> CSRMatrix:
    """``H-hat = I - A D-hat S`` for a per-row scale vector (Eq. 8 analog).

    Columns where ``mask`` is False are unit basis vectors, as in
    :func:`residual_propagation_matrix`; active columns are scaled by the
    method's ``s_j`` instead of ``omega / a_jj``.
    """
    mask = _check_mask(A, mask)
    scale = _check_scale(A, scale)
    n = A.nrows
    cols_nz = A.indices
    keep = mask[cols_nz]
    r = A._row_of_nnz[keep]
    c = cols_nz[keep]
    v = -A.data[keep] * scale[c]
    all_rows = np.concatenate((r, np.arange(n, dtype=np.int64)))
    all_cols = np.concatenate((c, np.arange(n, dtype=np.int64)))
    all_vals = np.concatenate((v, np.ones(n)))
    return CSRMatrix.from_coo(all_rows, all_cols, all_vals, (n, n))


def sequential_propagation_matrix(A: CSRMatrix, rows, scale) -> CSRMatrix:
    """Ordered-product error propagator of a sequential (SOR-like) step.

    Relaxing rows one at a time, each seeing all earlier in-step updates,
    composes single-row propagators ``E_i = I - e_i (s_i a_i)^T`` in
    visit order::

        G-hat = E_{r_m} ... E_{r_2} E_{r_1}

    which is exactly one step-asynchronous SOR parallel step over
    ``rows`` (Vigna, arXiv:1404.3327: the "steps" are the rows relaxed
    with latest values). Built densely — analysis-size matrices only.
    Duplicate rows are allowed (a row may relax twice in one sequential
    step); order matters.
    """
    if A.nrows != A.ncols:
        raise ShapeError(f"matrix must be square, got {A.shape}")
    scale = _check_scale(A, scale)
    rows = np.asarray(rows, dtype=np.int64)
    if rows.ndim != 1:
        raise ScheduleError(f"rows must be 1-D, got {rows.ndim}-D")
    if rows.size and (rows.min() < 0 or rows.max() >= A.nrows):
        raise ScheduleError(f"rows out of range [0, {A.nrows})")
    n = A.nrows
    M = np.eye(n)
    for i in rows:
        i = int(i)
        cols_i, vals_i = A.row_entries(i)
        # (I - e_i v^T) M  =>  row i of M becomes  M[i] - s_i (a_i^T M).
        M[i] -= scale[i] * (vals_i @ M[cols_i])
    return CSRMatrix.from_dense(M)


def second_order_companion_matrix(A: CSRMatrix, mask, scale, beta: float) -> np.ndarray:
    """Dense companion (block) error propagator of a momentum step.

    One parallel step of the second-order (heavy-ball) Richardson
    iteration ``x+ = x + D-hat (S r + beta (x - x_prev))`` propagates the
    stacked error ``(e(k), e(k-1))`` through the ``2n x 2n`` matrix::

        [ I - D-hat S A + beta D-hat     -beta D-hat ]
        [ I                               0          ]

    Synchronous convergence (all rows active every step) is governed by
    its spectral radius; asynchronous steps chain different masks. Dense,
    analysis-size only.
    """
    mask = _check_mask(A, mask)
    scale = _check_scale(A, scale)
    beta = float(beta)
    if not 0 <= beta < 1:
        raise ValueError(f"beta must lie in [0, 1), got {beta}")
    n = A.nrows
    d_hat = mask.astype(np.float64)
    top_left = np.eye(n) - (d_hat * scale)[:, None] * A.to_dense() + beta * np.diag(
        d_hat
    )
    top_right = -beta * np.diag(d_hat)
    C = np.zeros((2 * n, 2 * n))
    C[:n, :n] = top_left
    C[:n, n:] = top_right
    C[n:, :n] = np.eye(n)
    return C


def scaled_theorem1_report(
    A: CSRMatrix, mask, scale, dense_radius: bool = True
) -> PropagationReport:
    """Theorem 1 quantities for a scaled method's parallel step.

    Same report as :func:`theorem1_report` but with the per-row scale of
    an arbitrary scaled method. The norms equal 1 whenever every active
    row satisfies the generalized row condition
    ``|1 - s_i a_ii| + s_i sum_{j != i} |a_ij| <= 1`` (see
    :func:`repro.methods.scaled_rowsum_condition`) and at least one row
    is delayed.
    """
    mask = _check_mask(A, mask)
    scale = _check_scale(A, scale)
    G = scaled_error_propagation_matrix(A, mask, scale)
    H = scaled_residual_propagation_matrix(A, mask, scale)
    if dense_radius:
        g_rho = spectral_radius_dense(G)
        h_rho = spectral_radius_dense(H)
    else:
        g_rho = h_rho = float("nan")
    return PropagationReport(
        n_active=int(mask.sum()),
        n_delayed=int((~mask).sum()),
        g_norm_inf=matrix_norm_inf(G),
        h_norm_1=matrix_norm_1(H),
        g_spectral_radius=g_rho,
        h_spectral_radius=h_rho,
    )


def two_by_two_propagation(A: CSRMatrix, delayed_row: int) -> tuple:
    """The explicit 2x2 propagation matrices of Eq. 11.

    For a 2x2 system with ``delayed_row`` inactive, returns dense
    ``(G-hat, H-hat)``. Both have a one-dimensional nullspace, which is why
    repeated application changes nothing after the first step — the paper's
    explanation for why no speedup was observed in the 2x2 study it cites.
    """
    if A.shape != (2, 2):
        raise ShapeError(f"two_by_two_propagation requires a 2x2 matrix, got {A.shape}")
    if delayed_row not in (0, 1):
        raise ValueError(f"delayed_row must be 0 or 1, got {delayed_row}")
    mask = np.ones(2, dtype=bool)
    mask[delayed_row] = False
    G = error_propagation_matrix(A, mask).to_dense()
    H = residual_propagation_matrix(A, mask).to_dense()
    return G, H
