"""Matrix-property analysis: diagonal dominance, spectra, SPD checks.

The paper's theory is parameterized by three properties of the (unit-diagonal
scaled, symmetric) matrix A and its Jacobi iteration matrix G = I - A:

* **weak diagonal dominance (W.D.D.)** — per row, ``|a_ii| >= sum_{j != i}
  |a_ij|``; Theorem 1 needs this to hold for all rows;
* **irreducibility** — the matrix graph is connected, which together with
  W.D.D. (and at least one strict row) gives ``rho(G) < 1``;
* **the Jacobi spectral radius** ``rho(G)`` — sync Jacobi converges iff
  ``rho(G) < 1``.

The spectral estimates are implemented from scratch (power iteration with
deflation-by-shift for the symmetric case); tests cross-check them against
dense eigensolvers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.matrices.sparse import CSRMatrix
from repro.util.rng import as_rng


def wdd_rows(A: CSRMatrix, tol: float = 1e-12) -> np.ndarray:
    """Boolean mask of rows satisfying weak diagonal dominance.

    Row ``i`` is W.D.D. iff ``|a_ii| + tol >= sum_{j != i} |a_ij|``; the
    tolerance absorbs floating-point noise from scaling.
    """
    diag = np.abs(A.diagonal())
    off = A.off_diagonal_row_sums()
    return diag + tol >= off


def is_weakly_diagonally_dominant(A: CSRMatrix, tol: float = 1e-12) -> bool:
    """True iff every row is weakly diagonally dominant."""
    return bool(np.all(wdd_rows(A, tol=tol)))


def wdd_fraction(A: CSRMatrix, tol: float = 1e-12) -> float:
    """Fraction of rows with the W.D.D. property (paper: ~0.5 for FE)."""
    return float(np.mean(wdd_rows(A, tol=tol)))


def is_m_matrix_like(A: CSRMatrix, tol: float = 1e-12) -> bool:
    """Sufficient M-matrix check: sign pattern plus diagonal dominance.

    True when every diagonal entry is positive, every off-diagonal entry
    is nonpositive, and the matrix is weakly diagonally dominant — a
    standard sufficient condition for ``A`` to be a (possibly singular)
    M-matrix. This is the hypothesis of Vigna's step-asynchronous SOR
    sup-norm theorem (arXiv:1404.3327) as used by
    :meth:`repro.methods.StepAsyncSOR.guarantee`; the FD Laplacian
    families all satisfy it.
    """
    if np.any(A.diagonal() <= 0):
        return False
    off = A._row_of_nnz != A.indices
    if np.any(A.data[off] > tol):
        return False
    return is_weakly_diagonally_dominant(A, tol=tol)


def is_irreducible(A: CSRMatrix) -> bool:
    """True iff the matrix graph (off-diagonal sparsity) is connected.

    Implemented as a frontier BFS over CSR adjacency — vectorized per level.
    """
    n = A.nrows
    if n <= 1:
        return True
    visited = np.zeros(n, dtype=bool)
    visited[0] = True
    frontier = np.array([0], dtype=np.int64)
    while frontier.size:
        starts = A.indptr[frontier]
        counts = A.indptr[frontier + 1] - starts
        if counts.sum() == 0:
            break
        # Gather all neighbor column ids of the frontier rows.
        from repro.matrices.sparse import _concat_ranges

        nz = _concat_ranges(starts, counts)
        nbrs = A.indices[nz]
        nbrs = np.unique(nbrs[~visited[nbrs]])
        visited[nbrs] = True
        frontier = nbrs
    return bool(visited.all())


def symmetric_extreme_eigenvalues(
    A: CSRMatrix, iters: int = 2000, tol: float = 1e-10, seed=0
) -> tuple:
    """Estimate ``(lambda_min, lambda_max)`` of a symmetric matrix.

    Power iteration on A gives the eigenvalue of largest magnitude
    ``lambda_big``; a second power iteration on the shifted matrix
    ``lambda_big * I - A`` (resp. ``A - lambda_small * I``) recovers the other
    end of the spectrum. Deterministic given ``seed``.
    """
    n = A.nrows
    rng = as_rng(seed)

    def _power(mat_apply) -> float:
        v = rng.standard_normal(n)
        v /= np.linalg.norm(v)
        lam = 0.0
        for _ in range(iters):
            w = mat_apply(v)
            norm = np.linalg.norm(w)
            if norm == 0:
                return 0.0
            w /= norm
            new_lam = float(w @ mat_apply(w))
            if abs(new_lam - lam) <= tol * max(1.0, abs(new_lam)):
                return new_lam
            lam, v = new_lam, w
        return lam

    lam_big = _power(lambda v: A @ v)  # extreme of largest |.|
    if lam_big >= 0:
        lam_max = lam_big
        lam_min = lam_max - _power(lambda v: lam_max * v - (A @ v))
    else:
        lam_min = lam_big
        lam_max = lam_min + _power(lambda v: (A @ v) - lam_min * v)
    return lam_min, lam_max


def jacobi_spectral_radius(A: CSRMatrix, iters: int = 2000, seed=0) -> float:
    """``rho(G)`` for ``G = I - D^{-1} A``.

    For the paper's setting (symmetric A scaled to unit diagonal) G is
    symmetric and ``rho(G) = max(|1 - lambda_min(A)|, |1 - lambda_max(A)|)``.
    For general A this falls back to power iteration on G itself.
    """
    d = A.diagonal()
    if A.is_symmetric(tol=1e-12) and np.allclose(d, 1.0, atol=1e-9):
        lam_min, lam_max = symmetric_extreme_eigenvalues(A, iters=iters, seed=seed)
        return max(abs(1.0 - lam_min), abs(1.0 - lam_max))
    G = A.jacobi_iteration_matrix()
    rng = as_rng(seed)
    v = rng.standard_normal(A.nrows)
    v /= np.linalg.norm(v)
    rho = 0.0
    for _ in range(iters):
        w = G @ v
        norm = np.linalg.norm(w)
        if norm == 0:
            return 0.0
        rho, v = norm, w / norm
    return float(rho)


def chazan_miranker_radius(A: CSRMatrix, iters: int = 2000, seed=0) -> float:
    """``rho(|G|)`` for ``G = I - D^{-1} A`` — the Chazan-Miranker quantity.

    The foundational theorem of asynchronous iterations (cited as [14] in
    the paper): if ``rho(|G|) < 1``, *every* asynchronous execution of the
    method converges, under the standard liveness assumptions. Note that
    ``rho(G) <= rho(|G|)``, so this is a stronger requirement than
    synchronous convergence — the paper's point is that asynchronous Jacobi
    can nevertheless do *better* than synchronous in transient behaviour.

    ``|G|`` is entrywise absolute value and nonnegative, so plain power
    iteration from a positive vector converges to its Perron root.
    """
    d = A.diagonal()
    if np.any(d == 0):
        from repro.util.errors import SingularMatrixError

        raise SingularMatrixError("Chazan-Miranker radius requires a nonzero diagonal")
    G = A.jacobi_iteration_matrix()
    absG = CSRMatrix(G.indptr, G.indices, np.abs(G.data), G.shape)
    rng = as_rng(seed)
    v = rng.uniform(0.5, 1.0, A.nrows)
    v /= np.linalg.norm(v)
    rho = 0.0
    for _ in range(iters):
        w = absG @ v
        norm = float(np.linalg.norm(w))
        if norm == 0:
            return 0.0
        new_v = w / norm
        if abs(norm - rho) <= 1e-12 * max(1.0, norm):
            return norm
        rho, v = norm, new_v
    return float(rho)


def chazan_miranker_converges(A: CSRMatrix, iters: int = 2000, seed=0) -> bool:
    """Whether asynchronous iteration is *guaranteed* to converge
    (``rho(|G|) < 1``)."""
    return chazan_miranker_radius(A, iters=iters, seed=seed) < 1.0


def is_spd(A: CSRMatrix) -> bool:
    """Check symmetric positive definiteness (dense Cholesky; small A only)."""
    if not A.is_symmetric(tol=1e-10):
        return False
    try:
        np.linalg.cholesky(A.to_dense())
    except np.linalg.LinAlgError:
        return False
    return True


@dataclass(frozen=True)
class MatrixReport:
    """Summary of the properties the paper cares about for a test matrix."""

    name: str
    nrows: int
    nnz: int
    symmetric: bool
    wdd: bool
    wdd_fraction: float
    irreducible: bool
    jacobi_rho: float

    @property
    def jacobi_converges(self) -> bool:
        """Whether synchronous Jacobi converges (``rho(G) < 1``)."""
        return self.jacobi_rho < 1.0


def analyze(A: CSRMatrix, name: str = "matrix", rho_iters: int = 2000) -> MatrixReport:
    """Produce a :class:`MatrixReport` for ``A``."""
    return MatrixReport(
        name=name,
        nrows=A.nrows,
        nnz=A.nnz,
        symmetric=A.is_symmetric(tol=1e-10),
        wdd=is_weakly_diagonally_dominant(A),
        wdd_fraction=wdd_fraction(A),
        irreducible=is_irreducible(A),
        jacobi_rho=jacobi_spectral_radius(A, iters=rho_iters),
    )
