"""MatrixMarket I/O for :class:`~repro.matrices.sparse.CSRMatrix`.

The paper's distributed experiments use SuiteSparse matrices, which are
distributed in MatrixMarket (``.mtx``) coordinate format. This module reads
and writes that format from scratch so that users with access to the real
collection can drop the original files into the experiment harness in place
of the synthetic stand-ins::

    from repro.matrices.io import read_matrix_market
    A = read_matrix_market("thermal2.mtx")
    A, _ = A.unit_diagonal_scaled()

Supports the ``matrix coordinate`` container with ``real``/``integer``
fields and ``general``/``symmetric``/``skew-symmetric`` symmetry groups
(pattern and complex fields are rejected explicitly — Jacobi needs numeric
real data).
"""

from __future__ import annotations

import io as _io
import math
from pathlib import Path

import numpy as np

from repro.matrices.sparse import CSRMatrix
from repro.util.errors import ReproError


class MatrixMarketError(ReproError, ValueError):
    """Malformed or unsupported MatrixMarket content."""


_SUPPORTED_FIELDS = ("real", "integer")
_SUPPORTED_SYMMETRY = ("general", "symmetric", "skew-symmetric")


def _parse_header(line: str):
    parts = line.strip().lower().split()
    if len(parts) != 5 or parts[0] != "%%matrixmarket":
        raise MatrixMarketError(f"not a MatrixMarket header: {line.strip()!r}")
    _, obj, fmt, field, symmetry = parts
    if obj != "matrix":
        raise MatrixMarketError(f"unsupported object {obj!r} (only 'matrix')")
    if fmt != "coordinate":
        raise MatrixMarketError(f"unsupported format {fmt!r} (only 'coordinate')")
    if field not in _SUPPORTED_FIELDS:
        raise MatrixMarketError(
            f"unsupported field {field!r} (supported: {', '.join(_SUPPORTED_FIELDS)})"
        )
    if symmetry not in _SUPPORTED_SYMMETRY:
        raise MatrixMarketError(
            f"unsupported symmetry {symmetry!r} "
            f"(supported: {', '.join(_SUPPORTED_SYMMETRY)})"
        )
    return field, symmetry


def read_matrix_market(source) -> CSRMatrix:
    """Read a MatrixMarket coordinate file into a :class:`CSRMatrix`.

    ``source`` may be a path or an open text-file object. Symmetric and
    skew-symmetric storage is expanded to the full matrix.
    """
    if hasattr(source, "read"):
        return _read_stream(source)
    with open(Path(source), "r", encoding="ascii") as fh:
        return _read_stream(fh)


def _read_stream(fh) -> CSRMatrix:
    header = fh.readline()
    if not header:
        raise MatrixMarketError("empty input")
    field, symmetry = _parse_header(header)

    # Skip comments and blank lines up to the size line.
    size_line = None
    for line in fh:
        stripped = line.strip()
        if not stripped or stripped.startswith("%"):
            continue
        size_line = stripped
        break
    if size_line is None:
        raise MatrixMarketError("missing size line")
    parts = size_line.split()
    if len(parts) != 3:
        raise MatrixMarketError(f"bad size line: {size_line!r}")
    try:
        nrows, ncols, nnz = (int(p) for p in parts)
    except ValueError as exc:
        raise MatrixMarketError(f"bad size line: {size_line!r}") from exc
    if nrows < 0 or ncols < 0 or nnz < 0:
        raise MatrixMarketError("sizes must be nonnegative")

    rows = np.empty(nnz, dtype=np.int64)
    cols = np.empty(nnz, dtype=np.int64)
    vals = np.empty(nnz, dtype=np.float64)
    k = 0
    for line in fh:
        stripped = line.strip()
        if not stripped or stripped.startswith("%"):
            continue
        if k >= nnz:
            raise MatrixMarketError(f"more than the declared {nnz} entries")
        entry = stripped.split()
        if len(entry) != 3:
            raise MatrixMarketError(f"bad entry line: {stripped!r}")
        try:
            i, j = int(entry[0]), int(entry[1])
            v = float(entry[2])
        except ValueError as exc:
            raise MatrixMarketError(f"bad entry line: {stripped!r}") from exc
        if not math.isfinite(v):
            # A NaN/inf entry would silently poison every downstream
            # kernel (diagonal scaling, residuals); reject it at the gate.
            raise MatrixMarketError(f"non-finite entry value in: {stripped!r}")
        if not (1 <= i <= nrows and 1 <= j <= ncols):
            raise MatrixMarketError(f"entry ({i}, {j}) outside {nrows}x{ncols}")
        rows[k], cols[k], vals[k] = i - 1, j - 1, v
        k += 1
    if k != nnz:
        raise MatrixMarketError(f"declared {nnz} entries but found {k}")

    if symmetry in ("symmetric", "skew-symmetric"):
        off = rows != cols
        if symmetry == "skew-symmetric" and np.any(~off):
            raise MatrixMarketError("skew-symmetric matrices cannot store a diagonal")
        sign = -1.0 if symmetry == "skew-symmetric" else 1.0
        mirror_rows, mirror_cols, mirror_vals = cols[off], rows[off], sign * vals[off]
        rows = np.concatenate((rows, mirror_rows))
        cols = np.concatenate((cols, mirror_cols))
        vals = np.concatenate((vals, mirror_vals))
    return CSRMatrix.from_coo(rows, cols, vals, (nrows, ncols))


def write_matrix_market(A: CSRMatrix, target, symmetric: bool | None = None, comment: str = "") -> None:
    """Write ``A`` in MatrixMarket coordinate format.

    ``symmetric=None`` auto-detects; symmetric output stores the lower
    triangle only, as the SuiteSparse files do.
    """
    if symmetric is None:
        symmetric = A.is_symmetric(tol=0.0)
    lines = [
        f"%%MatrixMarket matrix coordinate real {'symmetric' if symmetric else 'general'}"
    ]
    for c in comment.splitlines():
        lines.append(f"% {c}")
    rows = A._row_of_nnz
    cols = A.indices
    vals = A.data
    if symmetric:
        keep = rows >= cols  # lower triangle incl. diagonal
        rows, cols, vals = rows[keep], cols[keep], vals[keep]
    lines.append(f"{A.nrows} {A.ncols} {rows.size}")
    for i, j, v in zip(rows, cols, vals):
        # repr of a Python float is shortest-exact: round-trips bit-for-bit.
        lines.append(f"{i + 1} {j + 1} {float(v)!r}")
    text = "\n".join(lines) + "\n"
    if hasattr(target, "write"):
        target.write(text)
    else:
        Path(target).write_text(text, encoding="ascii")


def loads(text: str) -> CSRMatrix:
    """Parse MatrixMarket content from a string."""
    return _read_stream(_io.StringIO(text))


def dumps(A: CSRMatrix, **kwargs) -> str:
    """Serialize to a MatrixMarket string."""
    buf = _io.StringIO()
    write_matrix_market(A, buf, **kwargs)
    return buf.getvalue()
