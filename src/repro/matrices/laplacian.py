"""Finite-difference Laplacian generators (the paper's "FD" matrices).

The paper uses 5-point centered-difference discretizations of the Laplace
equation on rectangular grids with uniform spacing. These matrices are
irreducibly weakly diagonally dominant, SPD, and have Jacobi spectral radius
< 1. The specific test matrices are identified by their (rows, nnz) pairs:

====  ======  ===========  =====================
rows   nnz    grid         where it appears
====  ======  ===========  =====================
  40    174   5 x 8        Fig. 2 (CPU trace)
  68    298   4 x 17       Figs. 2-4 (68 threads)
 272   1294   16 x 17      Fig. 2 (Phi trace)
4624  22848   68 x 68      Figs. 5
====  ======  ===========  =====================

(The grid shapes are recovered from nnz = N + 2 * #edges; each is verified in
the test suite.)
"""

from __future__ import annotations

import numpy as np

from repro.matrices.sparse import CSRMatrix
from repro.util.errors import ShapeError

#: Grid shapes that reproduce the paper's (rows, nnz) counts exactly.
PAPER_FD_GRIDS = {
    40: (5, 8),
    68: (4, 17),
    272: (16, 17),
    4624: (68, 68),
}


def fd_laplacian_1d(n: int, scaled: bool = True) -> CSRMatrix:
    """Tridiagonal [-1, 2, -1] Laplacian on ``n`` interior points.

    With ``scaled=True`` (the paper's convention) the matrix is symmetrically
    scaled to unit diagonal, i.e. tridiag(-1/2, 1, -1/2).
    """
    if n < 1:
        raise ShapeError(f"n must be >= 1, got {n}")
    i = np.arange(n, dtype=np.int64)
    rows = np.concatenate((i, i[:-1], i[1:]))
    cols = np.concatenate((i, i[1:], i[:-1]))
    vals = np.concatenate((np.full(n, 2.0), np.full(2 * (n - 1), -1.0)))
    A = CSRMatrix.from_coo(rows, cols, vals, (n, n))
    if scaled:
        A, _ = A.unit_diagonal_scaled()
    return A


def fd_laplacian_2d(nx: int, ny: int, scaled: bool = True) -> CSRMatrix:
    """5-point Laplacian on an ``nx``-by-``ny`` grid (Dirichlet boundary).

    Rows are ordered lexicographically: node ``(ix, iy)`` has index
    ``ix * ny + iy``. The unscaled matrix has 4 on the diagonal and -1 for
    each of the up-to-four grid neighbors; with ``scaled=True`` it is
    symmetrically scaled to unit diagonal (diagonal 1, off-diagonals -1/4).
    """
    if nx < 1 or ny < 1:
        raise ShapeError(f"grid dimensions must be >= 1, got ({nx}, {ny})")
    n = nx * ny
    ix, iy = np.divmod(np.arange(n, dtype=np.int64), ny)

    rows = [np.arange(n, dtype=np.int64)]
    cols = [np.arange(n, dtype=np.int64)]
    vals = [np.full(n, 4.0)]

    # Horizontal neighbors (ix +- 1) and vertical neighbors (iy +- 1).
    right = ix < nx - 1
    rows.append(np.nonzero(right)[0])
    cols.append(np.nonzero(right)[0] + ny)
    up = iy < ny - 1
    rows.append(np.nonzero(up)[0])
    cols.append(np.nonzero(up)[0] + 1)
    # Symmetrize by mirroring the two forward stencil legs.
    fr, fc = np.concatenate(rows[1:]), np.concatenate(cols[1:])
    all_rows = np.concatenate((rows[0], fr, fc))
    all_cols = np.concatenate((cols[0], fc, fr))
    all_vals = np.concatenate((vals[0], np.full(2 * fr.size, -1.0)))

    A = CSRMatrix.from_coo(all_rows, all_cols, all_vals, (n, n))
    if scaled:
        A, _ = A.unit_diagonal_scaled()
    return A


def fd_laplacian_3d(nx: int, ny: int, nz: int, scaled: bool = True) -> CSRMatrix:
    """7-point Laplacian on an ``nx``-by-``ny``-by-``nz`` grid (Dirichlet).

    Used by the apache2 stand-in (a 3-D structured-mesh problem).
    """
    if min(nx, ny, nz) < 1:
        raise ShapeError(f"grid dimensions must be >= 1, got ({nx}, {ny}, {nz})")
    n = nx * ny * nz
    idx = np.arange(n, dtype=np.int64)
    ix, rem = np.divmod(idx, ny * nz)
    iy, iz = np.divmod(rem, nz)

    fr, fc = [], []
    for mask, stride in (
        (ix < nx - 1, ny * nz),
        (iy < ny - 1, nz),
        (iz < nz - 1, 1),
    ):
        src = np.nonzero(mask)[0]
        fr.append(src)
        fc.append(src + stride)
    fr, fc = np.concatenate(fr), np.concatenate(fc)
    rows = np.concatenate((idx, fr, fc))
    cols = np.concatenate((idx, fc, fr))
    vals = np.concatenate((np.full(n, 6.0), np.full(2 * fr.size, -1.0)))
    A = CSRMatrix.from_coo(rows, cols, vals, (n, n))
    if scaled:
        A, _ = A.unit_diagonal_scaled()
    return A


def paper_fd_matrix(rows: int, scaled: bool = True) -> CSRMatrix:
    """One of the paper's four FD test matrices, by row count.

    Raises ``KeyError`` with the valid sizes if ``rows`` is not one of the
    paper's matrices (40, 68, 272, 4624).
    """
    try:
        nx, ny = PAPER_FD_GRIDS[rows]
    except KeyError:
        raise KeyError(
            f"no paper FD matrix with {rows} rows; valid sizes: "
            f"{sorted(PAPER_FD_GRIDS)}"
        ) from None
    return fd_laplacian_2d(nx, ny, scaled=scaled)


def near_square_grid(n: int) -> tuple:
    """Factor ``n`` as ``nx * ny`` with the aspect ratio closest to 1.

    Falls back to ``(n, 1)`` for primes. Useful for building FD matrices of
    arbitrary size outside the paper's fixed list.
    """
    if n < 1:
        raise ShapeError(f"n must be >= 1, got {n}")
    best = (n, 1)
    for d in range(int(np.sqrt(n)), 0, -1):
        if n % d == 0:
            best = (n // d, d)
            break
    return best
