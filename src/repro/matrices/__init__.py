"""Problem matrices: CSR substrate, generators, and property analysis."""

from repro.matrices.sparse import CSRMatrix
from repro.matrices.laplacian import (
    PAPER_FD_GRIDS,
    fd_laplacian_1d,
    fd_laplacian_2d,
    fd_laplacian_3d,
    near_square_grid,
    paper_fd_matrix,
)
from repro.matrices.fem import PAPER_FE_ROWS, fe_laplacian_square, paper_fe_matrix
from repro.matrices.stencil import (
    anisotropic_laplacian_2d,
    nine_point_laplacian_2d,
    variable_coefficient_laplacian_2d,
)
from repro.matrices.io import (
    MatrixMarketError,
    dumps,
    loads,
    read_matrix_market,
    write_matrix_market,
)
from repro.matrices.properties import (
    MatrixReport,
    analyze,
    chazan_miranker_converges,
    chazan_miranker_radius,
    is_irreducible,
    is_spd,
    is_weakly_diagonally_dominant,
    jacobi_spectral_radius,
    symmetric_extreme_eigenvalues,
    wdd_fraction,
    wdd_rows,
)

__all__ = [
    "CSRMatrix",
    "PAPER_FD_GRIDS",
    "fd_laplacian_1d",
    "fd_laplacian_2d",
    "fd_laplacian_3d",
    "near_square_grid",
    "paper_fd_matrix",
    "PAPER_FE_ROWS",
    "fe_laplacian_square",
    "paper_fe_matrix",
    "anisotropic_laplacian_2d",
    "nine_point_laplacian_2d",
    "variable_coefficient_laplacian_2d",
    "MatrixMarketError",
    "dumps",
    "loads",
    "read_matrix_market",
    "write_matrix_market",
    "MatrixReport",
    "analyze",
    "chazan_miranker_converges",
    "chazan_miranker_radius",
    "is_irreducible",
    "is_spd",
    "is_weakly_diagonally_dominant",
    "jacobi_spectral_radius",
    "symmetric_extreme_eigenvalues",
    "wdd_fraction",
    "wdd_rows",
]
