"""Synthetic stand-ins for the paper's SuiteSparse test problems (Table I).

The paper evaluates distributed asynchronous Jacobi on seven SPD matrices
from the SuiteSparse collection. The collection is not available offline, so
this module generates *structural stand-ins*: synthetic matrices of the same
family (structured grids, circuit graphs, FE stiffness) at reduced size,
each preserving the property that drives the paper's experiments:

* SPD and symmetric, unit-diagonal scaled;
* Jacobi-convergent (``rho(G) < 1``) for the six problems of Figures 7/8;
* Jacobi-**divergent** (``rho(G) > 1``) for the Dubcova2 stand-in (Figure 9).

Sizes are reduced ~256x so every distributed-simulator experiment runs on a
single core in seconds; the paper's original (rows, nnz) are recorded in
:data:`PAPER_PROBLEMS` and reported alongside measured values by the Table I
benchmark.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

import numpy as np

from repro.matrices.fem import fe_laplacian_square
from repro.matrices.laplacian import fd_laplacian_2d, fd_laplacian_3d
from repro.matrices.sparse import CSRMatrix
from repro.util.errors import ShapeError
from repro.util.rng import as_rng


def _checked_size(n: int, minimum: int) -> int:
    if n < minimum:
        raise ShapeError(f"n must be >= {minimum}, got {n}")
    return int(n)


def thermal2_like(n: int = 4900, seed: int = 11) -> CSRMatrix:
    """Unstructured FE thermal problem (steady-state heat, FEM).

    A P1 stiffness matrix on a random Delaunay mesh plus a small lumped-mass
    (reaction) shift. The shift keeps Jacobi convergent but slow — thermal2
    is the paper's case where Jacobi converges with ``rho(G)`` close to 1.
    """
    n = _checked_size(n, 16)
    A = fe_laplacian_square(n, seed=seed, stretch=1.0, scaled=False)
    # Reaction shift proportional to the mean diagonal: guarantees strict
    # diagonal dominance margin without changing the sparsity structure.
    shift = 0.02 * float(np.mean(A.diagonal()))
    A = A.add_scaled_identity(shift)
    scaled, _ = A.unit_diagonal_scaled()
    return scaled


def g3_circuit_like(n: int = 6200, seed: int = 13, chord_fraction: float = 0.05) -> CSRMatrix:
    """Circuit-simulation problem: weighted graph Laplacian + grounded nodes.

    A 2-D grid graph (the substrate of large circuit netlists) with random
    long-range chords, random positive conductances, and a small fraction of
    "grounded" nodes carrying a diagonal shift (making the Laplacian
    nonsingular). Irreducibly weakly diagonally dominant, so ``rho(G) < 1``.
    """
    n = _checked_size(n, 9)
    rng = as_rng(seed)
    nx = int(np.sqrt(n))
    ny = (n + nx - 1) // nx
    total = nx * ny
    idx = np.arange(total, dtype=np.int64)
    ix, iy = np.divmod(idx, ny)
    edges = []
    right = idx[ix < nx - 1]
    edges.append(np.column_stack((right, right + ny)))
    up = idx[iy < ny - 1]
    edges.append(np.column_stack((up, up + 1)))
    n_chords = max(1, int(chord_fraction * total))
    chords = rng.integers(0, total, size=(n_chords, 2))
    chords = chords[chords[:, 0] != chords[:, 1]]
    edges.append(chords)
    e = np.concatenate(edges)
    w = rng.uniform(0.5, 2.0, size=e.shape[0])

    rows = np.concatenate((e[:, 0], e[:, 1]))
    cols = np.concatenate((e[:, 1], e[:, 0]))
    vals = np.concatenate((-w, -w))
    # Degree diagonal.
    deg = np.zeros(total)
    np.add.at(deg, e[:, 0], w)
    np.add.at(deg, e[:, 1], w)
    # Grounded nodes: strict dominance at ~2% of nodes.
    grounded = rng.choice(total, size=max(1, total // 50), replace=False)
    deg[grounded] += rng.uniform(0.5, 1.5, size=grounded.size)
    rows = np.concatenate((rows, idx))
    cols = np.concatenate((cols, idx))
    vals = np.concatenate((vals, deg))
    A = CSRMatrix.from_coo(rows, cols, vals, (total, total))
    if total != n:
        A = A.submatrix(np.arange(n, dtype=np.int64))
    scaled, _ = A.unit_diagonal_scaled()
    return scaled


def ecology2_like(n: int = 3969, seed: int = 0) -> CSRMatrix:
    """Landscape-ecology problem: a plain 2-D 5-point grid Laplacian.

    ecology2 *is* a regular 2-D grid problem; the stand-in is the 5-point
    Laplacian on the nearest square grid (Dirichlet), unit-diagonal scaled.
    """
    n = _checked_size(n, 4)
    side = max(2, int(round(np.sqrt(n))))
    return fd_laplacian_2d(side, side)


def apache2_like(n: int = 2744, seed: int = 0) -> CSRMatrix:
    """3-D structured-mesh problem: the 7-point Laplacian on a cube."""
    n = _checked_size(n, 8)
    side = max(2, int(round(n ** (1.0 / 3.0))))
    return fd_laplacian_3d(side, side, side)


def parabolic_fem_like(n: int = 2025, seed: int = 0, tau: float = 0.2) -> CSRMatrix:
    """Implicit-Euler diffusion step ``I + tau * K`` on a 2-D grid.

    parabolic_fem is a parabolic (time-dependent diffusion) problem; the
    identity shift makes it strongly diagonally dominant, so Jacobi converges
    quickly — matching its position as the fastest-converging problem in
    Figure 7.
    """
    n = _checked_size(n, 4)
    side = max(2, int(round(np.sqrt(n))))
    K = fd_laplacian_2d(side, side, scaled=False)
    A = K.add_scaled_identity(1.0, beta=float(tau))
    scaled, _ = A.unit_diagonal_scaled()
    return scaled


def thermomech_dm_like(n: int = 800, seed: int = 17) -> CSRMatrix:
    """Small FE thermo-mechanical problem (the paper's smallest matrix)."""
    n = _checked_size(n, 16)
    A = fe_laplacian_square(n, seed=seed, stretch=1.0, scaled=False)
    shift = 0.05 * float(np.mean(A.diagonal()))
    A = A.add_scaled_identity(shift)
    scaled, _ = A.unit_diagonal_scaled()
    return scaled


def dubcova2_like(n: int = 1024, seed: int = 23, stretch: float = 6.0) -> CSRMatrix:
    """FE problem on which synchronous Jacobi DIVERGES (``rho(G) > 1``).

    Dubcova2 is the one Table I matrix for which Jacobi does not converge
    (Figure 9). The stand-in is an anisotropic P1 stiffness matrix tuned so
    that ``rho(G) > 1``; the test suite locks this property.
    """
    n = _checked_size(n, 16)
    return fe_laplacian_square(n, seed=seed, stretch=stretch)


@dataclass(frozen=True)
class ProblemSpec:
    """Catalog entry tying a stand-in generator to the paper's Table I row."""

    name: str
    paper_rows: int
    paper_nnz: int
    generator: Callable[..., CSRMatrix]
    default_n: int
    jacobi_converges: bool
    description: str

    def build(self, n: int | None = None, seed: int | None = None) -> CSRMatrix:
        """Instantiate the stand-in (default size unless overridden)."""
        kwargs = {}
        if n is not None:
            kwargs["n"] = n
        if seed is not None:
            kwargs["seed"] = seed
        return self.generator(**kwargs)


#: The paper's Table I, in the paper's order, with stand-in generators.
PAPER_PROBLEMS = {
    "thermal2": ProblemSpec(
        "thermal2", 1_227_087, 8_579_355, thermal2_like, 4900, True,
        "unstructured FE thermal problem",
    ),
    "G3_circuit": ProblemSpec(
        "G3_circuit", 1_585_478, 7_660_826, g3_circuit_like, 6200, True,
        "circuit simulation graph Laplacian",
    ),
    "ecology2": ProblemSpec(
        "ecology2", 999_999, 4_995_991, ecology2_like, 3969, True,
        "2-D grid landscape ecology problem",
    ),
    "apache2": ProblemSpec(
        "apache2", 715_176, 4_817_870, apache2_like, 2744, True,
        "3-D structured-mesh problem",
    ),
    "parabolic_fem": ProblemSpec(
        "parabolic_fem", 525_825, 3_674_625, parabolic_fem_like, 2025, True,
        "implicit diffusion time step",
    ),
    "thermomech_dm": ProblemSpec(
        "thermomech_dm", 204_316, 1_423_116, thermomech_dm_like, 800, True,
        "small FE thermo-mechanical problem",
    ),
    "Dubcova2": ProblemSpec(
        "Dubcova2", 65_025, 1_030_225, dubcova2_like, 1024, False,
        "FE problem; sync Jacobi diverges",
    ),
}

#: The six problems of Figures 7 and 8 (every Table I matrix but Dubcova2),
#: ordered smallest-first like the paper's plots.
FIGURE7_PROBLEMS = (
    "thermomech_dm",
    "parabolic_fem",
    "ecology2",
    "apache2",
    "G3_circuit",
    "thermal2",
)


def load_problem(name: str, n: int | None = None, seed: int | None = None) -> CSRMatrix:
    """Build a Table I stand-in by name (case-sensitive, as in the paper)."""
    try:
        spec = PAPER_PROBLEMS[name]
    except KeyError:
        raise KeyError(
            f"unknown problem {name!r}; available: {', '.join(PAPER_PROBLEMS)}"
        ) from None
    return spec.build(n=n, seed=seed)


def real_matrix_path(name: str) -> Path | None:
    """Locate the real SuiteSparse ``.mtx`` file for a Table I problem.

    Searches ``$REPRO_SUITESPARSE_DIR`` for ``<name>.mtx`` and
    ``<name>/<name>.mtx`` (the layout ``tar xf`` of a SuiteSparse download
    produces). Returns ``None`` when the variable is unset or no file is
    found — callers then fall back to the synthetic stand-ins.
    """
    root = os.environ.get("REPRO_SUITESPARSE_DIR", "")
    if not root:
        return None
    base = Path(root)
    for candidate in (base / f"{name}.mtx", base / name / f"{name}.mtx"):
        if candidate.is_file():
            return candidate
    return None


def load_real(
    name: str, n: int | None = None, seed: int | None = None
) -> tuple[CSRMatrix, dict]:
    """Load a Table I matrix, preferring the real SuiteSparse file.

    When ``$REPRO_SUITESPARSE_DIR`` holds the paper's actual matrix (see
    :func:`real_matrix_path`), it is read from MatrixMarket format and
    unit-diagonal scaled — the same normalization every stand-in generator
    applies, so downstream Jacobi iterations are directly comparable.
    Otherwise the verified synthetic stand-in is built (``n``/``seed``
    forwarded; both are ignored for real reads, which have a fixed size).

    Returns ``(matrix, info)`` where ``info`` records ``name``,
    ``source`` (``"suitesparse"`` or ``"stand-in"``), ``path`` (real reads
    only), ``rows`` and ``nnz`` — so experiment reports can say what they
    actually measured.
    """
    if name not in PAPER_PROBLEMS:
        raise KeyError(
            f"unknown problem {name!r}; available: {', '.join(PAPER_PROBLEMS)}"
        )
    path = real_matrix_path(name)
    if path is not None:
        from repro.matrices.io import read_matrix_market

        A = read_matrix_market(path)
        A, _ = A.unit_diagonal_scaled()
        info = {
            "name": name,
            "source": "suitesparse",
            "path": str(path),
            "rows": A.nrows,
            "nnz": A.nnz,
        }
        return A, info
    A = load_problem(name, n=n, seed=seed)
    info = {
        "name": name,
        "source": "stand-in",
        "rows": A.nrows,
        "nnz": A.nnz,
    }
    return A, info
