"""A from-scratch CSR sparse-matrix type with vectorized kernels.

The simulators and the propagation-matrix model need a handful of sparse
operations (SpMV, row-subset SpMV for relaxing a set of rows, principal
submatrices for the interlacing analysis, graph adjacency for partitioning).
They are implemented here directly on top of NumPy; :mod:`scipy.sparse` is
used only in tests as an independent oracle.

All kernels are fully vectorized — the per-element work happens inside NumPy
(`bincount`, fancy indexing), never in Python loops over nonzeros — following
the "vectorize the hot loop" rule for numerical Python.
"""

from __future__ import annotations

import numpy as np

from repro.util.errors import ShapeError, SingularMatrixError


def _concat_ranges(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Vectorized ``np.concatenate([np.arange(s, s+c) ...])``.

    Standard cumsum trick: total length is ``counts.sum()``; within each
    segment we add an offset resetting the running index to ``starts[k]``.
    """
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    seg_ids = np.repeat(np.arange(len(counts)), counts)
    # Position within the concatenated output.
    pos = np.arange(total, dtype=np.int64)
    # Start position of each segment in the output.
    seg_starts = np.concatenate(([0], np.cumsum(counts)[:-1]))
    return starts[seg_ids] + (pos - seg_starts[seg_ids])


class ColumnScatterPlan:
    """Precompiled in-place ``r -= A[:, cols] @ dx`` for a fixed column set.

    :meth:`CSRMatrix.subtract_columns_update` recomputes the CSC gather
    (``_concat_ranges`` + touched-row min/max) on every call; for the
    simulators the column set is a fixed block per agent, so the engine
    compiles it once via :meth:`CSRMatrix.column_scatter_plan` and
    :meth:`apply` reduces to one gather, one multiply (both into a reused
    scratch buffer) and one ``bincount`` scatter over the touched row
    span. The per-entry accumulation order is identical to
    ``subtract_columns_update``, so the results are bit-for-bit equal.
    """

    __slots__ = ("base", "span", "local", "vals", "rep_idx", "pairs", "_scratch")

    def __init__(self, base: int, span: int, local, vals, rep_idx, n_cols: int = 0):
        self.base = base
        self.span = span
        self.local = local
        self.vals = vals
        self.rep_idx = rep_idx
        self._scratch = np.empty(vals.size)
        # Single-column plans admit a pure-scalar apply: a CSC column's
        # rows are unique, so each touched entry receives exactly one
        # contribution and :meth:`apply1` needs no accumulation buffer.
        self.pairs = (
            list(zip((base + local).tolist(), vals.tolist()))
            if n_cols == 1
            else None
        )

    def apply(self, r, dx) -> None:
        """``r[base:base+span] -= (A[:, cols] @ dx)`` over the touched span.

        ``dx`` is the dense update for the plan's columns, in plan order.
        """
        if self.vals.size == 0:
            return
        s = self._scratch
        dx.take(self.rep_idx, out=s)
        np.multiply(self.vals, s, out=s)
        r[self.base : self.base + self.span] -= np.bincount(
            self.local, weights=s, minlength=self.span
        )

    def apply1(self, r, d0) -> None:
        """Scalar form of :meth:`apply` for a single-column plan.

        ``d0`` is the (scalar) update of the plan's one column; the result
        is bit-identical to ``apply(r, [d0])`` — untouched rows in the
        span would only ever subtract ``0.0``, an IEEE no-op.
        """
        for i, v in self.pairs:
            r[i] -= v * d0


class CSRMatrix:
    """Compressed-sparse-row matrix (float64 values, int64 indices).

    Parameters
    ----------
    indptr, indices, data
        Standard CSR arrays. Column indices within each row must be sorted
        and unique (enforced on construction).
    shape
        ``(nrows, ncols)``.

    Notes
    -----
    Instances are immutable by convention: kernels never modify the CSR
    arrays, so a matrix can be shared freely between simulated agents.
    """

    __slots__ = (
        "indptr", "indices", "data", "shape", "_row_of_nnz", "_csc", "_matmat_bins",
    )

    def __init__(self, indptr, indices, data, shape):
        self.indptr = np.asarray(indptr, dtype=np.int64)
        self.indices = np.asarray(indices, dtype=np.int64)
        self.data = np.asarray(data, dtype=np.float64)
        if len(shape) != 2:
            raise ShapeError(f"shape must be (nrows, ncols), got {shape}")
        self.shape = (int(shape[0]), int(shape[1]))
        self._validate()
        # Row id of each stored nonzero; used by SpMV via bincount.
        self._row_of_nnz = np.repeat(
            np.arange(self.shape[0], dtype=np.int64), np.diff(self.indptr)
        )
        # Lazily built CSC (transpose) view; see :meth:`csc_arrays`.
        self._csc = None
        # Per-T flattened bincount bins for :meth:`matmat`, built on demand.
        self._matmat_bins = {}

    # ------------------------------------------------------------------
    # construction / conversion
    # ------------------------------------------------------------------
    @classmethod
    def _from_validated(cls, indptr, indices, data, shape, row_of_nnz=None):
        """Trusted construction from already-validated CSR arrays.

        Internal fast path for callers that transform an existing (hence
        valid) matrix — e.g. the per-rank compaction in
        ``DistributedJacobi._compile_ranks`` — where re-running
        :meth:`_validate` and rebuilding ``_row_of_nnz`` per block is pure
        overhead. The arrays are adopted as-is (no copy, no dtype
        coercion): the caller guarantees CSR invariants, int64/float64
        dtypes, and, if ``row_of_nnz`` is given, that it matches
        ``indptr``.
        """
        m = cls.__new__(cls)
        m.indptr = indptr
        m.indices = indices
        m.data = data
        m.shape = (int(shape[0]), int(shape[1]))
        m._row_of_nnz = (
            np.repeat(np.arange(m.shape[0], dtype=np.int64), np.diff(indptr))
            if row_of_nnz is None
            else row_of_nnz
        )
        m._csc = None
        m._matmat_bins = {}
        return m

    def _validate(self) -> None:
        nrows, ncols = self.shape
        if self.indptr.ndim != 1 or self.indptr.shape[0] != nrows + 1:
            raise ShapeError(
                f"indptr must have length nrows+1={nrows + 1}, got {self.indptr.shape}"
            )
        if self.indptr[0] != 0 or np.any(np.diff(self.indptr) < 0):
            raise ShapeError("indptr must start at 0 and be nondecreasing")
        nnz = int(self.indptr[-1])
        if self.indices.shape != (nnz,) or self.data.shape != (nnz,):
            raise ShapeError(
                f"indices/data must have length indptr[-1]={nnz}, got "
                f"{self.indices.shape}/{self.data.shape}"
            )
        if nnz and (self.indices.min() < 0 or self.indices.max() >= ncols):
            raise ShapeError("column indices out of range")
        # Sorted, unique columns within each row: diff >= 1 except at row
        # boundaries.
        if nnz > 1:
            d = np.diff(self.indices)
            boundary = np.zeros(nnz - 1, dtype=bool)
            inner_ptr = self.indptr[1:-1]
            boundary[inner_ptr[(inner_ptr > 0) & (inner_ptr < nnz)] - 1] = True
            if np.any((d < 1) & ~boundary):
                raise ShapeError("column indices must be sorted and unique per row")

    @classmethod
    def from_coo(cls, rows, cols, vals, shape) -> "CSRMatrix":
        """Build from COO triplets; duplicate entries are summed."""
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        vals = np.asarray(vals, dtype=np.float64)
        if not (rows.shape == cols.shape == vals.shape) or rows.ndim != 1:
            raise ShapeError("rows, cols, vals must be 1-D arrays of equal length")
        nrows, ncols = int(shape[0]), int(shape[1])
        if rows.size and (rows.min() < 0 or rows.max() >= nrows):
            raise ShapeError("row indices out of range")
        if cols.size and (cols.min() < 0 or cols.max() >= ncols):
            raise ShapeError("column indices out of range")
        # Sort by (row, col) and merge duplicates.
        order = np.lexsort((cols, rows))
        rows, cols, vals = rows[order], cols[order], vals[order]
        if rows.size:
            new_group = np.concatenate(
                ([True], (rows[1:] != rows[:-1]) | (cols[1:] != cols[:-1]))
            )
            group_ids = np.cumsum(new_group) - 1
            merged_vals = np.bincount(group_ids, weights=vals)
            rows = rows[new_group]
            cols = cols[new_group]
            vals = merged_vals
        indptr = np.zeros(nrows + 1, dtype=np.int64)
        np.add.at(indptr, rows + 1, 1)
        indptr = np.cumsum(indptr)
        return cls(indptr, cols, vals, (nrows, ncols))

    @classmethod
    def from_dense(cls, dense) -> "CSRMatrix":
        """Build from a 2-D array, dropping exact zeros."""
        dense = np.asarray(dense, dtype=np.float64)
        if dense.ndim != 2:
            raise ShapeError(f"dense must be 2-D, got {dense.ndim}-D")
        rows, cols = np.nonzero(dense)
        return cls.from_coo(rows, cols, dense[rows, cols], dense.shape)

    @classmethod
    def identity(cls, n: int) -> "CSRMatrix":
        """The n-by-n identity."""
        idx = np.arange(n, dtype=np.int64)
        return cls(np.arange(n + 1), idx, np.ones(n), (n, n))

    @classmethod
    def from_scipy(cls, mat) -> "CSRMatrix":
        """Convert any scipy.sparse matrix."""
        m = mat.tocsr().sorted_indices()
        m.sum_duplicates()
        return cls(m.indptr, m.indices, m.data, m.shape)

    def to_dense(self) -> np.ndarray:
        """Materialize as a dense 2-D array."""
        out = np.zeros(self.shape)
        out[self._row_of_nnz, self.indices] = self.data
        return out

    def to_scipy(self):
        """Convert to ``scipy.sparse.csr_matrix`` (used by tests/analysis)."""
        import scipy.sparse as sp

        return sp.csr_matrix(
            (self.data.copy(), self.indices.copy(), self.indptr.copy()), shape=self.shape
        )

    def copy(self) -> "CSRMatrix":
        """Deep copy."""
        return CSRMatrix(
            self.indptr.copy(), self.indices.copy(), self.data.copy(), self.shape
        )

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        """Number of stored entries."""
        return int(self.indptr[-1])

    @property
    def nrows(self) -> int:
        """Number of rows."""
        return self.shape[0]

    @property
    def ncols(self) -> int:
        """Number of columns."""
        return self.shape[1]

    def row_nnz(self) -> np.ndarray:
        """Stored entries per row."""
        return np.diff(self.indptr)

    def diagonal(self) -> np.ndarray:
        """Extract the main diagonal as a dense vector (zeros where absent)."""
        n = min(self.shape)
        diag = np.zeros(n)
        on_diag = (self._row_of_nnz == self.indices) & (self._row_of_nnz < n)
        diag[self._row_of_nnz[on_diag]] = self.data[on_diag]
        return diag

    def transpose(self) -> "CSRMatrix":
        """Return the transpose (CSR of A^T)."""
        return CSRMatrix.from_coo(
            self.indices, self._row_of_nnz, self.data, (self.shape[1], self.shape[0])
        )

    def is_symmetric(self, tol: float = 0.0) -> bool:
        """Check structural+numeric symmetry within ``tol``."""
        if self.shape[0] != self.shape[1]:
            return False
        t = self.transpose()
        if not (
            np.array_equal(t.indptr, self.indptr)
            and np.array_equal(t.indices, self.indices)
        ):
            return False
        return bool(np.all(np.abs(t.data - self.data) <= tol))

    # ------------------------------------------------------------------
    # kernels
    # ------------------------------------------------------------------
    def matvec(self, x) -> np.ndarray:
        """Sparse matrix-vector product ``A @ x``."""
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.shape[1],):
            raise ShapeError(
                f"x must have shape ({self.shape[1]},), got {x.shape}"
            )
        prods = self.data * x[self.indices]
        return np.bincount(self._row_of_nnz, weights=prods, minlength=self.shape[0])

    def matmat(self, x) -> np.ndarray:
        """Sparse matrix times dense ``(ncols, T)`` block: ``A @ X``.

        One flattened ``bincount`` over ``nnz * T`` products — no Python loop
        over columns. Per output entry the accumulation order is the row's
        nonzero order, exactly as in :meth:`matvec`, so column ``t`` of the
        result is bit-identical to ``matvec(x[:, t])``.
        """
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2 or x.shape[0] != self.shape[1]:
            raise ShapeError(
                f"operand must have shape ({self.shape[1]}, T), got {x.shape}"
            )
        ncols_out = x.shape[1]
        if ncols_out == 0:
            return np.zeros((self.shape[0], 0))
        prods = self.data[:, None] * x[self.indices]
        bins = self._matmat_bins.get(ncols_out)
        if bins is None:
            bins = (
                self._row_of_nnz[:, None] * ncols_out + np.arange(ncols_out)
            ).ravel()
            self._matmat_bins[ncols_out] = bins
        flat = np.bincount(
            bins, weights=prods.ravel(), minlength=self.shape[0] * ncols_out
        )
        return flat.reshape(self.shape[0], ncols_out)

    def __matmul__(self, x):
        x = np.asarray(x, dtype=np.float64)
        if x.ndim == 1:
            return self.matvec(x)
        if x.ndim == 2:
            return self.matmat(x)
        raise ShapeError(f"cannot multiply CSR by {x.ndim}-D operand")

    def row_matvec(self, rows, x) -> np.ndarray:
        """``A[rows, :] @ x`` without materializing the row slice.

        This is the hot kernel of every relaxation: relaxing the set ``rows``
        needs exactly these inner products. ``x`` may also be a 2-D
        ``(ncols, T)`` block of T iterates — one vectorized pass computes all
        T products with the same per-entry accumulation order as the 1-D
        path, so the batched trial engine stays bit-identical to a per-trial
        loop.
        """
        rows = np.asarray(rows, dtype=np.int64)
        x = np.asarray(x, dtype=np.float64)
        if x.ndim == 2:
            if x.shape[0] != self.shape[1]:
                raise ShapeError(
                    f"x must have shape ({self.shape[1]}, T), got {x.shape}"
                )
            nt = x.shape[1]
            if rows.size == 0 or nt == 0:
                return np.zeros((rows.size, nt))
            starts = self.indptr[rows]
            counts = self.indptr[rows + 1] - starts
            nz = _concat_ranges(starts, counts)
            prods = self.data[nz][:, None] * x[self.indices[nz]]
            seg = np.repeat(np.arange(rows.size), counts)
            bins = seg[:, None] * nt + np.arange(nt)
            flat = np.bincount(
                bins.ravel(), weights=prods.ravel(), minlength=rows.size * nt
            )
            return flat.reshape(rows.size, nt)
        if x.shape != (self.shape[1],):
            raise ShapeError(f"x must have shape ({self.shape[1]},), got {x.shape}")
        if rows.size == 0:
            return np.zeros(0)
        starts = self.indptr[rows]
        counts = self.indptr[rows + 1] - starts
        nz = _concat_ranges(starts, counts)
        prods = self.data[nz] * x[self.indices[nz]]
        seg = np.repeat(np.arange(rows.size), counts)
        return np.bincount(seg, weights=prods, minlength=rows.size)

    def csc_arrays(self) -> tuple:
        """Cached CSC (transpose) view: ``(colptr, row_indices, values)``.

        Entry ``k`` in ``colptr[j]:colptr[j+1]`` says ``A[row_indices[k], j]
        = values[k]``; within a column the rows are sorted. Built once and
        cached — the matrix is immutable by convention — and used by the
        incremental residual maintenance: changing ``x[cols]`` only touches
        residual entries in the row support of those columns.
        """
        if self._csc is None:
            order = np.argsort(self.indices, kind="stable")
            counts = np.bincount(self.indices, minlength=self.shape[1])
            colptr = np.concatenate(([0], np.cumsum(counts))).astype(np.int64)
            self._csc = (colptr, self._row_of_nnz[order], self.data[order])
        return self._csc

    def subtract_columns_update(self, r, cols, dx) -> None:
        """In-place ``r -= A[:, cols] @ dx`` via the cached CSC view.

        The incremental-residual kernel: after ``x[cols] += dx`` the residual
        ``r = b - A x`` changes only on the rows with a nonzero in ``cols``.
        ``dx`` may be 1-D (``r`` a vector) or ``(cols.size, T)`` with ``r`` of
        shape ``(nrows, T)`` for the batched engine; the per-entry
        accumulation order matches the 1-D path column by column.
        """
        cols = np.asarray(cols, dtype=np.int64)
        dx = np.asarray(dx, dtype=np.float64)
        if cols.size == 0:
            return
        colptr, row_ind, vals = self.csc_arrays()
        starts = colptr[cols]
        counts = colptr[cols + 1] - starts
        nz = _concat_ranges(starts, counts)
        if nz.size == 0:
            return
        touched = row_ind[nz]
        # Scatter into the touched row *span* only: for a localized column
        # set (a thread's block, a rank's rows) the span is tiny compared to
        # n, so the update costs O(nnz_touched + span) instead of O(n).
        base = int(touched.min())
        span = int(touched.max()) - base + 1
        local = touched - base
        if dx.ndim == 1:
            contrib = vals[nz] * np.repeat(dx, counts)
            r[base : base + span] -= np.bincount(
                local, weights=contrib, minlength=span
            )
            return
        nt = dx.shape[1]
        if nt == 0:
            return
        contrib = vals[nz][:, None] * np.repeat(dx, counts, axis=0)
        bins = local[:, None] * nt + np.arange(nt)
        flat = np.bincount(bins.ravel(), weights=contrib.ravel(), minlength=span * nt)
        r[base : base + span] -= flat.reshape(span, nt)

    def column_scatter_plan(self, cols) -> ColumnScatterPlan:
        """Compile :meth:`subtract_columns_update` for a fixed column set.

        Returns a :class:`ColumnScatterPlan` whose ``apply(r, dx)`` is
        bit-identical to ``subtract_columns_update(r, cols, dx)`` (1-D
        ``dx``) but skips the per-call gather construction — the hot-path
        variant for the simulators, where each agent updates the same
        column block thousands of times.
        """
        cols = np.asarray(cols, dtype=np.int64)
        empty_i = np.empty(0, dtype=np.int64)
        if cols.size == 0:
            return ColumnScatterPlan(0, 0, empty_i, np.empty(0), empty_i)
        colptr, row_ind, vals = self.csc_arrays()
        starts = colptr[cols]
        counts = colptr[cols + 1] - starts
        nz = _concat_ranges(starts, counts)
        if nz.size == 0:
            return ColumnScatterPlan(0, 0, empty_i, np.empty(0), empty_i)
        touched = row_ind[nz]
        base = int(touched.min())
        span = int(touched.max()) - base + 1
        rep_idx = np.repeat(np.arange(cols.size, dtype=np.int64), counts)
        return ColumnScatterPlan(
            base, span, touched - base, vals[nz], rep_idx, n_cols=int(cols.size)
        )

    def row_slice(self, rows) -> "CSRMatrix":
        """``A[rows, :]`` as a new CSR matrix (rows in the given order)."""
        rows = np.asarray(rows, dtype=np.int64)
        starts = self.indptr[rows]
        counts = self.indptr[rows + 1] - starts
        nz = _concat_ranges(starts, counts)
        indptr = np.concatenate(([0], np.cumsum(counts)))
        return CSRMatrix(indptr, self.indices[nz], self.data[nz], (rows.size, self.shape[1]))

    def submatrix(self, rows, cols=None) -> "CSRMatrix":
        """``A[rows][:, cols]`` (``cols`` defaults to ``rows``: principal submatrix).

        Used by the interlacing analysis (Section IV-C of the paper), which
        studies principal submatrices of the iteration matrix corresponding
        to the *active* (non-delayed) rows.
        """
        rows = np.asarray(rows, dtype=np.int64)
        cols = rows if cols is None else np.asarray(cols, dtype=np.int64)
        sliced = self.row_slice(rows)
        # Map old column ids -> new ids (or -1 to drop).
        col_map = np.full(self.shape[1], -1, dtype=np.int64)
        col_map[cols] = np.arange(cols.size)
        new_cols = col_map[sliced.indices]
        keep = new_cols >= 0
        seg = np.repeat(np.arange(rows.size), np.diff(sliced.indptr))[keep]
        return CSRMatrix.from_coo(
            seg, new_cols[keep], sliced.data[keep], (rows.size, cols.size)
        )

    def scale_rows(self, scale) -> "CSRMatrix":
        """Return ``diag(scale) @ A``."""
        scale = np.asarray(scale, dtype=np.float64)
        if scale.shape != (self.shape[0],):
            raise ShapeError(f"scale must have shape ({self.shape[0]},)")
        return CSRMatrix(
            self.indptr, self.indices, self.data * scale[self._row_of_nnz], self.shape
        )

    def scale_columns(self, scale) -> "CSRMatrix":
        """Return ``A @ diag(scale)``."""
        scale = np.asarray(scale, dtype=np.float64)
        if scale.shape != (self.shape[1],):
            raise ShapeError(f"scale must have shape ({self.shape[1]},)")
        return CSRMatrix(self.indptr, self.indices, self.data * scale[self.indices], self.shape)

    def add_scaled_identity(self, alpha: float, beta: float = 1.0) -> "CSRMatrix":
        """Return ``beta * A + alpha * I`` (square matrices only)."""
        if self.shape[0] != self.shape[1]:
            raise ShapeError("add_scaled_identity requires a square matrix")
        n = self.shape[0]
        rows = np.concatenate((self._row_of_nnz, np.arange(n, dtype=np.int64)))
        cols = np.concatenate((self.indices, np.arange(n, dtype=np.int64)))
        vals = np.concatenate((beta * self.data, np.full(n, float(alpha))))
        return CSRMatrix.from_coo(rows, cols, vals, self.shape)

    def off_diagonal_row_sums(self) -> np.ndarray:
        """``sum_{j != i} |a_ij|`` for each row; used by W.D.D. checks."""
        absdata = np.abs(self.data)
        off = self._row_of_nnz != self.indices
        return np.bincount(
            self._row_of_nnz[off], weights=absdata[off], minlength=self.shape[0]
        )

    def neighbors(self, i: int) -> np.ndarray:
        """Column indices of row ``i`` excluding the diagonal.

        This is the matrix-graph adjacency used for partitioning and for
        ghost-layer discovery in the distributed simulator.
        """
        lo, hi = self.indptr[i], self.indptr[i + 1]
        cols = self.indices[lo:hi]
        return cols[cols != i]

    def row_entries(self, i: int):
        """``(columns, values)`` of row ``i``."""
        lo, hi = self.indptr[i], self.indptr[i + 1]
        return self.indices[lo:hi], self.data[lo:hi]

    # ------------------------------------------------------------------
    # transformations used by the solvers
    # ------------------------------------------------------------------
    def unit_diagonal_scaled(self):
        """Symmetrically scale to unit diagonal: ``D^{-1/2} A D^{-1/2}``.

        The paper assumes throughout that A is symmetric and "scaled to have
        unit diagonal values", under which the error and residual iteration
        matrices coincide (B = C = G = I - A). Returns ``(scaled, dsqrt)``
        where ``dsqrt`` is the vector of square roots of the original
        diagonal, so solutions can be mapped back:
        ``A x = b  <=>  (SAS)(S^{-1} x) = S b`` with ``S = D^{-1/2}``.
        """
        d = self.diagonal()
        if np.any(d <= 0):
            raise SingularMatrixError(
                "unit-diagonal scaling requires strictly positive diagonal"
            )
        s = 1.0 / np.sqrt(d)
        return self.scale_rows(s).scale_columns(s), np.sqrt(d)

    def jacobi_iteration_matrix(self) -> "CSRMatrix":
        """``G = I - D^{-1} A``: the Jacobi iteration matrix.

        For unit-diagonal A this is simply ``I - A`` with an empty diagonal.
        """
        d = self.diagonal()
        if np.any(d == 0):
            raise SingularMatrixError("Jacobi requires a nonzero diagonal")
        scaled = self.scale_rows(1.0 / d)  # D^{-1} A, unit diagonal
        # G = I - D^{-1}A: negate and knock out the diagonal.
        off = scaled._row_of_nnz != scaled.indices
        rows = scaled._row_of_nnz[off]
        cols = scaled.indices[off]
        vals = -scaled.data[off]
        return CSRMatrix.from_coo(rows, cols, vals, self.shape)

    # ------------------------------------------------------------------
    # misc
    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CSRMatrix(shape={self.shape}, nnz={self.nnz})"
        )

    def __eq__(self, other) -> bool:
        if not isinstance(other, CSRMatrix):
            return NotImplemented
        return (
            self.shape == other.shape
            and np.array_equal(self.indptr, other.indptr)
            and np.array_equal(self.indices, other.indices)
            and np.array_equal(self.data, other.data)
        )

    # Unhashable: instances wrap mutable ndarrays.
    __hash__ = None
