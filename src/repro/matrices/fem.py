"""Unstructured P1 finite-element Laplacian on the unit square.

The paper's "FE" matrix is an unstructured finite-element discretization of
the Laplace equation on a square: SPD, *not* weakly diagonally dominant
(about half the rows have the W.D.D. property), and with Jacobi spectral
radius ``rho(G) > 1`` — so synchronous Jacobi diverges on it. That divergence
is the point: Figure 6 shows asynchronous Jacobi converging on this matrix
anyway once enough threads are used.

We reproduce the construction directly: scatter points in the unit square,
triangulate with Delaunay (scipy.spatial), assemble the P1 stiffness matrix,
eliminate the Dirichlet boundary, and symmetrically scale to unit diagonal.
Low-quality (obtuse) triangles from the random point cloud produce positive
off-diagonal entries, which is what breaks diagonal dominance and pushes
``rho(G)`` above 1; the ``stretch`` parameter (anisotropic diffusion) gives
extra control when a specific radius is needed.
"""

from __future__ import annotations

import numpy as np

from repro.matrices.sparse import CSRMatrix
from repro.util.errors import ShapeError
from repro.util.rng import as_rng

#: Row count of the paper's FE test matrix (nnz = 20,971 in the paper).
PAPER_FE_ROWS = 3081


def _p1_stiffness_triangles(points: np.ndarray, triangles: np.ndarray, diffusion=(1.0, 1.0)):
    """Element stiffness contributions for all triangles, vectorized.

    Returns COO triplets of the assembled stiffness matrix for the
    anisotropic Laplacian ``-div(diag(diffusion) grad u)``.
    """
    p = points[triangles]  # (m, 3, 2)
    x = p[:, :, 0]
    y = p[:, :, 1]
    # Gradient coefficients of the three hat functions.
    b = np.stack((y[:, 1] - y[:, 2], y[:, 2] - y[:, 0], y[:, 0] - y[:, 1]), axis=1)
    c = np.stack((x[:, 2] - x[:, 1], x[:, 0] - x[:, 2], x[:, 1] - x[:, 0]), axis=1)
    # Signed doubled area; Delaunay triangles are CCW so this is positive.
    area2 = b[:, 0] * c[:, 1] - b[:, 1] * c[:, 0]
    area2 = np.where(area2 == 0, np.finfo(float).tiny, area2)
    kx, ky = diffusion
    # K_ij = (kx * b_i b_j + ky * c_i c_j) / (2 * area2)
    K = (kx * b[:, :, None] * b[:, None, :] + ky * c[:, :, None] * c[:, None, :]) / (
        2.0 * area2[:, None, None]
    )
    m = triangles.shape[0]
    rows = np.repeat(triangles, 3, axis=1).reshape(m * 9)
    cols = np.tile(triangles, (1, 3)).reshape(m * 9)
    vals = K.reshape(m * 9)
    return rows, cols, vals


def fe_laplacian_square(
    n_interior: int = PAPER_FE_ROWS,
    seed: int = 7,
    stretch: float = 1.0,
    boundary_per_side: int | None = None,
    scaled: bool = True,
) -> CSRMatrix:
    """P1 stiffness matrix for Laplace on the unit square, Dirichlet boundary.

    Parameters
    ----------
    n_interior
        Number of interior nodes == number of matrix rows. Defaults to the
        paper's 3081.
    seed
        RNG seed for the interior point cloud (deterministic mesh).
    stretch
        Anisotropy ratio ``ky/kx`` of the diffusion tensor. 1.0 is isotropic
        Laplace; values > 1 increase ``rho(G)``.
    boundary_per_side
        Boundary points per square side (defaults to ``~sqrt(n_interior)``).
    scaled
        Symmetrically scale the result to unit diagonal (paper convention).

    Returns
    -------
    CSRMatrix
        The ``n_interior`` x ``n_interior`` stiffness matrix restricted to
        interior nodes.
    """
    from scipy.spatial import Delaunay

    if n_interior < 3:
        raise ShapeError(f"n_interior must be >= 3, got {n_interior}")
    rng = as_rng(seed)
    if boundary_per_side is None:
        boundary_per_side = max(4, int(np.sqrt(n_interior)))

    interior = rng.uniform(0.02, 0.98, size=(n_interior, 2))
    t = np.linspace(0.0, 1.0, boundary_per_side, endpoint=False)
    boundary = np.concatenate(
        (
            np.column_stack((t, np.zeros_like(t))),
            np.column_stack((np.ones_like(t), t)),
            np.column_stack((1.0 - t, np.ones_like(t))),
            np.column_stack((np.zeros_like(t), 1.0 - t)),
        )
    )
    points = np.concatenate((interior, boundary))

    tri = Delaunay(points)
    rows, cols, vals = _p1_stiffness_triangles(
        points, tri.simplices.astype(np.int64), diffusion=(1.0, float(stretch))
    )
    full = CSRMatrix.from_coo(rows, cols, vals, (points.shape[0], points.shape[0]))

    # Dirichlet elimination: keep only interior nodes (the first n_interior).
    keep = np.arange(n_interior, dtype=np.int64)
    A = full.submatrix(keep)
    if scaled:
        A, _ = A.unit_diagonal_scaled()
    return A


def paper_fe_matrix(seed: int = 7, stretch: float = 6.0) -> CSRMatrix:
    """The stand-in for the paper's FE matrix (3081 rows, sync-divergent).

    The default ``stretch`` is chosen (and locked by the test suite) so that
    ``rho(G) > 1`` decisively (measured: ~1.156) — synchronous Jacobi
    diverges, and in the shared-memory simulator asynchronous Jacobi at 68
    threads also fails while 136/272 threads converge, reproducing the
    thread-count dependence of Figure 6. About a third of the rows keep the
    W.D.D. property (the paper reports roughly half). The matrix has 3081
    rows and 21,177 nonzeros vs. the paper's 20,971.
    """
    return fe_laplacian_square(PAPER_FE_ROWS, seed=seed, stretch=stretch)
