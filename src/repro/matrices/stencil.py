"""General finite-difference stencils: anisotropy, variable coefficients,
and the 9-point discretization.

The plain 5-point Laplacians (:mod:`repro.matrices.laplacian`) cover the
paper's FD matrices exactly; this module provides the standard harder test
problems a downstream user of an (a)synchronous relaxation library reaches
for next:

* :func:`anisotropic_laplacian_2d` — ``-(eps u_xx + u_yy)``: as ``eps``
  shrinks, Jacobi's spectral radius approaches 1 along the strong direction
  and point relaxation degrades — the classical motivation for line/block
  methods, and a stress test for the asynchronous simulators;
* :func:`variable_coefficient_laplacian_2d` — ``-div(a(x, y) grad u)`` with
  a user-supplied (or random lognormal "channelized") coefficient field,
  SPD with widely varying diagonal — exercises the non-unit-diagonal paths;
* :func:`nine_point_laplacian_2d` — the compact 9-point stencil, whose
  denser coupling changes partition ghost layers and coloring (4 colors
  instead of 2).

All generators return symmetric positive (semi)definite matrices with
Dirichlet boundaries; ``scaled=True`` applies the paper's unit-diagonal
convention.
"""

from __future__ import annotations

import numpy as np

from repro.matrices.sparse import CSRMatrix
from repro.util.errors import ShapeError
from repro.util.rng import as_rng
from repro.util.validation import check_positive


def _grid_index(nx: int, ny: int):
    if nx < 1 or ny < 1:
        raise ShapeError(f"grid dimensions must be >= 1, got ({nx}, {ny})")
    idx = np.arange(nx * ny, dtype=np.int64)
    ix, iy = np.divmod(idx, ny)
    return idx, ix, iy


def anisotropic_laplacian_2d(
    nx: int, ny: int, eps: float = 1.0, scaled: bool = True
) -> CSRMatrix:
    """5-point discretization of ``-(eps u_xx + u_yy)`` (Dirichlet).

    ``eps = 1`` reproduces :func:`~repro.matrices.laplacian.fd_laplacian_2d`.
    """
    check_positive(eps, "eps")
    n = nx * ny
    idx, ix, iy = _grid_index(nx, ny)
    fr, fc, fv = [], [], []
    right = idx[ix < nx - 1]
    fr.append(right)
    fc.append(right + ny)
    fv.append(np.full(right.size, -float(eps)))
    up = idx[iy < ny - 1]
    fr.append(up)
    fc.append(up + 1)
    fv.append(np.full(up.size, -1.0))
    fr, fc, fv = np.concatenate(fr), np.concatenate(fc), np.concatenate(fv)
    rows = np.concatenate((idx, fr, fc))
    cols = np.concatenate((idx, fc, fr))
    vals = np.concatenate((np.full(n, 2.0 * (eps + 1.0)), fv, fv))
    A = CSRMatrix.from_coo(rows, cols, vals, (n, n))
    if scaled:
        A, _ = A.unit_diagonal_scaled()
    return A


def variable_coefficient_laplacian_2d(
    nx: int,
    ny: int,
    coefficient=None,
    seed=None,
    contrast: float = 1.0,
    scaled: bool = False,
) -> CSRMatrix:
    """Cell-centered FV discretization of ``-div(a grad u)`` (Dirichlet).

    ``coefficient`` is a callable ``a(x, y) -> float`` evaluated at cell
    centers in the unit square; if None, a lognormal random field with
    standard deviation ``contrast`` (in log space) is drawn from ``seed``.
    Face conductances use the harmonic mean of the adjacent cells, giving a
    symmetric M-matrix with positive diagonal.
    """
    n = nx * ny
    idx, ix, iy = _grid_index(nx, ny)
    if coefficient is None:
        rng = as_rng(seed)
        a = np.exp(contrast * rng.standard_normal(n))
    else:
        xs = (ix + 0.5) / nx
        ys = (iy + 0.5) / ny
        a = np.array([float(coefficient(x, y)) for x, y in zip(xs, ys)])
        if np.any(a <= 0):
            raise ValueError("coefficient must be strictly positive")

    def harmonic(u, v):
        return 2.0 * a[u] * a[v] / (a[u] + a[v])

    fr, fc, fv = [], [], []
    right = idx[ix < nx - 1]
    fr.append(right)
    fc.append(right + ny)
    fv.append(-harmonic(right, right + ny))
    up = idx[iy < ny - 1]
    fr.append(up)
    fc.append(up + 1)
    fv.append(-harmonic(up, up + 1))
    fr, fc, fv = np.concatenate(fr), np.concatenate(fc), np.concatenate(fv)
    # Diagonal: minus the off-diagonal sums plus the boundary conductances
    # (Dirichlet faces use the cell's own coefficient).
    diag = np.zeros(n)
    np.add.at(diag, fr, -fv)
    np.add.at(diag, fc, -fv)
    boundary_faces = (
        (ix == 0).astype(float)
        + (ix == nx - 1)
        + (iy == 0)
        + (iy == ny - 1)
    )
    diag += boundary_faces * a
    rows = np.concatenate((idx, fr, fc))
    cols = np.concatenate((idx, fc, fr))
    vals = np.concatenate((diag, fv, fv))
    A = CSRMatrix.from_coo(rows, cols, vals, (n, n))
    if scaled:
        A, _ = A.unit_diagonal_scaled()
    return A


def nine_point_laplacian_2d(nx: int, ny: int, scaled: bool = True) -> CSRMatrix:
    """Compact 9-point Laplacian: diagonal 20/6, edges -4/6, corners -1/6.

    Fourth-order accurate for smooth right-hand sides; its diagonal
    couplings make the matrix graph non-bipartite (greedy coloring needs
    4 colors) and thicken partition ghost layers.
    """
    n = nx * ny
    idx, ix, iy = _grid_index(nx, ny)
    fr, fc, fv = [], [], []

    def add(mask_src, stride, value):
        src = idx[mask_src]
        fr.append(src)
        fc.append(src + stride)
        fv.append(np.full(src.size, value))

    add(ix < nx - 1, ny, -4.0 / 6.0)
    add(iy < ny - 1, 1, -4.0 / 6.0)
    add((ix < nx - 1) & (iy < ny - 1), ny + 1, -1.0 / 6.0)
    add((ix < nx - 1) & (iy > 0), ny - 1, -1.0 / 6.0)
    fr, fc, fv = np.concatenate(fr), np.concatenate(fc), np.concatenate(fv)
    rows = np.concatenate((idx, fr, fc))
    cols = np.concatenate((idx, fc, fr))
    vals = np.concatenate((np.full(n, 20.0 / 6.0), fv, fv))
    A = CSRMatrix.from_coo(rows, cols, vals, (n, n))
    if scaled:
        A, _ = A.unit_diagonal_scaled()
    return A
