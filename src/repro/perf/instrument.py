"""Lightweight per-kernel timing/counter instrumentation.

Executors that accept ``instrument=True`` fill a :class:`PerfCounters` and
attach it to their result as ``result.perf``, so benchmarks can attribute
wall-clock time to the three cost centers of every run:

* ``spmv`` — sparse kernels (row-subset SpMV relaxations, incremental
  CSC residual updates, full residual recomputations);
* ``residual`` — residual observation (norms, history recording);
* ``dispatch`` — everything else: schedule iteration, event-queue
  traffic, Python bookkeeping. Computed as total minus the other two.

Timing uses two ``perf_counter`` calls per instrumented section; with
``instrument=False`` (the default) executors skip the calls entirely, so
the hot paths carry no overhead.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field


@dataclass
class PerfCounters:
    """Kernel-attributed timings and call counts for one run."""

    #: Name of the iteration method whose relaxations the SpMV counters
    #: attribute (``"mixed"`` after merging runs of different methods).
    method: str = "jacobi"
    spmv_seconds: float = 0.0
    residual_seconds: float = 0.0
    total_seconds: float = 0.0
    spmv_calls: int = 0
    residual_evals: int = 0
    full_recomputes: int = 0
    events: int = 0
    #: Delivery-batching (message coalescing) counters, populated by the
    #: distributed executor when ``delivery="batch"`` is active: arrivals
    #: superseded before their flush, flush passes that applied at least
    #: one edge, edges scattered across all flushes, the widest single
    #: flush, and version-ledger entries scattered into ``ghost_ver``.
    puts_coalesced: int = 0
    delivery_flushes: int = 0
    delivery_edges_flushed: int = 0
    delivery_batch_max: int = 0
    ledger_scatter_width: int = 0
    #: Resolved relax backend label (``"native"`` when the compiled
    #: kernels ran, ``"mixed"`` after merging runs of different backends)
    #: and the native-kernel counters: compiled relax calls, rows they
    #: relaxed, and the one-time library compile cost this process paid
    #: (0.0 when the content-hash cache already held it).
    backend: str = "auto"
    native_calls: int = 0
    native_rows_relaxed: int = 0
    native_build_ms: float = 0.0
    extra: dict = field(default_factory=dict)

    @property
    def dispatch_seconds(self) -> float:
        """Non-kernel time: event dispatch, schedules, bookkeeping."""
        return max(0.0, self.total_seconds - self.spmv_seconds - self.residual_seconds)

    def tick(self) -> float:
        """Start a timed section (returns the start stamp)."""
        return time.perf_counter()

    def tock_spmv(self, start: float) -> None:
        """Close a timed section opened by :meth:`tick` as SpMV work."""
        self.spmv_seconds += time.perf_counter() - start
        self.spmv_calls += 1

    def tock_residual(self, start: float) -> None:
        """Close a timed section opened by :meth:`tick` as residual work."""
        self.residual_seconds += time.perf_counter() - start
        self.residual_evals += 1

    def merge(self, other: "PerfCounters") -> "PerfCounters":
        """Accumulate another run's counters into this one (returns self)."""
        if other.method != self.method:
            self.method = "mixed"
        self.spmv_seconds += other.spmv_seconds
        self.residual_seconds += other.residual_seconds
        self.total_seconds += other.total_seconds
        self.spmv_calls += other.spmv_calls
        self.residual_evals += other.residual_evals
        self.full_recomputes += other.full_recomputes
        self.events += other.events
        self.puts_coalesced += other.puts_coalesced
        self.delivery_flushes += other.delivery_flushes
        self.delivery_edges_flushed += other.delivery_edges_flushed
        self.delivery_batch_max = max(
            self.delivery_batch_max, other.delivery_batch_max
        )
        self.ledger_scatter_width += other.ledger_scatter_width
        if other.backend != self.backend:
            self.backend = "mixed"
        self.native_calls += other.native_calls
        self.native_rows_relaxed += other.native_rows_relaxed
        self.native_build_ms += other.native_build_ms
        return self

    def as_dict(self) -> dict:
        """JSON-ready flat view (used by the benchmark emitters)."""
        return {
            "method": self.method,
            "spmv_seconds": self.spmv_seconds,
            "residual_seconds": self.residual_seconds,
            "dispatch_seconds": self.dispatch_seconds,
            "total_seconds": self.total_seconds,
            "spmv_calls": self.spmv_calls,
            "residual_evals": self.residual_evals,
            "full_recomputes": self.full_recomputes,
            "events": self.events,
            "puts_coalesced": self.puts_coalesced,
            "delivery_flushes": self.delivery_flushes,
            "delivery_edges_flushed": self.delivery_edges_flushed,
            "delivery_batch_max": self.delivery_batch_max,
            "ledger_scatter_width": self.ledger_scatter_width,
            "backend": self.backend,
            "native_calls": self.native_calls,
            "native_rows_relaxed": self.native_rows_relaxed,
            "native_build_ms": self.native_build_ms,
            **self.extra,
        }

    def native_summary(self) -> str:
        """One-line digest of the compiled-kernel counters.

        Empty string when no native kernel ever ran, so callers can print
        it conditionally (mirrors :meth:`delivery_summary`).
        """
        if not self.native_calls:
            return ""
        return (
            f"native: {self.native_calls} kernel calls, "
            f"{self.native_rows_relaxed} rows relaxed "
            f"(build {self.native_build_ms:.1f} ms)"
        )

    def delivery_summary(self) -> str:
        """One-line digest of the delivery-batching counters.

        Empty string when no batched flush ever ran (eager delivery, or a
        run with no message traffic), so callers can print it conditionally.
        """
        if not self.delivery_flushes:
            return ""
        mean = self.delivery_edges_flushed / self.delivery_flushes
        return (
            f"delivery: {self.puts_coalesced} puts coalesced, "
            f"{self.delivery_edges_flushed} edges over "
            f"{self.delivery_flushes} flushes "
            f"(mean batch {mean:.2f}, max {self.delivery_batch_max}), "
            f"ledger width {self.ledger_scatter_width}"
        )

    def summary(self) -> str:
        """One-line digest of where the time went.

        Kernel attribution only; pair with :meth:`delivery_summary` for the
        message-coalescing counters.
        """
        native = (
            f", native {self.native_calls} calls"
            f"/{self.native_rows_relaxed} rows"
            if self.native_calls
            else ""
        )
        return (
            f"total {self.total_seconds:.3e}s: "
            f"spmv {self.spmv_seconds:.3e}s/{self.spmv_calls} "
            f"{self.method} relaxes, "
            f"residual {self.residual_seconds:.3e}s/{self.residual_evals} evals "
            f"({self.full_recomputes} full recomputes), "
            f"dispatch {self.dispatch_seconds:.3e}s over {self.events} events"
            f"{native}"
        )
