"""Batched execution of many independent model trials at once.

Every headline experiment averages over repeated trials that share the
*step structure* (the same schedule of relaxing rows) but differ in data:
random right-hand sides, random initial iterates. Running those trials one
at a time pays the full Python dispatch cost — schedule iteration, fancy
indexing, norm bookkeeping — once per trial per step.

:class:`BatchedAsyncJacobiModel` runs T such trials as a single ``(n, T)``
NumPy computation: one schedule drives all trials, each kernel touches an
``(n, T)`` block, and the per-step Python overhead is paid once regardless
of T. The arithmetic is *bit-identical* to a sequential per-trial loop
through :class:`~repro.core.model.AsyncJacobiModel`:

* the 2-D SpMV kernels (``matmat``, batched ``row_matvec``, batched
  ``subtract_columns_update``) accumulate each column in exactly the
  per-column nnz order of their 1-D counterparts (a single flattened
  ``bincount`` with bins ``row * T + trial``);
* per-trial 1-norms reduce along the contiguous axis of one transposed
  copy, where NumPy's pairwise summation blocks exactly as it does on
  the sequential path's 1-D vectors (other orders fall back to
  per-column copies);
* drift bookkeeping (recompute cadence, tolerance-crossing confirmation)
  is tracked *per trial*, because a trial that crosses the tolerance
  triggers a confirming recompute only for its own column;
* a trial that converges is frozen — its column is snapshotted and excluded
  from further updates — exactly as its sequential run would have stopped.

See docs/performance.md for the bit-identity argument and measurements.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.model import AsyncJacobiModel, ModelResult
from repro.core.schedules import Schedule
from repro.matrices.sparse import CSRMatrix
from repro.methods import make_method
from repro.perf.instrument import PerfCounters
from repro.util.errors import ShapeError, SingularMatrixError
from repro.util.norms import vector_norm
from repro.util.validation import check_positive


@dataclass
class BatchedModelResult:
    """Outcome of a batched run: T trials' worth of :class:`ModelResult`.

    Attributes
    ----------
    x
        ``(n, T)`` final iterates (converged trials hold their snapshot at
        the step they converged).
    converged, steps, relaxations
        ``(T,)`` per-trial outcome arrays.
    times, residual_norms, relaxation_counts
        Length-T lists of per-trial history lists.
    perf
        Optional :class:`PerfCounters` (``instrument=True``).
    """

    x: np.ndarray
    converged: np.ndarray
    steps: np.ndarray
    relaxations: np.ndarray
    times: list = field(default_factory=list)
    residual_norms: list = field(default_factory=list)
    relaxation_counts: list = field(default_factory=list)
    perf: PerfCounters | None = None

    @property
    def n_trials(self) -> int:
        """Number of trials stacked in this batch."""
        return self.x.shape[1]

    def trial(self, t: int) -> ModelResult:
        """View of trial ``t`` as a plain :class:`ModelResult`."""
        return ModelResult(
            x=self.x[:, t].copy(),
            converged=bool(self.converged[t]),
            steps=int(self.steps[t]),
            relaxations=int(self.relaxations[t]),
            times=list(self.times[t]),
            residual_norms=list(self.residual_norms[t]),
            relaxation_counts=list(self.relaxation_counts[t]),
        )


class BatchedAsyncJacobiModel:
    """Run T trials of the Section IV-A model as one ``(n, T)`` computation.

    Parameters
    ----------
    A
        Square system matrix with nonzero diagonal (shared by all trials).
    B
        ``(n, T)`` right-hand sides, one column per trial.
    omega
        Relaxation weight, as in :class:`AsyncJacobiModel`.
    """

    def __init__(self, A: CSRMatrix, B, omega: float = 1.0, method=None):
        if A.nrows != A.ncols:
            raise ShapeError(f"matrix must be square, got {A.shape}")
        if not 0 < omega < 2:
            raise ValueError(f"omega must lie in (0, 2), got {omega}")
        self.method = make_method(method, omega=omega)
        if self.method.name != "richardson" and np.any(A.diagonal() == 0):
            raise SingularMatrixError("the model requires a nonzero diagonal")
        B = np.asarray(B, dtype=np.float64)
        if B.ndim != 2 or B.shape[0] != A.nrows:
            raise ShapeError(
                f"B must be (n, T) with n={A.nrows}, got shape {B.shape}"
            )
        self.A = A
        self.n = A.nrows
        self.B = B
        self.n_trials = B.shape[1]
        self.omega = float(omega)
        self._dinv = self.method.scale(A)

    def run(
        self,
        schedule: Schedule,
        X0=None,
        tol: float = 1e-3,
        max_steps: int = 100_000,
        max_time: float = float("inf"),
        record_every: int = 1,
        residual_norm_ord=1,
        residual_mode: str = "incremental",
        recompute_every: int = 64,
        instrument: bool = False,
    ) -> BatchedModelResult:
        """Execute all trials against one shared ``schedule``.

        Semantics per trial are exactly :meth:`AsyncJacobiModel.run` with
        ``b = B[:, t]`` and ``x0 = X0[:, t]``: same stopping rules, same
        history resolution, same residual modes — and bitwise-identical
        arithmetic. A trial that converges is frozen while the others run
        on; the shared step counter and model time advance identically to
        each trial's sequential run.
        """
        check_positive(tol, "tol")
        if residual_mode not in ("incremental", "full"):
            raise ValueError(
                f"residual_mode must be 'incremental' or 'full', got {residual_mode!r}"
            )
        if schedule.n != self.n:
            raise ShapeError(
                f"schedule is for n={schedule.n}, matrix has n={self.n}"
            )
        A, B, dinv = self.A, self.B, self._dinv
        n, T = self.n, self.n_trials
        if X0 is None:
            X = np.zeros((n, T))
        else:
            X = np.asarray(X0, dtype=np.float64)
            if X.shape != (n, T):
                raise ShapeError(f"X0 must have shape {(n, T)}, got {X.shape}")
            X = X.copy()
        incremental = residual_mode == "incremental"
        scaled = self.method.is_scaled
        sequential = self.method.kind == "sequential"
        beta = self.method.beta
        momentum = self.method.kind == "momentum"
        perf = PerfCounters(method=self.method.name) if instrument else None
        run_start = time.perf_counter() if instrument else 0.0

        # NumPy's pairwise summation runs along the contiguous axis of a
        # reduction, so summing |M.T[cols]| over axis 1 blocks exactly as
        # np.sum does on each contiguous column copy — bitwise equal to
        # the sequential path's norm_1. Other orders fall back to the
        # per-column loop.
        vectorised_l1 = residual_norm_ord in (1, "1")

        def colnorms(M, cols) -> np.ndarray:
            if vectorised_l1:
                return np.sum(np.abs(np.ascontiguousarray(M.T[cols])), axis=1)
            return np.array(
                [vector_norm(np.ascontiguousarray(M[:, t]), residual_norm_ord) for t in cols]
            )

        b_norms = colnorms(B, np.arange(T))

        def relnorms(M, trials, cols=None) -> np.ndarray:
            # ``trials`` indexes b_norms; ``cols`` indexes columns of M
            # (defaults to the same indices, for full-width M).
            nums = colnorms(M, trials if cols is None else cols)
            denom = b_norms[trials]
            safe = np.where(denom > 0, denom, 1.0)
            return np.where(denom > 0, nums / safe, nums)

        R = B - A.matmat(X)
        res = relnorms(R, np.arange(T))
        times = [[0.0] for _ in range(T)]
        residuals = [[float(res[t])] for t in range(T)]
        counts = [[0] for _ in range(T)]
        relaxations = np.zeros(T, dtype=np.int64)
        trial_steps = np.zeros(T, dtype=np.int64)
        converged = res < tol
        final_x = X.copy()
        steps_done = 0

        # The hot loop always runs the full-width contiguous path: when
        # trials converge their columns are snapshotted and the working
        # arrays are *compacted* to the survivors, so no step ever pays
        # for fancy per-column indexing. Compaction preserves
        # bit-identity because every kernel accumulates each column
        # independently in the same per-column order.
        live_idx = np.nonzero(~converged)[0]
        if live_idx.size:
            Xw = np.ascontiguousarray(X[:, live_idx])
            Rw = np.ascontiguousarray(R[:, live_idx])
            Bw = np.ascontiguousarray(B[:, live_idx])
            Xp = Xw.copy() if momentum else None
            bn = b_norms[live_idx]
            since = np.zeros(live_idx.size, dtype=np.int64)
            relax_live = 0

            def live_relnorms(M) -> np.ndarray:
                nums = colnorms(M, np.arange(live_idx.size))
                safe = np.where(bn > 0, bn, 1.0)
                return np.where(bn > 0, nums / safe, nums)

            for step in schedule.steps():
                if steps_done >= max_steps or step.time > max_time:
                    break
                rows = step.rows
                if rows.size:
                    t0 = perf.tick() if perf is not None else 0.0
                    if incremental:
                        if scaled:
                            DX = dinv[rows, None] * Rw[rows]
                            Xw[rows] += DX
                        elif sequential:
                            # Row-at-a-time chain of single-row incremental
                            # steps (all trials advance together); Rw stays
                            # maintained, so no tail scatter below.
                            for j in range(rows.size):
                                i = rows[j]
                                DXi = dinv[i] * Rw[i]
                                Xw[i] += DXi
                                A.subtract_columns_update(
                                    Rw, rows[j : j + 1], DXi[None, :]
                                )
                        else:
                            DX = dinv[rows, None] * Rw[rows] + beta * (
                                Xw[rows] - Xp[rows]
                            )
                            Xp[rows] = Xw[rows]
                            Xw[rows] += DX
                        if rows.size >= n // 2:
                            # Dense step: recompute exactly, as the
                            # sequential executor does.
                            Rw = Bw - A.matmat(Xw)
                            since[:] = 0
                        elif sequential:
                            since += 1
                        else:
                            A.subtract_columns_update(Rw, rows, DX)
                            since += 1
                    elif scaled:
                        RR = Bw[rows] - A.row_matvec(rows, Xw)
                        Xw[rows] += dinv[rows, None] * RR
                    elif sequential:
                        for j in range(rows.size):
                            i = rows[j]
                            RRi = Bw[i] - A.row_matvec(rows[j : j + 1], Xw)[0]
                            Xw[i] += dinv[i] * RRi
                    else:
                        RR = Bw[rows] - A.row_matvec(rows, Xw)
                        DX = dinv[rows, None] * RR + beta * (Xw[rows] - Xp[rows])
                        Xp[rows] = Xw[rows]
                        Xw[rows] += DX
                    if perf is not None:
                        perf.tock_spmv(t0)
                    relax_live += rows.size
                steps_done += 1
                if perf is not None:
                    perf.events += 1
                if incremental and recompute_every and since.max() >= recompute_every:
                    stale = np.nonzero(since >= recompute_every)[0]
                    Rw[:, stale] = Bw[:, stale] - A.matmat(Xw[:, stale])
                    since[stale] = 0
                    if perf is not None:
                        perf.full_recomputes += 1
                if steps_done % record_every == 0:
                    t0 = perf.tick() if perf is not None else 0.0
                    if incremental:
                        res = live_relnorms(Rw)
                        hit = np.nonzero(res < tol)[0]
                        if hit.size:
                            # Confirm crossings against fresh residuals,
                            # per trial, exactly as the sequential path.
                            Rw[:, hit] = Bw[:, hit] - A.matmat(Xw[:, hit])
                            since[hit] = 0
                            if perf is not None:
                                perf.full_recomputes += 1
                            res = live_relnorms(Rw)
                    else:
                        res = live_relnorms(Bw - A.matmat(Xw))
                    if perf is not None:
                        perf.tock_residual(t0)
                    step_time = step.time
                    for j, t in enumerate(live_idx):
                        times[t].append(step_time)
                        residuals[t].append(float(res[j]))
                        counts[t].append(relax_live)
                    done_mask = res < tol
                    if done_mask.any():
                        done = live_idx[done_mask]
                        converged[done] = True
                        final_x[:, done] = Xw[:, done_mask]
                        trial_steps[done] = steps_done
                        relaxations[done] = relax_live
                        keep = ~done_mask
                        live_idx = live_idx[keep]
                        if live_idx.size == 0:
                            break
                        Xw = np.ascontiguousarray(Xw[:, keep])
                        Rw = np.ascontiguousarray(Rw[:, keep])
                        Bw = np.ascontiguousarray(Bw[:, keep])
                        if momentum:
                            Xp = np.ascontiguousarray(Xp[:, keep])
                        bn = bn[keep]
                        since = since[keep]

            if live_idx.size:
                final_x[:, live_idx] = Xw
                trial_steps[live_idx] = steps_done
                relaxations[live_idx] = relax_live
        if perf is not None:
            perf.total_seconds = time.perf_counter() - run_start
        return BatchedModelResult(
            x=final_x,
            converged=converged,
            steps=trial_steps,
            relaxations=relaxations,
            times=times,
            residual_norms=residuals,
            relaxation_counts=counts,
            perf=perf,
        )
