"""Performance layer: batched trials, caching, parallel fan-out, profiling.

Three cooperating pieces (see docs/performance.md):

* :mod:`repro.perf.batched` — :class:`BatchedAsyncJacobiModel` runs T
  independent trials of the Section IV-A model as one ``(n, T)`` NumPy
  computation, bit-identical to a sequential per-trial loop;
* :mod:`repro.perf.runner` / :mod:`repro.perf.cache` — a process-pool
  experiment runner with an on-disk content-hash cache (keyed by config +
  code version, disabled by ``REPRO_NO_CACHE=1`` or ``--no-cache``);
* :mod:`repro.perf.instrument` — lightweight per-kernel timing counters
  attached to ``ModelResult``/``SimulationResult`` when executors run with
  ``instrument=True``.

Submodules are imported lazily so that :mod:`repro.core` can import the
instrumentation without creating a cycle through the batched engine.
"""

from __future__ import annotations

_SUBMODULES = {
    "BatchedAsyncJacobiModel": "repro.perf.batched",
    "BatchedModelResult": "repro.perf.batched",
    "ExperimentCache": "repro.perf.cache",
    "PerfCounters": "repro.perf.instrument",
    "cache_enabled": "repro.perf.cache",
    "code_version": "repro.perf.cache",
    "run_cells": "repro.perf.runner",
}

__all__ = sorted(_SUBMODULES)


def __getattr__(name: str):
    if name in _SUBMODULES:
        import importlib

        module = importlib.import_module(_SUBMODULES[name])
        return getattr(module, name)
    raise AttributeError(f"module 'repro.perf' has no attribute {name!r}")
