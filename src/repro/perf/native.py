"""Compiled CSR relax/commit kernels behind ``relax_backend="native"``.

The pure-Python simulators bottom out at ~25-30 us of NumPy call overhead
per block commit (docs/performance.md): a whole-rank relax is six buffered
NumPy kernels over a few dozen values each, so the fixed per-call cost
dominates the arithmetic. This module removes that floor without adding a
dependency: it generates a small C source file, compiles it on first use
with the container's ``cc`` into a shared library named by the content
hash of (source, flags), and binds the entry points through :mod:`ctypes`.
No numba, no cffi — nothing beyond the stdlib and a C compiler.

Bit-identity contract
---------------------
Every kernel reproduces the exact floating-point operand order of the
NumPy path it replaces, so trajectories stay byte-for-byte equal to the
``repro.runtime.legacy`` oracle:

* ``repro_relax_rank`` mirrors the buffered relax closure: the row-subset
  SpMV accumulates ``data[k] * lb[indices[k]]`` into its row bin in
  storage order — exactly how ``np.bincount`` sums its weights — and the
  elementwise tail ``own + dinv * (b - mv)`` (plus the optional
  second-order Richardson momentum term) rounds each operation
  separately.
* ``repro_commit_rank`` mirrors the commit: ``dx = pend - own``, the
  ``x[rows]`` store, and the :class:`~repro.matrices.sparse.ColumnScatterPlan`
  residual update (per-entry products, bin accumulation in storage order,
  one full-span subtract).
* ``repro_relax_batch`` is the stacked/turbo inner block relax: one call
  relaxes (and optionally commits) a whole admission batch, member by
  member in cursor order — the order the batched NumPy phases are proven
  equivalent to.

The library is compiled with ``-ffp-contract=off`` so the compiler cannot
fuse the multiply-add chains into FMAs (which would round differently
from NumPy's separate kernels). ``-ffast-math`` is never used. The one
relaxation the kernels refuse is the sequential Gauss-Seidel sweep, whose
NumPy implementation accumulates through BLAS dot products with an
unspecified summation order no portable C loop can reproduce.

Environment knobs
-----------------
``REPRO_NATIVE_DIR``
    Build-cache directory (default ``~/.cache/repro_native``). The
    compiled library lands there as ``repro_native_<hash>.so`` next to a
    ``build.log``; a matching hash on a later run loads without
    recompiling.
``REPRO_NO_NATIVE``
    Any value other than ``""``/``"0"`` disables the subsystem entirely:
    :func:`native_kernels` returns ``None`` and every caller silently
    falls back to the NumPy block/event backends.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
import time
from pathlib import Path

_C_SOURCE = r"""
#include <stdint.h>
#include <string.h>

/* One whole-rank scaled (Jacobi / damped Jacobi / Richardson) relax,
 * bit-identical to the simulator's buffered NumPy closure:
 *   lb[:m] = x[rows]                    (own-row gather)
 *   mv     = bincount(rowid, data * lb[indices], minlength=m)
 *   pend   = lb[:m] + dinv * (b - mv)
 * plus the optional second-order Richardson momentum tail
 *   pend  += beta * (lb[:m] - mom_prev);  mom_prev = lb[:m]
 * Requires -ffp-contract=off: every * and + must round separately. */
void repro_relax_rank(int64_t m, int64_t nnz,
                      const double *x, const int64_t *rows,
                      double *lb,
                      const double *data, const int64_t *indices,
                      const int64_t *rowid,
                      const double *b_loc, const double *dinv_loc,
                      double *pend, double *mv,
                      double beta, double *mom_prev)
{
    int64_t i, k;
    for (i = 0; i < m; i++)
        lb[i] = x[rows[i]];
    for (i = 0; i < m; i++)
        mv[i] = 0.0;
    for (k = 0; k < nnz; k++) {
        double g = data[k] * lb[indices[k]];
        mv[rowid[k]] += g;
    }
    if (mom_prev == 0) {
        for (i = 0; i < m; i++) {
            double t = b_loc[i] - mv[i];
            t = dinv_loc[i] * t;
            pend[i] = lb[i] + t;
        }
    } else {
        for (i = 0; i < m; i++) {
            double own = lb[i];
            double t = b_loc[i] - mv[i];
            t = dinv_loc[i] * t;
            double p = own + t;
            double d = own - mom_prev[i];
            d = beta * d;
            pend[i] = p + d;
            mom_prev[i] = own;
        }
    }
}

/* One block commit with incremental-residual maintenance, bit-identical
 * to:  dx = pend - own;  x[rows] = pend;  plan.apply(r_vec, dx)
 * where plan.apply is the ColumnScatterPlan: per-entry products
 * vals[k] * dx[rep_idx[k]] accumulated per local row in storage order,
 * then one full-span subtract from r_vec[base:base+span] (untouched rows
 * subtract 0.0 — an IEEE no-op, exactly like the NumPy bincount path).
 * binc is a caller-owned zeroed scratch of length span; it is re-zeroed
 * before returning. pn == 0 skips the residual update entirely (matching
 * plan.apply's empty-plan early return / residual_mode="full"). */
void repro_commit_rank(int64_t m, const int64_t *rows,
                       double *x, const double *own, double *dx,
                       int64_t pn, const int64_t *rep_idx,
                       const int64_t *local, const double *vals,
                       int64_t base, int64_t span, double *binc,
                       const double *pend, double *r_vec)
{
    int64_t i, k;
    for (i = 0; i < m; i++)
        dx[i] = pend[i] - own[i];
    for (i = 0; i < m; i++)
        x[rows[i]] = pend[i];
    if (pn > 0) {
        for (k = 0; k < pn; k++) {
            double s = vals[k] * dx[rep_idx[k]];
            binc[local[k]] += s;
        }
        for (i = 0; i < span; i++)
            r_vec[base + i] -= binc[i];
        memset(binc, 0, (size_t) span * sizeof(double));
    }
}

/* Stacked batch relax: the turbo timeline engine's (and the stacked
 * block loop's) inner block relax. Processes batch members in admission
 * (cursor) order; members are distinct ranks relaxing disjoint x rows,
 * so the sequential per-member loop is bitwise the batched NumPy phases
 * (per-row bin accumulation order and the elementwise chain are
 * member-local either way). Per-rank arrays arrive as uint64 pointer
 * tables indexed by rank id. pend_cat receives the members' pending
 * values back to back.
 *
 * mode 0: relax only — pend_cat is filled, nothing is committed (the
 *         stacked block loop commits per member afterwards, because a
 *         member can still be pushed back onto the heap).
 * mode 1: relax + commit + incremental-residual scatter per member (the
 *         turbo engine: batches are never pushed back, observation can
 *         only strike after the last member's residual update).
 * mode 2: relax + commit, no residual scatter (residual_mode="full").
 * Modes 1/2 reuse lb[:m] to stage dx after the own values are consumed;
 * the next use of lb[:m] is the next relax's own-row gather. */
void repro_relax_batch(int64_t nb, const int64_t *members, int64_t mode,
                       double *x, double *r_vec, double *pend_cat,
                       const int64_t *m_tab, const int64_t *nnz_tab,
                       const uint64_t *rows_tab, const uint64_t *lb_tab,
                       const uint64_t *data_tab, const uint64_t *idx_tab,
                       const uint64_t *rowid_tab,
                       const uint64_t *b_tab, const uint64_t *dinv_tab,
                       const int64_t *pn_tab, const uint64_t *rep_tab,
                       const uint64_t *loc_tab, const uint64_t *val_tab,
                       const int64_t *base_tab, const int64_t *span_tab,
                       const uint64_t *binc_tab)
{
    int64_t bi, i, k, off = 0;
    for (bi = 0; bi < nb; bi++) {
        int64_t r = members[bi];
        int64_t m = m_tab[r], nnz = nnz_tab[r];
        const int64_t *rows = (const int64_t *) rows_tab[r];
        double *lb = (double *) lb_tab[r];
        const double *data = (const double *) data_tab[r];
        const int64_t *indices = (const int64_t *) idx_tab[r];
        const int64_t *rowid = (const int64_t *) rowid_tab[r];
        const double *b_loc = (const double *) b_tab[r];
        const double *dinv_loc = (const double *) dinv_tab[r];
        double *pend = pend_cat + off;
        for (i = 0; i < m; i++)
            lb[i] = x[rows[i]];
        for (i = 0; i < m; i++)
            pend[i] = 0.0;
        for (k = 0; k < nnz; k++) {
            double g = data[k] * lb[indices[k]];
            pend[rowid[k]] += g;
        }
        for (i = 0; i < m; i++) {
            double t = b_loc[i] - pend[i];
            t = dinv_loc[i] * t;
            pend[i] = lb[i] + t;
        }
        if (mode != 0) {
            if (mode == 1) {
                for (i = 0; i < m; i++) {
                    double d = pend[i] - lb[i];
                    x[rows[i]] = pend[i];
                    lb[i] = d; /* stage dx where own just lived */
                }
                int64_t pn = pn_tab[r];
                if (pn > 0) {
                    const int64_t *rep = (const int64_t *) rep_tab[r];
                    const int64_t *loc = (const int64_t *) loc_tab[r];
                    const double *vals = (const double *) val_tab[r];
                    double *binc = (double *) binc_tab[r];
                    int64_t base = base_tab[r], span = span_tab[r];
                    for (k = 0; k < pn; k++) {
                        double s = vals[k] * lb[rep[k]];
                        binc[loc[k]] += s;
                    }
                    for (i = 0; i < span; i++)
                        r_vec[base + i] -= binc[i];
                    memset(binc, 0, (size_t) span * sizeof(double));
                }
            } else {
                for (i = 0; i < m; i++)
                    x[rows[i]] = pend[i];
            }
        }
        off += m;
    }
}
"""

#: Compile flags. ``-ffp-contract=off`` is load-bearing: contraction into
#: FMAs would round the relax chain differently from NumPy's separate
#: multiply/add kernels and break the bit-identity contract.
_CFLAGS = ("-O2", "-fPIC", "-shared", "-ffp-contract=off")

_PFX = "repro_native_"

# Module-level probe cache: (attempted, NativeKernels-or-None).
_cache: list = [False, None]


class NativeBuildError(RuntimeError):
    """Compilation of the native kernel library failed."""


class NativeKernels:
    """A loaded native kernel library plus its build provenance."""

    __slots__ = ("lib", "path", "build_ms", "relax_rank", "commit_rank",
                 "relax_batch")

    def __init__(self, lib: ctypes.CDLL, path: Path, build_ms: float):
        self.lib = lib
        self.path = path
        #: Wall-clock milliseconds spent compiling *in this process*
        #: (0.0 when the content-hash cache already held the library).
        self.build_ms = build_ms
        i64, dbl, ptr = ctypes.c_int64, ctypes.c_double, ctypes.c_void_p
        fn = lib.repro_relax_rank
        fn.restype = None
        fn.argtypes = [i64, i64, ptr, ptr, ptr, ptr, ptr, ptr, ptr, ptr,
                       ptr, ptr, dbl, ptr]
        self.relax_rank = fn
        fn = lib.repro_commit_rank
        fn.restype = None
        fn.argtypes = [i64, ptr, ptr, ptr, ptr, i64, ptr, ptr, ptr, i64,
                       i64, ptr, ptr, ptr]
        self.commit_rank = fn
        fn = lib.repro_relax_batch
        fn.restype = None
        fn.argtypes = [i64, ptr, i64, ptr, ptr, ptr] + [ptr] * 16
        self.relax_batch = fn


def _disabled() -> bool:
    return os.environ.get("REPRO_NO_NATIVE", "") not in ("", "0")


def cache_dir() -> Path:
    """The build-cache directory (honors ``REPRO_NATIVE_DIR``)."""
    env = os.environ.get("REPRO_NATIVE_DIR", "")
    if env:
        return Path(env)
    try:
        home = Path.home()
    except (RuntimeError, OSError):  # no resolvable home: shared tempdir
        return Path(tempfile.gettempdir()) / "repro_native"
    return home / ".cache" / "repro_native"


def _compiler() -> str | None:
    cc = os.environ.get("CC") or "cc"
    return shutil.which(cc)


def source_hash() -> str:
    """Content hash naming the compiled library (source + flags)."""
    h = hashlib.sha256()
    h.update(_C_SOURCE.encode())
    h.update(" ".join(_CFLAGS).encode())
    return h.hexdigest()[:16]


def _build(cc: str, directory: Path) -> Path:
    """Compile into the cache dir; atomic rename makes races benign."""
    directory.mkdir(parents=True, exist_ok=True)
    out = directory / f"{_PFX}{source_hash()}.so"
    if out.exists():
        return out
    src = directory / f"{_PFX}{source_hash()}.c"
    src.write_text(_C_SOURCE)
    tmp = directory / f"{_PFX}{source_hash()}.{os.getpid()}.tmp.so"
    cmd = [cc, *_CFLAGS, str(src), "-o", str(tmp)]
    proc = subprocess.run(cmd, capture_output=True, text=True)
    log = directory / "build.log"
    log.write_text(
        f"$ {' '.join(cmd)}\nexit {proc.returncode}\n"
        f"--- stdout ---\n{proc.stdout}\n--- stderr ---\n{proc.stderr}\n"
    )
    if proc.returncode != 0:
        tmp.unlink(missing_ok=True)
        raise NativeBuildError(
            f"cc failed (exit {proc.returncode}); see {log}"
        )
    os.replace(tmp, out)
    return out


def native_kernels() -> NativeKernels | None:
    """The process-wide kernel library, or ``None`` when unavailable.

    First call probes the toolchain and compiles (or cache-loads) the
    library; later calls return the memoized result. Every failure mode —
    ``REPRO_NO_NATIVE`` set, no compiler on PATH, compilation or load
    error — yields ``None`` so callers degrade to the NumPy backends.
    """
    if _cache[0]:
        return _cache[1]
    _cache[0] = True
    _cache[1] = None
    if _disabled():
        return None
    cc = _compiler()
    if cc is None:
        return None
    try:
        t0 = time.perf_counter()
        path = cache_dir() / f"{_PFX}{source_hash()}.so"
        build_ms = 0.0
        if not path.exists():
            path = _build(cc, cache_dir())
            build_ms = (time.perf_counter() - t0) * 1e3
        lib = ctypes.CDLL(str(path))
        _cache[1] = NativeKernels(lib, path, build_ms)
    except (NativeBuildError, OSError):
        _cache[1] = None
    return _cache[1]


def native_available() -> bool:
    """Cheap probe: can ``relax_backend="native"`` actually run here?"""
    return native_kernels() is not None


def build_info() -> dict:
    """Provenance for logs/CI artifacts (never raises)."""
    k = native_kernels()
    return {
        "available": k is not None,
        "disabled": _disabled(),
        "compiler": _compiler(),
        "cache_dir": str(cache_dir()),
        "source_hash": source_hash(),
        "library": str(k.path) if k is not None else None,
        "build_ms": k.build_ms if k is not None else None,
    }


def _reset_probe_cache() -> None:
    """Forget the memoized probe (tests flip env knobs between calls)."""
    _cache[0] = False
    _cache[1] = None
