"""On-disk memoization of experiment cells.

An *experiment cell* is one unit of sweep work (one seed, one delay, one
matrix size) produced by a pure function of its configuration. Cells are
expensive (seconds to minutes of simulation) and re-run constantly while
iterating on figures, so :class:`ExperimentCache` memoizes their pickled
results on disk.

Keys are content hashes of two things:

* the cell configuration, canonicalized to sorted-key JSON (so dict order
  and tuple-vs-list spelling don't split the cache);
* the :func:`code_version` — a digest over every ``src/repro`` Python
  source file. Any code change invalidates every cached cell, which is the
  safe default for a research repo where "the code changed" almost always
  means "the numbers may have changed".

The cache is disabled when ``REPRO_NO_CACHE=1`` (or via the ``--no-cache``
CLI flag, which sets that variable) so CI and fault-injection runs never
read stale results. ``REPRO_CACHE_DIR`` overrides the on-disk location.

**Concurrency contract.** One cache instance may be shared by any number
of threads and processes (the solver service shares one across all
requests; ``run_cells`` workers write from a process pool). Writes are
atomic: each writer pickles into its own ``mkstemp`` temp file and
``os.replace``\\ s it over the final path, so readers never observe a
truncated cell — a concurrent ``lookup`` sees either the complete old
value or the complete new one, and the last writer wins whole-file.
Unreadable or torn entries are treated as misses. The ``hits``/``misses``
statistics are guarded by a lock so shared-service accounting stays exact.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
import threading
from pathlib import Path

_TRUTHY = {"1", "true", "yes", "on"}

_code_version_cache: str | None = None


def cache_enabled() -> bool:
    """False when ``REPRO_NO_CACHE`` is set to a truthy value."""
    return os.environ.get("REPRO_NO_CACHE", "").strip().lower() not in _TRUTHY


def default_cache_dir() -> Path:
    """``REPRO_CACHE_DIR`` if set, else ``~/.cache/repro-async-jacobi``."""
    override = os.environ.get("REPRO_CACHE_DIR", "").strip()
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro-async-jacobi"


def code_version() -> str:
    """Digest of every ``repro`` source file (memoized per process)."""
    global _code_version_cache
    if _code_version_cache is None:
        pkg_root = Path(__file__).resolve().parent.parent
        h = hashlib.sha256()
        for path in sorted(pkg_root.rglob("*.py")):
            h.update(str(path.relative_to(pkg_root)).encode())
            h.update(b"\0")
            h.update(path.read_bytes())
            h.update(b"\0")
        _code_version_cache = h.hexdigest()[:16]
    return _code_version_cache


def _canonical(obj):
    """Reduce a config to a JSON-stable structure (tuples become lists)."""
    if isinstance(obj, dict):
        return {str(k): _canonical(v) for k, v in sorted(obj.items(), key=lambda kv: str(kv[0]))}
    if isinstance(obj, (list, tuple)):
        return [_canonical(v) for v in obj]
    if isinstance(obj, (str, bool)) or obj is None:
        return obj
    if isinstance(obj, (int, float)):
        return obj
    if hasattr(obj, "item"):  # numpy scalar
        return obj.item()
    raise TypeError(
        f"experiment configs must be JSON-like (dict/list/str/number), "
        f"got {type(obj).__name__}"
    )


class ExperimentCache:
    """Content-addressed pickle store for experiment cells.

    Parameters
    ----------
    root
        Cache directory (default: :func:`default_cache_dir`).
    enabled
        Force the cache on or off; default follows :func:`cache_enabled`,
        re-checked at every access so tests and CLI flags can flip the
        environment variable after construction.
    """

    def __init__(self, root=None, enabled: bool | None = None):
        self.root = Path(root) if root is not None else default_cache_dir()
        self._forced = enabled
        self.hits = 0
        self.misses = 0
        # Guards the statistics only; file operations are lock-free
        # because temp-file + os.replace writes are already atomic.
        self._stats_lock = threading.Lock()

    @property
    def enabled(self) -> bool:
        """Whether lookups/stores are live (forced flag, else environment)."""
        return cache_enabled() if self._forced is None else self._forced

    def key(self, config) -> str:
        """Stable hex key for ``config`` under the current code version."""
        token = json.dumps(
            {"code": code_version(), "config": _canonical(config)},
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(token.encode()).hexdigest()

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.pkl"

    def lookup(self, config) -> tuple:
        """``(hit, value)`` — ``(False, None)`` on miss or disabled cache.

        Safe to race against concurrent :meth:`store` calls for the same
        key: the open file handle keeps the torn-down inode alive on
        POSIX, so the read completes against whichever complete value was
        current when the file was opened.
        """
        if not self.enabled:
            return False, None
        path = self._path(self.key(config))
        try:
            with open(path, "rb") as fh:
                value = pickle.load(fh)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError, ValueError):
            with self._stats_lock:
                self.misses += 1
            return False, None
        with self._stats_lock:
            self.hits += 1
        return True, value

    def store(self, config, value) -> None:
        """Atomically persist ``value`` for ``config`` (no-op if disabled).

        Concurrent writers for the same key each stage into a private
        ``mkstemp`` file and race only on the final ``os.replace``, which
        is atomic — the cell is always one writer's complete pickle,
        never an interleaving.
        """
        if not self.enabled:
            return
        path = self._path(self.key(config))
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(value, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def get_or_run(self, config, fn):
        """Return the cached value for ``config`` or run ``fn(config)``."""
        hit, value = self.lookup(config)
        if hit:
            return value
        value = fn(config)
        self.store(config, value)
        return value

    def clear(self) -> int:
        """Delete every cached cell; returns the number removed."""
        removed = 0
        if self.root.exists():
            for path in self.root.rglob("*.pkl"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed
