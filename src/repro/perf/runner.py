"""Parallel, cached fan-out of experiment sweeps.

:func:`run_cells` maps a module-level cell function over a list of
configurations, with two orthogonal accelerations:

* **memoization** — each ``(function, config)`` pair is looked up in an
  :class:`~repro.perf.cache.ExperimentCache` before running and stored
  after, so re-running a sweep after editing an unrelated figure is free;
* **process-pool fan-out** — cache misses are dispatched to a
  ``concurrent.futures.ProcessPoolExecutor`` when more than one worker is
  available. The cell function must therefore be picklable (defined at
  module level) and its config must be plain data.

Worker count resolution, in priority order: the ``max_workers`` argument,
the ``REPRO_PARALLEL`` environment variable (``0`` forces serial), then
``os.cpu_count()``. Environments where ``fork``/semaphores are unavailable
(sandboxes, some CI runners) degrade gracefully: any ``OSError`` or
``PermissionError`` while *starting* the pool falls back to the serial
path, so the runner never makes a sweep fail that would have succeeded
serially. Results always come back in input order.
"""

from __future__ import annotations

import concurrent.futures
import os

from repro.perf.cache import ExperimentCache


def _worker_count(max_workers) -> int:
    if max_workers is not None:
        return max(0, int(max_workers))
    env = os.environ.get("REPRO_PARALLEL", "").strip()
    if env:
        try:
            return max(0, int(env))
        except ValueError:
            pass
    return os.cpu_count() or 1


def _invoke(item):
    fn, config = item
    return fn(config)


def _cell_token(fn, config) -> dict:
    return {"cell": f"{fn.__module__}.{fn.__qualname__}", "config": config}


def run_cells(
    fn,
    configs,
    *,
    cache: ExperimentCache | None = None,
    use_cache: bool = True,
    max_workers: int | None = None,
) -> list:
    """Evaluate ``fn(config)`` for every config, cached and in parallel.

    Parameters
    ----------
    fn
        Module-level callable taking one configuration. Its qualified name
        participates in the cache key, so two cell functions never collide.
    configs
        Iterable of JSON-like configurations (dicts of plain data).
    cache
        Cache to consult; defaults to a fresh :class:`ExperimentCache` on
        the default directory. The cache still honors ``REPRO_NO_CACHE``.
    use_cache
        ``False`` skips memoization entirely (both lookup and store).
    max_workers
        Worker process count; ``0`` or ``1`` runs serially. Default comes
        from ``REPRO_PARALLEL`` or the CPU count.

    Returns
    -------
    list
        Results in the same order as ``configs``.
    """
    configs = list(configs)
    if cache is None:
        cache = ExperimentCache()
    results = [None] * len(configs)
    pending = []
    for i, config in enumerate(configs):
        if use_cache:
            hit, value = cache.lookup(_cell_token(fn, config))
            if hit:
                results[i] = value
                continue
        pending.append(i)

    if pending:
        workers = _worker_count(max_workers)
        outputs = None
        if workers > 1 and len(pending) > 1:
            try:
                with concurrent.futures.ProcessPoolExecutor(
                    max_workers=min(workers, len(pending))
                ) as pool:
                    outputs = list(
                        pool.map(_invoke, [(fn, configs[i]) for i in pending])
                    )
            except (OSError, PermissionError):
                # Pool creation needs fork + semaphores; fall back rather
                # than fail sweeps in restricted environments.
                outputs = None
        if outputs is None:
            outputs = [fn(configs[i]) for i in pending]
        for i, value in zip(pending, outputs):
            results[i] = value
            if use_cache:
                cache.store(_cell_token(fn, configs[i]), value)
    return results
