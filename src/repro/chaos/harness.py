"""Scenario builders and the property-checking cell function.

:func:`build_scenario` turns a plain-JSON spec from
:mod:`repro.chaos.generator` into live objects (matrix, fault plan, delay
model, schedule), raising :class:`ChaosSpecError` on anything malformed —
the signal the shrinker uses to discard candidate simplifications that
stepped outside an executor's contract.

:func:`run_scenario` is the module-level cell executed by
:func:`repro.perf.runner.run_cells` (picklable, spec-in/verdict-out, no
hidden state): it builds the scenario, runs the requested executor with a
live tracer, evaluates every applicable property from
:mod:`repro.chaos.properties`, and returns a plain deterministic verdict
dict — no wall-clock times, so cached and fresh verdicts are bytewise
identical and "same seed → same verdicts" is checkable with ``==``.
"""

from __future__ import annotations

import numpy as np

from repro.chaos import properties as props
from repro.chaos.mutations import mutation_context
from repro.core.model import AsyncJacobiModel
from repro.core.schedules import (
    DelayedRowsSchedule,
    OverlappedBlockSchedule,
    RandomSubsetSchedule,
    SynchronousSchedule,
)
from repro.faults import FaultMaskedSchedule, FaultPlan
from repro.matrices import (
    anisotropic_laplacian_2d,
    fd_laplacian_1d,
    fd_laplacian_2d,
    fd_laplacian_3d,
    nine_point_laplacian_2d,
    variable_coefficient_laplacian_2d,
)
from repro.methods import MethodError, make_method
from repro.observability import Tracer
from repro.perf.batched import BatchedAsyncJacobiModel
from repro.runtime.delays import (
    NO_DELAY,
    ConstantDelay,
    HangDelay,
    StochasticStall,
    StragglerDelay,
)
from repro.runtime.distributed import DistributedJacobi
from repro.runtime.shared import SharedMemoryJacobi
from repro.util.errors import ReproError


class ChaosSpecError(ReproError, ValueError):
    """A scenario spec the executors cannot run (not an engine bug)."""


_MATRIX_FAMILIES = {
    "fd_1d": fd_laplacian_1d,
    "fd_2d": fd_laplacian_2d,
    "fd_3d": fd_laplacian_3d,
    "nine_point": nine_point_laplacian_2d,
    "variable_coefficient": variable_coefficient_laplacian_2d,
    "anisotropic": anisotropic_laplacian_2d,
}


def build_matrix(mspec: dict):
    """Instantiate the spec'd matrix family (always WDD by construction)."""
    try:
        family = _MATRIX_FAMILIES[mspec["family"]]
    except (KeyError, TypeError) as exc:
        raise ChaosSpecError(f"unknown matrix family in {mspec!r}") from exc
    try:
        return family(**mspec["args"])
    except Exception as exc:
        raise ChaosSpecError(f"cannot build matrix {mspec!r}: {exc}") from exc


def build_plan(pspec: dict) -> FaultPlan:
    """Instantiate the spec'd fault plan via :meth:`FaultPlan.from_spec`."""
    try:
        return FaultPlan.from_spec(pspec["events"], seed=pspec.get("seed"))
    except Exception as exc:
        raise ChaosSpecError(f"cannot build fault plan: {exc}") from exc


def build_delay(dspec: dict):
    """Instantiate the spec'd delay model (pair-lists become dicts)."""
    kind = dspec.get("kind", "none")
    try:
        if kind == "none":
            return NO_DELAY
        if kind == "constant":
            return ConstantDelay({int(a): float(d) for a, d in dspec["delays"]})
        if kind == "straggler":
            return StragglerDelay({int(a): float(f) for a, f in dspec["factors"]})
        if kind == "stochastic":
            return StochasticStall(
                float(dspec["prob"]),
                float(dspec["mean_stall"]),
                agents=dspec.get("agents"),
            )
        if kind == "hang":
            return HangDelay({int(a): float(t) for a, t in dspec["hang_times"]})
    except ChaosSpecError:
        raise
    except Exception as exc:
        raise ChaosSpecError(f"cannot build delay model {dspec!r}: {exc}") from exc
    raise ChaosSpecError(f"unknown delay kind {kind!r}")


def agent_labels(n: int, n_agents: int) -> np.ndarray:
    """Contiguous row→agent labels matching the simulators' partition."""
    return (np.arange(n, dtype=np.int64) * int(n_agents)) // int(n)


def build_schedule(spec: dict):
    """A *fresh* schedule object for the model executor.

    Schedules with instance RNG consume it across ``steps()`` calls, so
    every run (batched or sequential) must construct its own object from
    the spec — same seed, same realization.
    """
    n = build_matrix(spec["matrix"]).nrows
    sspec = spec["schedule"]
    kind = sspec.get("kind")
    try:
        if kind == "fault_masked":
            labels = agent_labels(n, spec["agents"])
            plan = build_plan(spec["plan"])
            return FaultMaskedSchedule(
                labels, plan, dt=float(sspec.get("dt", 1.0)), seed=sspec.get("seed")
            )
        if kind == "random_subset":
            return RandomSubsetSchedule(n, float(sspec["fraction"]), seed=sspec["seed"])
        if kind == "overlapped":
            labels = agent_labels(n, spec["agents"])
            return OverlappedBlockSchedule(
                labels, int(sspec["concurrency"]), seed=sspec["seed"]
            )
        if kind == "delayed_rows":
            delays = {int(r): (None if d is None else int(d)) for r, d in sspec["delays"]}
            return DelayedRowsSchedule(n, delays)
        if kind == "synchronous":
            return SynchronousSchedule(n, delay=float(sspec.get("delay", 1.0)))
    except ChaosSpecError:
        raise
    except Exception as exc:
        raise ChaosSpecError(f"cannot build schedule {sspec!r}: {exc}") from exc
    raise ChaosSpecError(f"unknown schedule kind {kind!r}")


def build_b(spec: dict, n: int) -> np.ndarray:
    """The scenario's right-hand side, derived from ``b_seed`` alone."""
    return np.random.default_rng(int(spec["b_seed"])).standard_normal(n)


def build_scenario(spec: dict) -> dict:
    """Validate a spec and build its live pieces (raises ChaosSpecError)."""
    if not isinstance(spec, dict):
        raise ChaosSpecError(f"scenario spec must be a dict, got {type(spec).__name__}")
    executor = spec.get("executor")
    if executor not in ("shared", "distributed", "model"):
        raise ChaosSpecError(f"unknown executor {executor!r}")
    try:
        agents = int(spec["agents"])
        omega = float(spec["omega"])
        tol = float(spec["tol"])
        max_iterations = int(spec["max_iterations"])
    except (KeyError, TypeError, ValueError) as exc:
        raise ChaosSpecError(f"malformed scenario spec: {exc}") from exc
    A = build_matrix(spec["matrix"])
    if not 1 <= agents <= A.nrows:
        raise ChaosSpecError(f"agents={agents} out of range for n={A.nrows}")
    if not 0 < omega < 2:
        raise ChaosSpecError(f"omega={omega} outside (0, 2)")
    if tol <= 0 or max_iterations < 1:
        raise ChaosSpecError(f"bad tol={tol} / max_iterations={max_iterations}")
    try:
        method = make_method(spec.get("method"), omega=omega)
    except MethodError as exc:
        raise ChaosSpecError(f"bad method spec: {exc}") from exc
    built = {
        "A": A,
        "b": build_b(spec, A.nrows),
        "agents": agents,
        "omega": omega,
        "method": method,
        "tol": tol,
        "max_iterations": max_iterations,
        "plan": build_plan(spec["plan"]),
    }
    if built["plan"].agents() and max(built["plan"].agents()) >= agents:
        raise ChaosSpecError(
            f"plan crashes agent {max(built['plan'].agents())} with only "
            f"{agents} agents"
        )
    if executor == "model":
        built["schedule_spec"] = spec  # schedules must be rebuilt per run
        trials = int(spec.get("batch_trials", 2))
        if trials < 1:
            raise ChaosSpecError(f"batch_trials must be >= 1, got {trials}")
        built["batch_trials"] = trials
    else:
        built["delay"] = build_delay(spec["delay"])
        if executor == "shared" and (
            built["plan"].partitions
            or built["plan"].drop_bursts
            or built["plan"].corrupt_bursts
        ):
            raise ChaosSpecError(
                "shared-memory scenarios support only crash events"
            )
        if executor == "distributed":
            d = spec.get("distributed", {})
            if d.get("termination", "count") not in ("count", "detect"):
                raise ChaosSpecError(f"bad termination {d.get('termination')!r}")
            if d.get("recovery", "freeze") not in ("freeze", "adopt", "none"):
                raise ChaosSpecError(f"bad recovery {d.get('recovery')!r}")
    return built


def _hang_exempt(dspec: dict) -> frozenset:
    """Agents the delay spec may legitimately stop forever."""
    if dspec.get("kind") == "hang":
        return frozenset(int(a) for a, _ in dspec["hang_times"])
    return frozenset()


def _check_mark(failures, checked) -> dict:
    failed = {f["property"] for f in failures}
    return {name: ("fail" if name in failed else "pass") for name in checked}


def _run_shared(spec: dict, built: dict) -> tuple:
    tracer = Tracer(trace_reads=True)
    sim = SharedMemoryJacobi(
        built["A"],
        built["b"],
        n_threads=built["agents"],
        delay=built["delay"],
        seed=int(spec["seed"]),
        omega=built["omega"],
        method=built["method"],
        fault_plan=built["plan"],
    )
    result = sim.run_async(
        tol=built["tol"],
        max_iterations=built["max_iterations"],
        tracer=tracer,
    )
    events = tracer.events()
    failures = []
    failures += props.check_finiteness(result.x, result.residual_norms)
    failures += props.check_liveness(
        result,
        built["plan"],
        exempt_agents=_hang_exempt(spec["delay"]),
        termination="count",
        eager=False,
        max_iterations=built["max_iterations"],
    )
    failures += props.check_theorem1_replay(
        events, built["A"], built["b"], built["omega"], method=built["method"]
    )
    if result.telemetry is not None:
        failures += props.check_telemetry(
            events,
            result.telemetry,
            plan_has_crashes=bool(built["plan"].crashes),
            history_len=len(result.residual_norms),
        )
    else:
        obs = sum(1 for e in events if e.kind == "observe")
        if obs != len(result.residual_norms) - 1:
            failures.append(
                {
                    "property": "telemetry",
                    "detail": f"observations vs observe: events {obs} != "
                    f"history {len(result.residual_norms) - 1}",
                }
            )
    checked = ["finiteness", "liveness", "theorem1", "telemetry"]
    stats = {
        "converged": bool(result.converged),
        "observations": len(result.residual_norms),
        "relaxations": int(np.sum(result.iterations)),
    }
    return failures, checked, stats


def _run_distributed(spec: dict, built: dict) -> tuple:
    d = spec["distributed"]
    tracer = Tracer(trace_reads=True)
    sim = DistributedJacobi(
        built["A"],
        built["b"],
        n_ranks=built["agents"],
        partition=d.get("partition_method", "bfs"),
        delay=built["delay"],
        drop_probability=float(d.get("drop_probability", 0.0)),
        duplicate_probability=float(d.get("duplicate_probability", 0.0)),
        seed=int(spec["seed"]),
        omega=built["omega"],
        method=built["method"],
        fault_plan=built["plan"],
        reliable=d.get("reliable"),
        recovery=d.get("recovery", "freeze"),
    )
    result = sim.run_async(
        tol=built["tol"],
        max_iterations=built["max_iterations"],
        eager=bool(d.get("eager", False)),
        termination=d.get("termination", "count"),
        tracer=tracer,
        queue_backend=d.get("queue_backend", "auto"),
        delivery=d.get("delivery", "auto"),
        relax_backend=d.get("relax_backend", "auto"),
    )
    events = tracer.events()
    failures = []
    failures += props.check_finiteness(result.x, result.residual_norms)
    failures += props.check_liveness(
        result,
        built["plan"],
        exempt_agents=_hang_exempt(spec["delay"]),
        termination=d.get("termination", "count"),
        eager=bool(d.get("eager", False)),
        eager_may_starve=(
            bool(built["plan"])
            or float(d.get("drop_probability", 0.0)) > 0
            or spec["delay"].get("kind") == "hang"
        ),
        max_iterations=built["max_iterations"],
    )
    failures += props.check_theorem1_replay(
        events, built["A"], built["b"], built["omega"], method=built["method"]
    )
    if result.telemetry is not None:
        failures += props.check_telemetry(
            events,
            result.telemetry,
            plan_has_crashes=bool(built["plan"].crashes),
            duplicates_possible=float(d.get("duplicate_probability", 0.0)) > 0,
            history_len=len(result.residual_norms),
        )
    checked = ["finiteness", "liveness", "theorem1", "telemetry"]
    stats = {
        "converged": bool(result.converged),
        "observations": len(result.residual_norms),
        "relaxations": int(np.sum(result.iterations)),
    }
    return failures, checked, stats


def _run_model(spec: dict, built: dict) -> tuple:
    A, b = built["A"], built["b"]
    model = AsyncJacobiModel(A, b, omega=built["omega"], method=built["method"])
    result = model.run(
        build_schedule(spec),
        tol=built["tol"],
        max_steps=built["max_iterations"],
    )
    failures = []
    failures += props.check_finiteness(result.x, result.residual_norms)
    # The direct residual-history check is the Theorem-1 family's bound:
    # only enforced when the method guarantees it on this matrix (SOR
    # guarantees a different norm, momentum guarantees nothing).
    guarantee = built["method"].guarantee(A)
    if guarantee.norm == "residual_l1" and guarantee.holds:
        failures += props.check_theorem1_history(result.residual_norms)
    if len(result.residual_norms) == 0:
        failures.append({"property": "liveness", "detail": "empty residual history"})

    # Batch identity: trial 0 is the scenario's b, further trials derive
    # deterministically from b_seed. Every run gets a fresh schedule
    # object so all of them consume identical step streams.
    trials = built["batch_trials"]
    rng = np.random.default_rng(int(spec["b_seed"]) + 1)
    B = np.column_stack([b] + [rng.standard_normal(A.nrows) for _ in range(trials - 1)])
    batched = BatchedAsyncJacobiModel(
        A, B, omega=built["omega"], method=built["method"]
    ).run(
        build_schedule(spec), tol=built["tol"], max_steps=built["max_iterations"]
    )
    for t in range(trials):
        bt = batched.trial(t)
        seq = AsyncJacobiModel(
            A, B[:, t], omega=built["omega"], method=built["method"]
        ).run(
            build_schedule(spec), tol=built["tol"], max_steps=built["max_iterations"]
        )
        if (
            bt.converged != seq.converged
            or bt.steps != seq.steps
            or len(bt.residual_norms) != len(seq.residual_norms)
            or not np.array_equal(bt.residual_norms, seq.residual_norms)
            or not np.array_equal(bt.x, seq.x)
        ):
            failures.append(
                {
                    "property": "batch_identity",
                    "detail": f"trial {t} diverges from its sequential run "
                    f"(batched: converged={bt.converged} steps={bt.steps}, "
                    f"sequential: converged={seq.converged} steps={seq.steps})",
                }
            )
    checked = ["finiteness", "theorem1", "liveness", "batch_identity"]
    stats = {
        "converged": bool(result.converged),
        "observations": len(result.residual_norms),
        "relaxations": int(result.relaxations),
    }
    return failures, checked, stats


_EXECUTOR_RUNNERS = {
    "shared": _run_shared,
    "distributed": _run_distributed,
    "model": _run_model,
}


def run_scenario(spec: dict) -> dict:
    """Run one scenario and judge it — the :func:`run_cells` cell function.

    Build-phase problems raise :class:`ChaosSpecError` (the spec is at
    fault). Run-phase exceptions are an engine bug and come back as a
    ``no_crash`` property failure so campaigns keep going and the shrinker
    can minimize them. ``spec["mutation"]`` (absent in generated specs)
    names a seeded bug from :mod:`repro.chaos.mutations` to apply for the
    duration of the run — it is part of the spec so cached verdicts of
    mutated and clean runs never collide.
    """
    built = build_scenario(spec)
    runner = _EXECUTOR_RUNNERS[spec["executor"]]
    with mutation_context(spec.get("mutation")):
        try:
            failures, checked, stats = runner(spec, built)
        except Exception as exc:  # engine bug, not a harness crash
            failures = [
                {
                    "property": "no_crash",
                    "detail": f"{type(exc).__name__}: {exc}",
                }
            ]
            checked = ["no_crash"]
            stats = {}
    return {
        "id": spec.get("id", "?"),
        "executor": spec["executor"],
        "ok": not failures,
        "failures": failures,
        "checks": _check_mark(failures, checked),
        **stats,
    }
