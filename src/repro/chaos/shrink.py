"""Greedy minimization of failing scenarios, and the reproducer corpus.

When the harness flags a scenario, :func:`shrink_spec` searches for a
smaller spec that still fails the *same properties*: drop fault events one
at a time, simplify surviving events (zero their onset, halve their
windows, widen their scope), then shrink the configuration (matrix down
its ladder, fewer agents, shorter budget, plainer delay/transport knobs).
Each pass re-runs candidates through :func:`repro.chaos.harness.run_scenario`
— candidates that raise :class:`~repro.chaos.harness.ChaosSpecError`
stepped outside an executor's contract and are skipped, not counted as
fixes. Passes repeat to a fixpoint under a bounded run budget, so shrinking
a distributed scenario costs seconds, not minutes.

Minimal reproducers are archived by :func:`archive_reproducer` as plain
JSON under ``tests/chaos/corpus/`` (spec + the failures it provokes + the
mutation it needs, if any) and replayed forever after by the corpus
regression test — the fuzzer's findings become ordinary fixtures.
"""

from __future__ import annotations

import copy
import hashlib
import json
from pathlib import Path

from repro.chaos.generator import MATRIX_LADDERS
from repro.chaos.harness import ChaosSpecError, run_scenario

#: Corpus JSON schema version (bump on incompatible layout changes).
CORPUS_VERSION = 1


def _failed_props(verdict: dict) -> set:
    return {f["property"] for f in verdict["failures"]}


def spec_events(spec: dict) -> list:
    """The fault-event list of a spec (shared across all executors)."""
    return spec.get("plan", {}).get("events", [])


def _event_candidates(spec: dict) -> list:
    """Drop one event; then simplify one field of one event."""
    out = []
    events = spec_events(spec)
    for i in range(len(events)):
        cand = copy.deepcopy(spec)
        del cand["plan"]["events"][i]
        out.append(cand)
    simplifications = {
        "crash": [
            ("restart_after", None),  # permanent crash is simpler
            ("at", 0.0),
        ],
        "partition": [("start", 0.0), ("duration", lambda v: v / 2)],
        "drop": [
            ("start", 0.0),
            ("duration", lambda v: v / 2),
            ("probability", 1.0),
            ("agents", None),  # all senders is the simpler scope
        ],
    }
    simplifications["corrupt"] = simplifications["drop"]
    for i, event in enumerate(events):
        for field, target in simplifications.get(event["kind"], ()):
            current = event.get(field)
            new = target(current) if callable(target) else target
            if current == new or (new is None and field not in event):
                continue
            cand = copy.deepcopy(spec)
            if new is None:
                cand["plan"]["events"][i].pop(field, None)
            else:
                cand["plan"]["events"][i][field] = new
            out.append(cand)
    return out


def _set(spec: dict, path: tuple, value) -> dict | None:
    """A deep copy with ``spec[path] = value``, or None if already there."""
    node = spec
    for key in path[:-1]:
        node = node.get(key)
        if node is None:
            return None
    if path[-1] not in node or node[path[-1]] == value:
        return None
    cand = copy.deepcopy(spec)
    node = cand
    for key in path[:-1]:
        node = node[key]
    node[path[-1]] = value
    return cand


def _config_candidates(spec: dict) -> list:
    """Shrink the scenario around the (already minimized) fault plan."""
    out = []
    family = spec["matrix"]["family"]
    ladder = MATRIX_LADDERS.get(family, [])
    try:
        rung = ladder.index(spec["matrix"]["args"])
    except ValueError:
        rung = -1
    if rung > 0:
        out.append(_set(spec, ("matrix", "args"), dict(ladder[rung - 1])))
    crashed = {e.get("agent", 0) for e in spec_events(spec) if e["kind"] == "crash"}
    min_agents = max(2, max(crashed, default=0) + 1)
    if spec["agents"] > min_agents:
        out.append(_set(spec, ("agents",), max(min_agents, spec["agents"] // 2)))
    if spec["max_iterations"] > 20:
        out.append(_set(spec, ("max_iterations",), max(20, spec["max_iterations"] // 2)))
    out.append(_set(spec, ("omega",), 1.0))
    out.append(_set(spec, ("method",), {"kind": "jacobi", "omega": 1.0}))
    if "delay" in spec:
        out.append(_set(spec, ("delay",), {"kind": "none"}))
    if "batch_trials" in spec:
        out.append(_set(spec, ("batch_trials",), 2))
    if "distributed" in spec:
        for key, plain in (
            ("eager", False),
            ("termination", "count"),
            ("drop_probability", 0.0),
            ("duplicate_probability", 0.0),
            ("queue_backend", "auto"),
            ("delivery", "auto"),
            ("relax_backend", "auto"),
            ("reliable", False),
            ("recovery", "freeze"),
        ):
            out.append(_set(spec, ("distributed", key), plain))
    return [c for c in out if c is not None]


def shrink_spec(spec: dict, verdict: dict, max_runs: int = 80) -> dict:
    """Greedily minimize a failing spec, preserving its failure mode.

    Returns ``{"spec": minimal, "verdict": its verdict, "runs": evals,
    "events": surviving fault-event count}``. A candidate counts as "still
    failing" when its failed-property set intersects the original's — the
    shrinker chases the same bug, not just any bug.
    """
    target = _failed_props(verdict)
    if not target:
        raise ValueError("shrink_spec needs a failing verdict")
    current, current_verdict = copy.deepcopy(spec), verdict
    runs = 0

    def still_fails(cand):
        nonlocal runs
        if runs >= max_runs:
            return None
        runs += 1
        try:
            v = run_scenario(cand)
        except ChaosSpecError:
            return None
        return v if _failed_props(v) & target else None

    improved = True
    while improved and runs < max_runs:
        improved = False
        for cand in _event_candidates(current) + _config_candidates(current):
            v = still_fails(cand)
            if v is not None:
                current, current_verdict = cand, v
                improved = True
                break  # restart passes from the smaller spec
    current["id"] = f"{spec.get('id', 'chaos')}-min"
    return {
        "spec": current,
        "verdict": current_verdict,
        "runs": runs,
        "events": len(spec_events(current)),
    }


def _corpus_name(prop: str, spec: dict) -> str:
    digest = hashlib.sha1(
        json.dumps(spec, sort_keys=True).encode()
    ).hexdigest()[:10]
    return f"{prop}-{digest}.json"


def archive_reproducer(spec: dict, verdict: dict, corpus_dir) -> Path:
    """Write a minimal reproducer into the corpus; returns its path.

    The entry records the spec verbatim (including any ``"mutation"`` key),
    the property names it violates, and the failure details — enough for
    the corpus regression test to re-run it and demand the same outcome.
    """
    corpus = Path(corpus_dir)
    corpus.mkdir(parents=True, exist_ok=True)
    props = sorted(_failed_props(verdict))
    entry = {
        "version": CORPUS_VERSION,
        "properties": props,
        "mutation": spec.get("mutation"),
        "scenario": spec,
        "failures": verdict["failures"],
    }
    path = corpus / _corpus_name(props[0] if props else "pass", spec)
    path.write_text(json.dumps(entry, indent=2, sort_keys=True) + "\n")
    return path


def load_reproducer(path) -> dict:
    """Read one corpus entry back (schema-checked)."""
    entry = json.loads(Path(path).read_text())
    if entry.get("version") != CORPUS_VERSION:
        raise ValueError(
            f"{path}: corpus version {entry.get('version')!r} != {CORPUS_VERSION}"
        )
    for key in ("properties", "scenario", "failures"):
        if key not in entry:
            raise ValueError(f"{path}: corpus entry missing {key!r}")
    return entry
