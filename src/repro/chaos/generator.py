"""Deterministic scenario generation for the chaos campaign.

A *scenario spec* is a plain-JSON dict describing one adversarial run:
which executor (shared-memory simulator, distributed simulator, or the
exact-information model with its batched twin), which matrix, which iteration
method (any kind from :mod:`repro.methods` — absent means Jacobi at the
spec's ``omega``), which fault plan, which delay model or schedule, and
every knob the executor takes.
Specs are pure data — they can be cached by
:func:`repro.perf.runner.run_cells`, shipped to worker processes, archived
as shrunk reproducers, and re-run bit-identically years later.

Generation is deterministic: ``generate_spec(seed, index)`` derives every
choice from ``SeedSequence((CHAOS_SALT, seed, index))``, so a campaign is
reproducible from ``(seed, budget)`` alone and two campaigns with the same
seed agree scenario for scenario.

The generator only emits scenarios the property harness can judge: matrix
families are weakly diagonally dominant (Theorem 1's hypothesis), fault
plans satisfy :class:`~repro.faults.FaultPlan` validation by construction
(at most one crash per agent), and every executor-specific constraint
(crash ids below the agent count, message faults only where messages
exist) holds by construction rather than by rejection sampling.
"""

from __future__ import annotations

import numpy as np

#: Salt mixed into every scenario's seed sequence so chaos streams never
#: collide with experiment seeds derived from the same small integers.
CHAOS_SALT = 987143

#: Per-family ladders of matrix-generator arguments, ordered small to
#: large. The generator samples from the full ladder; the shrinker walks
#: a failing scenario down it one rung at a time.
MATRIX_LADDERS = {
    "fd_1d": [{"n": 8}, {"n": 12}, {"n": 16}, {"n": 24}, {"n": 32}],
    "fd_2d": [
        {"nx": 3, "ny": 3},
        {"nx": 4, "ny": 4},
        {"nx": 5, "ny": 5},
        {"nx": 5, "ny": 7},
        {"nx": 6, "ny": 6},
    ],
    "fd_3d": [{"nx": 2, "ny": 2, "nz": 2}, {"nx": 3, "ny": 3, "nz": 3}],
    "nine_point": [{"nx": 3, "ny": 3}, {"nx": 4, "ny": 4}, {"nx": 5, "ny": 5}],
    "variable_coefficient": [
        # An unseeded variable-coefficient matrix draws a fresh random
        # field per build; the pinned seed keeps specs pure data.
        {"nx": 4, "ny": 4, "seed": 7},
        {"nx": 5, "ny": 5, "seed": 7},
    ],
    "anisotropic": [{"nx": 4, "ny": 4}, {"nx": 5, "ny": 5}],
}

#: Simulated-time horizon inside which fault events are scheduled. Runs at
#: the generated sizes finish within a few of these; events landing past
#: the end of a run are legal (they are simply inert).
HORIZONS = {"shared": 6e-5, "distributed": 2.5e-4}

_EXECUTORS = ("shared", "distributed", "model")
_EXECUTOR_WEIGHTS = (0.30, 0.45, 0.25)


def _matrix_rows(family: str, args: dict) -> int:
    """Row count of a family/args pair without building the matrix."""
    if family == "fd_1d":
        return int(args["n"])
    dims = [int(v) for k, v in sorted(args.items()) if k != "seed"]
    return int(np.prod(dims))


def scenario_rng(seed: int, index: int) -> np.random.Generator:
    """The generator that decides every choice of scenario ``index``."""
    return np.random.default_rng(
        np.random.SeedSequence((CHAOS_SALT, int(seed), int(index)))
    )


def _pick_matrix(rng) -> tuple:
    """Choose a (family, args, n) triple from the ladders."""
    family = str(rng.choice(list(MATRIX_LADDERS)))
    ladder = MATRIX_LADDERS[family]
    args = ladder[int(rng.integers(len(ladder)))]
    return family, dict(args), _matrix_rows(family, args)


def _time_in(rng, horizon: float, zero_p: float = 0.1) -> float:
    """A nonnegative event time, occasionally exactly zero."""
    if rng.random() < zero_p:
        return 0.0
    return float(rng.uniform(0.0, horizon))


def _crash_events(rng, n_agents: int, horizon: float, count: int) -> list:
    """Crash specs on ``count`` distinct agents (never overlapping)."""
    agents = rng.choice(n_agents, size=min(count, n_agents), replace=False)
    events = []
    for agent in agents:
        ev = {"kind": "crash", "agent": int(agent), "at": _time_in(rng, horizon)}
        if rng.random() < 0.5:
            ev["restart_after"] = float(rng.uniform(0.1, 0.8) * horizon)
        events.append(ev)
    return events


def _burst_event(rng, kind: str, n_agents: int, horizon: float) -> dict:
    """One drop/corrupt burst spec."""
    duration = 0.0 if rng.random() < 0.05 else float(rng.uniform(0.0, 0.6) * horizon)
    ev = {
        "kind": kind,
        "start": _time_in(rng, horizon),
        "duration": duration,
        "probability": 1.0 if rng.random() < 0.1 else float(rng.uniform(0.05, 0.9)),
    }
    if rng.random() < 0.4:
        size = int(rng.integers(1, n_agents + 1))
        ev["agents"] = sorted(
            int(a) for a in rng.choice(n_agents, size=size, replace=False)
        )
    return ev


def _partition_event(rng, n_agents: int, horizon: float) -> dict:
    """One partition-window spec (nonempty proper subset when possible)."""
    hi = max(2, n_agents)
    size = int(rng.integers(1, hi))
    group = sorted(int(a) for a in rng.choice(n_agents, size=size, replace=False))
    duration = 0.0 if rng.random() < 0.05 else float(rng.uniform(0.0, 0.5) * horizon)
    return {
        "kind": "partition",
        "group": group,
        "start": _time_in(rng, horizon),
        "duration": duration,
    }


def _fault_plan(rng, executor: str, n_agents: int, horizon: float) -> dict:
    """A plan spec whose event kinds match what the executor can inject.

    The shared-memory simulator rejects message-level faults (there are no
    messages), and the exact-information model only sees crashes and drop
    bursts through :class:`~repro.faults.FaultMaskedSchedule`.
    """
    if executor == "shared":
        kinds = ["crash"]
    elif executor == "model":
        kinds = ["crash", "drop"]
    else:
        kinds = ["crash", "partition", "drop", "corrupt"]
    n_events = int(rng.choice([0, 1, 2, 3, 4], p=[0.15, 0.25, 0.3, 0.2, 0.1]))
    events = []
    n_crashes = 0
    for _ in range(n_events):
        kind = str(rng.choice(kinds))
        if kind == "crash":
            n_crashes += 1
        elif kind == "partition":
            events.append(_partition_event(rng, n_agents, horizon))
        else:
            events.append(_burst_event(rng, kind, n_agents, horizon))
    events.extend(_crash_events(rng, n_agents, horizon, n_crashes))
    return {"events": events, "seed": int(rng.integers(2**31))}


def _delay_spec(rng, n_agents: int) -> dict:
    """A delay-model spec for the machine simulators."""
    kind = str(
        rng.choice(
            ["none", "constant", "straggler", "stochastic", "hang"],
            p=[0.45, 0.2, 0.15, 0.1, 0.1],
        )
    )
    if kind == "none":
        return {"kind": "none"}
    agent = int(rng.integers(n_agents))
    if kind == "constant":
        return {"kind": "constant", "delays": [[agent, float(rng.uniform(1e-7, 2e-5))]]}
    if kind == "straggler":
        return {"kind": "straggler", "factors": [[agent, float(rng.uniform(1.5, 8.0))]]}
    if kind == "stochastic":
        return {
            "kind": "stochastic",
            "prob": float(rng.uniform(0.02, 0.3)),
            "mean_stall": float(rng.uniform(1e-7, 1e-5)),
            "agents": [agent],
        }
    return {"kind": "hang", "hang_times": [[agent, float(rng.uniform(0.0, 5e-5))]]}


def _schedule_spec(rng, n: int, n_agents: int, has_plan: bool) -> dict:
    """A schedule spec for the model executor."""
    if has_plan:
        # A plan only acts on the model through the fault-masked schedule.
        return {"kind": "fault_masked", "dt": 1.0, "seed": int(rng.integers(2**31))}
    kind = str(
        rng.choice(
            ["random_subset", "overlapped", "delayed_rows", "synchronous"],
            p=[0.4, 0.3, 0.2, 0.1],
        )
    )
    if kind == "random_subset":
        return {
            "kind": "random_subset",
            "fraction": float(rng.uniform(0.2, 1.0)),
            "seed": int(rng.integers(2**31)),
        }
    if kind == "overlapped":
        return {
            "kind": "overlapped",
            "concurrency": int(rng.integers(1, n_agents + 1)),
            "seed": int(rng.integers(2**31)),
        }
    if kind == "delayed_rows":
        n_delayed = int(rng.integers(1, max(2, n // 4)))
        rows = rng.choice(n, size=n_delayed, replace=False)
        delays = []
        for row in rows:
            d = None if rng.random() < 0.2 else int(rng.integers(2, 9))
            delays.append([int(row), d])
        return {"kind": "delayed_rows", "delays": delays}
    return {"kind": "synchronous", "delay": 1.0}


def _method_spec(rng, omega: float) -> dict:
    """An iteration-method spec legal for every executor at this ``omega``.

    The generated matrix families are unit-diagonal and weakly diagonally
    dominant, so ``alpha = omega <= 1`` keeps Richardson inside the
    generalized Theorem-1 row condition; the harness gates each norm
    check on the method's own :meth:`~repro.methods.Method.guarantee`
    anyway (momentum asserts nothing).
    """
    kind = str(
        rng.choice(
            ["jacobi", "damped_jacobi", "richardson", "richardson2", "sor"],
            p=[0.5, 0.125, 0.125, 0.125, 0.125],
        )
    )
    if kind == "richardson":
        return {"kind": "richardson", "alpha": omega}
    if kind == "richardson2":
        return {
            "kind": "richardson2",
            "alpha": omega,
            "beta": float(rng.choice([0.1, 0.3, 0.5])),
        }
    return {"kind": kind, "omega": omega}


def generate_spec(seed: int, index: int) -> dict:
    """Scenario ``index`` of the campaign keyed by ``seed`` (pure data)."""
    rng = scenario_rng(seed, index)
    executor = str(rng.choice(_EXECUTORS, p=_EXECUTOR_WEIGHTS))
    family, args, n = _pick_matrix(rng)
    n_agents = int(rng.integers(2, min(6, n) + 1))
    omega = float(rng.choice([1.0, 1.0, 1.0, 0.75, 0.5]))
    spec = {
        "id": f"chaos-s{seed}-i{index}",
        "executor": executor,
        "matrix": {"family": family, "args": args},
        "agents": n_agents,
        "omega": omega,
        "b_seed": int(rng.integers(2**31)),
        "seed": int(rng.integers(2**31)),
        "tol": float(10.0 ** -rng.uniform(3.5, 5.5)),
        "max_iterations": int(rng.integers(50, 161)),
    }
    if executor == "model":
        spec["max_iterations"] = int(rng.integers(80, 401))
        spec["plan"] = _fault_plan(rng, "model", n_agents, float(spec["max_iterations"]))
        spec["schedule"] = _schedule_spec(rng, n, n_agents, bool(spec["plan"]["events"]))
        spec["batch_trials"] = int(rng.integers(2, 4))
        # Drawn last so every pre-method choice of a (seed, index) pair —
        # executor, matrix, plan, knobs — is unchanged from older
        # campaigns; only the method key is new.
        spec["method"] = _method_spec(rng, omega)
        return spec
    horizon = HORIZONS[executor]
    spec["plan"] = _fault_plan(rng, executor, n_agents, horizon)
    spec["delay"] = _delay_spec(rng, n_agents)
    if executor == "distributed":
        has_message_faults = any(
            ev["kind"] != "crash" for ev in spec["plan"]["events"]
        )
        delivery = str(rng.choice(["auto", "batched", "event"]))
        # Block relaxes require batched delivery, so the backend is drawn
        # from the legal set for the delivery mode just chosen — the
        # constraint holds by construction, not by rejection.
        backends = (
            ["auto", "event", "block"] if delivery != "event" else ["auto", "event"]
        )
        spec["distributed"] = {
            "eager": bool(rng.random() < 0.25),
            "termination": str(rng.choice(["count", "detect"], p=[0.7, 0.3])),
            "reliable": bool(rng.random() < (0.6 if has_message_faults else 0.3)),
            "recovery": str(rng.choice(["freeze", "adopt", "none"], p=[0.4, 0.4, 0.2])),
            "drop_probability": float(rng.choice([0.0, 0.0, 0.02, 0.08])),
            "duplicate_probability": float(rng.choice([0.0, 0.0, 0.0, 0.05])),
            "queue_backend": str(rng.choice(["auto", "heap", "calendar"])),
            "partition_method": str(rng.choice(["bfs", "contiguous"])),
            "delivery": delivery,
            "relax_backend": str(rng.choice(backends)),
        }
    spec["method"] = _method_spec(rng, omega)
    if executor == "distributed":
        # Appended after every legacy draw so the whole pre-native stream
        # of a (seed, index) pair is unchanged from older campaigns. The
        # coin itself is flipped unconditionally (stream-stable); whether
        # it lands depends on the toolchain probe, so a machine without a
        # C compiler simply never sees the backend, and SOR — whose local
        # sweeps are sequential and therefore native-illegal — keeps its
        # legacy draw.
        wants_native = bool(rng.random() < 0.25)
        from repro.perf.native import native_available

        if (
            wants_native
            and spec["method"]["kind"] != "sor"
            and native_available()
        ):
            spec["distributed"]["relax_backend"] = "native"
    return spec


def generate_specs(seed: int, budget: int) -> list:
    """The first ``budget`` scenario specs of campaign ``seed``."""
    if budget < 0:
        raise ValueError(f"budget must be nonnegative, got {budget}")
    return [generate_spec(seed, i) for i in range(int(budget))]
