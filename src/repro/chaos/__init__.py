"""Chaos campaign: scenario fuzzing with property checks and shrinking.

The chaos subsystem composes everything the repo already knows how to
simulate — :class:`~repro.faults.FaultPlan` events, the injected-delay
models of :mod:`repro.runtime.delays`, the matrix families of
:mod:`repro.matrices`, the schedule families of
:mod:`repro.core.schedules`, both machine simulators and the batched model
executor — into a deterministic generator of adversarial scenarios, runs
every scenario through the cached parallel runner
(:func:`repro.perf.runner.run_cells`), and checks each run against the
properties the paper promises:

* **theorem1** — the residual 1-norm never increases when the captured
  interleaving is replayed through the propagation-matrix model (the
  :mod:`repro.observability.replay` bridge for simulator runs, the direct
  residual history for exact-information model runs);
* **liveness** — the run terminates and every agent that could make
  progress did (no silently stalled or livelocked agents);
* **finiteness** — no NaN/inf ever reaches the iterate or the residual
  history;
* **telemetry** — :class:`~repro.runtime.results.FaultTelemetry` counters
  agree with the structured trace-event stream, counter by counter;
* **batch-identity** — the batched model executor stays bit-identical to
  the sequential executor, trial by trial.

When a scenario fails, the shrinker (:mod:`repro.chaos.shrink`) greedily
minimizes it — dropping fault events, zeroing windows, shrinking the
matrix and the agent count — to a minimal reproducer that is archived as a
plain-JSON spec under ``tests/chaos/corpus/`` and replayed forever after
by the corpus regression test.

Entry point: ``python -m repro chaos --budget N [--seed S] [--shrink]``.
See docs/chaos.md for the generator space, the property definitions and
the corpus workflow.
"""

from repro.chaos.campaign import CampaignSummary, run_campaign
from repro.chaos.generator import generate_spec, generate_specs
from repro.chaos.harness import ChaosSpecError, build_scenario, run_scenario
from repro.chaos.mutations import MUTATIONS, mutation_context
from repro.chaos.shrink import archive_reproducer, load_reproducer, shrink_spec

__all__ = [
    "CampaignSummary",
    "ChaosSpecError",
    "MUTATIONS",
    "archive_reproducer",
    "build_scenario",
    "generate_spec",
    "generate_specs",
    "load_reproducer",
    "mutation_context",
    "run_campaign",
    "run_scenario",
    "shrink_spec",
]
