"""Seeded bugs for validating that the campaign actually catches things.

A *mutation* deliberately breaks one invariant the property harness
checks, by patching an emission point for the duration of one scenario
run. The mutation's name travels inside the scenario spec (key
``"mutation"``), so :func:`repro.perf.runner.run_cells` caches mutated and
clean verdicts under different keys, and an archived reproducer records
exactly which bug it reproduces.

The end-to-end test in ``tests/chaos/test_mutation.py`` runs a campaign
under a mutation, asserts the harness flags it, shrinks a failing scenario
to a minimal reproducer, and replays the archived spec — the same loop a
real engine bug would travel.
"""

from __future__ import annotations

from contextlib import contextmanager

from repro.observability.tracer import Tracer


@contextmanager
def _patch(cls, name, replacement):
    original = getattr(cls, name)
    setattr(cls, name, replacement)
    try:
        yield
    finally:
        setattr(cls, name, original)


def _silent_fault_trace():
    """Swallow fault events: telemetry counts faults the trace never saw."""

    def fault(self, time, agent, reason, **extra):
        return None

    return _patch(Tracer, "fault", fault)


def _silent_observe_trace():
    """Swallow observe events: the residual history outruns the trace."""

    def observe(self, time, residual, relaxations):
        return None

    return _patch(Tracer, "observe", observe)


#: Registry of available seeded bugs, by the name specs carry.
MUTATIONS = {
    "silent_fault_trace": _silent_fault_trace,
    "silent_observe_trace": _silent_observe_trace,
}


@contextmanager
def mutation_context(name: str | None):
    """Apply the named mutation for the duration of the block.

    ``None`` (the default for generated specs) is a no-op; an unknown name
    raises ``KeyError`` loudly — a corpus entry naming a mutation that no
    longer exists should fail, not silently pass.
    """
    if name is None:
        yield
        return
    with MUTATIONS[name]():
        yield
