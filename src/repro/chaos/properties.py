"""Property checks the chaos harness runs against every scenario.

Each check returns a list of *violation* dicts ``{"property": name,
"detail": human-readable string}`` — empty when the property holds. The
names are stable identifiers (they key the shrinker's "does the candidate
still fail the same way" test and the corpus filenames):

``theorem1``
    Theorem 1's residual non-increase. For simulator runs the captured
    trace is replayed through the propagation-matrix model via
    :func:`repro.observability.replay.replay_report` (the reconstructed
    application order must be valid and its residual 1-norm monotone
    non-increasing); for exact-information model runs the recorded
    residual history is checked directly, up to the same float slack the
    replay bridge uses.
``liveness``
    The run terminated with a finite clock and non-empty history, every
    agent that was never scripted dead or hung made progress, and a
    non-converged count-terminated run actually exhausted its iteration
    budget (a rank that silently stalls below budget is a livelock, not a
    legitimate finish).
``finiteness``
    No NaN or infinity in the final iterate or the residual history.
``telemetry``
    :class:`~repro.runtime.results.FaultTelemetry` counters agree with the
    structured trace-event stream: every counted put/drop/corruption/
    retry/restart/detection has its event and vice versa (see
    :func:`check_telemetry` for the exact ledger).
``batch_identity``
    The batched model executor's per-trial histories and final iterates
    are bit-identical to sequential :class:`~repro.core.model.AsyncJacobiModel`
    runs of the same trials.
``no_crash``
    The executor raised no exception (recorded by the harness, not here).
"""

from __future__ import annotations

import numpy as np

from repro.observability import events as ev
from repro.observability.replay import replay_report

#: Float slack for the residual non-increase checks — matches the replay
#: bridge's defaults (one recomputation's rounding noise).
RTOL = 1e-9
ATOL = 1e-13


def _violation(prop: str, detail: str) -> dict:
    return {"property": prop, "detail": detail}


def check_theorem1_replay(events, A, b, omega: float, method=None) -> list:
    """Replay a captured simulator trace and check its method's norm bound.

    The checked norm follows the method's guarantee (residual 1-norm for
    the Theorem-1 family, error sup-norm for step-async SOR); when the
    guarantee's hypotheses fail on this matrix — or the method carries
    none, as momentum does — only the reconstruction's validity is
    asserted.
    """
    report = replay_report(
        events, A, b, omega=omega, method=method, rtol=RTOL, atol=ATOL
    )
    out = []
    if not report.valid_sequence:
        out.append(
            _violation(
                "theorem1",
                "reconstructed application order is not a valid schedule",
            )
        )
    elif report.guarantee is not None and not report.guarantee.holds:
        pass  # no norm bound to enforce on this matrix/method pair
    elif not report.monotone:
        step, before, after = report.violations[0]
        what = "error sup-norm" if report.norm == "error_sup" else "residual"
        out.append(
            _violation(
                "theorem1",
                f"{what} rose at replayed step {step}: {before:.6e} -> "
                f"{after:.6e} ({len(report.violations)} violating step(s))",
            )
        )
    return out


def check_theorem1_history(residual_norms) -> list:
    """Direct non-increase check on an exact-information residual history."""
    for k in range(1, len(residual_norms)):
        before, after = residual_norms[k - 1], residual_norms[k]
        if after > before * (1.0 + RTOL) + ATOL:
            return [
                _violation(
                    "theorem1",
                    f"residual rose at step {k}: {before:.6e} -> {after:.6e}",
                )
            ]
    return []


def check_finiteness(x, residual_norms) -> list:
    """No NaN/inf in the final iterate or the residual history."""
    out = []
    if not np.all(np.isfinite(x)):
        bad = int(np.flatnonzero(~np.isfinite(np.asarray(x)))[0])
        out.append(_violation("finiteness", f"non-finite iterate entry at row {bad}"))
    res = np.asarray(list(residual_norms), dtype=float)
    if res.size and not np.all(np.isfinite(res)):
        k = int(np.flatnonzero(~np.isfinite(res))[0])
        out.append(_violation("finiteness", f"non-finite residual at observation {k}"))
    return out


def check_liveness(
    result,
    plan,
    *,
    exempt_agents=frozenset(),
    termination: str = "count",
    eager: bool = False,
    eager_may_starve: bool = False,
    max_iterations: int = 0,
) -> list:
    """Termination and progress invariants for a simulator run.

    ``exempt_agents`` are agents a delay model may legitimately hang;
    agents with scripted crashes are exempted automatically (a crash can
    land before the first commit, and a permanent one stops the agent's
    iteration count wherever it stood).

    ``eager_may_starve`` marks scenarios where an eager rank can park
    forever through no engine fault: its wake-up message was dropped,
    severed by a partition, or never sent by a hung/dead sender that
    failure detection cannot confirm dead. Budget exhaustion is only
    demanded of eager runs on loss-free scenarios.
    """
    out = []
    if not np.isfinite(result.total_time) or result.total_time < 0:
        out.append(
            _violation("liveness", f"non-finite end time {result.total_time!r}")
        )
    if len(result.residual_norms) == 0:
        out.append(_violation("liveness", "empty residual history"))
        return out
    iters = np.asarray(result.iterations)
    exempt = set(int(a) for a in exempt_agents) | set(plan.agents())
    live = [a for a in range(iters.size) if a not in exempt]
    stalled = [a for a in live if iters[a] == 0]
    if stalled:
        out.append(
            _violation(
                "liveness",
                f"agent(s) {stalled} never relaxed despite no scripted "
                "crash or hang",
            )
        )
    if not result.converged and termination == "count" and live:
        live_iters = iters[live]
        if eager:
            # Eager ranks may legitimately starve once their senders stop;
            # on a loss-free scenario the run can still only wind down
            # after someone spent the budget.
            if not eager_may_starve and live_iters.max() < max_iterations:
                out.append(
                    _violation(
                        "liveness",
                        "non-converged eager run ended with every healthy "
                        f"rank below budget (max {int(live_iters.max())} < "
                        f"{max_iterations}) — livelocked/estalled ranks",
                    )
                )
        elif live_iters.min() < max_iterations:
            out.append(
                _violation(
                    "liveness",
                    "non-converged run ended with healthy agent(s) below "
                    f"the iteration budget (min {int(live_iters.min())} < "
                    f"{max_iterations})",
                )
            )
    return out


def _count(events, kind: str, **match) -> int:
    n = 0
    for e in events:
        if e.kind != kind:
            continue
        if all(e.data.get(k) == v for k, v in match.items()):
            n += 1
    return n


def check_telemetry(
    events,
    telemetry,
    *,
    plan_has_crashes: bool,
    duplicates_possible: bool = False,
    history_len: int = 0,
) -> list:
    """FaultTelemetry counters must agree with the trace-event stream.

    The ledger (for a run traced with a live tracer):

    * ``send`` events = ``puts_sent + retries`` (every transmission —
      first send or retransmit — is traced once);
    * ``recv`` events = ``puts_delivered`` (an event is emitted exactly
      when a put is applied);
    * ``fault(put_corrupted)`` events = ``puts_corrupted``;
    * ``fault(put_dropped)`` events = ``puts_dropped`` — except that a put
      landing at a crashed rank is counted dropped but has no traceable
      sender-side incident, so with scripted crashes the event count may
      only fall short, never exceed;
    * ``fault(restart)`` events = ``len(restarts)``;
    * ``fault(retry_exhausted)`` events = ``retry_budget_exhausted``;
    * ``detect`` events with status dead/alive/adopted =
      ``len(failures_detected)`` / ``len(recoveries)`` / ``len(adoptions)``;
    * conservation: every put is delivered, dropped, corrupted or
      suppressed at most once, so (without duplicate injection)
      ``delivered + dropped + corrupted + suppressed <= sent + retries``;
    * ``observe`` events = residual observations after the initial one.
    """
    tm = telemetry
    out = []

    def expect(name, got, want, exact=True):
        if (got != want) if exact else (got > want):
            rel = "!=" if exact else ">"
            out.append(
                _violation(
                    "telemetry", f"{name}: events {got} {rel} telemetry {want}"
                )
            )

    expect("puts_sent+retries vs send", _count(events, ev.SEND), tm.puts_sent + tm.retries)
    expect("puts_delivered vs recv", _count(events, ev.RECV), tm.puts_delivered)
    expect(
        "puts_corrupted vs fault(put_corrupted)",
        _count(events, ev.FAULT, reason="put_corrupted"),
        tm.puts_corrupted,
    )
    expect(
        "puts_dropped vs fault(put_dropped)",
        _count(events, ev.FAULT, reason="put_dropped"),
        tm.puts_dropped,
        exact=not plan_has_crashes,
    )
    expect("restarts vs fault(restart)", _count(events, ev.FAULT, reason="restart"),
           len(tm.restarts))
    expect(
        "retry_budget_exhausted vs fault(retry_exhausted)",
        _count(events, ev.FAULT, reason="retry_exhausted"),
        tm.retry_budget_exhausted,
    )
    expect("failures_detected vs detect(dead)",
           _count(events, ev.DETECT, status="dead"), len(tm.failures_detected))
    expect("recoveries vs detect(alive)",
           _count(events, ev.DETECT, status="alive"), len(tm.recoveries))
    expect("adoptions vs detect(adopted)",
           _count(events, ev.DETECT, status="adopted"), len(tm.adoptions))
    if not duplicates_possible:
        applied = (
            tm.puts_delivered + tm.puts_dropped + tm.puts_corrupted
            + tm.duplicates_suppressed
        )
        sent = tm.puts_sent + tm.retries
        if applied > sent:
            out.append(
                _violation(
                    "telemetry",
                    f"conservation: {applied} puts accounted for at receivers "
                    f"but only {sent} transmissions",
                )
            )
    if history_len:
        expect("observations vs observe", _count(events, ev.OBSERVE), history_len - 1)
    return out
