"""Campaign driver: generate, run, judge, shrink, archive, report.

:func:`run_campaign` is what ``python -m repro chaos`` calls: it generates
``budget`` scenario specs from a seed, fans them through the cached
parallel runner (:func:`repro.perf.runner.run_cells` — re-running a
campaign with the same seed is nearly free), tallies the verdicts, and —
with ``shrink=True`` — minimizes each failing scenario and archives the
reproducer in the corpus. The JSONL report has one line per scenario
(spec + verdict, in campaign order) and a final ``summary`` line, so a CI
artifact is greppable without any repro code.

Verdicts carry no wall-clock data, so two campaigns with the same seed and
budget produce byte-identical reports (minus the report's own path) —
that determinism is itself asserted by the test suite.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.chaos.generator import generate_specs
from repro.chaos.harness import run_scenario
from repro.chaos.shrink import archive_reproducer, shrink_spec
from repro.perf.runner import run_cells

#: Default corpus location when run from a repo checkout.
DEFAULT_CORPUS = Path("tests/chaos/corpus")


@dataclass
class CampaignSummary:
    """Tallied outcome of one chaos campaign."""

    seed: int
    budget: int
    passed: int = 0
    failed: int = 0
    by_property: dict = field(default_factory=dict)
    failing_ids: list = field(default_factory=list)
    shrunk: list = field(default_factory=list)
    verdicts: list = field(default_factory=list)
    specs: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether every scenario passed every property."""
        return self.failed == 0

    def to_json(self) -> dict:
        """The report's final summary line (plain data)."""
        return {
            "summary": {
                "seed": self.seed,
                "budget": self.budget,
                "passed": self.passed,
                "failed": self.failed,
                "by_property": dict(sorted(self.by_property.items())),
                "failing_ids": self.failing_ids,
                "shrunk": [str(p) for p in self.shrunk],
            }
        }


def _default_corpus_dir() -> Path:
    return DEFAULT_CORPUS if DEFAULT_CORPUS.is_dir() else Path("chaos_corpus")


def run_campaign(
    budget: int,
    seed: int = 0,
    *,
    shrink: bool = False,
    report_path=None,
    corpus_dir=None,
    cache=None,
    use_cache: bool = True,
    max_workers: int | None = None,
    mutation: str | None = None,
    max_shrinks: int = 5,
    log=None,
) -> CampaignSummary:
    """Run a chaos campaign and return its tallied summary.

    Parameters
    ----------
    budget, seed
        How many scenarios, and which deterministic stream of them.
    shrink
        Minimize up to ``max_shrinks`` failing scenarios and archive each
        reproducer under ``corpus_dir`` (default ``tests/chaos/corpus``
        when present, else ``./chaos_corpus``).
    report_path
        Where to write the JSONL report; ``None`` skips the file.
    cache, use_cache, max_workers
        Forwarded to :func:`repro.perf.runner.run_cells`.
    mutation
        Name from :data:`repro.chaos.mutations.MUTATIONS` injected into
        every spec — used by tests to prove the campaign catches bugs.
    log
        Optional ``print``-like callable for progress lines.
    """
    say = log if log is not None else (lambda *_: None)
    specs = generate_specs(seed, budget)
    if mutation is not None:
        for spec in specs:
            spec["mutation"] = mutation
    say(f"chaos: running {len(specs)} scenario(s), seed={seed}")
    verdicts = run_cells(
        run_scenario,
        specs,
        cache=cache,
        use_cache=use_cache,
        max_workers=max_workers,
    )
    summary = CampaignSummary(seed=int(seed), budget=int(budget))
    summary.specs = specs
    summary.verdicts = verdicts
    for verdict in verdicts:
        if verdict["ok"]:
            summary.passed += 1
        else:
            summary.failed += 1
            summary.failing_ids.append(verdict["id"])
            for failure in verdict["failures"]:
                prop = failure["property"]
                summary.by_property[prop] = summary.by_property.get(prop, 0) + 1
    say(f"chaos: {summary.passed} passed, {summary.failed} failed")

    if shrink and summary.failed:
        corpus = Path(corpus_dir) if corpus_dir is not None else _default_corpus_dir()
        for spec, verdict in zip(specs, verdicts):
            if verdict["ok"] or len(summary.shrunk) >= max_shrinks:
                continue
            say(f"chaos: shrinking {verdict['id']} ...")
            result = shrink_spec(spec, verdict)
            path = archive_reproducer(result["spec"], result["verdict"], corpus)
            summary.shrunk.append(path)
            say(
                f"chaos: shrunk to {result['events']} fault event(s) in "
                f"{result['runs']} runs -> {path}"
            )

    if report_path is not None:
        lines = [
            json.dumps({"spec": spec, "verdict": verdict}, sort_keys=True)
            for spec, verdict in zip(specs, verdicts)
        ]
        lines.append(json.dumps(summary.to_json(), sort_keys=True))
        Path(report_path).write_text("\n".join(lines) + "\n")
        say(f"chaos: report -> {report_path}")
    return summary
