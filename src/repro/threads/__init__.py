"""Real-thread backend (correctness reference; see backend docstring)."""

from repro.threads.backend import ThreadedJacobi, ThreadedResult

__all__ = ["ThreadedJacobi", "ThreadedResult"]
