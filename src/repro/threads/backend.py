"""Real-thread racy Jacobi on shared NumPy arrays (Section V, literally).

This backend runs the paper's shared-memory algorithm with genuine
``threading.Thread`` workers and genuinely shared arrays:

1. each thread owns a contiguous block of rows;
2. one iteration computes the block residual ``r = b - A x`` reading the
   shared ``x`` (racy in async mode), then writes the corrected block back;
3. convergence uses the paper's flag-array protocol: a thread that sees its
   local criterion satisfied raises its flag and keeps relaxing until every
   flag is up.

On CPython the GIL serializes the NumPy calls, so this backend demonstrates
*correctness* of the racy scheme (and is exercised by the test suite), but
produces no wall-clock speedup on this host — the discrete-event simulator
in :mod:`repro.runtime.shared` is the performance model. Writing/reading a
float64 element is atomic at the Python level here for the same reason the
paper relies on aligned 64-bit stores being atomic on x86.
"""

from __future__ import annotations

import sys
import threading
import time
from dataclasses import dataclass

import numpy as np

from repro.matrices.sparse import CSRMatrix
from repro.util.errors import ShapeError, SingularMatrixError
from repro.util.norms import relative_residual_norm
from repro.util.validation import check_positive, check_vector


@dataclass
class ThreadedResult:
    """Outcome of a threaded run.

    Attributes
    ----------
    x
        Final shared iterate.
    converged
        Whether the global relative residual reached the tolerance.
    iterations
        Per-thread local iteration counts.
    residual_norm
        Final relative residual 1-norm.
    wall_time
        Host wall-clock seconds (not meaningful for speedup under the GIL).
    """

    x: np.ndarray
    converged: bool
    iterations: np.ndarray
    residual_norm: float
    wall_time: float


class ThreadedJacobi:
    """Racy (or barriered) Jacobi on real threads and shared arrays.

    Parameters
    ----------
    A, b
        The system (nonzero diagonal).
    n_threads
        Worker count; rows are split into contiguous blocks.
    mode
        ``"async"`` (racy, no barriers) or ``"sync"`` (barrier per sweep).
    sleep_us
        Optional ``{thread id: microseconds}`` injected sleep per iteration
        — the paper's delayed-thread experiment on real threads.
    """

    def __init__(self, A: CSRMatrix, b, n_threads: int, mode: str = "async", sleep_us=None):
        if A.nrows != A.ncols:
            raise ShapeError(f"matrix must be square, got {A.shape}")
        if mode not in ("sync", "async"):
            raise ValueError(f"mode must be 'sync' or 'async', got {mode!r}")
        n = A.nrows
        if not 1 <= n_threads <= n:
            raise ShapeError(f"n_threads must lie in [1, {n}], got {n_threads}")
        d = A.diagonal()
        if np.any(d == 0):
            raise SingularMatrixError("Jacobi requires a nonzero diagonal")
        self.A = A
        self.n = n
        self.b = check_vector(b, n, "b")
        self.dinv = 1.0 / d
        self.n_threads = int(n_threads)
        self.mode = mode
        self.sleep_us = {int(k): float(v) for k, v in (sleep_us or {}).items()}

    def solve(
        self,
        x0=None,
        tol: float = 1e-3,
        max_iterations: int = 1000,
        switch_interval: float = 1e-5,
    ) -> ThreadedResult:
        """Run the threaded solve and return the shared final state.

        ``switch_interval`` temporarily lowers the interpreter's GIL switch
        interval (default 5 ms) so the racy interleaving is fine-grained;
        without this, each thread runs long GIL slices against frozen
        neighbor blocks and most of its relaxations are wasted.
        """
        check_positive(tol, "tol")
        A, b, dinv = self.A, self.b, self.dinv
        x = np.zeros(self.n) if x0 is None else check_vector(x0, self.n, "x0").copy()

        bounds = np.linspace(0, self.n, self.n_threads + 1).astype(np.int64)
        flags = np.zeros(self.n_threads, dtype=np.int64)  # the flag array
        iters = np.zeros(self.n_threads, dtype=np.int64)
        barrier = threading.Barrier(self.n_threads) if self.mode == "sync" else None
        b_norm = float(np.sum(np.abs(b))) or 1.0

        # Precompute per-thread nnz slices (same layout as the simulator).
        slices = []
        for t in range(self.n_threads):
            lo, hi = int(bounds[t]), int(bounds[t + 1])
            s0, s1 = int(A.indptr[lo]), int(A.indptr[hi])
            slices.append((lo, hi, s0, s1, A._row_of_nnz[s0:s1] - lo))

        def worker(tid: int) -> None:
            lo, hi, s0, s1, rowid = slices[tid]
            data = A.data[s0:s1]
            cols = A.indices[s0:s1]
            sleep_s = self.sleep_us.get(tid, 0.0) * 1e-6
            while True:
                if barrier is not None:
                    barrier.wait()
                # Racy block relaxation: read the shared x, write back.
                r = b[lo:hi] - np.bincount(rowid, weights=data * x[cols], minlength=hi - lo)
                new = x[lo:hi] + dinv[lo:hi] * r
                if barrier is not None:
                    barrier.wait()  # sync: all reads precede all writes
                x[lo:hi] = new
                iters[tid] += 1
                if sleep_s:
                    time.sleep(sleep_s)
                elif self.mode == "async":
                    time.sleep(0)  # yield the GIL: approximate concurrency
                # Local convergence check + flag protocol.
                res = float(np.sum(np.abs(b - A.matvec(x)))) / b_norm
                if res < tol or iters[tid] >= max_iterations:
                    flags[tid] = 1
                else:
                    flags[tid] = 0
                if self.mode == "sync":
                    # Everyone decides together off the same iterate.
                    if barrier is not None:
                        barrier.wait()
                    if flags.sum() == self.n_threads or iters[tid] >= max_iterations:
                        return
                else:
                    # A thread terminates only when all flags are up.
                    if flags.sum() == self.n_threads:
                        return
                    if iters[tid] >= max_iterations:
                        flags[tid] = 1
                        return

        start = time.perf_counter()
        old_interval = sys.getswitchinterval()
        sys.setswitchinterval(switch_interval)
        try:
            workers = [
                threading.Thread(target=worker, args=(t,), daemon=True)
                for t in range(self.n_threads)
            ]
            for w in workers:
                w.start()
            for w in workers:
                w.join()
        finally:
            sys.setswitchinterval(old_interval)
        wall = time.perf_counter() - start
        res = relative_residual_norm(A, x, b)
        return ThreadedResult(
            x=x,
            converged=res < tol,
            iterations=iters.copy(),
            residual_norm=res,
            wall_time=wall,
        )
