"""Subdomains, neighbor discovery, and ghost layers.

Mirrors Section VI of the paper: each process owns a contiguous block of
rows (its *subdomain*); a process ``p_j`` is a *neighbor* of ``p_i`` if some
row of ``p_i`` has a nonzero whose column lies in ``p_j``'s subdomain.
During a SpMV ``p_i`` needs those columns of ``x``, which ``p_j`` sends —
``p_i`` keeps a local *ghost layer* holding the last values received.

:class:`DomainDecomposition` precomputes, for every pair of neighbors, which
global indices flow between them, so both simulators (and any real backend)
can exchange ghost data without touching the matrix again.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.matrices.sparse import CSRMatrix, _concat_ranges
from repro.util.errors import PartitionError


@dataclass(frozen=True)
class Subdomain:
    """Everything one rank needs to relax its rows.

    Attributes
    ----------
    rank
        Owner id.
    rows
        Global row indices owned (sorted).
    matrix
        The local row slice ``A[rows, :]`` (columns still global).
    recv_from
        ``{neighbor rank: global column indices needed from that rank}``.
    send_to
        ``{neighbor rank: global row indices of ours that the neighbor needs}``.
    """

    rank: int
    rows: np.ndarray
    matrix: CSRMatrix
    recv_from: dict = field(default_factory=dict)
    send_to: dict = field(default_factory=dict)

    @property
    def size(self) -> int:
        """Number of owned rows."""
        return int(self.rows.size)

    @property
    def neighbors(self) -> list:
        """Sorted neighbor ranks (union of send and receive partners)."""
        return sorted(set(self.recv_from) | set(self.send_to))

    @property
    def ghost_columns(self) -> np.ndarray:
        """All global column indices needed from other ranks (sorted)."""
        if not self.recv_from:
            return np.empty(0, dtype=np.int64)
        return np.sort(np.concatenate(list(self.recv_from.values())))

    def local_nnz(self) -> int:
        """Stored entries in the local row block (compute cost proxy)."""
        return self.matrix.nnz


class DomainDecomposition:
    """Partition of a square matrix into per-rank subdomains with ghost maps.

    Parameters
    ----------
    A
        Global (square) matrix.
    labels
        Partition label per row (``labels[i]`` = owning rank).
    """

    def __init__(self, A: CSRMatrix, labels):
        labels = np.asarray(labels, dtype=np.int64)
        if A.nrows != A.ncols:
            raise PartitionError("domain decomposition requires a square matrix")
        if labels.shape != (A.nrows,):
            raise PartitionError(
                f"labels must have shape ({A.nrows},), got {labels.shape}"
            )
        if labels.min() < 0:
            raise PartitionError("labels must be nonnegative")
        self.matrix = A
        self.labels = labels
        self.n_parts = int(labels.max()) + 1
        counts = np.bincount(labels, minlength=self.n_parts)
        if np.any(counts == 0):
            empty = np.nonzero(counts == 0)[0]
            raise PartitionError(f"parts {empty.tolist()} own no rows")
        self.subdomains = self._build()

    def _build(self) -> list:
        A, labels = self.matrix, self.labels
        subs = []
        # For each rank: owned rows, needed external columns grouped by owner.
        for rank in range(self.n_parts):
            rows = np.nonzero(labels == rank)[0].astype(np.int64)
            local = A.row_slice(rows)
            starts = A.indptr[rows]
            counts = A.indptr[rows + 1] - starts
            nz = _concat_ranges(starts, counts)
            cols = A.indices[nz]
            external = np.unique(cols[labels[cols] != rank])
            recv_from = {}
            if external.size:
                owners = labels[external]
                for nbr in np.unique(owners):
                    recv_from[int(nbr)] = external[owners == nbr]
            subs.append(
                Subdomain(rank=rank, rows=rows, matrix=local, recv_from=recv_from)
            )
        # Mirror receive maps into send maps.
        for sub in subs:
            for nbr, cols in sub.recv_from.items():
                subs[nbr].send_to[sub.rank] = cols
        return subs

    def __len__(self) -> int:
        return self.n_parts

    def __getitem__(self, rank: int) -> Subdomain:
        return self.subdomains[rank]

    def __iter__(self):
        return iter(self.subdomains)

    def total_ghost_values(self) -> int:
        """Total ghost-layer size across ranks (communication volume proxy)."""
        return int(sum(s.ghost_columns.size for s in self.subdomains))

    def max_local_nnz(self) -> int:
        """Largest per-rank nnz (the sync-mode critical path per iteration)."""
        return max(s.local_nnz() for s in self.subdomains)
