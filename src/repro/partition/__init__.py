"""Partitioning substrate: METIS substitute, subdomains, ghost layers."""

from repro.partition.partitioner import (
    bandwidth,
    bfs_bisection_partition,
    contiguous_partition,
    edge_cut,
    part_sizes,
    partition_permutation,
    rcm_ordering,
)
from repro.partition.subdomain import DomainDecomposition, Subdomain

__all__ = [
    "bandwidth",
    "bfs_bisection_partition",
    "contiguous_partition",
    "edge_cut",
    "part_sizes",
    "partition_permutation",
    "rcm_ordering",
    "DomainDecomposition",
    "Subdomain",
]
