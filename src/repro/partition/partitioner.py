"""Graph partitioning: the METIS substitute.

The paper partitions its distributed test matrices with METIS and assigns
each MPI process a contiguous block of (reordered) rows. METIS is not
available offline, so we provide:

* :func:`contiguous_partition` — split ``range(n)`` into ``parts`` nearly
  equal contiguous blocks (what the shared-memory implementation uses, and
  exactly right for grid-ordered FD matrices);
* :func:`bfs_bisection_partition` — a recursive BFS ("graph growing")
  bisection over the matrix graph, the classic cheap METIS substitute: each
  half is grown breadth-first from a peripheral vertex, yielding connected,
  low-cut parts;
* :func:`partition_permutation` — renumber rows so every part is contiguous,
  matching the paper's "each process owns contiguous rows" layout.

Partitions are represented as an int64 label array ``part[i] in [0, parts)``.
"""

from __future__ import annotations

import numpy as np

from repro.matrices.sparse import CSRMatrix, _concat_ranges
from repro.util.errors import PartitionError


def contiguous_partition(n: int, parts: int) -> np.ndarray:
    """Labels for splitting ``range(n)`` into nearly equal contiguous blocks.

    The first ``n % parts`` blocks get one extra row, so block sizes differ
    by at most one.
    """
    if parts < 1:
        raise PartitionError(f"parts must be >= 1, got {parts}")
    if parts > n:
        raise PartitionError(f"cannot split {n} rows into {parts} parts")
    base, extra = divmod(n, parts)
    sizes = np.full(parts, base, dtype=np.int64)
    sizes[:extra] += 1
    return np.repeat(np.arange(parts, dtype=np.int64), sizes)


def part_sizes(labels: np.ndarray, parts: int) -> np.ndarray:
    """Rows per part for a label array."""
    return np.bincount(labels, minlength=parts)


def _bfs_order(A: CSRMatrix, nodes: np.ndarray, start: int) -> np.ndarray:
    """BFS order over the subgraph induced by ``nodes`` from ``start``.

    Unreached nodes (disconnected components) are appended in index order so
    the result is always a permutation of ``nodes``.
    """
    in_set = np.zeros(A.nrows, dtype=bool)
    in_set[nodes] = True
    visited = np.zeros(A.nrows, dtype=bool)
    order = []
    frontier = np.array([start], dtype=np.int64)
    visited[start] = True
    while frontier.size:
        order.append(frontier)
        starts = A.indptr[frontier]
        counts = A.indptr[frontier + 1] - starts
        nz = _concat_ranges(starts, counts)
        nbrs = A.indices[nz]
        nbrs = np.unique(nbrs[in_set[nbrs] & ~visited[nbrs]])
        visited[nbrs] = True
        frontier = nbrs
    ordered = np.concatenate(order) if order else np.empty(0, dtype=np.int64)
    if ordered.size < nodes.size:
        rest = nodes[~visited[nodes]]
        ordered = np.concatenate((ordered, rest))
    return ordered


def _peripheral_vertex(A: CSRMatrix, nodes: np.ndarray) -> int:
    """A pseudo-peripheral vertex of the induced subgraph (2 BFS sweeps)."""
    first = int(nodes[0])
    far = int(_bfs_order(A, nodes, first)[-1])
    return int(_bfs_order(A, nodes, far)[-1])


def bfs_bisection_partition(A: CSRMatrix, parts: int) -> np.ndarray:
    """Recursive BFS bisection of the matrix graph into ``parts`` parts.

    At each level the node set is ordered breadth-first from a
    pseudo-peripheral vertex and split by target sizes, producing connected,
    roughly balanced parts with modest edge cuts — the behaviour the paper
    relies on METIS for. ``parts`` need not be a power of two.
    """
    if parts < 1:
        raise PartitionError(f"parts must be >= 1, got {parts}")
    n = A.nrows
    if parts > n:
        raise PartitionError(f"cannot split {n} rows into {parts} parts")
    labels = np.zeros(n, dtype=np.int64)

    # Work queue of (node_set, first_label, n_parts_for_set).
    stack = [(np.arange(n, dtype=np.int64), 0, parts)]
    while stack:
        nodes, label0, k = stack.pop()
        if k == 1:
            labels[nodes] = label0
            continue
        k_left = k // 2
        # Split node count proportionally to the part counts.
        n_left = (nodes.size * k_left) // k
        n_left = min(max(n_left, k_left), nodes.size - (k - k_left))
        start = _peripheral_vertex(A, nodes)
        order = _bfs_order(A, nodes, start)
        stack.append((np.sort(order[:n_left]), label0, k_left))
        stack.append((np.sort(order[n_left:]), label0 + k_left, k - k_left))
    return labels


def rcm_ordering(A: CSRMatrix) -> np.ndarray:
    """Reverse Cuthill-McKee ordering of the matrix graph.

    Returns a permutation ``perm`` (apply with ``A.submatrix(perm)``) that
    clusters each row's neighbors nearby, shrinking the bandwidth. Useful
    before :func:`contiguous_partition`: contiguous blocks of an
    RCM-reordered matrix have small ghost layers, approximating a graph
    partition without the bisection machinery — handy for the shared-memory
    simulator, whose threads own contiguous blocks by construction.

    Handles disconnected graphs by restarting from the lowest-degree
    unvisited vertex.
    """
    n = A.nrows
    degree = A.row_nnz() - (A.diagonal() != 0)
    visited = np.zeros(n, dtype=bool)
    order = np.empty(n, dtype=np.int64)
    pos = 0
    while pos < n:
        unvisited = np.nonzero(~visited)[0]
        start = int(unvisited[np.argmin(degree[unvisited])])
        # Pseudo-peripheral refinement: one BFS hop to a farthest vertex.
        far = _bfs_order(A, unvisited, start)[-1]
        start = int(far)
        queue = [start]
        visited[start] = True
        while queue:
            v = queue.pop(0)
            order[pos] = v
            pos += 1
            nbrs = A.neighbors(v)
            nbrs = nbrs[~visited[nbrs]]
            visited[nbrs] = True
            # Cuthill-McKee visits neighbors in increasing degree order.
            queue.extend(nbrs[np.argsort(degree[nbrs], kind="stable")].tolist())
    return order[::-1].copy()


def bandwidth(A: CSRMatrix) -> int:
    """Maximum ``|i - j|`` over stored entries (0 for diagonal matrices)."""
    if A.nnz == 0:
        return 0
    return int(np.max(np.abs(A._row_of_nnz - A.indices)))


def partition_permutation(labels: np.ndarray) -> np.ndarray:
    """Permutation ``perm`` making parts contiguous: new row k = old ``perm[k]``.

    A stable sort by label, so row order within a part is preserved. Apply
    with ``A.submatrix(perm)``; the permuted matrix then has part ``p``
    owning a contiguous row range, as the paper's distributed layout assumes.
    """
    return np.argsort(labels, kind="stable").astype(np.int64)


def edge_cut(A: CSRMatrix, labels: np.ndarray) -> int:
    """Number of (undirected) matrix-graph edges crossing part boundaries."""
    rows = A._row_of_nnz
    cols = A.indices
    off = rows != cols
    crossing = labels[rows[off]] != labels[cols[off]]
    # Each undirected edge appears twice in a symmetric matrix.
    return int(np.count_nonzero(crossing) // 2)
