"""Metrics registry: counters, gauges, histograms, per-agent aggregation.

A :class:`Metrics` registry can be used directly (``metrics.counter("x")``)
or attached to a :class:`~repro.observability.tracer.Tracer`, which then
derives the standard run metrics from the event stream — relaxations per
agent, message latency, residual level and decay rate, read-staleness
distribution — so the executors carry exactly one instrumentation path:
they emit events, and everything else is derived.

Everything exports to a flat JSON-ready dict via :meth:`Metrics.as_dict`
(used by ``python -m repro trace`` and the observability benchmark).
"""

from __future__ import annotations

import json
import math
import os

from repro.observability import events as ev


class Counter:
    """Monotonic event count."""

    def __init__(self):
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (default 1) to the count."""
        self.value += amount


class Gauge:
    """Last-written value (plus the time it was written, when given)."""

    def __init__(self):
        self.value = None
        self.time = None

    def set(self, value: float, time: float | None = None) -> None:
        """Record the current level (and optionally when it was observed)."""
        self.value = float(value)
        self.time = time


class Histogram:
    """Fixed-bucket histogram with running count/sum/min/max.

    ``bounds`` are the inclusive upper edges of the finite buckets; values
    above the last bound land in the implicit overflow bucket. The default
    bounds are decade-spaced, which suits both second-scale latencies and
    integer staleness lags.
    """

    DEFAULT_BOUNDS = (
        1e-9, 1e-8, 1e-7, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1,
        1.0, 10.0, 100.0, 1000.0,
    )

    def __init__(self, bounds=None):
        self.bounds = tuple(float(b) for b in (bounds or self.DEFAULT_BOUNDS))
        if list(self.bounds) != sorted(self.bounds):
            raise ValueError("histogram bounds must be increasing")
        self.bucket_counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        """Record one sample."""
        value = float(value)
        self.count += 1
        self.sum += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[i] += 1
                return
        self.bucket_counts[-1] += 1

    @property
    def mean(self) -> float:
        """Sample mean (nan when empty)."""
        return self.sum / self.count if self.count else math.nan

    def summary(self) -> dict:
        """Count/sum/mean/min/max plus the non-empty buckets."""
        out = {"count": self.count, "sum": self.sum, "mean": self.mean}
        if self.count:
            out["min"] = self.min
            out["max"] = self.max
        buckets = {}
        for i, c in enumerate(self.bucket_counts):
            if not c:
                continue
            label = f"<={self.bounds[i]:g}" if i < len(self.bounds) else "overflow"
            buckets[label] = c
        if buckets:
            out["buckets"] = buckets
        return out


class Metrics:
    """A named registry of counters, gauges and histograms.

    Instruments are keyed by ``(name, agent)``; ``agent=None`` is the
    run-global aggregate. The per-kind derivation rules from trace events
    live in :meth:`record_event`, so a tracer with a ``metrics=`` registry
    attached populates all standard metrics without any executor help.
    """

    def __init__(self):
        self._counters: dict = {}
        self._gauges: dict = {}
        self._histograms: dict = {}
        # Residual-decay bookkeeping: first and last observation seen.
        self._first_obs = None
        self._last_obs = None

    # -- instrument accessors (create on first use) --------------------
    def counter(self, name: str, agent: int | None = None) -> Counter:
        """The counter ``name`` for ``agent`` (created empty on first use)."""
        return self._counters.setdefault((name, agent), Counter())

    def gauge(self, name: str, agent: int | None = None) -> Gauge:
        """The gauge ``name`` for ``agent``."""
        return self._gauges.setdefault((name, agent), Gauge())

    def histogram(self, name: str, agent: int | None = None, bounds=None) -> Histogram:
        """The histogram ``name`` for ``agent``."""
        key = (name, agent)
        if key not in self._histograms:
            self._histograms[key] = Histogram(bounds=bounds)
        return self._histograms[key]

    # -- event-stream derivation ---------------------------------------
    def record_event(self, event) -> None:
        """Fold one trace event into the standard run metrics."""
        kind, agent, data = event.kind, event.agent, event.data
        if kind == ev.RELAX:
            n_rows = len(data.get("rows", ()))
            self.counter("relaxations").inc(n_rows)
            self.counter("steps").inc()
            if agent is not None:
                self.counter("relaxations", agent).inc(n_rows)
            for lag in data.get("staleness", ()):
                self.histogram("staleness", bounds=(0, 1, 2, 4, 8, 16, 32)).observe(lag)
        elif kind == ev.SEND:
            self.counter("messages_sent").inc()
            if agent is not None:
                self.counter("messages_sent", agent).inc()
        elif kind == ev.RECV:
            self.counter("messages_received").inc()
            if agent is not None:
                self.counter("messages_received", agent).inc()
            latency = data.get("latency")
            if latency is not None:
                self.histogram("message_latency").observe(latency)
        elif kind == ev.ACK:
            self.counter("acks_received").inc()
        elif kind == ev.DELAY:
            self.counter("delays").inc()
            self.histogram("delay_seconds").observe(data.get("seconds", 0.0))
        elif kind == ev.FAULT:
            self.counter("faults").inc()
            reason = data.get("reason")
            if reason:
                self.counter(f"faults.{reason}").inc()
        elif kind == ev.DETECT:
            self.counter(f"detections.{data.get('status', 'dead')}").inc()
        elif kind == ev.OBSERVE:
            residual = data.get("residual")
            if residual is not None:
                self.gauge("residual").set(residual, time=event.time)
                obs = (event.time, float(residual))
                if self._first_obs is None:
                    self._first_obs = obs
                self._last_obs = obs
                self._update_decay_rate()
        elif kind == ev.CONVERGENCE:
            self.gauge("converged_at").set(event.time)
        elif kind == ev.REQUEST:
            # Solver-service lifecycle: one counter per phase, plus the
            # submit-to-complete latency distribution when reported.
            self.counter(f"service.{data.get('phase', 'unknown')}").inc()
            latency = data.get("latency")
            if latency is not None:
                self.histogram("service.latency").observe(latency)

    def _update_decay_rate(self) -> None:
        """Residual-decay rate in decades per unit simulated time."""
        (t0, r0), (t1, r1) = self._first_obs, self._last_obs
        if t1 > t0 and r0 > 0 and r1 > 0:
            rate = (math.log10(r0) - math.log10(r1)) / (t1 - t0)
            self.gauge("residual_decay_rate").set(rate)

    # -- export ---------------------------------------------------------
    def as_dict(self) -> dict:
        """JSON-ready nested view: ``{metric: value-or-summary}``.

        Per-agent instruments appear under ``"<name>/agent<k>"``; the
        unlabelled entry is the run-global aggregate.
        """

        def label(name, agent):
            return name if agent is None else f"{name}/agent{agent}"

        out = {}
        for (name, agent), c in sorted(self._counters.items(), key=str):
            out[label(name, agent)] = c.value
        for (name, agent), g in sorted(self._gauges.items(), key=str):
            out[label(name, agent)] = g.value
        for (name, agent), h in sorted(self._histograms.items(), key=str):
            out[label(name, agent)] = h.summary()
        return out

    def to_json(self, path=None) -> str:
        """Serialize :meth:`as_dict` (optionally also writing it to a file)."""
        text = json.dumps(self.as_dict(), indent=2, sort_keys=True)
        if path is not None:
            with open(os.fspath(path), "w", encoding="utf-8") as fh:
                fh.write(text + "\n")
        return text
