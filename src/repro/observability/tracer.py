"""The tracer: one emission point for every executor's observability.

A :class:`Tracer` owns a list of sinks and an optional
:class:`~repro.observability.metrics.Metrics` registry. Executors accept
``tracer=`` and, once per run, resolve it to either the tracer (enabled) or
``None`` (absent, or every sink is a :class:`NullSink`) — so a disabled
tracer costs nothing on the hot path, and event payloads are only built
when someone is listening. ``trace_reads=True`` additionally asks the
simulators to capture per-row read versions (the Section IV-A trace), which
is what the replay bridge needs; it costs the same bookkeeping as the
simulators' ``record_trace`` option and is therefore opt-in.
"""

from __future__ import annotations

import time as _time

from repro.observability import events as ev
from repro.observability.events import TraceEvent
from repro.observability.sinks import RingBufferSink


class Tracer:
    """Emits structured :class:`TraceEvent` records to pluggable sinks.

    Parameters
    ----------
    sinks
        Sink instances; defaults to one unbounded
        :class:`~repro.observability.sinks.RingBufferSink`.
    metrics
        Optional :class:`~repro.observability.metrics.Metrics` registry;
        every emitted event is folded into it (one instrumentation path —
        executors never update metrics directly).
    trace_reads
        Ask simulators to capture per-row read versions on relax events,
        enabling the trace→reconstruction bridge
        (:mod:`repro.observability.replay`).
    """

    def __init__(self, sinks=None, metrics=None, trace_reads: bool = False):
        self.sinks = list(sinks) if sinks is not None else [RingBufferSink()]
        self.metrics = metrics
        self.trace_reads = bool(trace_reads)
        self._seq = 0
        self._live = [s for s in self.sinks if s.enabled]

    @property
    def enabled(self) -> bool:
        """Whether any sink (or a metrics registry) is listening."""
        return bool(self._live) or self.metrics is not None

    def events(self) -> list:
        """Events retained by the first ring-buffer sink (else empty)."""
        for sink in self.sinks:
            if isinstance(sink, RingBufferSink):
                return sink.events()
        return []

    def close(self) -> None:
        """Close every sink (flushes file sinks)."""
        for sink in self.sinks:
            sink.close()

    # -- core emission ---------------------------------------------------
    def emit(self, kind: str, time: float, agent: int | None = None, **data) -> None:
        """Build one event and fan it out to sinks and metrics."""
        event = TraceEvent(
            kind=kind,
            time=float(time),
            seq=self._seq,
            agent=agent,
            data=data,
            wall=_time.perf_counter(),
        )
        self._seq += 1
        for sink in self._live:
            sink.emit(event)
        if self.metrics is not None:
            self.metrics.record_event(event)

    # -- kind-specific conveniences (thin wrappers, keep call sites terse)
    def relax(self, time, agent, rows, reads=None, staleness=None) -> None:
        """One parallel step / block commit of ``rows`` at ``time``."""
        data = {"rows": [int(r) for r in rows]}
        if reads is not None:
            data["reads"] = reads
        if staleness is not None:
            data["staleness"] = staleness
        self.emit(ev.RELAX, time, agent, **data)

    def send(self, time, agent, dst, n_values, seq=None) -> None:
        """A boundary put left ``agent`` for ``dst``."""
        data = {"dst": int(dst), "n_values": int(n_values)}
        if seq is not None:
            data["seq"] = int(seq)
        self.emit(ev.SEND, time, agent, **data)

    def recv(self, time, agent, src, n_values, seq=None, latency=None) -> None:
        """A put landed at ``agent`` and was applied."""
        data = {"src": int(src) if src is not None else None, "n_values": int(n_values)}
        if seq is not None:
            data["seq"] = int(seq)
        if latency is not None:
            data["latency"] = float(latency)
        self.emit(ev.RECV, time, agent, **data)

    def ack(self, time, agent, src, seq) -> None:
        """A reliable-put ack from ``src`` reached the sender ``agent``."""
        self.emit(ev.ACK, time, agent, src=int(src), seq=int(seq))

    def delay(self, time, agent, seconds) -> None:
        """An injected delay put ``agent`` to sleep for ``seconds``."""
        self.emit(ev.DELAY, time, agent, seconds=float(seconds))

    def fault(self, time, agent, reason, **extra) -> None:
        """A fault-machinery incident (crash hit, drop, restart, ...)."""
        self.emit(ev.FAULT, time, agent, reason=reason, **extra)

    def detect(self, time, target, status) -> None:
        """The failure detector changed its mind about ``target``."""
        self.emit(ev.DETECT, time, None, target=int(target), status=status)

    def observe(self, time, residual, relaxations) -> None:
        """A residual observation was recorded."""
        self.emit(
            ev.OBSERVE, time, None, residual=float(residual),
            relaxations=int(relaxations),
        )

    def convergence(self, time, residual, tol) -> None:
        """The observed residual first crossed the tolerance."""
        self.emit(
            ev.CONVERGENCE, time, None, residual=float(residual), tol=float(tol)
        )

    def request(self, time, phase: str, key: str, **data) -> None:
        """A solver-service request changed lifecycle phase.

        ``time`` is service wall-clock seconds since the server started
        (the service has no simulated clock); ``key`` is the short
        content hash identifying the request. Extra payload keys —
        ``group``, ``batch``, ``latency``, ``reason`` — are documented
        on :data:`repro.observability.events.REQUEST`.
        """
        self.emit(ev.REQUEST, time, None, phase=str(phase), key=str(key), **data)

    def run_start(self, executor: str, n: int, **config) -> None:
        """A run began (``executor`` names the emitting class)."""
        self.emit(ev.RUN_START, 0.0, None, executor=executor, n=int(n), **config)

    def run_end(self, time, converged: bool, relaxations: int) -> None:
        """The run finished."""
        self.emit(
            ev.RUN_END, time, None, converged=bool(converged),
            relaxations=int(relaxations),
        )


def resolve(tracer) -> Tracer | None:
    """The once-per-run hot-path guard: a live tracer or None.

    Executors call this at the top of ``run`` and then test the result for
    ``None`` — never the tracer itself — so a missing or all-null-sink
    tracer costs exactly one branch per event afterwards.
    """
    if tracer is not None and tracer.enabled:
        return tracer
    return None
