"""The trace→reconstruction bridge: check a real run against Theorem 1.

Section IV-A's reconstruction decides which relaxations of a *real*
execution trace can be expressed as propagation matrices
``G-hat(k) = I - D-hat(k) A``. The simulators emit that trace through the
:class:`~repro.observability.tracer.Tracer` (``trace_reads=True``); this
module closes the loop:

1. :func:`to_execution_trace` converts relax events into the
   :class:`~repro.core.reconstruct.ExecutionTrace` the reconstruction
   consumes. Events that carry explicit per-row ``reads`` (the simulators'
   racy reads) are used verbatim; events without reads (the model
   executor, whose relaxations always read the current state) have
   exact-information reads synthesized from the matrix graph.
2. :func:`replay_report` runs the reconstruction, replays the full
   reconstructed application order — propagated parallel steps and
   out-of-band relaxations alike, each one a propagation-matrix
   application — through :class:`~repro.core.model.AsyncJacobiModel` via a
   :class:`~repro.core.schedules.TraceSchedule`, and checks Theorem 1's
   prediction for weakly diagonally dominant systems: the residual 1-norm
   never increases. Violating steps are reported individually.

The check is method-aware (``method=`` mirrors the run flag): scaled
methods keep the Theorem-1 residual 1-norm check, step-async SOR replays
sequentially and checks Vigna's error sup-norm bound on M-matrices, and
momentum methods replay without a per-step assertion.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.model import AsyncJacobiModel
from repro.core.reconstruct import (
    ExecutionTrace,
    ReconstructionResult,
    reconstruct_propagation_steps,
)
from repro.core.schedules import TraceSchedule
from repro.matrices.sparse import CSRMatrix
from repro.methods import Guarantee, make_method
from repro.methods.kernels import sor_step_dense
from repro.observability import events as ev
from repro.util.errors import ScheduleError
from repro.util.norms import relative_residual_norm


def relax_events(events) -> list:
    """The relax events of a captured stream, in emission order."""
    return sorted(
        (e for e in events if e.kind == ev.RELAX), key=lambda e: e.seq
    )


def to_execution_trace(events, A: CSRMatrix) -> ExecutionTrace:
    """Convert captured relax events into a Section IV-A execution trace.

    Each relax event contributes one recorded relaxation per row. Events
    carrying explicit ``reads`` (one ``{neighbor: version}`` dict per row,
    as the simulators capture with ``trace_reads=True``) are recorded
    verbatim. Events without reads are treated as exact-information steps:
    every row reads the current version of each matrix-graph neighbor as of
    the start of its step — precisely the model executor's semantics — with
    the version ledger maintained here.
    """
    rels = relax_events(events)
    n = A.nrows
    trace = ExecutionTrace(n)
    version = np.zeros(n, dtype=np.int64)
    for e in rels:
        rows = e.data["rows"]
        reads = e.data.get("reads")
        if reads is not None:
            if len(reads) != len(rows):
                raise ScheduleError(
                    f"relax event at t={e.time} has {len(rows)} rows but "
                    f"{len(reads)} read dicts"
                )
            for row, row_reads in zip(rows, reads):
                trace.record(int(row), e.time, row_reads)
        else:
            # Exact information: all rows of the step read the pre-step
            # state of their neighbors.
            for row in rows:
                row_reads = {int(j): int(version[j]) for j in A.neighbors(int(row))}
                trace.record(int(row), e.time, row_reads)
        version[np.asarray(rows, dtype=np.int64)] += 1
    return trace


@dataclass
class ReplayReport:
    """Outcome of replaying a captured trace against the model.

    Attributes
    ----------
    n_relaxations
        Row relaxations in the trace.
    n_steps
        Applications in the reconstructed order (parallel steps plus
        out-of-band single relaxations).
    fraction_propagated
        The Figure 2 metric: share of relaxations expressible as
        propagation-matrix steps.
    valid_sequence
        True when every reconstructed application is a well-formed
        propagation step (non-empty, in-range, duplicate-free rows) —
        checked by construction via the schedule/model validation.
    residuals
        Relative residual 1-norm after each replayed application
        (index 0 = initial state).
    errors
        Error sup-norm against the dense solution after each application
        — populated only for the ``"error_sup"`` check (step-async SOR).
    method
        Name of the iteration method the trace was replayed as.
    norm
        Which per-step norm check ran: ``"residual_l1"`` (Theorem 1
        family), ``"error_sup"`` (Vigna's SOR bound) or ``None`` (no
        check — e.g. momentum methods).
    guarantee
        The method's :class:`~repro.methods.Guarantee` on this matrix.
    monotone
        The per-method check: no step increased the checked norm beyond
        floating-point slack (vacuously True when ``norm`` is None).
    violations
        ``(step, before, after)`` for each step that increased the
        checked norm beyond the slack (empty when ``monotone``).
    reconstruction
        The underlying :class:`ReconstructionResult`.
    x
        The replayed final iterate.
    """

    n_relaxations: int = 0
    n_steps: int = 0
    fraction_propagated: float = 1.0
    valid_sequence: bool = True
    residuals: list = field(default_factory=list)
    errors: list = field(default_factory=list)
    method: str = "jacobi"
    norm: str | None = "residual_l1"
    guarantee: Guarantee | None = None
    monotone: bool = True
    violations: list = field(default_factory=list)
    reconstruction: ReconstructionResult = None
    x: np.ndarray = None

    @property
    def verdict(self) -> str:
        """One-line human-readable verdict."""
        if self.norm is None:
            state = f"no per-step norm check for method {self.method!r}"
        elif self.monotone:
            what = (
                "error sup-norm" if self.norm == "error_sup"
                else "residual 1-norm"
            )
            state = f"{what} non-increasing ({self.method} bound holds)"
        else:
            what = (
                "error sup-norm" if self.norm == "error_sup"
                else "residual 1-norm"
            )
            state = f"{len(self.violations)} step(s) increased the {what}"
        return (
            f"{self.n_relaxations} relaxations -> {self.n_steps} propagation "
            f"steps, {self.fraction_propagated:.2%} propagated; {state}"
        )


def replay_report(
    events,
    A: CSRMatrix,
    b,
    x0=None,
    omega: float = 1.0,
    method=None,
    rtol: float = 1e-9,
    atol: float = 1e-13,
) -> ReplayReport:
    """Reconstruct a captured trace and verify its method's bound stepwise.

    ``A``, ``b``, ``x0``, ``omega`` and ``method`` must match the captured
    run (the trace records schedules and reads, not data). The
    non-increase check on each step is ``after <= before * (1 + rtol) +
    atol``: norms are recomputed in floating point, so exact ties wobble
    at machine precision, and once the value is deep below 1 the noise
    floor of one recomputation dominates any ``rtol`` proportional to the
    value itself; ``atol`` absorbs it.

    Which norm is checked follows the method's
    :meth:`~repro.methods.Method.guarantee`:

    * scaled methods (Jacobi, damped Jacobi, Richardson) replay through
      the model and check the Theorem-1 residual 1-norm non-increase —
      for a weakly diagonally dominant ``A`` (generally: when the
      generalized row condition holds) a violation beyond the slack means
      the captured execution cannot be explained by the paper's model
      with the recorded reads;
    * step-async SOR replays each reconstructed application as a
      *sequential* step (rows in recorded order, latest values) and
      checks Vigna's error sup-norm non-increase against the dense
      solution — enforced only when the matrix is M-matrix-like and
      ``omega <= 1`` (the theorem's hypotheses);
    * momentum methods (richardson2) replay for the record but assert
      nothing: momentum legitimately overshoots per-step.
    """
    method_obj = make_method(method, omega=omega)
    guarantee = method_obj.guarantee(A)
    trace = to_execution_trace(events, A)
    rec = reconstruct_propagation_steps(trace)
    report = ReplayReport(
        n_relaxations=len(trace),
        n_steps=len(rec.applied),
        fraction_propagated=rec.fraction_propagated,
        reconstruction=rec,
        method=method_obj.name,
        norm=guarantee.norm,
        guarantee=guarantee,
    )
    if not rec.applied:
        AsyncJacobiModel(A, b, omega=omega, method=method_obj)  # validates A
        x = np.zeros(A.nrows) if x0 is None else np.asarray(x0, dtype=float)
        report.x = x.copy()
        report.residuals = [relative_residual_norm(A, x, b, ord=1)]
        return report

    steps_rows = [rows for rows, _propagated in rec.applied]

    if guarantee.norm == "error_sup":
        # Vigna's bound is on the error, so the replay tracks the iterate
        # against the dense solution (analysis-size systems only — same
        # regime as the reconstruction itself). Each application relaxes
        # its rows sequentially with latest values, matching the
        # simulators' in-block sweeps.
        b_arr = np.asarray(b, dtype=np.float64)
        x = (
            np.zeros(A.nrows)
            if x0 is None
            else np.asarray(x0, dtype=np.float64).copy()
        )
        x_true = np.linalg.solve(A.to_dense(), b_arr)
        scale = method_obj.scale(A)
        report.errors = [float(np.max(np.abs(x - x_true)))]
        report.residuals = [relative_residual_norm(A, x, b_arr, ord=1)]
        try:
            for rows in steps_rows:
                rows_arr = np.asarray(rows, dtype=np.int64)
                if rows_arr.size and (
                    rows_arr.min() < 0 or rows_arr.max() >= A.nrows
                ):
                    raise ScheduleError("replayed rows out of range")
                sor_step_dense(A, b_arr, scale, x, rows_arr)
                report.errors.append(float(np.max(np.abs(x - x_true))))
                report.residuals.append(
                    relative_residual_norm(A, x, b_arr, ord=1)
                )
        except ScheduleError:
            report.valid_sequence = False
            report.monotone = False
            return report
        report.x = x
        if guarantee.holds:
            for k in range(1, len(report.errors)):
                before, after = report.errors[k - 1], report.errors[k]
                if after > before * (1.0 + rtol) + atol:
                    report.violations.append((k, before, after))
            report.monotone = not report.violations
        return report

    # Replay the full reconstructed order (propagated and out-of-band
    # applications alike — each is one propagation-matrix application)
    # through the model under the run's own method.
    steps = [(float(k + 1), rows) for k, rows in enumerate(steps_rows)]
    schedule = TraceSchedule(A.nrows, steps)
    try:
        model = AsyncJacobiModel(A, b, omega=omega, method=method_obj)
        result = model.run(
            schedule,
            x0=x0,
            tol=np.finfo(float).tiny,
            max_steps=len(steps),
            record_every=1,
            residual_norm_ord=1,
            residual_mode="full",
        )
    except ScheduleError:
        report.valid_sequence = False
        report.monotone = False
        return report
    report.residuals = list(result.residual_norms)
    report.x = result.x
    if guarantee.norm == "residual_l1":
        for k in range(1, len(report.residuals)):
            before, after = report.residuals[k - 1], report.residuals[k]
            if after > before * (1.0 + rtol) + atol:
                report.violations.append((k, before, after))
        report.monotone = not report.violations
    return report
