"""The trace→reconstruction bridge: check a real run against Theorem 1.

Section IV-A's reconstruction decides which relaxations of a *real*
execution trace can be expressed as propagation matrices
``G-hat(k) = I - D-hat(k) A``. The simulators emit that trace through the
:class:`~repro.observability.tracer.Tracer` (``trace_reads=True``); this
module closes the loop:

1. :func:`to_execution_trace` converts relax events into the
   :class:`~repro.core.reconstruct.ExecutionTrace` the reconstruction
   consumes. Events that carry explicit per-row ``reads`` (the simulators'
   racy reads) are used verbatim; events without reads (the model
   executor, whose relaxations always read the current state) have
   exact-information reads synthesized from the matrix graph.
2. :func:`replay_report` runs the reconstruction, replays the full
   reconstructed application order — propagated parallel steps and
   out-of-band relaxations alike, each one a propagation-matrix
   application — through :class:`~repro.core.model.AsyncJacobiModel` via a
   :class:`~repro.core.schedules.TraceSchedule`, and checks Theorem 1's
   prediction for weakly diagonally dominant systems: the residual 1-norm
   never increases. Violating steps are reported individually.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.model import AsyncJacobiModel
from repro.core.reconstruct import (
    ExecutionTrace,
    ReconstructionResult,
    reconstruct_propagation_steps,
)
from repro.core.schedules import TraceSchedule
from repro.matrices.sparse import CSRMatrix
from repro.observability import events as ev
from repro.util.errors import ScheduleError


def relax_events(events) -> list:
    """The relax events of a captured stream, in emission order."""
    return sorted(
        (e for e in events if e.kind == ev.RELAX), key=lambda e: e.seq
    )


def to_execution_trace(events, A: CSRMatrix) -> ExecutionTrace:
    """Convert captured relax events into a Section IV-A execution trace.

    Each relax event contributes one recorded relaxation per row. Events
    carrying explicit ``reads`` (one ``{neighbor: version}`` dict per row,
    as the simulators capture with ``trace_reads=True``) are recorded
    verbatim. Events without reads are treated as exact-information steps:
    every row reads the current version of each matrix-graph neighbor as of
    the start of its step — precisely the model executor's semantics — with
    the version ledger maintained here.
    """
    rels = relax_events(events)
    n = A.nrows
    trace = ExecutionTrace(n)
    version = np.zeros(n, dtype=np.int64)
    for e in rels:
        rows = e.data["rows"]
        reads = e.data.get("reads")
        if reads is not None:
            if len(reads) != len(rows):
                raise ScheduleError(
                    f"relax event at t={e.time} has {len(rows)} rows but "
                    f"{len(reads)} read dicts"
                )
            for row, row_reads in zip(rows, reads):
                trace.record(int(row), e.time, row_reads)
        else:
            # Exact information: all rows of the step read the pre-step
            # state of their neighbors.
            for row in rows:
                row_reads = {int(j): int(version[j]) for j in A.neighbors(int(row))}
                trace.record(int(row), e.time, row_reads)
        version[np.asarray(rows, dtype=np.int64)] += 1
    return trace


@dataclass
class ReplayReport:
    """Outcome of replaying a captured trace against the model.

    Attributes
    ----------
    n_relaxations
        Row relaxations in the trace.
    n_steps
        Applications in the reconstructed order (parallel steps plus
        out-of-band single relaxations).
    fraction_propagated
        The Figure 2 metric: share of relaxations expressible as
        propagation-matrix steps.
    valid_sequence
        True when every reconstructed application is a well-formed
        propagation step (non-empty, in-range, duplicate-free rows) —
        checked by construction via the schedule/model validation.
    residuals
        Relative residual 1-norm after each replayed application
        (index 0 = initial state).
    monotone
        Theorem 1's check: no step increased the residual 1-norm beyond
        floating-point slack.
    violations
        ``(step, before, after)`` for each step that increased the
        residual beyond the slack (empty when ``monotone``).
    reconstruction
        The underlying :class:`ReconstructionResult`.
    x
        The replayed final iterate.
    """

    n_relaxations: int = 0
    n_steps: int = 0
    fraction_propagated: float = 1.0
    valid_sequence: bool = True
    residuals: list = field(default_factory=list)
    monotone: bool = True
    violations: list = field(default_factory=list)
    reconstruction: ReconstructionResult = None
    x: np.ndarray = None

    @property
    def verdict(self) -> str:
        """One-line human-readable verdict."""
        state = (
            "residual 1-norm non-increasing (Theorem 1 holds)"
            if self.monotone
            else f"{len(self.violations)} step(s) increased the residual 1-norm"
        )
        return (
            f"{self.n_relaxations} relaxations -> {self.n_steps} propagation "
            f"steps, {self.fraction_propagated:.2%} propagated; {state}"
        )


def replay_report(
    events,
    A: CSRMatrix,
    b,
    x0=None,
    omega: float = 1.0,
    rtol: float = 1e-9,
    atol: float = 1e-13,
) -> ReplayReport:
    """Reconstruct a captured trace and verify Theorem 1 step by step.

    ``A``, ``b``, ``x0`` and ``omega`` must match the captured run (the
    trace records schedules and reads, not data). The non-increase check
    on each step is ``after <= before * (1 + rtol) + atol``: residuals
    are recomputed in floating point, so exact ties wobble at machine
    precision, and once the (relative) residual is deep below 1 the noise
    floor of one recomputation — a few eps in relative-residual units —
    dominates any ``rtol`` proportional to the residual itself; ``atol``
    absorbs it. For a weakly diagonally dominant ``A`` every application
    in the reconstructed order is a propagation-matrix step, so Theorem 1
    predicts ``monotone=True``; a violation beyond the slack means the
    captured execution cannot be explained by the paper's model with the
    recorded reads (or the wrong system was passed in).
    """
    trace = to_execution_trace(events, A)
    rec = reconstruct_propagation_steps(trace)
    report = ReplayReport(
        n_relaxations=len(trace),
        n_steps=len(rec.applied),
        fraction_propagated=rec.fraction_propagated,
        reconstruction=rec,
    )
    if not rec.applied:
        model = AsyncJacobiModel(A, b, omega=omega)
        x = np.zeros(A.nrows) if x0 is None else np.asarray(x0, dtype=float)
        report.x = x.copy()
        from repro.util.norms import relative_residual_norm

        report.residuals = [relative_residual_norm(A, x, b, ord=1)]
        return report

    # Replay the full reconstructed order (propagated and out-of-band
    # applications alike — each is one propagation-matrix application).
    steps = [
        (float(k + 1), rows) for k, (rows, _propagated) in enumerate(rec.applied)
    ]
    schedule = TraceSchedule(A.nrows, steps)
    try:
        model = AsyncJacobiModel(A, b, omega=omega)
        result = model.run(
            schedule,
            x0=x0,
            tol=np.finfo(float).tiny,
            max_steps=len(steps),
            record_every=1,
            residual_norm_ord=1,
            residual_mode="full",
        )
    except ScheduleError:
        report.valid_sequence = False
        report.monotone = False
        return report
    report.residuals = list(result.residual_norms)
    report.x = result.x
    for k in range(1, len(report.residuals)):
        before, after = report.residuals[k - 1], report.residuals[k]
        if after > before * (1.0 + rtol) + atol:
            report.violations.append((k, before, after))
    report.monotone = not report.violations
    return report
