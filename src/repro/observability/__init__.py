"""Observability layer: structured trace events, metrics, and replay.

Three cooperating pieces (see docs/observability.md):

* :mod:`repro.observability.tracer` — a :class:`Tracer` emitting
  schema-versioned :class:`~repro.observability.events.TraceEvent` records
  (relaxations, message send/recv/ack, delays, fault injection/detection,
  convergence crossings) to pluggable sinks: an in-memory
  :class:`~repro.observability.sinks.RingBufferSink`, a rotating
  :class:`~repro.observability.sinks.JSONLSink`, or the near-zero-overhead
  :class:`~repro.observability.sinks.NullSink`;
* :mod:`repro.observability.metrics` — a :class:`Metrics` registry of
  counters, gauges and histograms (relaxations per agent, message latency,
  residual-decay rate, staleness distribution), aggregated per rank/thread
  and exportable to JSON;
* :mod:`repro.observability.replay` — the trace→reconstruction bridge:
  converts captured events into the
  :class:`~repro.core.reconstruct.ExecutionTrace` the Section IV-A
  reconstruction consumes, replays the reconstructed propagation-matrix
  sequence through the model executor, and checks Theorem 1's residual
  1-norm non-increase step by step.

All three executors (:class:`~repro.core.model.AsyncJacobiModel`,
:class:`~repro.runtime.shared.SharedMemoryJacobi`,
:class:`~repro.runtime.distributed.DistributedJacobi`) accept a
``tracer=`` keyword; with ``tracer=None`` (the default) or an all-null-sink
tracer the hot paths are untouched.
"""

from __future__ import annotations

from repro.observability.events import (
    ACK,
    CONVERGENCE,
    DELAY,
    DETECT,
    FAULT,
    OBSERVE,
    RECV,
    RELAX,
    RUN_END,
    RUN_START,
    SCHEMA_VERSION,
    SEND,
    TraceEvent,
)
from repro.observability.metrics import Counter, Gauge, Histogram, Metrics
from repro.observability.replay import (
    ReplayReport,
    replay_report,
    to_execution_trace,
)
from repro.observability.sinks import JSONLSink, NullSink, RingBufferSink, Sink
from repro.observability.tracer import Tracer

__all__ = [
    "ACK",
    "CONVERGENCE",
    "Counter",
    "DELAY",
    "DETECT",
    "FAULT",
    "Gauge",
    "Histogram",
    "JSONLSink",
    "Metrics",
    "NullSink",
    "OBSERVE",
    "RECV",
    "RELAX",
    "RUN_END",
    "RUN_START",
    "ReplayReport",
    "RingBufferSink",
    "SCHEMA_VERSION",
    "SEND",
    "Sink",
    "TraceEvent",
    "Tracer",
    "replay_report",
    "to_execution_trace",
]
