"""Event sinks: where the tracer's events go.

Three built-ins, all sharing the tiny :class:`Sink` interface:

* :class:`NullSink` — ``enabled = False``; a tracer whose every sink is
  null reports itself disabled, and executors then skip event construction
  entirely, so a wired-but-disabled tracer costs one attribute check per
  run (the <2% overhead budget of ``benchmarks/bench_observability.py``);
* :class:`RingBufferSink` — keeps the last ``capacity`` events in memory;
  the default for tests and the replay bridge;
* :class:`JSONLSink` — appends one JSON object per line to a file, with a
  schema-version header line and size-based rotation, so long runs can be
  archived and replayed offline.
"""

from __future__ import annotations

import json
import os
import threading
from collections import deque

from repro.observability.events import SCHEMA_VERSION, TraceEvent


class Sink:
    """Interface every event sink implements."""

    #: Disabled sinks are skipped at emit time; a tracer with no enabled
    #: sink short-circuits before events are even built.
    enabled = True

    def emit(self, event: TraceEvent) -> None:
        """Consume one event (must not mutate it)."""
        raise NotImplementedError

    def close(self) -> None:
        """Flush and release resources (no-op by default)."""


class NullSink(Sink):
    """Discards everything; marks the tracer disabled."""

    enabled = False

    def emit(self, event: TraceEvent) -> None:
        """Drop the event."""


class RingBufferSink(Sink):
    """In-memory ring holding the newest ``capacity`` events.

    Parameters
    ----------
    capacity
        Maximum retained events; older ones are dropped (and counted in
        :attr:`dropped`) once the ring is full. ``None`` retains
        everything — the right choice for replay, where losing the front
        of the trace would desynchronize version counting.
    """

    def __init__(self, capacity: int | None = None):
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be >= 1 or None, got {capacity}")
        self.capacity = capacity
        self._ring = deque(maxlen=capacity)
        #: Events evicted because the ring was full.
        self.dropped = 0

    def emit(self, event: TraceEvent) -> None:
        """Append, evicting (and counting) the oldest event when full."""
        if self.capacity is not None and len(self._ring) == self.capacity:
            self.dropped += 1
        self._ring.append(event)

    def events(self) -> list:
        """The retained events, oldest first."""
        return list(self._ring)

    def clear(self) -> None:
        """Empty the ring (keeps the drop counter)."""
        self._ring.clear()

    def __len__(self) -> int:
        return len(self._ring)


class JSONLSink(Sink):
    """Appends events to a JSON-lines file with size-based rotation.

    The first line of every file is a header object
    ``{"schema_version": ..., "kind": "__header__"}``; readers use it to
    reject traces from a different schema. When the file would exceed
    ``max_bytes`` it is rotated: the current file moves to ``<path>.1``
    (shifting older rotations to ``.2`` ... ``.<backups>``, the oldest
    falling off), and a fresh file (with a fresh header) is started.

    Emission is thread-safe: a lock serializes the serialize-write-rotate
    sequence, so concurrent writers (the solver service's asyncio tasks
    hand events over from executor threads) never interleave partial
    lines or race a rotation. Single-threaded emitters pay one uncontended
    lock acquisition per event.

    Parameters
    ----------
    path
        Target file.
    max_bytes
        Rotation threshold; ``None`` disables rotation.
    backups
        How many rotated files to keep.
    """

    def __init__(self, path, max_bytes: int | None = None, backups: int = 3):
        if max_bytes is not None and max_bytes < 1:
            raise ValueError(f"max_bytes must be >= 1 or None, got {max_bytes}")
        if backups < 1:
            raise ValueError(f"backups must be >= 1, got {backups}")
        self.path = os.fspath(path)
        self.max_bytes = max_bytes
        self.backups = int(backups)
        self._lock = threading.Lock()
        self._fh = open(self.path, "w", encoding="utf-8")
        self._written = self._write_header()

    def _write_header(self) -> int:
        header = json.dumps({"kind": "__header__", "schema_version": SCHEMA_VERSION})
        self._fh.write(header + "\n")
        return len(header) + 1

    def _rotate(self) -> None:
        self._fh.close()
        for i in range(self.backups, 1, -1):
            older = f"{self.path}.{i - 1}"
            if os.path.exists(older):
                os.replace(older, f"{self.path}.{i}")
        os.replace(self.path, f"{self.path}.1")
        self._fh = open(self.path, "w", encoding="utf-8")
        self._written = self._write_header()

    def emit(self, event: TraceEvent) -> None:
        """Write one event line, rotating first if it would overflow."""
        line = json.dumps(event.to_json_dict()) + "\n"
        with self._lock:
            if self.max_bytes is not None and self._written + len(line) > self.max_bytes:
                self._rotate()
            self._fh.write(line)
            self._written += len(line)

    def close(self) -> None:
        """Flush and close the current file."""
        with self._lock:
            if not self._fh.closed:
                self._fh.close()

    @staticmethod
    def read(path) -> list:
        """Load the events of one JSONL trace file (header verified)."""
        events = []
        with open(os.fspath(path), encoding="utf-8") as fh:
            for i, line in enumerate(fh):
                payload = json.loads(line)
                if i == 0:
                    if payload.get("kind") != "__header__":
                        raise ValueError(f"{path} has no trace header line")
                    version = payload.get("schema_version")
                    if version != SCHEMA_VERSION:
                        raise ValueError(
                            f"{path} has schema version {version}, "
                            f"this reader expects {SCHEMA_VERSION}"
                        )
                    continue
                events.append(TraceEvent.from_json_dict(payload))
        return events
