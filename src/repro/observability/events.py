"""Structured trace events: the schema of everything the tracer emits.

Every event is a :class:`TraceEvent` carrying its *kind*, the simulated
(model) time at which it happened, a monotonic per-tracer sequence number,
the agent (thread/rank) it concerns, a wall-clock stamp, and a kind-specific
payload dict. The payload keys per kind are documented in
``docs/observability.md`` (the schema reference); :data:`SCHEMA_VERSION` is
bumped whenever a kind is added or a payload key changes meaning, and the
JSONL sink writes it in a header line so archived traces stay parseable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

#: Version of the event schema; written by file sinks, checked by readers.
#: v2 added the ``request`` kind (solver-service request lifecycle).
SCHEMA_VERSION = 2

#: One parallel step / block commit: ``rows`` relaxed at ``time``. Payload:
#: ``rows`` (list), optional ``reads`` (per-row ``{neighbor: version}``
#: dicts, captured when the tracer traces reads), optional ``staleness``
#: (per-read version lag at commit time).
RELAX = "relax"
#: A boundary-value put left an agent. Payload: ``dst``, ``n_values``,
#: optional ``seq`` (reliable protocol).
SEND = "send"
#: A put landed and was applied. Payload: ``src``, ``n_values``, optional
#: ``seq``, optional ``latency`` (simulated seconds in flight).
RECV = "recv"
#: A reliable-protocol acknowledgement arrived back at the sender.
#: Payload: ``src`` (the acking rank), ``seq``.
ACK = "ack"
#: An injected delay put an agent to sleep. Payload: ``seconds``.
DELAY = "delay"
#: A fault-machinery incident: scripted crash encountered, restart,
#: dropped/corrupted put, retry exhausted. Payload: ``reason`` plus
#: reason-specific keys (``dst``, ``seq``, ...).
FAULT = "fault"
#: The failure detector declared an agent dead (or recovered). Payload:
#: ``target``, ``status`` ("dead" | "alive" | "adopted").
DETECT = "detect"
#: A residual observation. Payload: ``residual``, ``relaxations``.
OBSERVE = "observe"
#: The observed residual first crossed the tolerance. Payload:
#: ``residual``, ``tol``.
CONVERGENCE = "convergence"
#: Run lifecycle markers. Payload: ``executor``, ``n``, plus executor
#: config on start; ``converged``, ``relaxations`` on end.
RUN_START = "run_start"
RUN_END = "run_end"
#: A solver-service request changed lifecycle phase
#: (:mod:`repro.service`). Payload: ``phase`` ("submit" | "joined" |
#: "cache_hit" | "reject" | "expire" | "dispatch" | "complete" |
#: "error"), ``key`` (short request hash), optional ``group`` (short
#: coalescing-class hash), optional ``batch`` (requests coalesced into
#: the same execution), optional ``latency`` (submit-to-complete wall
#: seconds), optional ``reason`` (reject/error detail).
REQUEST = "request"

#: Every kind the current schema defines.
KINDS = frozenset(
    {
        RELAX,
        SEND,
        RECV,
        ACK,
        DELAY,
        FAULT,
        DETECT,
        OBSERVE,
        CONVERGENCE,
        RUN_START,
        RUN_END,
        REQUEST,
    }
)


def _jsonable(value):
    """Recursively coerce numpy scalars/arrays into JSON-encodable values."""
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, dict):
        return {_jsonable(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return value


@dataclass(frozen=True)
class TraceEvent:
    """One structured observability event.

    Attributes
    ----------
    kind
        One of the module-level kind constants (:data:`KINDS`).
    time
        Simulated/model time of the event (seconds or unit steps,
        whichever clock the emitting executor runs on).
    seq
        Monotonic per-tracer sequence number; total-orders events even
        when simulated times tie.
    agent
        Thread/rank the event concerns (None for run-global events).
    data
        Kind-specific payload (see the kind constants' docs).
    wall
        Host ``perf_counter`` stamp at emission, for overhead attribution.
    """

    kind: str
    time: float
    seq: int
    agent: int | None = None
    data: dict = field(default_factory=dict)
    wall: float = 0.0

    def to_json_dict(self) -> dict:
        """Flat JSON-encodable view (numpy payloads coerced to lists)."""
        return {
            "kind": self.kind,
            "time": self.time,
            "seq": self.seq,
            "agent": self.agent,
            "data": _jsonable(self.data),
            "wall": self.wall,
        }

    @classmethod
    def from_json_dict(cls, payload: dict) -> "TraceEvent":
        """Inverse of :meth:`to_json_dict` (reads archived JSONL traces)."""
        return cls(
            kind=payload["kind"],
            time=float(payload["time"]),
            seq=int(payload["seq"]),
            agent=payload.get("agent"),
            data=payload.get("data", {}),
            wall=float(payload.get("wall", 0.0)),
        )
