"""Request coalescing: group compatible concurrent requests into batches.

The server drains its admission queue in *windows* (everything that
arrived within ``batch_window`` seconds, up to a size cap) and hands the
window to :func:`coalesce`, which partitions it into execution units:

* **batches** — two or more requests sharing a
  :func:`~repro.service.requests.group_key` (same matrix, same schedule
  realization, same method and stopping parameters, different
  ``b_seed``/``x0_seed``). A batch runs as one
  :class:`~repro.perf.batched.BatchedAsyncJacobiModel` execution; the
  per-step Python dispatch cost is paid once for the whole batch instead
  of once per request, which is where the service's throughput
  multiplier comes from. Oversized classes are chunked at
  ``max_batch`` so one hot group cannot monopolize a dispatch cycle.
* **singletons** — requests whose class has no companion in the window.
  They take the sequential path, optionally fanned out across a process
  pool via :func:`repro.perf.runner.run_cells`.

Coalescing is a pure scheduling decision: results are bit-identical
either way (see :mod:`repro.service.executor`), so the grouping can be
greedy and window-local without affecting answers — only latency.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class CoalescePlan:
    """The execution units one dispatch window was partitioned into.

    Attributes
    ----------
    batches
        Lists of window entries, each list one batched execution (every
        list has >= 2 entries and one shared group key).
    singletons
        Entries left to the sequential/process-pool path.
    """

    batches: list = field(default_factory=list)
    singletons: list = field(default_factory=list)

    @property
    def coalesced(self) -> int:
        """How many requests ride in batches (the coalescing win)."""
        return sum(len(b) for b in self.batches)

    @property
    def executions(self) -> int:
        """Solver executions this plan costs (batches + singletons)."""
        return len(self.batches) + len(self.singletons)


def coalesce(entries, group_key_of, max_batch: int = 64) -> CoalescePlan:
    """Partition a dispatch window into batches and singletons.

    Parameters
    ----------
    entries
        The window's requests, in arrival order.
    group_key_of
        Callable mapping an entry to its coalescing-class key.
    max_batch
        Largest batch to emit; bigger classes are chunked (arrival order
        preserved inside each chunk). A trailing chunk of size 1 stays a
        batch of its class only if a full companion chunk exists;
        otherwise it is a singleton.

    Returns
    -------
    CoalescePlan
        Batches of mutually compatible entries plus leftover singletons.
    """
    if max_batch < 2:
        raise ValueError(f"max_batch must be >= 2, got {max_batch}")
    by_class: dict = {}
    order: list = []
    for entry in entries:
        key = group_key_of(entry)
        if key not in by_class:
            by_class[key] = []
            order.append(key)
        by_class[key].append(entry)
    plan = CoalescePlan()
    for key in order:
        members = by_class[key]
        if len(members) == 1:
            plan.singletons.append(members[0])
            continue
        for at in range(0, len(members), max_batch):
            chunk = members[at : at + max_batch]
            if len(chunk) == 1:
                plan.singletons.append(chunk[0])
            else:
                plan.batches.append(chunk)
    return plan
