"""Solver-as-a-service: concurrent solve requests over the repro engines.

The package composes the repo's perf and observability subsystems behind
one asyncio boundary (the ROADMAP's "millions of users" direction):

* :mod:`repro.service.requests` — the wire format:
  :class:`SolveRequest`, content-hash keys, and the typed
  :class:`ServiceError` taxonomy.
* :mod:`repro.service.batching` — the coalescer that turns a dispatch
  window into batched executions plus singletons.
* :mod:`repro.service.executor` — the cell functions (sequential
  reference path, batched group path) with the bit-identity contract.
* :mod:`repro.service.server` — :class:`SolverService`: admission
  control, single-flight dedup, shared cache, metrics and JSONL request
  traces.
* :mod:`repro.service.loadgen` — workload generator and the p50/p99
  load report behind ``python -m repro serve`` and
  ``benchmarks/bench_service.py``.

See ``docs/service.md`` for the architecture guide.
"""

from repro.service.batching import CoalescePlan, coalesce
from repro.service.executor import run_group, run_single
from repro.service.loadgen import LoadReport, make_workload, run_load, run_serial
from repro.service.requests import (
    BadRequestError,
    DeadlineExceededError,
    ServiceClosedError,
    ServiceError,
    ServiceOverloadedError,
    SolveRequest,
)
from repro.service.server import SolverService

__all__ = [
    "BadRequestError",
    "CoalescePlan",
    "DeadlineExceededError",
    "LoadReport",
    "ServiceClosedError",
    "ServiceError",
    "ServiceOverloadedError",
    "SolveRequest",
    "SolverService",
    "coalesce",
    "make_workload",
    "run_group",
    "run_load",
    "run_serial",
    "run_single",
]
