"""The asyncio solver service: admission, coalescing, dispatch, tracing.

:class:`SolverService` is the composition point the ROADMAP's
"solver-as-a-service" item asks for: it accepts
:class:`~repro.service.requests.SolveRequest` objects from any number of
concurrent asyncio tasks and serves them through the repo's existing
machinery — the batched trial engine for compatible groups, the cached
parallel runner for singletons, one shared
:class:`~repro.perf.cache.ExperimentCache` across all requests, and the
observability :class:`~repro.observability.metrics.Metrics` registry plus
a per-request ``TraceEvent`` JSONL sink for debugging.

Request lifecycle::

    submit ──► single-flight? ──► cache? ──► admission ──► queue
                (join twin)      (answer)    (shed/accept)   │
                                                             ▼
    complete ◄── execute (batched / pooled) ◄── coalesce ◄── window

Guarantees:

* **bit-identity** — responses equal a direct
  :class:`~repro.core.model.AsyncJacobiModel` /
  :class:`~repro.perf.batched.BatchedAsyncJacobiModel` run of the same
  config, byte for byte; coalescing reorders scheduling, never
  arithmetic.
* **single-flight** — concurrent identical requests trigger exactly one
  computation; latecomers join the in-flight future.
* **bounded queue** — at most ``max_queue`` requests wait for dispatch;
  the next submit is shed *immediately* with a typed
  :class:`~repro.service.requests.ServiceOverloadedError`, so overload
  produces fast failures, not unbounded memory growth or hangs.
* **deadlines** — a request still queued when its ``deadline`` (or the
  service's ``default_deadline``) expires is dropped with
  :class:`~repro.service.requests.DeadlineExceededError` instead of
  wasting solver time.

See ``docs/service.md`` for the architecture discussion and knob table.
"""

from __future__ import annotations

import asyncio
import functools
import time
from dataclasses import dataclass

from repro.observability.metrics import Metrics
from repro.observability.sinks import JSONLSink
from repro.observability.tracer import Tracer
from repro.perf.cache import ExperimentCache
from repro.perf.runner import run_cells
from repro.service import executor as _executor
from repro.service.batching import coalesce
from repro.service.requests import (
    DeadlineExceededError,
    ServiceClosedError,
    ServiceOverloadedError,
    SolveRequest,
    _short,
    spec_key,
)

#: Queue sentinel telling the dispatcher to exit.
_STOP = None


@dataclass
class _Job:
    """One admitted request waiting for (or in) dispatch."""

    key: str
    group: str
    spec: dict
    future: asyncio.Future
    submitted: float
    deadline: float | None


class SolverService:
    """Serve concurrent solve requests with coalescing, caching, shedding.

    Parameters
    ----------
    cache
        Shared :class:`~repro.perf.cache.ExperimentCache`; defaults to a
        fresh instance on the default directory (still honoring
        ``REPRO_NO_CACHE``).
    use_cache
        ``False`` disables lookups *and* stores — every request computes.
        Single-flight dedup stays active either way.
    max_queue
        Admission bound: maximum requests queued or executing. The next
        submit beyond it is shed with ``ServiceOverloadedError``.
    batch_window
        Seconds the dispatcher lingers collecting companions for the
        request that opened the window. Longer windows coalesce more but
        add up to ``batch_window`` latency to the first request.
    max_batch
        Largest coalesced execution (bigger classes are chunked).
    window_cap
        Most requests drained into one dispatch cycle.
    singleton_workers
        ``max_workers`` for the :func:`~repro.perf.runner.run_cells`
        singleton path: ``0`` (default) runs singletons serially in the
        dispatch thread; ``> 1`` fans them out across a process pool.
    default_deadline
        Deadline in seconds applied to requests that carry none.
    metrics
        :class:`~repro.observability.metrics.Metrics` registry to wire
        into the service tracer; defaults to a fresh registry, exposed
        as :attr:`metrics`.
    trace_path
        When set, every request lifecycle event is appended to this
        JSONL file (``request`` kind, schema v2) for offline debugging.
    """

    def __init__(
        self,
        *,
        cache: ExperimentCache | None = None,
        use_cache: bool = True,
        max_queue: int = 256,
        batch_window: float = 0.002,
        max_batch: int = 64,
        window_cap: int = 512,
        singleton_workers: int = 0,
        default_deadline: float | None = None,
        metrics: Metrics | None = None,
        trace_path=None,
    ):
        if max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {max_queue}")
        if batch_window < 0:
            raise ValueError(f"batch_window must be >= 0, got {batch_window}")
        if max_batch < 2:
            raise ValueError(f"max_batch must be >= 2, got {max_batch}")
        if window_cap < 1:
            raise ValueError(f"window_cap must be >= 1, got {window_cap}")
        self.cache = cache if cache is not None else ExperimentCache()
        self.use_cache = bool(use_cache)
        self.max_queue = int(max_queue)
        self.batch_window = float(batch_window)
        self.max_batch = int(max_batch)
        self.window_cap = int(window_cap)
        self.singleton_workers = int(singleton_workers)
        self.default_deadline = default_deadline
        self.metrics = metrics if metrics is not None else Metrics()
        sinks = [JSONLSink(trace_path)] if trace_path is not None else []
        self.tracer = Tracer(sinks=sinks, metrics=self.metrics)
        self._queue: asyncio.Queue = asyncio.Queue()
        self._inflight: dict = {}
        self._pending = 0
        self._idle: asyncio.Event | None = None
        self._task: asyncio.Task | None = None
        self._running = False
        self._closed = False
        self._t0 = 0.0
        # Counters (event-loop-thread only; also derivable from metrics).
        self.submitted = 0
        self.completed = 0
        self.rejected = 0
        self.expired = 0
        self.errors = 0
        self.cache_hits = 0
        self.joined = 0
        self.executions = 0
        self.executed_requests = 0
        self.batches = 0
        self.batched_requests = 0
        self.max_coalesced = 0
        self.max_pending_seen = 0

    # -- lifecycle -------------------------------------------------------
    async def start(self) -> "SolverService":
        """Start the dispatcher (idempotent); returns self for chaining."""
        if self._running:
            return self
        self._t0 = time.perf_counter()
        self._idle = asyncio.Event()
        self._idle.set()
        self._task = asyncio.create_task(self._dispatch_loop())
        self._running = True
        self._closed = False
        return self

    async def stop(self) -> None:
        """Drain admitted work, stop the dispatcher, close the trace."""
        if not self._running:
            return
        self._closed = True
        await self._idle.wait()
        self._queue.put_nowait(_STOP)
        await self._task
        self._running = False
        self.tracer.close()

    async def __aenter__(self) -> "SolverService":
        """``async with SolverService(...) as svc:`` starts the service."""
        return await self.start()

    async def __aexit__(self, exc_type, exc, tb) -> None:
        """Drain and stop on context exit."""
        await self.stop()

    def _now(self) -> float:
        return time.perf_counter() - self._t0

    def _trace(self, phase: str, key: str, **data) -> None:
        if self.tracer.enabled:
            self.tracer.request(self._now(), phase, _short(key), **data)

    # -- submission ------------------------------------------------------
    async def submit(self, request: SolveRequest) -> dict:
        """Submit one request; await its result dict.

        Raises the typed :class:`~repro.service.requests.ServiceError`
        subclasses on shed (queue full), expiry (deadline passed while
        queued), closed service, or a bad spec.
        """
        if self._closed or not self._running:
            raise ServiceClosedError("service is not accepting requests")
        spec = request.spec()
        key = spec_key(spec)
        group = request.group_key()
        self.submitted += 1
        self._trace("submit", key, group=_short(group))
        twin = self._inflight.get(key)
        if twin is not None:
            # Single-flight: identical request already queued/executing.
            self.joined += 1
            self._trace("joined", key)
            return await asyncio.shield(twin)
        if self.use_cache:
            hit, value = self.cache.lookup(_executor.cache_token(spec))
            if hit:
                self.cache_hits += 1
                self._trace("cache_hit", key, latency=0.0)
                return value
        if self._pending >= self.max_queue:
            self.rejected += 1
            self._trace("reject", key, reason="queue_full")
            raise ServiceOverloadedError(
                f"admission queue full ({self.max_queue} pending); retry later"
            )
        future = asyncio.get_running_loop().create_future()
        self._inflight[key] = future
        self._pending += 1
        self.max_pending_seen = max(self.max_pending_seen, self._pending)
        self._idle.clear()
        deadline = request.deadline
        if deadline is None:
            deadline = self.default_deadline
        self._queue.put_nowait(
            _Job(
                key=key,
                group=group,
                spec=spec,
                future=future,
                submitted=self._now(),
                deadline=deadline,
            )
        )
        return await asyncio.shield(future)

    # -- dispatch --------------------------------------------------------
    async def _dispatch_loop(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            job = await self._queue.get()
            if job is _STOP:
                return
            window = [job]
            horizon = loop.time() + self.batch_window
            stop_after = False
            while len(window) < self.window_cap:
                remaining = horizon - loop.time()
                if remaining <= 0:
                    break
                try:
                    nxt = await asyncio.wait_for(self._queue.get(), remaining)
                except asyncio.TimeoutError:
                    break
                if nxt is _STOP:
                    stop_after = True
                    break
                window.append(nxt)
            await self._run_window(window)
            if stop_after:
                return

    async def _run_window(self, window: list) -> None:
        now = self._now()
        live = []
        for job in window:
            if job.deadline is not None and now - job.submitted > job.deadline:
                self.expired += 1
                self._trace("expire", job.key, reason="deadline")
                self._finish(job, exc=DeadlineExceededError(
                    f"deadline {job.deadline:.3f}s passed while queued"
                ))
            else:
                live.append(job)
        plan = coalesce(live, lambda j: j.group, max_batch=self.max_batch)
        loop = asyncio.get_running_loop()
        for batch in plan.batches:
            for job in batch:
                self._trace("dispatch", job.key, batch=len(batch))
            try:
                results = await loop.run_in_executor(
                    None, _executor.run_group, [j.spec for j in batch]
                )
            except Exception as exc:  # typed BadRequestError included
                for job in batch:
                    self._finish(job, exc=exc)
                continue
            self.executions += 1
            self.batches += 1
            self.batched_requests += len(batch)
            self.executed_requests += len(batch)
            self.max_coalesced = max(self.max_coalesced, len(batch))
            for job, result in zip(batch, results):
                if self.use_cache:
                    self.cache.store(_executor.cache_token(job.spec), result)
                self._finish(job, result=result)
        if plan.singletons:
            await self._run_singletons(loop, plan.singletons)

    async def _run_singletons(self, loop, singles: list) -> None:
        for job in singles:
            self._trace("dispatch", job.key, batch=1)
        specs = [j.spec for j in singles]
        try:
            # The process-pool dispatch path: run_cells re-checks the
            # shared cache, fans misses out (when singleton_workers > 1),
            # and stores results under the same tokens submit() consults.
            results = await loop.run_in_executor(
                None,
                functools.partial(
                    run_cells,
                    _executor.run_single,
                    specs,
                    cache=self.cache,
                    use_cache=self.use_cache,
                    max_workers=self.singleton_workers,
                ),
            )
        except Exception:
            # A failing spec poisons the set; re-run individually so one
            # bad request cannot fail its window-mates.
            for job in singles:
                try:
                    result = await loop.run_in_executor(
                        None, _executor.run_single, job.spec
                    )
                except Exception as exc:
                    self._finish(job, exc=exc)
                else:
                    self.executions += 1
                    self.executed_requests += 1
                    if self.use_cache:
                        self.cache.store(_executor.cache_token(job.spec), result)
                    self._finish(job, result=result)
            return
        self.executions += len(singles)
        self.executed_requests += len(singles)
        for job, result in zip(singles, results):
            self._finish(job, result=result)

    def _finish(self, job: _Job, result=None, exc=None) -> None:
        self._inflight.pop(job.key, None)
        self._pending -= 1
        if self._pending == 0:
            self._idle.set()
        if job.future.done():
            return  # the waiter went away; nothing to deliver
        if exc is not None:
            if not isinstance(exc, DeadlineExceededError):
                # Deadline expiry was already traced/counted as "expire".
                self.errors += 1
                self._trace("error", job.key, reason=type(exc).__name__)
            job.future.set_exception(exc)
        else:
            self.completed += 1
            self._trace("complete", job.key, latency=self._now() - job.submitted)
            job.future.set_result(result)

    # -- reporting -------------------------------------------------------
    def stats(self) -> dict:
        """Flat counter snapshot plus derived ratios (JSON-ready).

        ``coalescing_factor`` is executed requests per solver execution
        (1.0 means no batching won); ``cache_hit_rate`` counts submit-time
        hits against everything submitted.
        """
        executions = self.executions
        return {
            "submitted": self.submitted,
            "completed": self.completed,
            "rejected": self.rejected,
            "expired": self.expired,
            "errors": self.errors,
            "cache_hits": self.cache_hits,
            "single_flight_joins": self.joined,
            "executions": executions,
            "batches": self.batches,
            "batched_requests": self.batched_requests,
            "max_coalesced": self.max_coalesced,
            "max_pending_seen": self.max_pending_seen,
            "coalescing_factor": (
                self.executed_requests / executions if executions else 0.0
            ),
            "cache_hit_rate": (
                self.cache_hits / self.submitted if self.submitted else 0.0
            ),
        }
