"""Request execution: the cell functions behind the solver service.

:func:`run_single` is a module-level, picklable cell — spec in, plain
result dict out — so the server can dispatch it three ways with one
implementation:

* directly (in a worker thread) for a lone request;
* through :func:`repro.perf.runner.run_cells` for a *set* of mutually
  incompatible singletons, which adds memoization in the shared
  :class:`~repro.perf.cache.ExperimentCache` and optional process-pool
  fan-out;
* implicitly via :func:`run_group`, which stacks a whole coalescing
  class into one :class:`~repro.perf.batched.BatchedAsyncJacobiModel`
  execution and splits the trials back out.

**Bit-identity contract.** ``run_group(specs)[i] == run_single(specs[i])``
exactly — same final iterate bytes, same histories — because the batched
engine is bit-identical to the sequential model executor (PR 2's
guarantee, re-tested at the service boundary in
``tests/service/test_identity.py``). The batching layer may reorder
*scheduling*, never arithmetic, so a client cannot observe whether its
request was coalesced.

Problem construction reuses the chaos harness builders
(:func:`~repro.chaos.harness.build_matrix`,
:func:`~repro.chaos.harness.build_schedule`, ...): request specs share
their sub-spec shapes, and their validation taxonomy maps onto
:class:`~repro.service.requests.BadRequestError`.
"""

from __future__ import annotations

import numpy as np

from repro.chaos.harness import ChaosSpecError, build_b, build_matrix, build_schedule
from repro.core.model import AsyncJacobiModel, ModelResult
from repro.perf.batched import BatchedAsyncJacobiModel
from repro.service.requests import BadRequestError, group_key

#: Cache-token ``cell`` label; matches ``run_cells``'s token for
#: :func:`run_single` so every dispatch path shares one cache namespace.
CELL_NAME = f"{__name__}.run_single"


def cache_token(spec: dict) -> dict:
    """The shared-cache key token for one request spec.

    Identical to the token :func:`repro.perf.runner.run_cells` derives
    for ``run_single``, so results computed by any path — direct, pooled
    singleton, or split out of a batch — land under the same cache entry
    and are interchangeable.
    """
    return {"cell": CELL_NAME, "config": spec}


def build_problem(spec: dict) -> dict:
    """Instantiate the live objects one spec needs (matrix, b, x0, schedule).

    Raises
    ------
    BadRequestError
        If any sub-spec cannot be built (wrapping the harness's
        :class:`~repro.chaos.harness.ChaosSpecError`).
    """
    try:
        A = build_matrix(spec["matrix"])
        schedule = build_schedule(spec)
        b = build_b(spec, A.nrows)
    except ChaosSpecError as exc:
        raise BadRequestError(str(exc)) from exc
    x0 = None
    if spec.get("x0_seed") is not None:
        x0 = np.random.default_rng(int(spec["x0_seed"])).standard_normal(A.nrows)
    return {"A": A, "b": b, "x0": x0, "schedule": schedule}


def _result_dict(res: ModelResult) -> dict:
    """Plain-data view of a model result (picklable, cache-friendly)."""
    return {
        "x": res.x,
        "converged": bool(res.converged),
        "steps": int(res.steps),
        "relaxations": int(res.relaxations),
        "times": list(res.times),
        "residual_norms": list(res.residual_norms),
        "relaxation_counts": list(res.relaxation_counts),
    }


def run_single(spec: dict) -> dict:
    """Execute one request spec sequentially (the reference path).

    This is the module-level cell function the process-pool path pickles;
    its result dict is the service's unit of caching and response.
    """
    built = build_problem(spec)
    model = AsyncJacobiModel(
        built["A"], built["b"], omega=spec["omega"], method=spec.get("method")
    )
    res = model.run(
        built["schedule"],
        x0=built["x0"],
        tol=spec["tol"],
        max_steps=spec["max_steps"],
        record_every=spec["record_every"],
        residual_mode=spec["residual_mode"],
        recompute_every=spec["recompute_every"],
    )
    return _result_dict(res)


def run_group(specs: list) -> list:
    """Execute one coalescing class as a single batched computation.

    All ``specs`` must share a group key (same matrix, schedule
    realization, method and stopping parameters); they become the T
    columns of one ``(n, T)`` batched run. Returns one result dict per
    spec, in input order, each bit-identical to ``run_single(spec)``.
    """
    if not specs:
        return []
    heads = {group_key(s) for s in specs}
    if len(heads) != 1:
        raise BadRequestError(f"run_group needs one coalescing class, got {len(heads)}")
    base = specs[0]
    try:
        A = build_matrix(base["matrix"])
        schedule = build_schedule(base)
    except ChaosSpecError as exc:
        raise BadRequestError(str(exc)) from exc
    n = A.nrows
    B = np.empty((n, len(specs)), dtype=np.float64)
    X0 = None
    if any(s.get("x0_seed") is not None for s in specs):
        X0 = np.zeros((n, len(specs)))
    for t, spec in enumerate(specs):
        B[:, t] = build_b(spec, n)
        if spec.get("x0_seed") is not None:
            X0[:, t] = np.random.default_rng(int(spec["x0_seed"])).standard_normal(n)
    batched = BatchedAsyncJacobiModel(
        A, B, omega=base["omega"], method=base.get("method")
    )
    res = batched.run(
        schedule,
        X0=X0,
        tol=base["tol"],
        max_steps=base["max_steps"],
        record_every=base["record_every"],
        residual_mode=base["residual_mode"],
        recompute_every=base["recompute_every"],
    )
    return [_result_dict(res.trial(t)) for t in range(len(specs))]
