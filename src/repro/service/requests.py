"""Solve requests: the service's wire format, validation and hashing.

A :class:`SolveRequest` is plain data — a matrix spec, an iteration
method, a schedule spec (optionally fault-masked), a right-hand-side
seed and stopping parameters. Everything is JSON-like on purpose: the
canonical spec doubles as the cache key, the single-flight key and the
process-pool payload, so one representation drives admission, dedup,
memoization and execution.

Two hashes matter:

* :meth:`SolveRequest.key` — the full content hash. Two requests with
  equal keys are *the same computation*: the server answers one of them
  from the other's in-flight future (single-flight) or from the shared
  :class:`~repro.perf.cache.ExperimentCache`.
* :meth:`SolveRequest.group_key` — the hash with the per-trial fields
  (``b_seed``, ``x0_seed``) removed. Requests sharing a group key are
  *coalescible*: they differ only in data columns, so the batcher may run
  them as one :class:`~repro.perf.batched.BatchedAsyncJacobiModel`
  execution with bit-identical per-trial results.

Typed failures all derive from :class:`ServiceError`, so callers can
catch the service boundary in one clause while still telling rejection
kinds apart (bad request vs. load shed vs. deadline).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

from repro.methods import MethodError, make_method
from repro.util.errors import ReproError

#: Matrix families a request may name (the chaos harness builders).
MATRIX_FAMILIES = (
    "fd_1d",
    "fd_2d",
    "fd_3d",
    "nine_point",
    "variable_coefficient",
    "anisotropic",
)

#: Schedule kinds a request may name (built by the chaos harness).
SCHEDULE_KINDS = (
    "random_subset",
    "overlapped",
    "delayed_rows",
    "synchronous",
    "fault_masked",
)

#: Per-trial fields excluded from the coalescing class: requests that
#: differ only here run as extra columns of one batched execution.
TRIAL_FIELDS = ("b_seed", "x0_seed")


class ServiceError(ReproError):
    """Base class of every typed solver-service failure."""


class BadRequestError(ServiceError, ValueError):
    """The request is malformed (unknown family/kind, bad parameters)."""


class ServiceOverloadedError(ServiceError):
    """Admission control shed the request: the pending queue is full."""


class DeadlineExceededError(ServiceError):
    """The request's deadline passed before the solver could run it."""


class ServiceClosedError(ServiceError):
    """The service is stopped (or stopping) and accepts no new requests."""


def _short(key: str) -> str:
    """12-hex prefix used in traces and logs (full keys are unwieldy)."""
    return key[:12]


@dataclass(frozen=True)
class SolveRequest:
    """One solve job: problem, method, schedule and stopping parameters.

    Parameters
    ----------
    matrix
        ``{"family": <name>, "args": {...}}`` with ``family`` drawn from
        :data:`MATRIX_FAMILIES` (the generator keywords of
        :mod:`repro.matrices`).
    schedule
        ``{"kind": <name>, ...}`` with ``kind`` from
        :data:`SCHEDULE_KINDS`; the kind-specific keys match
        :func:`repro.chaos.harness.build_schedule`. Stochastic kinds
        carry their own ``seed``, which *is* part of the coalescing
        class — every trial of a batch must see the same realization.
    method
        Iteration method (name, spec dict or ``None`` for Jacobi), as
        accepted by :func:`repro.methods.make_method`.
    b_seed
        Seed of the standard-normal right-hand side (per-trial field).
    x0_seed
        Seed of a standard-normal initial iterate; ``None`` starts from
        zeros (per-trial field).
    agents
        Agent count used by block-structured schedules (``overlapped``,
        ``fault_masked``).
    plan
        Fault-plan spec ``{"events": [...], "seed": ...}`` consumed by
        ``fault_masked`` schedules; ``None`` otherwise.
    omega, tol, max_steps, record_every, residual_mode, recompute_every
        Forwarded to the executors with
        :class:`~repro.core.model.AsyncJacobiModel` semantics.
    deadline
        Optional per-request wall-clock budget in seconds, measured from
        submission; the dispatcher sheds the request with
        :class:`DeadlineExceededError` if it is still queued when the
        budget runs out.
    """

    matrix: dict
    schedule: dict
    method: object = None
    b_seed: int = 0
    x0_seed: int | None = None
    agents: int = 4
    plan: dict | None = None
    omega: float = 1.0
    tol: float = 1e-6
    max_steps: int = 100_000
    record_every: int = 1
    residual_mode: str = "incremental"
    recompute_every: int = 64
    deadline: float | None = field(default=None, compare=False)

    def __post_init__(self):
        if not isinstance(self.matrix, dict) or "family" not in self.matrix:
            raise BadRequestError(f"matrix must be a family spec dict, got {self.matrix!r}")
        if self.matrix["family"] not in MATRIX_FAMILIES:
            raise BadRequestError(
                f"unknown matrix family {self.matrix['family']!r}; "
                f"known: {', '.join(MATRIX_FAMILIES)}"
            )
        if not isinstance(self.schedule, dict) or "kind" not in self.schedule:
            raise BadRequestError(f"schedule must be a kind spec dict, got {self.schedule!r}")
        if self.schedule["kind"] not in SCHEDULE_KINDS:
            raise BadRequestError(
                f"unknown schedule kind {self.schedule['kind']!r}; "
                f"known: {', '.join(SCHEDULE_KINDS)}"
            )
        if self.schedule["kind"] == "fault_masked" and self.plan is None:
            raise BadRequestError("fault_masked schedules need a plan spec")
        if not 0 < float(self.omega) < 2:
            raise BadRequestError(f"omega must lie in (0, 2), got {self.omega}")
        if float(self.tol) <= 0:
            raise BadRequestError(f"tol must be positive, got {self.tol}")
        if int(self.max_steps) < 1 or int(self.record_every) < 1:
            raise BadRequestError(
                f"max_steps/record_every must be >= 1, got "
                f"{self.max_steps}/{self.record_every}"
            )
        if self.residual_mode not in ("incremental", "full"):
            raise BadRequestError(f"bad residual_mode {self.residual_mode!r}")
        if int(self.agents) < 1:
            raise BadRequestError(f"agents must be >= 1, got {self.agents}")
        if self.deadline is not None and float(self.deadline) <= 0:
            raise BadRequestError(f"deadline must be positive, got {self.deadline}")
        try:
            make_method(self.method, omega=float(self.omega))
        except MethodError as exc:
            raise BadRequestError(f"bad method spec: {exc}") from exc

    def spec(self) -> dict:
        """The canonical plain-JSON cell config executed for this request.

        The shape matches the chaos harness builders (``matrix`` /
        ``schedule`` / ``agents`` / ``plan`` sub-specs), so the service
        executor reuses their validation and construction end to end.

        The ``method`` field is canonicalized through
        :func:`repro.methods.make_method` to its round-trip spec dict, so
        ``None``, ``"jacobi"``, ``{"kind": "jacobi", "omega": 1.0}`` and a
        live :class:`~repro.methods.Method` instance — all the same
        computation — produce the same spec, hence the same cache,
        single-flight and coalescing keys.
        """
        method = make_method(self.method, omega=float(self.omega)).spec()
        return {
            "matrix": self.matrix,
            "schedule": self.schedule,
            "method": method,
            "b_seed": int(self.b_seed),
            "x0_seed": None if self.x0_seed is None else int(self.x0_seed),
            "agents": int(self.agents),
            "plan": self.plan,
            "omega": float(self.omega),
            "tol": float(self.tol),
            "max_steps": int(self.max_steps),
            "record_every": int(self.record_every),
            "residual_mode": self.residual_mode,
            "recompute_every": int(self.recompute_every),
        }

    def key(self) -> str:
        """Full content hash: equal keys are the same computation."""
        return spec_key(self.spec())

    def group_key(self) -> str:
        """Coalescing-class hash: the spec minus the per-trial fields."""
        return group_key(self.spec())


def _digest(payload: dict) -> str:
    token = json.dumps(payload, sort_keys=True, separators=(",", ":"), default=str)
    return hashlib.sha256(token.encode()).hexdigest()


def spec_key(spec: dict) -> str:
    """Content hash of a full request spec (single-flight / cache key)."""
    return _digest(spec)


def group_key(spec: dict) -> str:
    """Content hash of a spec with :data:`TRIAL_FIELDS` removed.

    Specs with equal group keys may be stacked as columns of one batched
    execution: they share the matrix, schedule realization, method and
    stopping parameters, and differ only in per-trial data.
    """
    return _digest({k: v for k, v in spec.items() if k not in TRIAL_FIELDS})
