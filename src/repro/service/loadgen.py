"""Load generation: synthetic request floods for benchmarks and the CLI.

The workload generator produces the service's canonical stress shape —
``groups`` coalescing classes (distinct schedule seeds over one stencil)
times ``per_group`` trials (distinct right-hand-side seeds), optionally
with duplicated requests sprinkled in to exercise the cache and
single-flight paths. :func:`run_load` fires the whole workload as
concurrent asyncio tasks against a :class:`~repro.service.server.
SolverService` and reports client-observed latencies (p50/p99),
throughput and the service's own counters; :func:`run_serial` times the
one-request-at-a-time baseline on the same specs, which is what the
``coalescing_speedup`` metric in ``benchmarks/results/service.json`` is
measured against.

``python -m repro serve`` wraps :func:`demo` around these pieces.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field

from repro.service import executor as _executor
from repro.service.requests import SolveRequest
from repro.service.server import SolverService


def make_workload(
    groups: int = 8,
    per_group: int = 16,
    grid: int = 12,
    tol: float = 1e-5,
    max_steps: int = 4000,
    record_every: int = 8,
    duplicates: int = 0,
    fraction: float = 0.5,
) -> list:
    """Build ``groups * per_group + duplicates`` solve requests.

    Each group is one coalescing class: a ``grid`` x ``grid`` Laplacian
    driven by a random-subset schedule with a group-specific seed; the
    trials within a group differ only in ``b_seed``. ``duplicates``
    appends exact copies of the first requests (round-robin), which the
    service must answer from the cache or by joining an in-flight twin —
    never by recomputing.
    """
    requests = []
    for g in range(groups):
        for t in range(per_group):
            requests.append(
                SolveRequest(
                    matrix={"family": "fd_2d", "args": {"nx": grid, "ny": grid}},
                    schedule={
                        "kind": "random_subset",
                        "fraction": fraction,
                        "seed": 100 + g,
                    },
                    b_seed=t,
                    tol=tol,
                    max_steps=max_steps,
                    record_every=record_every,
                )
            )
    base = len(requests)
    for d in range(duplicates):
        requests.append(requests[d % base])
    return requests


@dataclass
class LoadReport:
    """Outcome of one load-generation run against the service.

    ``latencies`` are client-observed submit-to-response times in
    seconds, sorted ascending; ``failures`` counts typed rejections and
    errors; ``stats`` is the service's counter snapshot at drain time.
    """

    wall_seconds: float
    latencies: list = field(default_factory=list)
    failures: int = 0
    stats: dict = field(default_factory=dict)

    @property
    def completed(self) -> int:
        """Requests that produced a result."""
        return len(self.latencies)

    @property
    def throughput(self) -> float:
        """Completed requests per wall-clock second."""
        return self.completed / self.wall_seconds if self.wall_seconds else 0.0

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile of the latency distribution."""
        if not self.latencies:
            return float("nan")
        rank = min(len(self.latencies) - 1, int(p / 100.0 * len(self.latencies)))
        return self.latencies[rank]


async def _drive(requests, service: SolverService) -> LoadReport:
    async def one(request):
        t0 = time.perf_counter()
        result = await service.submit(request)
        return time.perf_counter() - t0, result

    async with service:
        t0 = time.perf_counter()
        outcomes = await asyncio.gather(
            *(one(r) for r in requests), return_exceptions=True
        )
        wall = time.perf_counter() - t0
        stats = service.stats()
    latencies = sorted(o[0] for o in outcomes if not isinstance(o, BaseException))
    failures = sum(1 for o in outcomes if isinstance(o, BaseException))
    return LoadReport(
        wall_seconds=wall, latencies=latencies, failures=failures, stats=stats
    )


def run_load(requests, **service_kwargs) -> LoadReport:
    """Fire all ``requests`` concurrently at a fresh service; block, report.

    Keyword arguments configure the :class:`SolverService`; ``max_queue``
    defaults to the workload size so the full flood is admissible (pass a
    smaller bound to study shedding).
    """
    service_kwargs.setdefault("max_queue", max(1, len(requests)))
    return asyncio.run(_drive(list(requests), SolverService(**service_kwargs)))


def run_serial(requests) -> float:
    """Wall seconds to solve every request one at a time, uncached.

    This is the baseline the coalescing speedup is quoted against: the
    same specs through :func:`repro.service.executor.run_single`, no
    batching, no cache, no concurrency.
    """
    t0 = time.perf_counter()
    for request in requests:
        _executor.run_single(request.spec())
    return time.perf_counter() - t0


def demo(
    requests: int = 96,
    groups: int = 6,
    batch_window: float = 0.005,
    max_batch: int = 64,
    baseline: bool = True,
    trace_path=None,
) -> dict:
    """The ``python -m repro serve`` payload: flood, measure, summarize.

    Builds a ``groups``-class workload of ``requests`` total requests
    (plus ~12% duplicates to exercise dedup), runs it through the
    service, optionally times the serial baseline, and returns a flat
    summary dict (see :func:`format_summary`).
    """
    per_group = max(1, requests // max(1, groups))
    unique = make_workload(groups=groups, per_group=per_group)
    duplicated = make_workload(
        groups=groups, per_group=per_group, duplicates=max(1, requests // 8)
    )
    report = run_load(
        duplicated,
        batch_window=batch_window,
        max_batch=max_batch,
        use_cache=False,
        trace_path=trace_path,
    )
    summary = {
        "requests": len(duplicated),
        "completed": report.completed,
        "failures": report.failures,
        "wall_seconds": report.wall_seconds,
        "throughput_rps": report.throughput,
        "p50_seconds": report.percentile(50),
        "p99_seconds": report.percentile(99),
        "coalescing_factor": report.stats["coalescing_factor"],
        "max_coalesced": report.stats["max_coalesced"],
        "single_flight_joins": report.stats["single_flight_joins"],
        "cache_hit_rate": report.stats["cache_hit_rate"],
    }
    if baseline:
        serial_seconds = run_serial(unique)
        service_unique = run_load(
            unique,
            batch_window=batch_window,
            max_batch=max_batch,
            use_cache=False,
        )
        summary["serial_seconds"] = serial_seconds
        summary["service_seconds"] = service_unique.wall_seconds
        summary["coalescing_speedup"] = (
            serial_seconds / service_unique.wall_seconds
            if service_unique.wall_seconds
            else 0.0
        )
    return summary


def format_summary(summary: dict) -> str:
    """Human-readable digest of a :func:`demo` summary dict."""
    lines = [
        f"requests       {summary['requests']} "
        f"({summary['completed']} completed, {summary['failures']} failed)",
        f"wall           {summary['wall_seconds']:.3f}s "
        f"({summary['throughput_rps']:.0f} req/s)",
        f"latency        p50 {summary['p50_seconds'] * 1e3:.1f} ms, "
        f"p99 {summary['p99_seconds'] * 1e3:.1f} ms",
        f"coalescing     factor {summary['coalescing_factor']:.2f} "
        f"(max batch {summary['max_coalesced']})",
        f"dedup          {summary['single_flight_joins']} single-flight joins, "
        f"cache hit rate {summary['cache_hit_rate']:.0%}",
    ]
    if "coalescing_speedup" in summary:
        lines.append(
            f"vs serial      {summary['serial_seconds']:.3f}s -> "
            f"{summary['service_seconds']:.3f}s "
            f"({summary['coalescing_speedup']:.2f}x)"
        )
    return "\n".join(lines)
