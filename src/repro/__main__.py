"""Command-line runner for the paper's experiments.

Usage::

    python -m repro list                 # show available experiments
    python -m repro table1 fig3 fig6     # run specific experiments
    python -m repro all                  # run everything (several minutes)
    python -m repro --no-cache fig3      # ignore the on-disk result cache
    python -m repro --profile fig3       # profile the run, dump profile.pstats

``--no-cache`` disables the experiment-cell cache (equivalent to setting
``REPRO_NO_CACHE=1``); see docs/performance.md for the cache layout.

``--profile`` wraps the selected experiments in :mod:`cProfile`, prints the
top-20 hot spots by cumulative time, and writes the full profile to
``profile.pstats`` (inspect with ``python -m pstats profile.pstats``). It
implies ``--no-cache`` so the experiment actually runs. See
docs/performance.md.

Each experiment prints the same rows/series the paper's table or figure
reports (see EXPERIMENTS.md for the paper-vs-measured comparison).
"""

from __future__ import annotations

import os
import sys

from repro.experiments import (
    ablations,
    faults,
    fig1,
    fig2,
    fig3,
    fig4,
    fig5,
    fig6,
    fig7,
    fig8,
    fig9,
    seeds,
    table1,
    trace,
)

EXPERIMENTS = {
    "table1": table1,
    "fig1": fig1,
    "fig2": fig2,
    "fig3": fig3,
    "fig4": fig4,
    "fig5": fig5,
    "fig6": fig6,
    "fig7": fig7,
    "fig8": fig8,
    "fig9": fig9,
    "ablations": ablations,
    "seeds": seeds,
    "faults": faults,
    "trace": trace,
}


def _run(names) -> None:
    for name in names:
        mod = EXPERIMENTS[name]
        print(f"=== {name} " + "=" * max(0, 66 - len(name)))
        print(mod.format_report(mod.run()))
        print()


def main(argv=None) -> int:
    """Entry point; returns a process exit code."""
    args = list(sys.argv[1:] if argv is None else argv)
    profile = "--profile" in args
    if profile:
        args = [a for a in args if a != "--profile"]
        os.environ["REPRO_NO_CACHE"] = "1"
    if "--no-cache" in args:
        args = [a for a in args if a != "--no-cache"]
        os.environ["REPRO_NO_CACHE"] = "1"
    if not args or args == ["list"]:
        print(__doc__)
        print("available experiments:", ", ".join(EXPERIMENTS), sep="\n  ")
        return 0
    names = list(EXPERIMENTS) if args == ["all"] else args
    unknown = [a for a in names if a not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"available: {', '.join(EXPERIMENTS)}", file=sys.stderr)
        return 2
    if profile:
        import cProfile
        import pstats

        profiler = cProfile.Profile()
        profiler.enable()
        try:
            _run(names)
        finally:
            profiler.disable()
            profiler.dump_stats("profile.pstats")
            stats = pstats.Stats(profiler, stream=sys.stdout)
            stats.sort_stats("cumulative").print_stats(20)
            print("full profile written to profile.pstats")
        return 0
    _run(names)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
