"""Command-line runner for the paper's experiments.

Usage::

    python -m repro list                 # show available experiments
    python -m repro table1 fig3 fig6     # run specific experiments
    python -m repro all                  # run everything (several minutes)
    python -m repro chaos --budget 200   # adversarial property fuzzing
    python -m repro serve --requests 96  # solver-service load demo
    python -m repro scale --matrix thermal2   # Table I problem sweep
    python -m repro --no-cache fig3      # ignore the on-disk result cache
    python -m repro --profile fig3       # profile the run, dump profile.pstats

``--matrix NAME`` (``scale`` only) sweeps a Table I problem instead of the
synthetic stencil: the real SuiteSparse ``.mtx`` is read when
``$REPRO_SUITESPARSE_DIR`` holds it, the verified stand-in otherwise.

``--no-cache`` disables the experiment-cell cache (equivalent to setting
``REPRO_NO_CACHE=1``); see docs/performance.md for the cache layout.

``--profile`` wraps the selected experiments in :mod:`cProfile`, prints the
top-20 hot spots by cumulative time, and writes the full profile to
``profile.pstats`` (inspect with ``python -m pstats profile.pstats``). It
implies ``--no-cache`` so the experiment actually runs, and closes with a
delivery digest — message-coalescing counters (puts coalesced, flush batch
sizes, ledger scatter widths) from one instrumented async run. See
docs/performance.md.

``chaos`` runs the property-fuzzing campaign (:mod:`repro.chaos`): generate
``--budget`` deterministic adversarial scenarios from ``--seed``, run each
through the cached parallel runner, check Theorem-1 monotonicity, liveness,
finiteness, telemetry and batch-identity, optionally ``--shrink`` failures
to minimal corpus reproducers, and write a JSONL ``--report``. See
docs/chaos.md.

``serve`` demos the solver service (:mod:`repro.service`): flood a
coalescing :class:`~repro.service.server.SolverService` with ``--requests``
concurrent solve requests, print p50/p99 latency, the coalescing factor,
dedup counters and the speedup over the one-request-at-a-time serial
baseline; ``--trace`` archives the per-request JSONL lifecycle trace. See
docs/service.md.

Each experiment prints the same rows/series the paper's table or figure
reports (see EXPERIMENTS.md for the paper-vs-measured comparison).
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.experiments import (
    ablations,
    faults,
    fig1,
    fig2,
    fig3,
    fig4,
    fig5,
    fig6,
    fig7,
    fig8,
    fig9,
    methods,
    scale,
    seeds,
    table1,
    trace,
)

EXPERIMENTS = {
    "table1": table1,
    "fig1": fig1,
    "fig2": fig2,
    "fig3": fig3,
    "fig4": fig4,
    "fig5": fig5,
    "fig6": fig6,
    "fig7": fig7,
    "fig8": fig8,
    "fig9": fig9,
    "ablations": ablations,
    "seeds": seeds,
    "scale": scale,
    "faults": faults,
    "trace": trace,
    "methods": methods,
}

#: ``list`` output groups experiments by what part of the repo they exercise.
GROUPS = (
    ("paper tables & figures", (
        "table1", "fig1", "fig2", "fig3", "fig4", "fig5",
        "fig6", "fig7", "fig8", "fig9",
    )),
    ("parameter studies", ("ablations", "seeds", "scale")),
    ("subsystem scenarios", ("faults", "trace", "methods")),
)


def _one_liner(mod, width: int = 70) -> str:
    """First docstring line of an experiment module, truncated."""
    doc = (mod.__doc__ or "").strip().splitlines()
    line = doc[0].strip() if doc else ""
    return line if len(line) <= width else line[: width - 1] + "…"


def _print_listing() -> None:
    print(__doc__)
    print("available experiments:")
    for title, names in GROUPS:
        print(f"  {title}:")
        for name in names:
            print(f"    {name:<12}{_one_liner(EXPERIMENTS[name])}")
    print("  tools:")
    print(f"    {'chaos':<12}adversarial scenario fuzzing with property checks"
          " (--budget N [--seed S] [--shrink])")
    print(f"    {'serve':<12}solver-service load demo: coalescing, p50/p99,"
          " dedup (--requests N [--trace PATH])")


def _delivery_digest() -> None:
    """Print message-coalescing counters from one instrumented async run.

    The profiled experiments run uninstrumented so the profile measures the
    real hot paths (instrumentation forces the general event loop); this
    short representative run re-measures delivery batching separately with
    ``instrument=True`` and reports the
    :class:`~repro.perf.instrument.PerfCounters` delivery counters.
    """
    from repro.matrices.laplacian import fd_laplacian_2d
    from repro.perf.native import native_available
    from repro.runtime.distributed import DistributedJacobi
    from repro.util.rng import as_rng

    A = fd_laplacian_2d(63, 63)
    b = as_rng(1).uniform(-1, 1, A.shape[0])
    sim = DistributedJacobi(A, b, n_ranks=16, partition="contiguous", seed=1)
    backend = "native" if native_available() else "auto"
    result = sim.run_async(
        tol=1e-6, max_iterations=4000, instrument=True, relax_backend=backend
    )
    perf = result.perf
    print("delivery digest (63x63 stencil, 16 ranks, batched delivery):")
    print("  " + (perf.delivery_summary() or "no batched flushes recorded"))
    print("  kernels: " + perf.summary())
    native_line = perf.native_summary()
    if native_line:
        print("  " + native_line)


def _run(names, matrix: str | None = None) -> None:
    for name in names:
        mod = EXPERIMENTS[name]
        print(f"=== {name} " + "=" * max(0, 66 - len(name)))
        result = mod.run(matrix=matrix) if matrix is not None else mod.run()
        print(mod.format_report(result))
        print()


def _chaos_main(args) -> int:
    """The ``chaos`` subcommand: run a campaign, report, set exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro chaos",
        description="Adversarial scenario fuzzing with property checks.",
    )
    parser.add_argument("--budget", type=int, default=100,
                        help="number of scenarios to generate (default 100)")
    parser.add_argument("--seed", type=int, default=0,
                        help="campaign seed (default 0)")
    parser.add_argument("--shrink", action="store_true",
                        help="minimize failing scenarios and archive corpus "
                             "reproducers")
    parser.add_argument("--report", default="chaos_report.jsonl",
                        help="JSONL campaign report path "
                             "(default chaos_report.jsonl)")
    opts = parser.parse_args(args)
    if opts.budget < 0:
        print("--budget must be nonnegative", file=sys.stderr)
        return 2

    from repro.chaos import run_campaign

    summary = run_campaign(
        opts.budget,
        seed=opts.seed,
        shrink=opts.shrink,
        report_path=opts.report,
        log=print,
    )
    if not summary.ok:
        print(
            f"chaos: FAILED — {summary.failed}/{summary.budget} scenario(s) "
            f"violated properties: {summary.to_json()['summary']['by_property']}"
        )
        return 1
    print(f"chaos: OK — {summary.passed}/{summary.budget} scenario(s) clean")
    return 0


def _serve_main(args) -> int:
    """The ``serve`` subcommand: run the service load demo, print a digest."""
    parser = argparse.ArgumentParser(
        prog="python -m repro serve",
        description="Solver-service load demo: coalescing, p50/p99, dedup.",
    )
    parser.add_argument("--requests", type=int, default=96,
                        help="unique concurrent requests to fire (default 96)")
    parser.add_argument("--groups", type=int, default=6,
                        help="coalescing classes in the workload (default 6)")
    parser.add_argument("--window", type=float, default=0.005,
                        help="batching window in seconds (default 0.005)")
    parser.add_argument("--max-batch", type=int, default=64,
                        help="largest coalesced execution (default 64)")
    parser.add_argument("--trace", default=None,
                        help="write the per-request JSONL lifecycle trace here")
    parser.add_argument("--no-baseline", action="store_true",
                        help="skip the serial one-at-a-time baseline timing")
    opts = parser.parse_args(args)
    if opts.requests < 1 or opts.groups < 1:
        print("--requests/--groups must be positive", file=sys.stderr)
        return 2

    from repro.service.loadgen import demo, format_summary

    summary = demo(
        requests=opts.requests,
        groups=opts.groups,
        batch_window=opts.window,
        max_batch=opts.max_batch,
        baseline=not opts.no_baseline,
        trace_path=opts.trace,
    )
    print("=== serve " + "=" * 60)
    print(format_summary(summary))
    if opts.trace:
        print(f"request trace written to {opts.trace}")
    return 0 if summary["failures"] == 0 else 1


def main(argv=None) -> int:
    """Entry point; returns a process exit code."""
    args = list(sys.argv[1:] if argv is None else argv)
    profile = "--profile" in args
    if profile:
        args = [a for a in args if a != "--profile"]
        os.environ["REPRO_NO_CACHE"] = "1"
    if "--no-cache" in args:
        args = [a for a in args if a != "--no-cache"]
        os.environ["REPRO_NO_CACHE"] = "1"
    if args and args[0] == "chaos":
        return _chaos_main(args[1:])
    if args and args[0] == "serve":
        return _serve_main(args[1:])
    matrix = None
    if "--matrix" in args:
        at = args.index("--matrix")
        if at + 1 >= len(args):
            print("--matrix requires a problem name", file=sys.stderr)
            return 2
        matrix = args[at + 1]
        del args[at : at + 2]
    if not args or args == ["list"]:
        _print_listing()
        return 0
    names = list(EXPERIMENTS) if args == ["all"] else args
    unknown = [a for a in names if a not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"available: {', '.join(EXPERIMENTS)}", file=sys.stderr)
        return 2
    if matrix is not None and names != ["scale"]:
        print("--matrix only applies to the 'scale' experiment", file=sys.stderr)
        return 2
    if profile:
        import cProfile
        import pstats

        profiler = cProfile.Profile()
        profiler.enable()
        try:
            _run(names, matrix=matrix)
        finally:
            profiler.disable()
            profiler.dump_stats("profile.pstats")
            stats = pstats.Stats(profiler, stream=sys.stdout)
            stats.sort_stats("cumulative").print_stats(20)
            print("full profile written to profile.pstats")
            _delivery_digest()
        return 0
    _run(names, matrix=matrix)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
