"""Fault plans as propagation-model schedules.

Theorem 1 is a statement about the paper's exact-information model: a step
relaxes a masked subset of rows with *current* values, and a delayed, dead
or unlucky row is simply absent from the mask — its ``Ĥ(k)`` column stays
an identity column, so ``‖Ĥ(k)‖₁ = 1`` for W.D.D. ``A`` and the residual
1-norm cannot increase, whatever the mask sequence does.

:class:`FaultMaskedSchedule` maps a :class:`~repro.faults.FaultPlan` onto
that mask algebra: rows belong to agents (via a partition label vector), a
crashed agent's rows leave the mask for the crash window, and a drop burst
removes each affected row independently per step. This is how the fault
subsystem's scenarios are checked against the theorem exactly — the machine
simulators add read staleness between a relaxation and its commit, so their
*snapshot* residuals may transiently rise even though every individual
relaxation is residual-non-increasing in the model's sense.

Plan times are interpreted on the model's clock: step ``k`` relaxes at time
``k * dt`` and completes at ``(k + 1) * dt``.
"""

from __future__ import annotations

import numpy as np

from repro.core.schedules import Schedule, ScheduleStep
from repro.util.rng import as_rng


class FaultMaskedSchedule(Schedule):
    """Asynchronous masks shaped by a fault plan.

    Parameters
    ----------
    labels
        Length-n vector mapping each row to its owning agent id.
    plan
        The :class:`~repro.faults.FaultPlan`; crashes remove an agent's rows
        while it is down, drop bursts remove individual rows with the
        burst's probability. Partition windows and corruption have no
        exact-information analogue and are ignored here.
    dt
        Model seconds per parallel step (plan event times are in these
        units).
    seed
        RNG seed for the per-row drop lotteries. Falls back to
        ``plan.seed``.
    """

    def __init__(self, labels, plan, dt: float = 1.0, seed=None):
        labels = np.asarray(labels, dtype=np.int64)
        super().__init__(labels.size)
        self.labels = labels
        self.plan = plan
        self.dt = float(dt)
        self.seed = plan.seed if seed is None else seed
        self.agent_rows = {
            int(a): np.flatnonzero(labels == a) for a in np.unique(labels)
        }

    def steps(self):
        rng = as_rng(self.seed)
        k = 0
        while True:
            t = k * self.dt
            parts = []
            for agent, rows in self.agent_rows.items():
                if self.plan.is_down(agent, t):
                    continue
                p = self.plan.drop_probability(agent, t)
                if p > 0.0:
                    rows = rows[rng.random(rows.size) >= p]
                if rows.size:
                    parts.append(rows)
            mask = (
                np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)
            )
            yield ScheduleStep(time=(k + 1) * self.dt, rows=mask)
            k += 1
