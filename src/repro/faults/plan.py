"""Scripted fault scenarios for the machine simulators.

A :class:`FaultPlan` is a deterministic, declarative description of *what
goes wrong and when* during a simulated run: agents (MPI ranks or threads)
crashing and optionally restarting, network-partition windows, and timed
bursts of message drops or corruption. Plans are pure configuration — every
stochastic decision (whether a particular put inside a drop burst is lost)
is rolled by the simulator's failure RNG, so a run is reproducible from
``(plan, fault_seed)`` alone.

Plans compose with the injected-delay models in
:mod:`repro.runtime.delays`: a crash window behaves like a hang for its
duration (see :class:`repro.runtime.delays.PlanDelay`), while the
message-level queries (:meth:`FaultPlan.blocks_message`,
:meth:`FaultPlan.drop_probability`, :meth:`FaultPlan.corrupt_probability`)
have no delay-model analogue and are consulted directly by the distributed
simulator's put/ack/heartbeat machinery.

The dict-based DSL (:meth:`FaultPlan.from_spec`) exists so scenarios can be
written down in experiment scripts or JSON without importing the event
classes::

    plan = FaultPlan.from_spec([
        {"kind": "crash", "agent": 3, "at": 1e-4, "restart_after": 5e-5},
        {"kind": "partition", "group": [0, 1], "start": 2e-4, "duration": 1e-4},
        {"kind": "drop", "start": 0.0, "duration": 3e-4, "probability": 0.05},
    ])
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.util.errors import ReproError
from repro.util.validation import check_nonnegative, check_probability


class FaultPlanError(ReproError, ValueError):
    """A fault-plan event is malformed or internally inconsistent."""


def _check_time(value, name: str) -> float:
    value = float(value)
    if math.isnan(value) or value < 0:
        raise FaultPlanError(f"{name} must be a nonnegative time, got {value}")
    return value


@dataclass(frozen=True)
class Crash:
    """Agent ``agent`` dies at ``at``; with ``restart_after`` set it comes
    back ``restart_after`` simulated seconds later (ghosts re-synced by the
    simulator), otherwise it stays dead for the rest of the run."""

    agent: int
    at: float
    restart_after: float | None = None

    def __post_init__(self):
        object.__setattr__(self, "agent", int(self.agent))
        object.__setattr__(self, "at", _check_time(self.at, "at"))
        if self.restart_after is not None:
            restart = _check_time(self.restart_after, "restart_after")
            if restart == 0:
                raise FaultPlanError("restart_after must be > 0 when given")
            object.__setattr__(self, "restart_after", restart)

    @property
    def restart_time(self) -> float:
        """Absolute restart time (inf for a permanent crash)."""
        if self.restart_after is None:
            return float("inf")
        return self.at + self.restart_after

    def to_spec(self) -> dict:
        """The :meth:`FaultPlan.from_spec` dict describing this event."""
        spec = {"kind": "crash", "agent": self.agent, "at": self.at}
        if self.restart_after is not None:
            spec["restart_after"] = self.restart_after
        return spec


#: Aliases matching the two simulators' vocabularies.
RankCrash = Crash
ThreadDeath = Crash


@dataclass(frozen=True)
class PartitionWindow:
    """Network partition: during ``[start, start + duration)`` every message
    between ``group`` and its complement is lost (data, acks, heartbeats,
    residual reports alike). Traffic within each side is unaffected."""

    group: frozenset
    start: float
    duration: float

    def __post_init__(self):
        group = frozenset(int(a) for a in self.group)
        if not group:
            raise FaultPlanError("partition group must be non-empty")
        object.__setattr__(self, "group", group)
        object.__setattr__(self, "start", _check_time(self.start, "start"))
        object.__setattr__(self, "duration", _check_time(self.duration, "duration"))

    def severs(self, src: int, dst: int, t: float) -> bool:
        """Whether this window cuts the ``src -> dst`` link at time ``t``."""
        if not self.start <= t < self.start + self.duration:
            return False
        return (src in self.group) != (dst in self.group)

    def to_spec(self) -> dict:
        """The :meth:`FaultPlan.from_spec` dict describing this event."""
        return {
            "kind": "partition",
            "group": sorted(self.group),
            "start": self.start,
            "duration": self.duration,
        }


@dataclass(frozen=True)
class DropBurst:
    """During ``[start, start + duration)`` each message sent by an affected
    source is independently lost with ``probability`` (on top of any
    steady-state ``drop_probability``). ``agents=None`` affects everyone."""

    start: float
    duration: float
    probability: float
    agents: frozenset | None = None

    def __post_init__(self):
        object.__setattr__(self, "start", _check_time(self.start, "start"))
        object.__setattr__(self, "duration", _check_time(self.duration, "duration"))
        object.__setattr__(
            self, "probability", check_probability(self.probability, "probability")
        )
        if self.agents is not None:
            object.__setattr__(self, "agents", frozenset(int(a) for a in self.agents))

    def applies(self, src: int, t: float) -> bool:
        """Whether the burst covers a message sent by ``src`` at ``t``."""
        if not self.start <= t < self.start + self.duration:
            return False
        return self.agents is None or src in self.agents

    def to_spec(self) -> dict:
        """The :meth:`FaultPlan.from_spec` dict describing this event."""
        spec = {
            "kind": "corrupt" if isinstance(self, CorruptBurst) else "drop",
            "start": self.start,
            "duration": self.duration,
            "probability": self.probability,
        }
        if self.agents is not None:
            spec["agents"] = sorted(self.agents)
        return spec


@dataclass(frozen=True)
class CorruptBurst(DropBurst):
    """Like :class:`DropBurst`, but affected messages arrive with corrupted
    payloads. The reliable-put protocol detects corruption (checksum) and
    discards the message, turning it into a retried drop; the basic
    fire-and-forget protocol has no checksum, so the simulator treats the
    corrupt put as lost at the NIC (never applied) rather than letting a
    garbage payload violate Theorem 1's premises silently."""


class FaultPlan:
    """An ordered, validated collection of scripted fault events.

    Parameters
    ----------
    events
        Any mix of :class:`Crash`, :class:`PartitionWindow`,
        :class:`DropBurst` and :class:`CorruptBurst`.
    seed
        Optional default failure seed. Simulators fall back to this when no
        explicit ``fault_seed`` is passed, so a plan can carry its own
        reproducibility contract.
    """

    def __init__(self, events=(), seed=None):
        self.events = tuple(events)
        self.seed = seed
        self.crashes: dict[int, list[Crash]] = {}
        self.partitions: list[PartitionWindow] = []
        self.drop_bursts: list[DropBurst] = []
        self.corrupt_bursts: list[CorruptBurst] = []
        for ev in self.events:
            if isinstance(ev, Crash):
                self.crashes.setdefault(ev.agent, []).append(ev)
            elif isinstance(ev, CorruptBurst):
                self.corrupt_bursts.append(ev)
            elif isinstance(ev, DropBurst):
                self.drop_bursts.append(ev)
            elif isinstance(ev, PartitionWindow):
                self.partitions.append(ev)
            else:
                raise FaultPlanError(f"unknown fault event type: {ev!r}")
        for agent, crashes in self.crashes.items():
            crashes.sort(key=lambda c: c.at)
            for earlier, later in zip(crashes, crashes[1:]):
                if earlier.restart_time > later.at:
                    raise FaultPlanError(
                        f"agent {agent} crashes at t={later.at} while already down "
                        f"(previous crash at t={earlier.at} restarts at "
                        f"t={earlier.restart_time})"
                    )

    def __repr__(self) -> str:
        return f"FaultPlan({len(self.events)} events, seed={self.seed!r})"

    def __bool__(self) -> bool:
        return bool(self.events)

    # -- crash queries --------------------------------------------------
    def agents(self) -> set:
        """All agent ids with a scripted crash."""
        return set(self.crashes)

    def is_down(self, agent: int, t: float) -> bool:
        """Whether ``agent`` is crashed (and not yet restarted) at ``t``."""
        for c in self.crashes.get(agent, ()):
            if c.at <= t < c.restart_time:
                return True
        return False

    def down_forever(self, agent: int, t: float) -> bool:
        """Whether ``agent`` is down at ``t`` with no restart ever coming."""
        for c in self.crashes.get(agent, ()):
            if c.at <= t and c.restart_after is None:
                return True
        return False

    def crash_times(self, agent: int) -> list:
        """Sorted ``(crash_time, restart_time)`` pairs (restart may be inf)."""
        return [(c.at, c.restart_time) for c in self.crashes.get(agent, ())]

    def next_restart(self, agent: int, t: float) -> float | None:
        """Restart time of the crash covering ``t`` (None if none is coming)."""
        for c in self.crashes.get(agent, ()):
            if c.at <= t < c.restart_time:
                return None if c.restart_after is None else c.restart_time
        return None

    def restart_times(self, agent: int) -> list:
        """Sorted finite restart times for ``agent``."""
        return [c.restart_time for c in self.crashes.get(agent, ())
                if c.restart_after is not None]

    # -- message-level queries ------------------------------------------
    def blocks_message(self, src: int, dst: int, t: float) -> bool:
        """Whether a partition window severs ``src -> dst`` at ``t``."""
        return any(w.severs(src, dst, t) for w in self.partitions)

    def drop_probability(self, src: int, t: float) -> float:
        """Burst drop probability for a message sent by ``src`` at ``t``.

        Overlapping bursts combine as independent loss processes:
        ``1 - prod(1 - p_i)``.
        """
        keep = 1.0
        for burst in self.drop_bursts:
            if burst.applies(src, t):
                keep *= 1.0 - burst.probability
        return 1.0 - keep

    def corrupt_probability(self, src: int, t: float) -> float:
        """Burst corruption probability for a message sent by ``src`` at ``t``."""
        keep = 1.0
        for burst in self.corrupt_bursts:
            if burst.applies(src, t):
                keep *= 1.0 - burst.probability
        return 1.0 - keep

    # -- construction helpers -------------------------------------------
    #: Keys each DSL kind accepts (crash additionally takes exactly one of
    #: the agent aliases). Anything else in an entry is an error, never
    #: silently discarded — a typo like ``"restart_afer"`` must not turn a
    #: transient crash into a permanent one.
    _SPEC_KEYS = {
        "crash": frozenset({"agent", "rank", "thread", "at", "restart_after"}),
        "partition": frozenset({"group", "start", "duration"}),
        "drop": frozenset({"start", "duration", "probability", "agents"}),
        "corrupt": frozenset({"start", "duration", "probability", "agents"}),
    }

    @classmethod
    def from_spec(cls, spec, seed=None) -> "FaultPlan":
        """Build a plan from the dict-based DSL (see the module docstring).

        Each entry is a dict with a ``kind`` key: ``"crash"`` (``agent`` or
        ``rank`` or ``thread``, ``at``, optional ``restart_after``),
        ``"partition"`` (``group``, ``start``, ``duration``), ``"drop"`` /
        ``"corrupt"`` (``start``, ``duration``, ``probability``, optional
        ``agents``). Unknown keys in an entry are rejected.
        """
        events = []
        for entry in spec:
            if not isinstance(entry, dict):
                raise FaultPlanError(
                    f"fault spec entries must be dicts, got {entry!r}"
                )
            entry = dict(entry)
            kind = entry.pop("kind", None)
            allowed = cls._SPEC_KEYS.get(kind)
            if allowed is None:
                raise FaultPlanError(
                    f"unknown fault kind {kind!r}; expected crash, partition, "
                    "drop or corrupt"
                )
            unknown = sorted(set(entry) - allowed)
            if unknown:
                raise FaultPlanError(
                    f"unknown key(s) {unknown} in {kind!r} entry; allowed: "
                    f"{sorted(allowed)}"
                )
            try:
                if kind == "crash":
                    keys = [k for k in ("agent", "rank", "thread") if k in entry]
                    if len(keys) > 1:
                        raise FaultPlanError(
                            "crash entry must identify its agent by exactly "
                            f"one of 'agent'/'rank'/'thread', got {keys}"
                        )
                    agent = entry.pop(keys[0]) if keys else None
                    if agent is None:
                        raise FaultPlanError("crash entry needs an 'agent' id")
                    events.append(Crash(agent=agent, **entry))
                elif kind == "partition":
                    events.append(PartitionWindow(group=frozenset(entry.pop("group")), **entry))
                elif kind == "drop":
                    events.append(DropBurst(**entry))
                else:
                    events.append(CorruptBurst(**entry))
            except TypeError as exc:  # bad/missing dataclass fields
                raise FaultPlanError(f"malformed {kind!r} entry: {exc}") from exc
        return cls(events, seed=seed)

    def to_spec(self) -> list:
        """The lossless inverse of :meth:`from_spec`: one dict per event.

        The returned list is plain JSON data (event order preserved), so a
        plan — a shrunk chaos reproducer, say — can be archived to disk and
        reloaded without importing the event classes:
        ``FaultPlan.from_spec(plan.to_spec(), seed=plan.seed)`` rebuilds an
        equivalent plan (``seed`` is carried by the plan object, not the
        event list).
        """
        return [ev.to_spec() for ev in self.events]

    def describe(self) -> str:
        """Multi-line human-readable digest of the scripted scenario."""
        if not self.events:
            return "FaultPlan: no scripted faults"
        lines = [f"FaultPlan ({len(self.events)} events):"]
        for agent in sorted(self.crashes):
            for c in self.crashes[agent]:
                tail = (
                    f"restarts at t={c.restart_time:.3e}"
                    if c.restart_after is not None
                    else "never restarts"
                )
                lines.append(f"  crash: agent {agent} dies at t={c.at:.3e}, {tail}")
        for w in self.partitions:
            lines.append(
                f"  partition: {{{', '.join(map(str, sorted(w.group)))}}} vs rest, "
                f"t=[{w.start:.3e}, {w.start + w.duration:.3e})"
            )
        for b in self.drop_bursts:
            who = "all" if b.agents is None else f"{sorted(b.agents)}"
            lines.append(
                f"  drop burst: p={b.probability:.3g} from {who}, "
                f"t=[{b.start:.3e}, {b.start + b.duration:.3e})"
            )
        for b in self.corrupt_bursts:
            who = "all" if b.agents is None else f"{sorted(b.agents)}"
            lines.append(
                f"  corrupt burst: p={b.probability:.3g} from {who}, "
                f"t=[{b.start:.3e}, {b.start + b.duration:.3e})"
            )
        return "\n".join(lines)


#: The empty plan (no scripted faults); falsy, shared, immutable-enough.
NO_FAULTS = FaultPlan()
