"""Scripted fault scenarios and recovery semantics (see docs/fault_tolerance.md)."""

from repro.faults.plan import (
    CorruptBurst,
    Crash,
    DropBurst,
    FaultPlan,
    FaultPlanError,
    NO_FAULTS,
    PartitionWindow,
    RankCrash,
    ThreadDeath,
)
from repro.faults.schedule import FaultMaskedSchedule

__all__ = [
    "FaultMaskedSchedule",
    "CorruptBurst",
    "Crash",
    "DropBurst",
    "FaultPlan",
    "FaultPlanError",
    "NO_FAULTS",
    "PartitionWindow",
    "RankCrash",
    "ThreadDeath",
]
