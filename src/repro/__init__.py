"""repro — reproduction of Wolfson-Pou & Chow, "Convergence Models and
Surprising Results for the Asynchronous Jacobi Method" (IPDPS 2018).

The package implements, from scratch:

* the paper's propagation-matrix model of asynchronous Jacobi and its
  analysis toolkit (Theorem 1, interlacing, trace reconstruction) —
  :mod:`repro.core`;
* the sparse-matrix substrate, problem generators and SuiteSparse
  stand-ins — :mod:`repro.matrices`;
* a METIS-substitute partitioner with subdomain/ghost-layer machinery —
  :mod:`repro.partition`;
* discrete-event shared-memory (OpenMP-substitute) and distributed
  (MPI/RMA-substitute) machine simulators — :mod:`repro.runtime`;
* scripted fault plans, reliable puts, heartbeat failure detection and
  recovery policies — :mod:`repro.faults` and the simulators;
* a real-thread racy backend — :mod:`repro.threads`;
* a one-call solver front-end — :func:`repro.solve`;
* one experiment module per paper table/figure — :mod:`repro.experiments`.

Quickstart::

    import numpy as np
    from repro import solve
    from repro.matrices import fd_laplacian_2d

    A = fd_laplacian_2d(16, 16)
    b = np.random.default_rng(0).uniform(-1, 1, A.nrows)
    result = solve(A, b, method="shared_sim", n_threads=8, mode="async")
    print(result.converged, result.iterations)
"""

from repro.faults import FaultPlan
from repro.matrices.sparse import CSRMatrix
from repro.solvers.api import SolveResult, solve

__version__ = "1.1.0"

__all__ = ["CSRMatrix", "FaultPlan", "SolveResult", "solve", "__version__"]
