"""Shared utilities: error types, validation, RNG policy, norms.

These helpers are deliberately small and dependency-free so that every other
subpackage (matrices, core, runtime, ...) can rely on them without import
cycles.
"""

from repro.util.errors import (
    ReproError,
    ShapeError,
    SingularMatrixError,
    ConvergenceError,
    ScheduleError,
    PartitionError,
    SimulationError,
)
from repro.util.norms import (
    norm_1,
    norm_2,
    norm_inf,
    relative_residual_norm,
    residual,
)
from repro.util.rng import as_rng, spawn_rngs
from repro.util.validation import (
    check_positive,
    check_nonnegative,
    check_probability,
    check_square,
    check_vector,
    check_index,
)

__all__ = [
    "ReproError",
    "ShapeError",
    "SingularMatrixError",
    "ConvergenceError",
    "ScheduleError",
    "PartitionError",
    "SimulationError",
    "norm_1",
    "norm_2",
    "norm_inf",
    "relative_residual_norm",
    "residual",
    "as_rng",
    "spawn_rngs",
    "check_positive",
    "check_nonnegative",
    "check_probability",
    "check_square",
    "check_vector",
    "check_index",
]
