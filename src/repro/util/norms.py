"""Vector norms and residual helpers.

The paper reports the *relative residual 1-norm* ``||b - A x||_1 / ||b||_1``
(and uses the infinity norm for error bounds); these helpers centralise those
conventions.
"""

from __future__ import annotations

import numpy as np

from repro.util.errors import ShapeError


def norm_1(v) -> float:
    """L1 norm of a vector."""
    return float(np.sum(np.abs(np.asarray(v, dtype=np.float64))))


def norm_2(v) -> float:
    """Euclidean norm of a vector."""
    return float(np.linalg.norm(np.asarray(v, dtype=np.float64)))


def norm_inf(v) -> float:
    """Infinity norm of a vector (0.0 for empty input)."""
    arr = np.abs(np.asarray(v, dtype=np.float64))
    return float(arr.max()) if arr.size else 0.0

_NORMS = {1: norm_1, 2: norm_2, np.inf: norm_inf, "1": norm_1, "2": norm_2, "inf": norm_inf}


def vector_norm(v, ord=1) -> float:
    """Dispatch to one of the supported norms (1, 2, inf)."""
    try:
        fn = _NORMS[ord]
    except KeyError:
        raise ValueError(f"unsupported norm order {ord!r}; use 1, 2 or 'inf'") from None
    return fn(v)


def residual(A, x, b) -> np.ndarray:
    """Residual ``b - A @ x`` for any matrix supporting ``@``."""
    x = np.asarray(x, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    r = b - (A @ x)
    if r.shape != b.shape:
        raise ShapeError(f"residual shape {r.shape} != rhs shape {b.shape}")
    return r


def relative_residual_norm(A, x, b, ord=1) -> float:
    """``||b - A x|| / ||b||`` in the requested norm (paper default: 1-norm).

    A zero right-hand side makes the relative norm ill-defined; in that case
    the absolute residual norm is returned instead.
    """
    denom = vector_norm(b, ord)
    num = vector_norm(residual(A, x, b), ord)
    return num / denom if denom > 0 else num
