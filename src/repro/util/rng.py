"""Random-number-generator policy.

All stochastic behaviour in the package (random right-hand sides, timing
jitter, random schedules) flows through :func:`as_rng` so that experiments
are reproducible from a single integer seed, and through :func:`spawn_rngs`
so that concurrent simulated agents (threads/ranks) get independent streams.
"""

from __future__ import annotations

import numpy as np

RngLike = "int | None | np.random.Generator"


def as_rng(seed=None) -> np.random.Generator:
    """Coerce ``seed`` to a :class:`numpy.random.Generator`.

    Accepts ``None`` (fresh entropy), an integer seed, a ``SeedSequence``, or
    an existing ``Generator`` (returned unchanged).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed, count: int) -> list:
    """Create ``count`` statistically independent generators.

    Used by the simulators to give each simulated thread or MPI rank its own
    stream, so per-agent jitter does not depend on how many agents exist or
    the order in which events execute.
    """
    if count < 0:
        raise ValueError(f"count must be nonnegative, got {count}")
    if isinstance(seed, np.random.Generator):
        # Derive children from the generator's own bit stream.
        children = seed.spawn(count)
        return list(children)
    seq = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in seq.spawn(count)]
