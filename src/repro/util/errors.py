"""Exception hierarchy for the repro package.

Everything raised intentionally by this library derives from
:class:`ReproError`, so callers can catch one type at an API boundary.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ShapeError(ReproError, ValueError):
    """An array argument has an incompatible shape or dimensionality."""


class SingularMatrixError(ReproError, ValueError):
    """A matrix that must be invertible (e.g. the Jacobi diagonal) is not."""


class ConvergenceError(ReproError, RuntimeError):
    """An iterative procedure failed to converge within its budget.

    Carries the final iterate/residual history when available so callers can
    inspect partial progress.
    """

    def __init__(self, message: str, history=None):
        super().__init__(message)
        self.history = history


class ScheduleError(ReproError, ValueError):
    """An update schedule produced an invalid set of rows."""


class PartitionError(ReproError, ValueError):
    """A partition request is infeasible (e.g. more parts than rows)."""


class SimulationError(ReproError, RuntimeError):
    """The discrete-event simulator reached an inconsistent state."""
