"""Small argument-validation helpers used at public API boundaries.

Each helper raises a descriptive error naming the offending parameter, which
keeps the validation in solver/simulator constructors to one line per
argument.
"""

from __future__ import annotations

import numbers

import numpy as np

from repro.util.errors import ShapeError


def check_positive(value, name: str) -> float:
    """Return ``value`` if it is a finite number > 0, else raise ValueError."""
    if not isinstance(value, numbers.Real) or not np.isfinite(value):
        raise ValueError(f"{name} must be a finite number, got {value!r}")
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value!r}")
    return float(value)


def check_nonnegative(value, name: str) -> float:
    """Return ``value`` if it is a finite number >= 0, else raise ValueError."""
    if not isinstance(value, numbers.Real) or not np.isfinite(value):
        raise ValueError(f"{name} must be a finite number, got {value!r}")
    if value < 0:
        raise ValueError(f"{name} must be nonnegative, got {value!r}")
    return float(value)


def check_probability(value, name: str) -> float:
    """Return ``value`` if it lies in [0, 1], else raise ValueError."""
    value = check_nonnegative(value, name)
    if value > 1:
        raise ValueError(f"{name} must lie in [0, 1], got {value!r}")
    return value


def check_square(matrix, name: str = "matrix"):
    """Validate that ``matrix`` (anything with .shape) is 2-D square."""
    shape = getattr(matrix, "shape", None)
    if shape is None or len(shape) != 2 or shape[0] != shape[1]:
        raise ShapeError(f"{name} must be square, got shape {shape}")
    return matrix


def check_vector(vec, n: int, name: str = "vector") -> np.ndarray:
    """Coerce ``vec`` to a 1-D float64 array of length ``n``."""
    arr = np.asarray(vec, dtype=np.float64)
    if arr.ndim != 1 or arr.shape[0] != n:
        raise ShapeError(f"{name} must be a 1-D array of length {n}, got shape {arr.shape}")
    return arr


def check_index(i, n: int, name: str = "index") -> int:
    """Validate an integer index into ``range(n)``."""
    if not isinstance(i, (int, np.integer)):
        raise ValueError(f"{name} must be an integer, got {type(i).__name__}")
    i = int(i)
    if not 0 <= i < n:
        raise IndexError(f"{name} must lie in [0, {n}), got {i}")
    return i
