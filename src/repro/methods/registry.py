"""Method construction, round-tripping, and executor legality.

``make_method`` is the single resolution point every executor calls:

* ``None`` — the executor's historical behavior: :class:`Jacobi` at the
  executor's ``omega``, bit-identical to pre-method code;
* a string — a method at its conventional parameters, with the
  executor's ``omega`` standing in for the method's primary knob
  (``omega`` for jacobi/damped/SOR, ``alpha`` for Richardson);
* a dict — ``{"kind": name, **params}``, the pure-data form chaos specs
  and the experiment cache carry;
* a :class:`Method` instance — passed through untouched.

``legal_method_kinds`` is the chaos generator's source of truth for which
method kinds each executor/backend combination supports, so specs are
legal by construction rather than by rejection sampling.
"""

from __future__ import annotations

from repro.methods.base import (
    DampedJacobi,
    Jacobi,
    Method,
    MethodError,
    Richardson,
    Richardson2,
    StepAsyncSOR,
)

#: name -> class, for string and dict specs.
METHODS = {
    "jacobi": Jacobi,
    "damped_jacobi": DampedJacobi,
    "richardson": Richardson,
    "richardson2": Richardson2,
    "sor": StepAsyncSOR,
}


def make_method(method=None, omega: float = 1.0) -> Method:
    """Resolve a ``method=`` run-flag value into a :class:`Method`."""
    if method is None:
        return Jacobi(omega=omega)
    if isinstance(method, Method):
        return method
    if isinstance(method, str):
        if method not in METHODS:
            raise MethodError(
                f"unknown method {method!r}; known: {', '.join(sorted(METHODS))}"
            )
        if method == "richardson":
            return Richardson(alpha=omega)
        if method == "richardson2":
            return Richardson2(alpha=omega)
        return METHODS[method](omega=omega)
    if isinstance(method, dict):
        spec = dict(method)
        kind = spec.pop("kind", None)
        if kind not in METHODS:
            raise MethodError(
                f"method spec needs a known 'kind', got {kind!r}; "
                f"known: {', '.join(sorted(METHODS))}"
            )
        try:
            return METHODS[kind](**spec)
        except TypeError as exc:
            raise MethodError(f"bad parameters for method {kind!r}: {exc}") from exc
    raise MethodError(
        f"method must be None, a name, a spec dict or a Method, got {method!r}"
    )


def legal_method_kinds(executor: str) -> tuple:
    """Method kinds an executor supports (chaos draws only from these).

    Every executor supports the whole family; the tuple exists so future
    executors with narrower support plug into the generator without
    touching it. Order is stable (generators index into it).
    """
    if executor not in ("model", "shared", "distributed"):
        raise MethodError(f"unknown executor {executor!r}")
    return ("jacobi", "damped_jacobi", "richardson", "richardson2", "sor")
