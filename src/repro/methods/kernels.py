"""Per-row update kernels shared by every executor.

The scaled ("simultaneous") update needs no kernel — every executor's
historical Jacobi hot path already *is* ``x[rows] += scale[rows] *
r[rows]``. What lives here are the two non-simultaneous shapes:

* sequential (Gauss-Seidel-ordered) block updates for step-async SOR, in
  three flavors matching how each executor tracks the residual:
  in-place on the global iterate (model "full" mode, sync sweeps),
  residual-maintained (model "incremental" mode), and pending-buffer
  (the shared-memory simulator relaxes into a buffer published later);
* the momentum combination for second-order Richardson, which is simple
  enough that executors inline it — :func:`momentum_dx` is the reference
  used by tests and docs.

All kernels are plain NumPy row loops: sequential updates are inherently
ordered, and the method family's non-scaled members trade the vectorized
fast paths for their convergence properties (see docs/methods.md).
"""

from __future__ import annotations

import numpy as np


def sor_step_dense(A, b, scale, x, rows) -> np.ndarray:
    """Sequential block update in place on ``x``; returns the per-row dx.

    Row ``i`` reads the *current* ``x`` — including the rows of this block
    already updated — so the block is a forward Gauss-Seidel sweep over
    ``rows`` in the given order.
    """
    rows = np.asarray(rows)
    dx = np.empty(rows.size)
    for j in range(rows.size):
        i = int(rows[j])
        cols, vals = A.row_entries(i)
        d = scale[i] * (b[i] - vals @ x[cols])
        x[i] += d
        dx[j] = d
    return dx


def sor_step_incremental(A, scale, x, r, rows) -> np.ndarray:
    """Sequential block update that keeps ``r = b - A x`` maintained.

    Each row consumes the maintained residual directly (``dx_i = s_i *
    r_i``) and scatters its own change through the CSC view before the
    next row reads — a chain of single-row incremental steps, which is
    exactly the sequential sweep.
    """
    rows = np.asarray(rows)
    dx = np.empty(rows.size)
    for j in range(rows.size):
        i = int(rows[j])
        d = scale[i] * r[i]
        x[i] += d
        dx[j] = d
        A.subtract_columns_update(r, rows[j : j + 1], dx[j : j + 1])
    return dx


def sor_block_pending(A, b, scale, x, lo, hi, out) -> None:
    """Sequential update of block ``[lo, hi)`` into ``out`` (len hi-lo).

    For simulators that must not touch the shared iterate before commit:
    reads outside the block come from ``x`` (the committed state the
    relaxing agent sees), reads inside the block come from ``out`` — the
    fresh in-sweep values.
    """
    out[:] = x[lo:hi]
    for i in range(lo, hi):
        cols, vals = A.row_entries(i)
        gathered = x[cols].copy()
        local = (cols >= lo) & (cols < hi)
        if local.any():
            gathered[local] = out[cols[local] - lo]
        out[i - lo] += scale[i] * (b[i] - vals @ gathered)


def momentum_dx(scale, r, x, x_prev, rows, beta: float) -> np.ndarray:
    """Second-order Richardson step on ``rows``; updates ``x_prev`` in place.

    ``dx = scale * r + beta * (x - x_prev)`` evaluated before ``x`` moves;
    the caller applies ``x[rows] += dx``. ``x_prev[rows]`` is refreshed to
    the pre-update ``x[rows]`` (momentum state advances at relax time).
    """
    rows = np.asarray(rows)
    dx = scale[rows] * r[rows] + beta * (x[rows] - x_prev[rows])
    x_prev[rows] = x[rows]
    return dx
