"""Pluggable iteration methods (Jacobi, Richardson, step-async SOR).

Public surface: the :class:`~repro.methods.base.Method` abstraction and
its five implementations, :func:`make_method` resolution for the
``method=`` run flag on every executor, and the shared sequential/momentum
kernels. See docs/methods.md for the convergence theory per method.
"""

from repro.methods.base import (
    DampedJacobi,
    Guarantee,
    Jacobi,
    Method,
    MethodError,
    Richardson,
    Richardson2,
    StepAsyncSOR,
    scaled_rowsum_condition,
)
from repro.methods.registry import METHODS, legal_method_kinds, make_method

__all__ = [
    "DampedJacobi",
    "Guarantee",
    "Jacobi",
    "METHODS",
    "Method",
    "MethodError",
    "Richardson",
    "Richardson2",
    "StepAsyncSOR",
    "legal_method_kinds",
    "make_method",
    "scaled_rowsum_condition",
]
