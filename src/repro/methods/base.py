"""The pluggable iteration-method abstraction.

The paper's Eq. 6 update ``x <- (I - D-hat A) x + D-hat b`` is one member
of a family of fixed-point iterations that differ only in how a relaxed
row combines its residual with its current (and possibly previous) value.
A :class:`Method` packages that per-row rule together with the pieces the
rest of the system needs to reason about it:

* the **scale vector** ``s`` with ``s_i`` multiplying row ``i``'s residual
  (``omega / a_ii`` for Jacobi/SOR, a constant ``alpha`` for Richardson);
* the **kind** of update, which decides which executor fast paths apply:

  - ``"scaled"`` — simultaneous ``x[rows] += s[rows] * r[rows]``; every
    vectorized hot path (batched model, stacked block kernels, coalesced
    multi-thread relaxes) applies unchanged;
  - ``"sequential"`` — within one relaxed block the rows update in order,
    each reading its predecessors' fresh values (step-asynchronous SOR);
  - ``"momentum"`` — the update adds ``beta * (x - x_prev)`` (second-order
    Richardson), so the executor carries one previous-iterate vector;

* the **convergence guarantee** the observability pipeline should check
  on a given matrix: Theorem 1's residual 1-norm non-increase for scaled
  methods on W.D.D. matrices, Vigna's error sup-norm non-increase for
  step-async SOR on M-matrices, or nothing at all.

Methods are pure data (``spec()`` round-trips through JSON), so chaos
scenario specs and experiment-cache keys can carry them verbatim.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.errors import ReproError, SingularMatrixError


class MethodError(ReproError, ValueError):
    """An iteration-method spec or method/executor combination is illegal."""


@dataclass(frozen=True)
class Guarantee:
    """What per-step norm bound a method guarantees on a given matrix.

    Attributes
    ----------
    norm
        ``"residual_l1"`` (Theorem 1 family), ``"error_sup"`` (Vigna's
        step-async SOR bound) or ``None`` (no per-step guarantee).
    holds
        Whether the guarantee's hypotheses hold for the matrix at hand.
    reason
        Human-readable statement of why (or why not).
    """

    norm: str | None
    holds: bool
    reason: str


def _nonzero_diagonal(A) -> np.ndarray:
    d = A.diagonal()
    if np.any(d == 0):
        raise SingularMatrixError(
            "diagonally-scaled methods require a nonzero diagonal"
        )
    return d


def scaled_rowsum_condition(A, scale, tol: float = 1e-12) -> np.ndarray:
    """Per-row generalized Theorem-1 condition for a scaled update.

    A simultaneous update ``x += diag(s) r`` has error propagation matrix
    ``G-hat = I - diag(s) A`` on the relaxed rows; its row sums are
    ``|1 - s_i a_ii| + s_i sum_{j != i} |a_ij|``. When every row sum is
    ``<= 1`` (and ``s >= 0``), ``||G-hat||_inf <= 1`` for *every* relax
    mask, which is exactly the hypothesis the paper's Theorem 1 argument
    needs — the residual 1-norm can never increase. For ``s = omega / d``
    on a weakly diagonally dominant matrix with ``omega <= 1`` this
    reduces to the paper's original condition.
    """
    s = np.asarray(scale, dtype=np.float64)
    d = A.diagonal()
    rowsums = np.abs(1.0 - s * d) + s * A.off_diagonal_row_sums()
    return (s >= -tol) & (rowsums <= 1.0 + tol)


class Method:
    """Base class: one per-row relaxation rule plus its convergence story."""

    #: Stable identifier (used in specs, trace events and perf digests).
    name: str = "method"
    #: ``"scaled"``, ``"sequential"`` or ``"momentum"``.
    kind: str = "scaled"
    #: Momentum coefficient (zero for first-order methods).
    beta: float = 0.0

    @property
    def is_scaled(self) -> bool:
        """True when every vectorized simultaneous fast path applies."""
        return self.kind == "scaled"

    def scale(self, A) -> np.ndarray:
        """Per-row residual multiplier ``s`` (``x_i += s_i * r_i``)."""
        raise NotImplementedError

    def validate(self, A) -> None:
        """Raise if the method cannot run on ``A`` (e.g. zero diagonal)."""
        self.scale(A)

    def guarantee(self, A) -> Guarantee:
        """The per-step norm bound this method carries on ``A`` (if any)."""
        return Guarantee(None, False, f"{self.name}: no per-step norm guarantee")

    def spec(self) -> dict:
        """JSON-ready round-trip form (see :func:`repro.methods.make_method`)."""
        return {"kind": self.name}

    def __repr__(self) -> str:
        params = {k: v for k, v in self.spec().items() if k != "kind"}
        inner = ", ".join(f"{k}={v!r}" for k, v in params.items())
        return f"{type(self).__name__}({inner})"

    def __eq__(self, other) -> bool:
        return isinstance(other, Method) and self.spec() == other.spec()

    def __hash__(self) -> int:
        return hash(tuple(sorted(self.spec().items())))


class Jacobi(Method):
    """The paper's relaxation: ``x_i += omega / a_ii * r_i`` (Eq. 6).

    ``omega = 1`` is plain Jacobi; ``omega < 1`` under-relaxes. The scale
    vector is exactly the executors' historical ``omega / diag`` array, so
    ``method="jacobi"`` is bit-identical to the pre-method code paths.
    """

    name = "jacobi"
    kind = "scaled"

    def __init__(self, omega: float = 1.0):
        if not 0 < omega < 2:
            raise MethodError(f"omega must lie in (0, 2), got {omega}")
        self.omega = float(omega)

    def scale(self, A) -> np.ndarray:
        """The executors' historical ``omega / diag`` array, bit for bit."""
        return self.omega / _nonzero_diagonal(A)

    def guarantee(self, A) -> Guarantee:
        """Theorem 1's residual 1-norm bound, when the row condition holds."""
        ok = bool(np.all(scaled_rowsum_condition(A, self.scale(A))))
        why = (
            "per-row |1 - s_i a_ii| + s_i * offdiag sum <= 1 "
            f"({'holds' if ok else 'fails'}; Theorem 1 residual bound)"
        )
        return Guarantee("residual_l1", ok, f"{self.name}: {why}")

    def spec(self) -> dict:
        """``{"kind": ..., "omega": ...}``."""
        return {"kind": self.name, "omega": self.omega}


class DampedJacobi(Jacobi):
    """Weighted (damped) Jacobi, conventionally ``omega = 2/3``.

    Arithmetic is :class:`Jacobi` with ``omega < 1`` made explicit — the
    classical smoother choice ``2/3`` damps the high-frequency half of the
    spectrum optimally on the unit-diagonal Laplacian family.
    """

    name = "damped_jacobi"

    def __init__(self, omega: float = 2.0 / 3.0):
        if not 0 < omega <= 1:
            raise MethodError(f"damped Jacobi needs omega in (0, 1], got {omega}")
        super().__init__(omega=omega)


class Richardson(Method):
    """First-order Richardson: ``x += alpha * r`` (uniform scale).

    Chow/Frommer/Szyld (arXiv:2009.02015) study this update run
    asynchronously. It ignores the diagonal entirely: on a symmetric
    positive definite matrix it converges iff ``alpha`` lies in the
    spectral window ``(0, 2 / lambda_max(A))``, with the optimal choice
    ``alpha* = 2 / (lambda_min + lambda_max)`` achieving the classical
    rate ``(kappa - 1) / (kappa + 1)``. On a unit-diagonal matrix,
    ``alpha = omega`` makes Richardson coincide with Jacobi exactly.
    """

    name = "richardson"
    kind = "scaled"

    def __init__(self, alpha: float = 1.0):
        if not alpha > 0:
            raise MethodError(f"alpha must be positive, got {alpha}")
        self.alpha = float(alpha)

    def scale(self, A) -> np.ndarray:
        """The constant vector ``alpha`` — the diagonal plays no role."""
        return np.full(A.nrows, self.alpha)

    def validate(self, A) -> None:
        """Richardson runs on any matrix (no diagonal requirement)."""

    def guarantee(self, A) -> Guarantee:
        """Theorem 1's residual bound under the generalized row condition."""
        ok = bool(np.all(scaled_rowsum_condition(A, self.scale(A))))
        why = (
            "uniform alpha satisfies the generalized Theorem-1 row condition"
            if ok
            else "alpha violates |1 - alpha a_ii| + alpha * offdiag sum <= 1"
        )
        return Guarantee("residual_l1", ok, f"{self.name}: {why}")

    def spec(self) -> dict:
        """``{"kind": ..., "alpha": ...}``."""
        return {"kind": self.name, "alpha": self.alpha}

    @staticmethod
    def spectral_window(A) -> tuple:
        """The open interval of convergent ``alpha`` on SPD ``A``."""
        from repro.matrices.properties import symmetric_extreme_eigenvalues

        _, lam_max = symmetric_extreme_eigenvalues(A)
        return 0.0, 2.0 / lam_max

    @staticmethod
    def optimal_alpha(A) -> float:
        """``2 / (lambda_min + lambda_max)`` — the rate-optimal step."""
        from repro.matrices.properties import symmetric_extreme_eigenvalues

        lam_min, lam_max = symmetric_extreme_eigenvalues(A)
        return 2.0 / (lam_min + lam_max)

    @staticmethod
    def optimal_rate(A) -> float:
        """``(kappa - 1) / (kappa + 1)`` at the optimal step on SPD ``A``."""
        from repro.matrices.properties import symmetric_extreme_eigenvalues

        lam_min, lam_max = symmetric_extreme_eigenvalues(A)
        kappa = lam_max / lam_min
        return (kappa - 1.0) / (kappa + 1.0)


class Richardson2(Richardson):
    """Second-order Richardson: ``x_new = x + alpha r + beta (x - x_prev)``.

    The momentum form of arXiv:2009.02015 Section 4: with
    ``beta = ((sqrt(kappa) - 1) / (sqrt(kappa) + 1))^2`` and the matching
    ``alpha`` the synchronous rate improves from ``(kappa-1)/(kappa+1)``
    to ``(sqrt(kappa)-1)/(sqrt(kappa)+1)``. Executors keep one previous
    iterate per row, updated at relax time. No per-step norm guarantee:
    momentum legitimately overshoots transiently.
    """

    name = "richardson2"
    kind = "momentum"

    def __init__(self, alpha: float = 1.0, beta: float = 0.1):
        super().__init__(alpha=alpha)
        if not 0 <= beta < 1:
            raise MethodError(f"beta must lie in [0, 1), got {beta}")
        self.beta = float(beta)

    def guarantee(self, A) -> Guarantee:
        """No per-step bound — momentum legitimately overshoots."""
        return Guarantee(
            None, False, "richardson2: momentum has no per-step norm bound"
        )

    def spec(self) -> dict:
        """``{"kind": ..., "alpha": ..., "beta": ...}``."""
        return {"kind": self.name, "alpha": self.alpha, "beta": self.beta}

    @staticmethod
    def heavy_ball_parameters(A) -> tuple:
        """Rate-optimal ``(alpha, beta)`` on SPD ``A`` (Polyak's choice)."""
        from repro.matrices.properties import symmetric_extreme_eigenvalues

        lam_min, lam_max = symmetric_extreme_eigenvalues(A)
        sk = np.sqrt(lam_max / lam_min)
        beta = ((sk - 1.0) / (sk + 1.0)) ** 2
        alpha = (1.0 + beta) * 2.0 / (lam_min + lam_max)
        return float(alpha), float(beta)


class StepAsyncSOR(Method):
    """Step-asynchronous SOR (Vigna, arXiv:1404.3327).

    Each processor sweeps its owned rows *sequentially* with relaxation
    weight ``omega``, reading the freshest available value for every
    variable — its own rows' in-sweep updates, possibly stale values for
    rows owned elsewhere. On the distributed simulator this is exactly
    ``local_sweep="gauss_seidel"`` with scale ``omega / diag``; a
    one-row block degenerates to the scaled update.

    Vigna's theorem: on an (M-matrix-like) weakly diagonally dominant
    matrix with positive diagonal, nonpositive off-diagonal entries and
    ``omega`` in ``(0, 1]``, the error *sup-norm* never increases, no
    matter how stale the cross-processor reads are.
    """

    name = "sor"
    kind = "sequential"

    def __init__(self, omega: float = 1.0):
        if not 0 < omega < 2:
            raise MethodError(f"omega must lie in (0, 2), got {omega}")
        self.omega = float(omega)

    def scale(self, A) -> np.ndarray:
        """``omega / diag`` — the in-sweep elimination scale."""
        return self.omega / _nonzero_diagonal(A)

    def guarantee(self, A) -> Guarantee:
        """Vigna's error sup-norm bound on M-matrix-like ``A``, omega <= 1."""
        from repro.matrices.properties import is_m_matrix_like

        mlike = is_m_matrix_like(A)
        ok = mlike and 0 < self.omega <= 1
        if ok:
            why = "M-matrix-like and omega <= 1: error sup-norm non-increase"
        elif not mlike:
            why = "matrix is not M-matrix-like (sign pattern or dominance fails)"
        else:
            why = f"omega={self.omega} > 1 voids the sup-norm bound"
        return Guarantee("error_sup", ok, f"{self.name}: {why}")

    def spec(self) -> dict:
        """``{"kind": ..., "omega": ...}``."""
        return {"kind": self.name, "omega": self.omega}
