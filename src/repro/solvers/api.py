"""High-level solver front-end.

``solve(A, b, method=...)`` is the one-call entry point a downstream user
needs: it normalizes the system, dispatches to the classical iterations, the
asynchronous model, the machine simulators, or the real-thread backend, and
returns a uniform :class:`SolveResult`.

Methods
-------
``jacobi``              synchronous Jacobi (Section II-A)
``gauss_seidel``        Gauss-Seidel, natural ordering
``sor``                 SOR (pass ``omega``)
``multicolor_gs``       multicolor Gauss-Seidel (Section IV-B limit)
``block_jacobi``        exact-solve block Jacobi (pass ``labels`` or ``blocks``)
``async_model``         the propagation-matrix model executor (Section IV);
                        pass ``schedule`` or it defaults to a block-
                        sequential multiplicative schedule
``shared_sim``          shared-memory machine simulator (Section V); pass
                        ``n_threads``, ``mode`` ("sync"/"async")
``distributed_sim``     distributed machine simulator (Section VI); pass
                        ``n_ranks``, ``mode``
``threads``             real-thread racy backend; pass ``n_threads``, ``mode``
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.iteration import (
    block_jacobi,
    gauss_seidel,
    jacobi,
    multicolor_gauss_seidel,
    sor,
)
from repro.core.model import AsyncJacobiModel
from repro.core.schedules import BlockSequentialSchedule
from repro.matrices.sparse import CSRMatrix
from repro.partition.partitioner import contiguous_partition
from repro.runtime.distributed import DistributedJacobi
from repro.runtime.shared import SharedMemoryJacobi
from repro.threads.backend import ThreadedJacobi
from repro.util.errors import ShapeError


@dataclass
class SolveResult:
    """Uniform result of :func:`solve`.

    Attributes
    ----------
    x
        Final iterate.
    converged
        Whether the relative residual reached ``tol``.
    method
        The method name that produced the result.
    iterations
        Sweeps (classical), parallel steps (model), or mean local
        iterations (simulators/threads).
    residual_norms
        Relative residual history when the method records one.
    info
        Method-specific extras (e.g. the raw backend result object).
    """

    x: np.ndarray
    converged: bool
    method: str
    iterations: float
    residual_norms: list = field(default_factory=list)
    info: dict = field(default_factory=dict)

    @property
    def telemetry(self):
        """Recovery telemetry (:class:`~repro.runtime.results.FaultTelemetry`)
        when the backend recorded one, else None."""
        return self.info.get("telemetry")

    @property
    def perf(self):
        """Profiling counters (:class:`~repro.perf.instrument.PerfCounters`)
        when the backend ran with ``instrument=True``, else None."""
        for key in ("model_result", "simulation", "history", "threaded_result"):
            backend_result = self.info.get(key)
            if backend_result is not None:
                return getattr(backend_result, "perf", None)
        return None


def _as_csr(A) -> CSRMatrix:
    if isinstance(A, CSRMatrix):
        return A
    arr = np.asarray(A)
    if arr.ndim == 2:
        return CSRMatrix.from_dense(arr)
    raise ShapeError("A must be a CSRMatrix or a dense 2-D array")


def solve(
    A,
    b,
    method: str = "jacobi",
    x0=None,
    tol: float = 1e-3,
    max_iterations: int = 1000,
    **kwargs,
) -> SolveResult:
    """Solve ``A x = b`` with the chosen (a)synchronous method.

    See the module docstring for the method registry; unknown keyword
    arguments are forwarded to the backend.
    """
    A = _as_csr(A)
    if method in ("jacobi", "gauss_seidel", "sor", "multicolor_gs"):
        fn = {
            "jacobi": jacobi,
            "gauss_seidel": gauss_seidel,
            "sor": sor,
            "multicolor_gs": multicolor_gauss_seidel,
        }[method]
        hist = fn(A, b, x0=x0, tol=tol, max_iterations=max_iterations, **kwargs)
        return SolveResult(
            x=hist.x,
            converged=hist.converged,
            method=method,
            iterations=hist.iterations,
            residual_norms=list(hist.residual_norms),
            info={"history": hist},
        )

    if method == "block_jacobi":
        labels = kwargs.pop("labels", None)
        if labels is None:
            from repro.partition.partitioner import bfs_bisection_partition

            labels = bfs_bisection_partition(A, kwargs.pop("blocks", 4))
        hist = block_jacobi(
            A, b, labels, x0=x0, tol=tol, max_iterations=max_iterations, **kwargs
        )
        return SolveResult(
            x=hist.x,
            converged=hist.converged,
            method=method,
            iterations=hist.iterations,
            residual_norms=list(hist.residual_norms),
            info={"history": hist},
        )

    if method == "async_model":
        schedule = kwargs.pop("schedule", None)
        if schedule is None:
            blocks = kwargs.pop("blocks", max(1, A.nrows // 8))
            labels = contiguous_partition(A.nrows, blocks)
            schedule = BlockSequentialSchedule(labels)
        model = AsyncJacobiModel(A, b)
        res = model.run(
            schedule, x0=x0, tol=tol, max_steps=max_iterations * max(1, A.nrows), **kwargs
        )
        return SolveResult(
            x=res.x,
            converged=res.converged,
            method=method,
            iterations=res.steps,
            residual_norms=list(res.residual_norms),
            info={"model_result": res},
        )

    if method == "shared_sim":
        mode = kwargs.pop("mode", "async")
        n_threads = kwargs.pop("n_threads", 4)
        sim_kwargs = {
            k: kwargs.pop(k)
            for k in ("machine", "delay", "seed", "omega", "fault_plan")
            if k in kwargs
        }
        sim = SharedMemoryJacobi(A, b, n_threads=n_threads, **sim_kwargs)
        res = sim.run(mode, x0=x0, tol=tol, max_iterations=max_iterations, **kwargs)
        return SolveResult(
            x=res.x,
            converged=res.converged,
            method=method,
            iterations=res.mean_iterations,
            residual_norms=list(res.residual_norms),
            info={"simulation": res, "telemetry": res.telemetry},
        )

    if method == "distributed_sim":
        mode = kwargs.pop("mode", "async")
        n_ranks = kwargs.pop("n_ranks", 4)
        sim_kwargs = {
            k: kwargs.pop(k)
            for k in (
                "partition",
                "cluster",
                "delay",
                "seed",
                "drop_probability",
                "duplicate_probability",
                "omega",
                "local_sweep",
                "ranks_per_node",
                "fault_plan",
                "fault_seed",
                "reliable",
                "recovery",
                "heartbeat_interval",
                "heartbeat_miss",
                "ack_timeout",
                "max_put_retries",
            )
            if k in kwargs
        }
        sim = DistributedJacobi(A, b, n_ranks=n_ranks, **sim_kwargs)
        res = sim.run(mode, x0=x0, tol=tol, max_iterations=max_iterations, **kwargs)
        return SolveResult(
            x=res.x,
            converged=res.converged,
            method=method,
            iterations=res.mean_iterations,
            residual_norms=list(res.residual_norms),
            info={"simulation": res, "telemetry": res.telemetry},
        )

    if method == "threads":
        mode = kwargs.pop("mode", "async")
        n_threads = kwargs.pop("n_threads", 2)
        backend = ThreadedJacobi(
            A, b, n_threads=n_threads, mode=mode, sleep_us=kwargs.pop("sleep_us", None)
        )
        res = backend.solve(x0=x0, tol=tol, max_iterations=max_iterations)
        return SolveResult(
            x=res.x,
            converged=res.converged,
            method=method,
            iterations=float(np.mean(res.iterations)),
            residual_norms=[res.residual_norm],
            info={"threaded_result": res},
        )

    raise ValueError(
        f"unknown method {method!r}; available: jacobi, gauss_seidel, sor, "
        "multicolor_gs, block_jacobi, async_model, shared_sim, "
        "distributed_sim, threads"
    )
