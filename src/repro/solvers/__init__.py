"""Public solver front-end: ``solve(A, b, method=...)``."""

from repro.solvers.api import SolveResult, solve

__all__ = ["SolveResult", "solve"]
