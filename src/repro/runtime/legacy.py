"""Pre-engine asynchronous simulator implementations (escape hatch).

These are the asynchronous event loops of :class:`SharedMemoryJacobi` and
:class:`DistributedJacobi` exactly as they stood before the typed event
engine (:mod:`repro.runtime.engine`) landed: a generic
:class:`~repro.runtime.events.EventQueue` of ad-hoc payload tuples, a
fresh ``np.concatenate`` per distributed relaxation, scalar per-call RNG
draws, and a per-commit CSC scatter rebuilt from scratch.

They are kept for **one release** as the ``legacy_engine=True`` escape
hatch on both simulators' ``run_async`` and as the oracle for the engine
equivalence tests (``tests/runtime/test_engine_equivalence.py``): the new
engine must produce bit-identical trajectories — same x, same residual
history, same telemetry, same trace stream — for every configuration.
Nothing else should call into this module.
"""

from __future__ import annotations

import time as _time
from collections import deque

import numpy as np

from repro.core.reconstruct import ExecutionTrace
from repro.methods.kernels import sor_block_pending
from repro.perf.instrument import PerfCounters
from repro.runtime.events import EventQueue
from repro.runtime.results import FaultTelemetry, SimulationResult
from repro.util.norms import relative_residual_norm, vector_norm
from repro.util.rng import as_rng
from repro.util.validation import check_positive, check_vector

__all__ = ["shared_run_async", "distributed_run_async", "distributed_run_sync"]

# Shared-memory event kinds (identical to repro.runtime.shared).
_START, _COMMIT, _RELEASE, _REQUEST = 0, 1, 2, 3

# Distributed event kinds (identical to repro.runtime.distributed).
(
    _D_START,
    _D_COMMIT,
    _D_MESSAGE,
    _D_REPORT,
    _D_STOP,
    _D_ACK,
    _D_RETRY,
    _D_HEARTBEAT,
    _D_HB_ARRIVE,
    _D_HB_CHECK,
    _D_RESTART,
    _D_FAIL_NOTICE,
) = range(12)

_HB_KINDS = frozenset({_D_HEARTBEAT, _D_HB_ARRIVE, _D_HB_CHECK})


def shared_run_async(
    sim,
    x0=None,
    tol: float = 1e-3,
    max_iterations: int = 10_000,
    record_trace: bool = False,
    observe_every: int | None = None,
    run_until_all_reach: bool = False,
    residual_mode: str = "incremental",
    recompute_every: int = 64,
    instrument: bool = False,
    tracer=None,
) -> SimulationResult:
    """The pre-engine ``SharedMemoryJacobi.run_async`` body, verbatim."""
    check_positive(tol, "tol")
    if residual_mode not in ("incremental", "full"):
        raise ValueError(
            f"residual_mode must be 'incremental' or 'full', got {residual_mode!r}"
        )
    A, b, dinv = sim.A, sim.b, sim.dinv
    x = np.zeros(sim.n) if x0 is None else check_vector(x0, sim.n, "x0").copy()
    data, cols = A.data, A.indices
    incremental = residual_mode == "incremental"
    perf = PerfCounters(method=sim.method.name) if instrument else None
    run_start = _time.perf_counter() if instrument else 0.0

    # Resolved once: a missing or all-null-sink tracer costs one branch
    # per event afterwards (see repro.observability.tracer.resolve).
    trc = tracer if (tracer is not None and tracer.enabled) else None
    # Per-row read versions are captured when either consumer wants
    # them; the bookkeeping is shared so the two never double-pay.
    trace_rows = record_trace or (trc is not None and trc.trace_reads)
    threads = sim._make_threads(trace_rows)
    trace = ExecutionTrace(sim.n) if record_trace else None
    version = np.zeros(sim.n, dtype=np.int64) if trace_rows else None
    plan = sim.fault_plan
    tm = FaultTelemetry()
    if trc is not None:
        trc.run_start(
            "SharedMemoryJacobi", sim.n, n_threads=sim.n_threads, tol=tol,
            omega=sim.omega, residual_mode=residual_mode,
            method=sim.method.name,
        )
    # Method dispatch mirrors the engine loop: sequential blocks relax
    # through the shared ordered kernel, momentum carries one previous
    # iterate; scaled methods are the verbatim pre-method arithmetic.
    seq_m = sim.method.kind == "sequential"
    mom_beta = sim.method.beta
    momentum_m = sim.method.kind == "momentum"
    mom_prev = x.copy() if momentum_m else None

    # Per-core run queues implementing iteration-granularity round-robin.
    core_queue = [deque() for _ in range(sim.n_cores)]
    core_busy = [False] * sim.n_cores
    queue = EventQueue()

    def request_run(th, t: float) -> None:
        """Thread asks to run its next iteration at time t."""
        c = th.core
        if core_busy[c]:
            core_queue[c].append(th.tid)
        else:
            core_busy[c] = True
            queue.push(t, (_START, th.tid))

    def release_core(core: int, t: float) -> None:
        """Core finished an iteration; start the next queued thread."""
        if core_queue[core]:
            queue.push(t, (_START, core_queue[core].popleft()))
        else:
            core_busy[core] = False

    # Stagger initial requests slightly: threads never begin in perfect
    # lockstep on real hardware.
    order = np.argsort([th.rng.random() for th in threads])
    for rank, tid in enumerate(order):
        request_run(threads[tid], float(rank) * 1e-9)

    b_norm = vector_norm(b, 1)

    def relnorm(res_vec) -> float:
        num = vector_norm(res_vec, 1)
        return num / b_norm if b_norm > 0 else num

    # The observer's residual. In incremental mode it is maintained at
    # every commit; in full mode it is only used for the initial norm.
    r_vec = b - A.matvec(x)
    obs_since_recompute = 0
    block_cols = [np.arange(th.lo, th.hi, dtype=np.int64) for th in threads]

    def observe_residual() -> float:
        """Current relative residual, per the selected mode."""
        nonlocal r_vec, obs_since_recompute
        if not incremental:
            return relative_residual_norm(A, x, b)
        obs_since_recompute += 1
        if recompute_every and obs_since_recompute >= recompute_every:
            r_vec = b - A.matvec(x)
            obs_since_recompute = 0
            if perf is not None:
                perf.full_recomputes += 1
        res = relnorm(r_vec)
        if res < tol:
            # Confirm the crossing against a drift-free residual.
            r_vec = b - A.matvec(x)
            obs_since_recompute = 0
            res = relnorm(r_vec)
            if perf is not None:
                perf.full_recomputes += 1
        return res

    res0 = relnorm(r_vec)
    times, residuals, counts = [0.0], [res0], [0]
    relaxations = 0
    commits_since_obs = 0
    observe_every = sim.n_threads if observe_every is None else int(observe_every)
    converged = res0 < tol
    t_end = 0.0
    hard_cap = 100 * max_iterations

    def crash_wake(tid: int, t: float) -> None:
        """Schedule the thread's post-restart wake-up, if one is coming."""
        if trc is not None:
            trc.fault(t, tid, "crash")
        restart = plan.next_restart(tid, t)
        if restart is not None:
            tm.restarts.append((tid, restart))
            if trc is not None:
                trc.fault(restart, tid, "restart")
            queue.push(restart, (_REQUEST, tid))

    machine = sim.machine
    while queue and not converged:
        t, (kind, tid) = queue.pop()
        th = threads[tid]
        if perf is not None:
            perf.events += 1
        if kind == _REQUEST:
            # A delayed (or restarted) thread's wake-up: ask for the
            # core again.
            request_run(th, t)
        elif kind == _START:
            if sim.delay.is_hung(tid, t) or th.stopped:
                release_core(th.core, t)
                continue
            if plan and plan.is_down(tid, t):
                # Thread death: the chain ends here; a scripted restart
                # resumes it from the then-current shared iterate.
                release_core(th.core, t)
                crash_wake(tid, t)
                continue
            # Read-to-write span: snapshot reads now, writes at COMMIT.
            lo, hi = th.lo, th.hi
            if seq_m and hi - lo > 1:
                pend = np.empty(hi - lo)
                sor_block_pending(A, b, dinv, x, lo, hi, pend)
                th.pending = pend
            else:
                seg = data[th.nnz_lo : th.nnz_hi] * x[cols[th.nnz_lo : th.nnz_hi]]
                r = b[lo:hi] - np.bincount(
                    th.rowid_local, weights=seg, minlength=hi - lo
                )
                th.pending = x[lo:hi] + dinv[lo:hi] * r
                if momentum_m:
                    th.pending += mom_beta * (x[lo:hi] - mom_prev[lo:hi])
                    mom_prev[lo:hi] = x[lo:hi]
            if trace_rows:
                th.pending_reads = [
                    {int(j): int(version[j]) for j in nbrs}
                    for nbrs in th.neighbors_per_row
                ]
            compute = machine.compute_duration(
                th.nnz_hi - th.nnz_lo, hi - lo, sim.n_threads, th.rng
            ) * sim._slowdown(tid)
            queue.push(t + compute, (_COMMIT, tid))
        elif kind == _COMMIT:
            if plan and plan.is_down(tid, t):
                # Died inside the read-to-write span: the update is lost.
                release_core(th.core, t)
                crash_wake(tid, t)
                continue
            lo, hi = th.lo, th.hi
            if incremental:
                t0 = perf.tick() if perf is not None else 0.0
                dx = th.pending - x[lo:hi]
                x[lo:hi] = th.pending
                A.subtract_columns_update(r_vec, block_cols[tid], dx)
                if perf is not None:
                    perf.tock_spmv(t0)
            else:
                x[lo:hi] = th.pending
            th.iterations += 1
            relaxations += hi - lo
            t_end = t
            if trace_rows:
                if trc is not None and trc.trace_reads:
                    # Staleness per row: how many commits behind the
                    # freshest neighbor read was, measured pre-bump.
                    stale = [
                        max(
                            (int(version[j]) - ver for j, ver in reads.items()),
                            default=0,
                        )
                        for reads in th.pending_reads
                    ]
                    trc.relax(
                        t, tid, range(lo, hi),
                        reads=th.pending_reads, staleness=stale,
                    )
                version[lo:hi] += 1
                if record_trace:
                    for i, reads in zip(range(lo, hi), th.pending_reads):
                        trace.record(i, t, reads)
            if trc is not None and not trc.trace_reads:
                trc.relax(t, tid, range(lo, hi))
            commits_since_obs += 1
            if commits_since_obs >= observe_every:
                commits_since_obs = 0
                t0 = perf.tick() if perf is not None else 0.0
                res = observe_residual()
                if perf is not None:
                    perf.tock_residual(t0)
                times.append(t)
                residuals.append(res)
                counts.append(relaxations)
                if trc is not None:
                    trc.observe(t, res, relaxations)
                if res < tol:
                    converged = True
                    if trc is not None:
                        trc.convergence(t, res, tol)
                    break
            # Post-span per-iteration overhead (norms, flags) still
            # occupies the core; the core frees at RELEASE.
            overhead = machine.overhead_duration(sim.n_threads, th.rng)
            overhead *= sim._slowdown(tid)
            queue.push(t + overhead, (_RELEASE, tid))
        else:  # _RELEASE
            # Decide whether this thread keeps iterating.
            if run_until_all_reach:
                # The hard cap keeps the run finite if some thread hangs
                # (min would then never reach the target).
                if (
                    min(tt.iterations for tt in threads) >= max_iterations
                    or th.iterations >= hard_cap
                ):
                    th.stopped = True
            elif th.iterations >= max_iterations:
                th.stopped = True
            release_core(th.core, t)
            if plan and plan.is_down(tid, t):
                # The overhead span has positive width, so a crash whose
                # onset falls in (commit, release] is first seen here:
                # the update was published, but the thread dies before
                # requesting the core again.
                crash_wake(tid, t)
            elif not th.stopped:
                # Injected sleeps happen off-core, before re-queueing.
                extra = sim.delay.extra_time(tid, th.iterations, th.rng)
                if extra > 0:
                    if trc is not None:
                        trc.delay(t, tid, extra)
                    queue.push(t + extra, (_REQUEST, tid))
                else:
                    request_run(th, t)

    # Final observation — only if a commit landed since the last one
    # (the dirty flag); otherwise the recorded history is already
    # current and recomputing the residual would be pure waste.
    if commits_since_obs:
        t0 = perf.tick() if perf is not None else 0.0
        res = observe_residual()
        if perf is not None:
            perf.tock_residual(t0)
        times.append(max(t_end, times[-1]))
        residuals.append(res)
        counts.append(relaxations)
        if trc is not None:
            trc.observe(times[-1], res, relaxations)
            if not converged and res < tol:
                trc.convergence(times[-1], res, tol)
    else:
        res = residuals[-1]
    converged = converged or res < tol
    # Degraded mode in shared memory needs no detector: the crash
    # windows are the intervals during which a block went unrelaxed.
    for tid in sorted(plan.agents()):
        for crash_at, restart_at in plan.crash_times(tid):
            if crash_at < t_end:
                tm.degraded_intervals.append((crash_at, min(restart_at, t_end)))
    if perf is not None:
        perf.total_seconds = _time.perf_counter() - run_start
    if trc is not None:
        trc.run_end(t_end, converged, relaxations)
    return SimulationResult(
        x=x,
        converged=converged,
        times=times,
        residual_norms=residuals,
        relaxation_counts=counts,
        iterations=np.array([th.iterations for th in threads]),
        total_time=t_end,
        mode="async",
        trace=trace,
        telemetry=tm,
        perf=perf,
    )


def distributed_run_async(
    sim,
    x0=None,
    tol: float = 1e-3,
    max_iterations: int = 10_000,
    observe_every: int | None = None,
    eager: bool = False,
    termination: str = "count",
    report_every: int = 4,
    residual_mode: str = "incremental",
    recompute_every: int = 64,
    instrument: bool = False,
    tracer=None,
) -> SimulationResult:
    """The pre-engine ``DistributedJacobi.run_async`` body, verbatim."""
    _START, _COMMIT, _MESSAGE, _REPORT, _STOP, _ACK, _RETRY = (
        _D_START, _D_COMMIT, _D_MESSAGE, _D_REPORT, _D_STOP, _D_ACK, _D_RETRY,
    )
    _HEARTBEAT, _HB_ARRIVE, _HB_CHECK, _RESTART, _FAIL_NOTICE = (
        _D_HEARTBEAT, _D_HB_ARRIVE, _D_HB_CHECK, _D_RESTART, _D_FAIL_NOTICE,
    )
    check_positive(tol, "tol")
    if termination not in ("count", "detect"):
        raise ValueError(
            f"termination must be 'count' or 'detect', got {termination!r}"
        )
    if residual_mode not in ("incremental", "full"):
        raise ValueError(
            f"residual_mode must be 'incremental' or 'full', got {residual_mode!r}"
        )
    incremental = residual_mode == "incremental"
    perf = PerfCounters(method=sim.method.name) if instrument else None
    run_start = _time.perf_counter() if instrument else 0.0
    A, b, dinv = sim.A, sim.b, sim.dinv
    x = np.zeros(sim.n) if x0 is None else check_vector(x0, sim.n, "x0").copy()
    mom_prev = x.copy() if sim.method.kind == "momentum" else None
    ranks = sim._compile_ranks()
    net = sim.cluster.network
    plan = sim.fault_plan
    reliable = sim.reliable
    fs = sim.fault_seed if sim.fault_seed is not None else plan.seed
    if fs is not None:
        fail_rng = as_rng(fs)
    else:
        fail_rng = as_rng(None if sim.seed is None else (int(sim.seed) ^ 0x5EED))
    tm = FaultTelemetry()

    # Ghost layers start from the initial iterate.
    for rk in ranks:
        if rk.ghost_cols.size:
            rk.ghosts[:] = x[rk.ghost_cols]

    # Resolved once: a missing or all-null-sink tracer costs one branch
    # per event afterwards (see repro.observability.tracer.resolve).
    trc = tracer if (tracer is not None and tracer.enabled) else None
    trace_reads = trc is not None and trc.trace_reads
    version = None
    if trace_reads:
        # Read-version capture: the global commit ledger, each ghost
        # value's version, and each local row's neighbor layout split
        # into own-block columns and ghost slots.
        version = np.zeros(sim.n, dtype=np.int64)
        owner = sim.decomposition.labels
        for rk in ranks:
            slots = {int(g): i for i, g in enumerate(rk.ghost_cols)}
            rk.ghost_ver = np.zeros(rk.ghost_cols.size, dtype=np.int64)
            rk.read_map = []
            for g in rk.rows:
                own, ghost = [], []
                for j in A.neighbors(int(g)):
                    j = int(j)
                    if owner[j] == rk.rank:
                        own.append(j)
                    else:
                        ghost.append((j, slots[j]))
                rk.read_map.append((own, ghost))
    if trc is not None:
        trc.run_start(
            "DistributedJacobi", sim.n, n_ranks=sim.n_ranks, tol=tol,
            omega=sim.omega, termination=termination,
            residual_mode=residual_mode, reliable=reliable, eager=eager,
            method=sim.method.name,
        )

    queue = EventQueue()
    queue.extend(
        (
            float(rk.rng.random()) * sim.cluster.node.iteration_overhead,
            (_START, rk.rank, rk.epoch),
        )
        for rk in ranks
    )
    # Scripted restarts are known up front; crashes need no event — the
    # plan is consulted at every START/COMMIT/MESSAGE touching the rank.
    for r in sorted(plan.agents()):
        for rt in plan.restart_times(r):
            queue.push(rt, (_RESTART, r, None))

    def down(r: int, t: float) -> bool:
        return plan.is_down(r, t)

    obs_b_norm = vector_norm(b, 1)

    def relnorm(res_vec) -> float:
        num = vector_norm(res_vec, 1)
        return num / obs_b_norm if obs_b_norm > 0 else num

    # The observer's maintained residual (incremental mode only).
    r_vec = b - A.matvec(x)
    obs_since_recompute = 0

    def observe_residual() -> float:
        nonlocal r_vec, obs_since_recompute
        if not incremental:
            return relative_residual_norm(A, x, b)
        obs_since_recompute += 1
        if recompute_every and obs_since_recompute >= recompute_every:
            r_vec = b - A.matvec(x)
            obs_since_recompute = 0
            if perf is not None:
                perf.full_recomputes += 1
        res = relnorm(r_vec)
        if res < tol:
            # Confirm the crossing against a drift-free residual.
            r_vec = b - A.matvec(x)
            obs_since_recompute = 0
            res = relnorm(r_vec)
            if perf is not None:
                perf.full_recomputes += 1
        return res

    def commit_rows(block) -> None:
        """Publish a block's pending update, maintaining the residual."""
        if incremental:
            t0 = perf.tick() if perf is not None else 0.0
            dx = block.pending - x[block.rows]
            x[block.rows] = block.pending
            A.subtract_columns_update(r_vec, block.rows, dx)
            if perf is not None:
                perf.tock_spmv(t0)
        else:
            x[block.rows] = block.pending
        if version is not None:
            version[block.rows] += 1

    def capture_reads(block) -> None:
        """Snapshot the versions this relaxation reads (at START)."""
        reads = []
        for own, ghost in block.read_map:
            d = {j: int(version[j]) for j in own}
            for j, slot in ghost:
                d[j] = int(block.ghost_ver[slot])
            reads.append(d)
        block.pending_reads = reads

    def emit_relax(block, t: float) -> None:
        """Relax event for one block commit (staleness measured pre-bump)."""
        if trace_reads:
            stale = [
                max((int(version[j]) - v for j, v in d.items()), default=0)
                for d in block.pending_reads
            ]
            trc.relax(
                t, block.rank, block.rows,
                reads=block.pending_reads, staleness=stale,
            )
        else:
            trc.relax(t, block.rank, block.rows)

    res0 = relnorm(r_vec)
    times, residuals, counts = [0.0], [res0], [0]
    relaxations = 0
    commits_since_obs = 0
    observe_every = sim.n_ranks if observe_every is None else int(observe_every)
    converged = res0 < tol
    t_end = 0.0

    # Eager-mode bookkeeping: has rank seen fresh data since last relax?
    fresh = [True] * sim.n_ranks
    idle = [False] * sim.n_ranks
    # Incoming-neighbour sets: which ranks put into rid's ghost layer.
    senders = [set() for _ in range(sim.n_ranks)]
    for rk in ranks:
        for q, _, _ in rk.send_plan:
            senders[q].add(rk.rank)
    # Termination detection state (rank 0 is the detector).
    b_norm = float(np.sum(np.abs(b))) or 1.0
    reported = np.full(sim.n_ranks, np.inf)
    if termination == "detect":
        reported[:] = [
            float(np.sum(np.abs(b[rk.rows] - rk.local.matvec(
                np.concatenate((x[rk.rows], rk.ghosts))
            ))))
            for rk in ranks
        ]
    stop_broadcast = False

    # Heartbeat failure detection (rank 0 is also the detector).
    heartbeats_on = (
        sim.recovery != "none"
        and sim.n_ranks > 1
        and (bool(plan) or sim.heartbeat_interval is not None)
    )
    hb_interval = (
        sim.heartbeat_interval
        if sim.heartbeat_interval is not None
        else 10.0 * (sim.cluster.node.iteration_overhead + 2.0 * net.latency)
    )
    hb_timeout = sim.heartbeat_miss * hb_interval
    last_hb = [0.0] * sim.n_ranks
    hb_chain_alive = [False] * sim.n_ranks
    hb_stopped = False  # set once the run is quiescent; chains then end
    presumed_dead = [False] * sim.n_ranks
    adopted_by: dict = {}  # dead rank -> adopter rank
    adopters: dict = {}  # adopter rank -> [dead ranks]
    adopt_snapshot: dict = {}  # adopter rank -> dead ranks read at START
    degraded_since = None
    if heartbeats_on:
        for rk in ranks:
            hb_chain_alive[rk.rank] = True
            queue.push(
                float(rk.rng.random()) * hb_interval, (_HEARTBEAT, rk.rank, None)
            )
        queue.push(hb_interval, (_HB_CHECK, 0, None))

    # Reliable-put protocol state, keyed by directed channel (src, dst).
    next_seq: dict = {}  # channel -> next sequence number
    applied_seq: dict = {}  # channel -> newest applied sequence number
    outstanding: dict = {}  # channel -> {seq: [slots, values, attempts, rto]}

    def rto(n_values: int) -> float:
        """Base retransmission timeout: a generous round-trip multiple."""
        if sim.ack_timeout is not None:
            return sim.ack_timeout
        return 6.0 * (2.0 * net.latency + n_values * net.time_per_value)

    def control_lost(src: int, dst: int, t: float) -> bool:
        """Loss roll for a small control message (ack/heartbeat/report)."""
        if plan.blocks_message(src, dst, t):
            return True
        p = sim.drop_probability
        burst = plan.drop_probability(src, t)
        if burst:
            p = 1.0 - (1.0 - p) * (1.0 - burst)
        return bool(p) and fail_rng.random() < p

    def transmit(ch, seq: int, rec, t: float) -> None:
        """One (re)transmission of a reliable put + its retry timer."""
        p, q = ch
        slots_q, values, timeout = rec[0], rec[1], rec[3]
        if trc is not None:
            trc.send(t, p, q, values.size, seq=seq)
        corrupted = False
        pc = plan.corrupt_probability(p, t)
        if pc and fail_rng.random() < pc:
            corrupted = True
        lost = bool(
            sim.drop_probability and fail_rng.random() < sim.drop_probability
        )
        if not lost and plan:
            if plan.blocks_message(p, q, t):
                lost = True
            else:
                pb = plan.drop_probability(p, t)
                lost = bool(pb) and fail_rng.random() < pb
        intra = sim._same_node(p, q)
        if lost:
            tm.puts_dropped += 1
            if trc is not None:
                trc.fault(t, p, "put_dropped", dst=q)
        else:
            meta = None
            if trc is not None:
                meta = {"sent_at": t}
                if rec[4] is not None:
                    meta["vers"] = rec[4]
            arrival = t + net.message_time(values.size, ranks[p].rng, intra_node=intra)
            queue.push(arrival, (_MESSAGE, q, (p, seq, slots_q, values, corrupted, meta)))
            if (
                sim.duplicate_probability
                and fail_rng.random() < sim.duplicate_probability
            ):
                arrival = t + net.message_time(
                    values.size, ranks[p].rng, intra_node=intra
                )
                queue.push(
                    arrival, (_MESSAGE, q, (p, seq, slots_q, values, corrupted, meta))
                )
        queue.push(t + timeout, (_RETRY, p, (q, seq)))

    def send_reliable(rk, q: int, slots_q, values, t: float, vers=None) -> None:
        ch = (rk.rank, q)
        seq = next_seq.get(ch, 0)
        next_seq[ch] = seq + 1
        tm.puts_sent += 1
        rec = [slots_q, values, 0, rto(values.size), vers]
        outstanding.setdefault(ch, {})[seq] = rec
        transmit(ch, seq, rec, t)

    def fire_puts(rk, t: float) -> None:
        if reliable:
            for q, slots_q, local_rows in rk.send_plan:
                # The put carries the just-committed values, so their
                # versions are snapshotted once; retransmissions resend
                # the same payload.
                vers = version[rk.rows[local_rows]].copy() if trace_reads else None
                send_reliable(rk, q, slots_q, rk.pending[local_rows].copy(), t, vers)
            return
        # Fire-and-forget RMA puts (the seed's failure-injection path;
        # RNG call order kept bit-identical for plan-free runs).
        for q, slots_q, local_rows in rk.send_plan:
            tm.puts_sent += 1
            if trc is not None:
                trc.send(t, rk.rank, q, local_rows.size)
            if sim.drop_probability and fail_rng.random() < sim.drop_probability:
                tm.puts_dropped += 1
                if trc is not None:
                    trc.fault(t, rk.rank, "put_dropped", dst=q)
                continue
            if plan:
                if plan.blocks_message(rk.rank, q, t):
                    tm.puts_dropped += 1
                    if trc is not None:
                        trc.fault(t, rk.rank, "put_dropped", dst=q)
                    continue
                pb = plan.drop_probability(rk.rank, t)
                if pb and fail_rng.random() < pb:
                    tm.puts_dropped += 1
                    if trc is not None:
                        trc.fault(t, rk.rank, "put_dropped", dst=q)
                    continue
                pc = plan.corrupt_probability(rk.rank, t)
                if pc and fail_rng.random() < pc:
                    # No checksum without the protocol: the garbage put
                    # is modeled as lost at the NIC, never applied.
                    tm.puts_corrupted += 1
                    if trc is not None:
                        trc.fault(t, rk.rank, "put_corrupted", dst=q)
                    continue
            values = rk.pending[local_rows]
            meta = None
            if trc is not None:
                meta = {"sent_at": t}
                if trace_reads:
                    meta["vers"] = version[rk.rows[local_rows]].copy()
            n_copies = 1
            if (
                sim.duplicate_probability
                and fail_rng.random() < sim.duplicate_probability
            ):
                n_copies = 2
            intra = sim._same_node(rk.rank, q)
            for _ in range(n_copies):
                arrival = t + net.message_time(values.size, rk.rng, intra_node=intra)
                queue.push(
                    arrival,
                    (_MESSAGE, q, (None, None, slots_q, values.copy(), False, meta)),
                )

    def has_live_source(rid: int, t: float) -> bool:
        """Whether any ghost data could still reach ``rid``, now or later.

        A sender counts as live while it is running or may yet restart.
        A presumed-dead, unadopted sender does not (freeze regime:
        nobody will ever relay its rows); an adopted one does (its
        adopter fires its puts)."""
        for p in senders[rid]:
            if p in adopted_by:
                return True
            if ranks[p].stopped or plan.down_forever(p, t) or presumed_dead[p]:
                continue
            return True
        return False

    def wake_orphans(t: float) -> None:
        """Resume idle eager ranks whose every data source is gone.

        An eager rank parks until a message arrives; once no live
        sender remains, none ever will — the rank must free-run
        against its frozen ghosts (the paper's delayed-until-
        convergence regime) to ``max_iterations`` instead of idling
        forever under a live heartbeat chain (which would keep the
        event loop spinning and hang the run)."""
        if not eager:
            return
        for other in ranks:
            r = other.rank
            if (
                idle[r]
                and not other.stopped
                and not down(r, t)
                and not has_live_source(r, t)
            ):
                idle[r] = False
                queue.push(t, (_START, r, other.epoch))

    def update_degraded(t: float) -> None:
        """Open/close the degraded-mode interval on membership changes."""
        nonlocal degraded_since
        now_degraded = any(
            presumed_dead[r] and r not in adopted_by
            for r in range(sim.n_ranks)
        )
        if now_degraded and degraded_since is None:
            degraded_since = t
        elif not now_degraded and degraded_since is not None:
            tm.degraded_intervals.append((degraded_since, t))
            degraded_since = None

    def maybe_stop(t: float) -> None:
        """Detect-mode stop check over the non-excluded reporters."""
        nonlocal stop_broadcast
        if termination != "detect" or stop_broadcast:
            return
        if plan and down(0, t):
            return  # a crashed detector aggregates nothing, stops nobody
        included = np.array(
            [
                not (presumed_dead[r] and r not in adopted_by)
                for r in range(sim.n_ranks)
            ]
        )
        if float(np.sum(reported[included])) / b_norm < tol:
            stop_broadcast = True
            for other in ranks:
                delay = net.message_time(1, other.rng)
                queue.push(t + delay, (_STOP, other.rank, None))

    def schedule_adoption(dead: int, t: float) -> None:
        """Pick the lowest-ranked live neighbour and notify it."""
        neighbours = sorted({q for q, _, _ in ranks[dead].send_plan})
        others = [p for p in range(sim.n_ranks) if p not in neighbours]
        for p in neighbours + others:
            if p == dead or presumed_dead[p] or ranks[p].stopped:
                continue
            if down(p, t) or plan.down_forever(p, t):
                continue
            queue.push(
                t + net.message_time(1, ranks[0].rng), (_FAIL_NOTICE, p, dead)
            )
            return

    def declare_failed(r: int, t: float) -> None:
        presumed_dead[r] = True
        tm.failures_detected.append((r, t))
        if trc is not None:
            trc.detect(t, r, "dead")
        update_degraded(t)
        if sim.recovery == "adopt":
            schedule_adoption(r, t)
        wake_orphans(t)
        maybe_stop(t)

    def release_adoption(dead: int) -> None:
        adopter = adopted_by.pop(dead, None)
        if adopter is not None:
            adopters[adopter].remove(dead)

    def local_residual_norm(block) -> float:
        """Block residual 1-norm from the rank's current (stale) view."""
        local_x = np.concatenate((x[block.rows], block.ghosts))
        return float(np.sum(np.abs(b[block.rows] - block.local.matvec(local_x))))

    while queue and not converged:
        t, (kind, rid, payload) = queue.pop()
        rk = ranks[rid]
        if perf is not None:
            perf.events += 1
        if kind == _MESSAGE:
            src, seq, slots, values, corrupted, meta = payload
            if plan and down(rid, t):
                # The target window is gone; the put lands nowhere.
                tm.puts_dropped += 1
                continue
            if src is not None:
                # Reliable protocol: checksum, ack, then dedup by seq.
                if corrupted:
                    tm.puts_corrupted += 1
                    if trc is not None:
                        trc.fault(t, rid, "put_corrupted", src=src)
                    continue  # no ack -> the sender's timer retries
                ch = (src, rid)
                if control_lost(rid, src, t):
                    tm.acks_lost += 1
                else:
                    arrival = t + net.message_time(
                        1, rk.rng, intra_node=sim._same_node(rid, src)
                    )
                    queue.push(arrival, (_ACK, src, (rid, seq)))
                if seq <= applied_seq.get(ch, -1):
                    tm.duplicates_suppressed += 1
                    continue
                applied_seq[ch] = seq
            rk.ghosts[slots] = values
            if trace_reads and meta is not None and meta.get("vers") is not None:
                rk.ghost_ver[slots] = meta["vers"]
            tm.puts_delivered += 1
            if trc is not None:
                trc.recv(
                    t, rid, src, values.size, seq=seq,
                    latency=(t - meta["sent_at"]) if meta else None,
                )
            fresh[rid] = True
            if eager and idle[rid] and not rk.stopped:
                idle[rid] = False
                queue.push(t, (_START, rid, rk.epoch))
            continue
        if kind == _ACK:
            src, seq = payload
            pend = outstanding.get((rid, src))
            if pend is not None:
                pend.pop(seq, None)
            if trc is not None:
                trc.ack(t, rid, src, seq)
            continue
        if kind == _RETRY:
            q, seq = payload
            ch = (rid, q)
            rec = outstanding.get(ch, {}).get(seq)
            if rec is None:
                continue  # acked (or abandoned) in the meantime
            if rk.stopped or (plan and down(rid, t)):
                # A dead/stopped sender's protocol state dies with it.
                outstanding[ch].pop(seq, None)
                continue
            rec[2] += 1
            if rec[2] > sim.max_put_retries:
                tm.retry_budget_exhausted += 1
                outstanding[ch].pop(seq, None)
                if trc is not None:
                    trc.fault(t, rid, "retry_exhausted", dst=q, seq=seq)
                continue
            tm.retries += 1
            rec[3] *= 2.0  # exponential backoff
            transmit(ch, seq, rec, t)
            continue
        if kind == _HEARTBEAT:
            # A delay-model hang silences the heartbeat chain too — a hung
            # process cannot beat, which is how the detector learns it is
            # gone. Plan crashes revive the chain at _RESTART; delay hangs
            # are permanent.
            if (
                hb_stopped
                or rk.stopped
                or down(rid, t)
                or sim.delay.is_hung(rid, t)
            ):
                hb_chain_alive[rid] = False
                continue
            tm.heartbeats_sent += 1
            if rid == 0:
                last_hb[0] = t
            elif control_lost(rid, 0, t):
                tm.heartbeats_lost += 1
            else:
                arrival = t + net.message_time(
                    1, rk.rng, intra_node=sim._same_node(rid, 0)
                )
                queue.push(arrival, (_HB_ARRIVE, 0, rid))
            queue.push(t + hb_interval, (_HEARTBEAT, rid, None))
            continue
        if kind == _HB_ARRIVE:
            src = payload
            last_hb[src] = t
            if presumed_dead[src]:
                presumed_dead[src] = False
                tm.recoveries.append((src, t))
                if trc is not None:
                    trc.detect(t, src, "alive")
                release_adoption(src)
                update_degraded(t)
            continue
        if kind == _HB_CHECK:
            if not down(0, t):
                for r in range(1, sim.n_ranks):
                    if presumed_dead[r] or ranks[r].stopped:
                        continue
                    if t - last_hb[r] > hb_timeout:
                        declare_failed(r, t)
            wake_orphans(t)
            # Quiescence: once every rank is finished (or parked on a
            # peer that can only be woken by traffic that no longer
            # exists), stop the detector and let the queue drain —
            # otherwise the self-rescheduling heartbeat chains keep
            # ``while queue`` alive forever.
            quiescent = all(
                other.stopped
                or plan.down_forever(other.rank, t)
                or idle[other.rank]
                or sim.delay.is_hung(other.rank, t)
                for other in ranks
            )
            if quiescent and any(idle):
                # An idle rank is only truly stuck when no data, retry
                # or restart event is still in flight to wake it.
                quiescent = all(
                    pl[0] in _HB_KINDS for pl in queue.pending_payloads()
                )
            if quiescent:
                hb_stopped = True
            else:
                queue.push(t + hb_interval, (_HB_CHECK, 0, None))
            continue
        if kind == _RESTART:
            if rk.stopped:
                continue
            rk.epoch += 1  # invalidate the pre-crash incarnation's events
            if rk.ghost_cols.size:
                rk.ghosts[:] = x[rk.ghost_cols]  # ghost re-sync
                if trace_reads:
                    rk.ghost_ver[:] = version[rk.ghost_cols]
            tm.restarts.append((rid, t))
            if trc is not None:
                trc.fault(t, rid, "restart")
            release_adoption(rid)
            fresh[rid] = True
            idle[rid] = False
            queue.push(t + sim._overhead_time(rk), (_START, rid, rk.epoch))
            if heartbeats_on and not hb_chain_alive[rid]:
                hb_chain_alive[rid] = True
                queue.push(t, (_HEARTBEAT, rid, None))
            continue
        if kind == _FAIL_NOTICE:
            dead = payload
            if not presumed_dead[dead] or dead in adopted_by:
                continue  # recovered or already adopted: moot
            if rk.stopped or down(rid, t):
                schedule_adoption(dead, t)  # pass it on to someone alive
                continue
            adopted_by[dead] = rid
            adopters.setdefault(rid, []).append(dead)
            drk = ranks[dead]
            if drk.ghost_cols.size:
                drk.ghosts[:] = x[drk.ghost_cols]  # ghost re-sync
                if trace_reads:
                    drk.ghost_ver[:] = version[drk.ghost_cols]
            tm.adoptions.append((dead, rid, t))
            if trc is not None:
                trc.detect(t, dead, "adopted")
            update_degraded(t)
            if eager and idle[rid] and not rk.stopped:
                idle[rid] = False
                queue.push(t, (_START, rid, rk.epoch))
            continue
        if kind == _REPORT:
            # A rank's residual report reaches the detector (rank 0);
            # while rank 0 is scripted down the report lands nowhere.
            if plan and down(0, t):
                continue
            reported[rid] = payload
            maybe_stop(t)
            continue
        if kind == _STOP:
            rk.stopped = True
            continue
        if kind == _START:
            if payload != rk.epoch:
                continue  # scheduled by a pre-crash incarnation
            if sim.delay.is_hung(rid, t) or rk.stopped or down(rid, t):
                if trc is not None and not rk.stopped and down(rid, t):
                    trc.fault(t, rid, "crash")
                continue
            if eager and not fresh[rid] and rk.ghost_cols.size and (
                not heartbeats_on or has_live_source(rid, t)
            ):
                # Nothing new to compute with: go idle until a message.
                # With detection on, a rank with no live sender left
                # keeps running instead — nothing would ever wake it.
                idle[rid] = True
                continue
            fresh[rid] = False
            # Read-to-write span: reads (own + ghosts) now, write at COMMIT.
            rk.pending = sim._relax_block(rk, x, mom_prev)
            if trace_reads:
                capture_reads(rk)
            snap = list(adopters.get(rid, ()))
            adopt_snapshot[rid] = snap
            if termination == "detect" and rk.iterations % report_every == 0:
                # Local residual norm from the same (possibly stale) view.
                arrival = t + net.message_time(1, rk.rng)
                queue.push(arrival, (_REPORT, rid, local_residual_norm(rk)))
            compute = sim._compute_time(rk)
            for d in snap:
                # Hosting an adopted block: refresh its ghost layer from
                # the committed state, relax it, pay its compute time.
                drk = ranks[d]
                if drk.ghost_cols.size:
                    drk.ghosts[:] = x[drk.ghost_cols]
                    if trace_reads:
                        drk.ghost_ver[:] = version[drk.ghost_cols]
                drk.pending = sim._relax_block(drk, x, mom_prev)
                if trace_reads:
                    capture_reads(drk)
                compute += sim._compute_time(drk)
                if termination == "detect" and rk.iterations % report_every == 0:
                    arrival = t + net.message_time(1, rk.rng)
                    queue.push(arrival, (_REPORT, d, local_residual_norm(drk)))
            queue.push(t + compute, (_COMMIT, rid, rk.epoch))
        else:  # _COMMIT
            if payload != rk.epoch or down(rid, t):
                if trc is not None and payload == rk.epoch and down(rid, t):
                    trc.fault(t, rid, "crash")
                continue  # the rank crashed inside the read-to-write span
            if trc is not None:
                emit_relax(rk, t)
            commit_rows(rk)
            rk.iterations += 1
            relaxations += rk.rows.size
            t_end = t
            fire_puts(rk, t)
            snap = adopt_snapshot.pop(rid, ())
            for d in snap:
                drk = ranks[d]
                if trc is not None:
                    emit_relax(drk, t)
                commit_rows(drk)
                relaxations += drk.rows.size
                fire_puts(drk, t)
            commits_since_obs += 1 + len(snap)
            if commits_since_obs >= observe_every:
                commits_since_obs = 0
                t0 = perf.tick() if perf is not None else 0.0
                res = observe_residual()
                if perf is not None:
                    perf.tock_residual(t0)
                times.append(t)
                residuals.append(res)
                counts.append(relaxations)
                if trc is not None:
                    trc.observe(t, res, relaxations)
                if termination == "count" and res < tol:
                    converged = True
                    if trc is not None:
                        trc.convergence(t, res, tol)
                    break
            if rk.iterations >= max_iterations:
                rk.stopped = True
            else:
                # Next read only begins after the off-span overhead.
                queue.push(t + sim._overhead_time(rk), (_START, rid, rk.epoch))

    if degraded_since is not None:
        tm.degraded_intervals.append((degraded_since, max(t_end, degraded_since)))
    # Final observation, skipped via the dirty flag when no row changed
    # since the last recorded one (recomputing would be pure waste).
    if commits_since_obs:
        t0 = perf.tick() if perf is not None else 0.0
        res = observe_residual()
        if perf is not None:
            perf.tock_residual(t0)
        times.append(max(t_end, times[-1]))
        residuals.append(res)
        counts.append(relaxations)
        if trc is not None:
            trc.observe(times[-1], res, relaxations)
            if not converged and res < tol:
                trc.convergence(times[-1], res, tol)
    else:
        res = residuals[-1]
    converged = converged or res < tol
    if perf is not None:
        perf.total_seconds = _time.perf_counter() - run_start
    if trc is not None:
        trc.run_end(t_end, converged, relaxations)
    return SimulationResult(
        x=x,
        converged=converged,
        times=times,
        residual_norms=residuals,
        relaxation_counts=counts,
        iterations=np.array([rk.iterations for rk in ranks]),
        total_time=t_end,
        mode="eager" if eager else "async",
        telemetry=tm,
        perf=perf,
    )


def distributed_run_sync(
    sim,
    x0=None,
    tol: float = 1e-3,
    max_iterations: int = 10_000,
) -> SimulationResult:
    """Pre-engine synchronous loop of :class:`DistributedJacobi.run_sync`.

    Verbatim scalar-draw sweep timing (two per-rank lognormals plus one
    per message, drawn one call at a time) — the oracle for the
    pattern-jitter-stream port.
    """
    check_positive(tol, "tol")
    A, b, dinv = sim.A, sim.b, sim.dinv
    x = np.zeros(sim.n) if x0 is None else check_vector(x0, sim.n, "x0").copy()
    ranks = sim._compile_ranks()
    net = sim.cluster.network
    allreduce = net.allreduce_cost(sim.n_ranks)

    b_norm = vector_norm(b, 1)
    mom_beta = sim.method.beta
    mom_prev = x.copy() if sim.method.kind == "momentum" else None
    # One SpMV per sweep in the Jacobi branch: the residual driving the
    # update doubles as the previous sweep's convergence check.
    r = b - A.matvec(x)
    res0 = vector_norm(r, 1) / b_norm if b_norm > 0 else vector_norm(r, 1)
    times, residuals, counts = [0.0], [res0], [0]
    t = 0.0
    relaxations = 0
    k = 0
    converged = res0 < tol
    while not converged and k < max_iterations:
        compute = max(sim._cycle_time(rk) for rk in ranks)
        comm = 0.0
        for rk in ranks:
            for _, slots_q, local_rows in rk.send_plan:
                comm = max(comm, net.message_time(local_rows.size, rk.rng))
        t += compute + comm + allreduce
        if sim.local_sweep == "jacobi":
            if mom_prev is None:
                # Exact global Jacobi sweep (fast vectorized path).
                x += dinv * r
            else:
                dx = dinv * r + mom_beta * (x - mom_prev)
                mom_prev[:] = x
                x += dx
        else:
            # Per-rank local GS sweeps on fresh ghosts, applied together.
            updates = []
            for rk in ranks:
                if rk.ghost_cols.size:
                    rk.ghosts[:] = x[rk.ghost_cols]
                updates.append(sim._relax_block(rk, x))
            for rk, new in zip(ranks, updates):
                x[rk.rows] = new
        relaxations += sim.n
        k += 1
        r = b - A.matvec(x)
        num = vector_norm(r, 1)
        res = num / b_norm if b_norm > 0 else num
        times.append(t)
        residuals.append(res)
        counts.append(relaxations)
        converged = res < tol
    return SimulationResult(
        x=x,
        converged=converged,
        times=times,
        residual_norms=residuals,
        relaxation_counts=counts,
        iterations=np.full(sim.n_ranks, k),
        total_time=t,
        mode="sync",
    )
