"""Event-driven distributed-memory Jacobi simulator (the MPI substitute).

Reproduces the structure of the paper's distributed implementations
(Section VI): the matrix is partitioned (METIS substitute) and each MPI rank
owns a contiguous-after-permutation subdomain plus a *ghost layer* holding
the latest boundary values received from its neighbors.

* **Synchronous mode** models the point-to-point implementation
  (``MPI_Isend``/``MPI_Recv``): every iteration all ranks exchange ghost
  values, wait, relax, and hit an allreduce — so each sweep is exact global
  Jacobi and its simulated duration is the slowest rank's compute plus the
  ghost exchange plus the reduction.
* **Asynchronous mode** models the RMA implementation (``MPI_Put`` into
  passive-target windows): when a rank commits an iteration it fires its
  boundary values at each neighbor as one-sided puts that land after a
  sampled network latency; ranks never wait — each iteration uses whatever
  ghost values have arrived (the racy scheme). Puts into disjoint window
  subarrays simply overwrite, exactly like the paper's window layout.

Failure injection (dropped or duplicated puts, hung ranks) exercises the
robustness the asynchronous method inherits from Theorem 1: lost updates
only delay information, they cannot corrupt the iteration.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.matrices.sparse import CSRMatrix
from repro.partition.partitioner import bfs_bisection_partition, contiguous_partition
from repro.partition.subdomain import DomainDecomposition
from repro.runtime.delays import CompositeDelay, DelayModel, NO_DELAY, StragglerDelay
from repro.runtime.events import EventQueue
from repro.runtime.machine import HASWELL_CLUSTER, ClusterModel
from repro.runtime.results import SimulationResult
from repro.util.errors import ShapeError, SingularMatrixError
from repro.util.norms import relative_residual_norm
from repro.util.rng import as_rng, spawn_rngs
from repro.util.validation import check_positive, check_probability, check_vector

_START, _COMMIT, _MESSAGE, _REPORT, _STOP = 0, 1, 2, 3, 4


@dataclass
class _Rank:
    """Per-rank compiled state.

    The local matrix is compacted so columns ``[0, size)`` are the rank's own
    rows (in global order) and columns ``[size, size + n_ghost)`` are its
    ghost slots; one concatenation + one small SpMV per iteration.
    """

    rank: int
    rows: np.ndarray
    local: CSRMatrix  # compacted columns: own rows then ghosts
    ghost_cols: np.ndarray  # global indices of ghost slots
    ghosts: np.ndarray  # current ghost values
    # For each neighbor q: (slot indices in *q's* ghost array, local indices
    # of our rows to send).
    send_plan: list
    rng: np.random.Generator
    iterations: int = 0
    stopped: bool = False
    pending: np.ndarray = None


class DistributedJacobi:
    """Simulated MPI Jacobi across ranks with ghost-layer exchange.

    Parameters
    ----------
    A
        Global system matrix (square, nonzero diagonal).
    b
        Right-hand side.
    n_ranks
        Number of MPI ranks.
    partition
        ``"bfs"`` (METIS-substitute recursive bisection over the matrix
        graph), ``"contiguous"`` (equal row blocks), or an explicit label
        array.
    cluster
        Cost model (default: the Cori-Haswell preset).
    delay
        Injected-delay model applied to rank compute times.
    drop_probability, duplicate_probability
        Failure injection on asynchronous puts.
    seed
        Seed for all stochastic behaviour.
    omega
        Relaxation weight in (0, 2); 1.0 is plain Jacobi.
    local_sweep
        How a rank relaxes its own block per iteration: ``"jacobi"`` (the
        paper's scheme — all block rows from the same snapshot) or
        ``"gauss_seidel"`` (one forward GS sweep over the block, the
        "inexact block Jacobi" variant of Jager & Bradley's study).
    ranks_per_node
        Override the cluster's ranks-per-node for the intra/inter-node
        message-latency split (None: use the cluster preset). Consecutive
        ranks are co-located, matching the contiguous partition layout.
    """

    def __init__(
        self,
        A: CSRMatrix,
        b,
        n_ranks: int,
        partition="bfs",
        cluster: ClusterModel = HASWELL_CLUSTER,
        delay: DelayModel = NO_DELAY,
        drop_probability: float = 0.0,
        duplicate_probability: float = 0.0,
        seed=None,
        omega: float = 1.0,
        local_sweep: str = "jacobi",
        ranks_per_node: int | None = None,
    ):
        if A.nrows != A.ncols:
            raise ShapeError(f"matrix must be square, got {A.shape}")
        n = A.nrows
        if not 1 <= n_ranks <= n:
            raise ShapeError(f"n_ranks must lie in [1, {n}], got {n_ranks}")
        if not 0 < omega < 2:
            raise ValueError(f"omega must lie in (0, 2), got {omega}")
        if local_sweep not in ("jacobi", "gauss_seidel"):
            raise ValueError(
                f"local_sweep must be 'jacobi' or 'gauss_seidel', got {local_sweep!r}"
            )
        d = A.diagonal()
        if np.any(d == 0):
            raise SingularMatrixError("Jacobi requires a nonzero diagonal")
        self.A = A
        self.n = n
        self.b = check_vector(b, n, "b")
        self.omega = float(omega)
        self.dinv = self.omega / d
        self.local_sweep = local_sweep
        self.ranks_per_node = int(
            cluster.ranks_per_node if ranks_per_node is None else ranks_per_node
        )
        if self.ranks_per_node < 1:
            raise ValueError(
                f"ranks_per_node must be >= 1, got {self.ranks_per_node}"
            )
        self.n_ranks = int(n_ranks)
        self.cluster = cluster
        self.delay = delay
        self.drop_probability = check_probability(drop_probability, "drop_probability")
        self.duplicate_probability = check_probability(
            duplicate_probability, "duplicate_probability"
        )
        self.seed = seed

        if isinstance(partition, str):
            if partition == "bfs":
                labels = bfs_bisection_partition(A, n_ranks)
            elif partition == "contiguous":
                labels = contiguous_partition(n, n_ranks)
            else:
                raise ValueError(
                    f"partition must be 'bfs', 'contiguous' or a label array, got {partition!r}"
                )
        else:
            labels = np.asarray(partition, dtype=np.int64)
            if int(labels.max()) + 1 != n_ranks:
                raise ShapeError(
                    f"label array defines {int(labels.max()) + 1} parts, expected {n_ranks}"
                )
        self.decomposition = DomainDecomposition(A, labels)

    # ------------------------------------------------------------------
    def _compile_ranks(self) -> list:
        """Build per-rank compacted matrices and communication plans."""
        dd = self.decomposition
        rngs = spawn_rngs(self.seed, self.n_ranks)
        # Global -> (rank, local index) lookup.
        owner = dd.labels
        local_index = np.empty(self.n, dtype=np.int64)
        for sub in dd:
            local_index[sub.rows] = np.arange(sub.size)

        ranks = []
        ghost_slot = []  # per rank: {global col: slot}
        for sub in dd:
            gcols = sub.ghost_columns
            slots = {int(g): i for i, g in enumerate(gcols)}
            ghost_slot.append(slots)
            # Compact the local row slice: own columns -> [0, size),
            # ghost columns -> size + slot.
            col_map = np.full(self.n, -1, dtype=np.int64)
            col_map[sub.rows] = np.arange(sub.size)
            col_map[gcols] = sub.size + np.arange(gcols.size)
            sliced = sub.matrix  # rows local, columns global
            new_cols = col_map[sliced.indices]
            # Remapping breaks the per-row column ordering; rebuild via COO,
            # which sorts and revalidates.
            local = CSRMatrix.from_coo(
                sliced._row_of_nnz,
                new_cols,
                sliced.data,
                (sub.size, sub.size + gcols.size),
            )
            ranks.append(
                _Rank(
                    rank=sub.rank,
                    rows=sub.rows,
                    local=local,
                    ghost_cols=gcols,
                    ghosts=np.zeros(gcols.size),
                    send_plan=[],
                    rng=rngs[sub.rank],
                )
            )
        # Send plans: rank p sends, to each neighbor q, the values of p's
        # rows that q keeps in its ghost layer.
        for sub in dd:
            p = sub.rank
            for q, cols in sub.send_to.items():
                slots_q = np.array([ghost_slot[q][int(g)] for g in cols], dtype=np.int64)
                local_rows = local_index[cols]
                ranks[p].send_plan.append((q, slots_q, local_rows))
        return ranks

    def _slowdown(self, rank: int) -> float:
        if isinstance(self.delay, (StragglerDelay, CompositeDelay)):
            return self.delay.slowdown(rank)
        return 1.0

    def _compute_time(self, rk: _Rank) -> float:
        """Read-to-write span: the local SpMV + correction."""
        node = self.cluster.node
        base = node.compute_duration(rk.local.nnz, rk.rows.size, 1, rk.rng)
        return base * self._slowdown(rk.rank)

    def _overhead_time(self, rk: _Rank) -> float:
        """Off-span per-iteration work: put initiation, norms, bookkeeping."""
        node = self.cluster.node
        base = node.overhead_duration(1, rk.rng)
        base += len(rk.send_plan) * self.cluster.network.put_overhead
        return base * self._slowdown(rk.rank) + self.delay.extra_time(
            rk.rank, rk.iterations, rk.rng
        )

    def _cycle_time(self, rk: _Rank) -> float:
        """Full iteration duration (sync mode)."""
        return self._compute_time(rk) + self._overhead_time(rk)

    def _same_node(self, p: int, q: int) -> bool:
        """Whether two ranks share a node (consecutive-rank placement)."""
        return p // self.ranks_per_node == q // self.ranks_per_node

    def _relax_block(self, rk: _Rank, x: np.ndarray) -> np.ndarray:
        """One local relaxation of ``rk``'s block from the current view.

        ``"jacobi"``: every block row uses the same snapshot (the paper's
        implementation). ``"gauss_seidel"``: a forward sweep where each row
        immediately sees earlier in-block updates (inexact-block variant).
        """
        local_x = np.concatenate((x[rk.rows], rk.ghosts))
        dinv_loc = self.dinv[rk.rows]
        b_loc = self.b[rk.rows]
        if self.local_sweep == "jacobi":
            r = b_loc - rk.local.matvec(local_x)
            return local_x[: rk.rows.size] + dinv_loc * r
        # Forward Gauss-Seidel over the block, in place on the local view.
        mat = rk.local
        for i in range(rk.rows.size):
            cols, vals = mat.row_entries(i)
            r_i = b_loc[i] - float(vals @ local_x[cols])
            local_x[i] += dinv_loc[i] * r_i
        return local_x[: rk.rows.size].copy()

    # ------------------------------------------------------------------
    def run_async(
        self,
        x0=None,
        tol: float = 1e-3,
        max_iterations: int = 10_000,
        observe_every: int | None = None,
        eager: bool = False,
        termination: str = "count",
        report_every: int = 4,
    ) -> SimulationResult:
        """Asynchronous (RMA put) execution.

        Each rank free-runs: relax with current ghosts, commit, fire puts at
        neighbors, repeat.

        Parameters beyond the common ones
        ---------------------------------
        eager
            Jager & Bradley's *semi-synchronous eager* scheme: a rank only
            relaxes again after at least one new ghost message arrived since
            its last relaxation (ranks without neighbors always proceed).
            Avoids wasted relaxations at the price of idle waiting — the
            comparator discussed in the paper's related work.
        termination
            ``"count"`` — the paper's naive scheme: each rank stops after
            ``max_iterations`` local iterations; the zero-communication
            observer still records the residual history.
            ``"detect"`` — the distributed termination detection the paper
            leaves as future work: every ``report_every`` iterations a rank
            sends its local residual 1-norm to rank 0 (with network
            latency); when the sum of freshest reports drops below ``tol *
            ||b||_1``, rank 0 broadcasts STOP and ranks halt on receipt.
            Detection events do not use the oracle — convergence is decided
            purely from (stale) reported norms.
        """
        check_positive(tol, "tol")
        if termination not in ("count", "detect"):
            raise ValueError(
                f"termination must be 'count' or 'detect', got {termination!r}"
            )
        A, b, dinv = self.A, self.b, self.dinv
        x = np.zeros(self.n) if x0 is None else check_vector(x0, self.n, "x0").copy()
        ranks = self._compile_ranks()
        net = self.cluster.network
        fail_rng = as_rng(None if self.seed is None else (int(self.seed) ^ 0x5EED))

        # Ghost layers start from the initial iterate.
        for rk in ranks:
            if rk.ghost_cols.size:
                rk.ghosts[:] = x[rk.ghost_cols]

        queue = EventQueue()
        for rk in ranks:
            queue.push(
                float(rk.rng.random()) * self.cluster.node.iteration_overhead,
                (_START, rk.rank, None),
            )

        res0 = relative_residual_norm(A, x, b)
        times, residuals, counts = [0.0], [res0], [0]
        relaxations = 0
        commits_since_obs = 0
        observe_every = self.n_ranks if observe_every is None else int(observe_every)
        converged = res0 < tol
        t_end = 0.0

        # Eager-mode bookkeeping: has rank seen fresh data since last relax?
        fresh = [True] * self.n_ranks
        idle = [False] * self.n_ranks
        # Termination detection state (rank 0 is the detector).
        b_norm = float(np.sum(np.abs(b))) or 1.0
        reported = np.full(self.n_ranks, np.inf)
        if termination == "detect":
            reported[:] = [
                float(np.sum(np.abs(b[rk.rows] - rk.local.matvec(
                    np.concatenate((x[rk.rows], rk.ghosts))
                ))))
                for rk in ranks
            ]
        stop_broadcast = False

        def fire_puts(rk: _Rank, t: float) -> None:
            for q, slots_q, local_rows in rk.send_plan:
                if self.drop_probability and fail_rng.random() < self.drop_probability:
                    continue
                values = rk.pending[local_rows]
                n_copies = 1
                if (
                    self.duplicate_probability
                    and fail_rng.random() < self.duplicate_probability
                ):
                    n_copies = 2
                intra = self._same_node(rk.rank, q)
                for _ in range(n_copies):
                    arrival = t + net.message_time(values.size, rk.rng, intra_node=intra)
                    queue.push(arrival, (_MESSAGE, q, (slots_q, values.copy())))

        while queue and not converged:
            t, (kind, rid, payload) = queue.pop()
            rk = ranks[rid]
            if kind == _MESSAGE:
                slots, values = payload
                rk.ghosts[slots] = values
                fresh[rid] = True
                if eager and idle[rid] and not rk.stopped:
                    idle[rid] = False
                    queue.push(t, (_START, rid, None))
                continue
            if kind == _REPORT:
                # A rank's residual report reaches the detector (rank 0).
                reported[rid] = payload
                if not stop_broadcast and np.sum(reported) / b_norm < tol:
                    stop_broadcast = True
                    for other in ranks:
                        delay = net.message_time(1, other.rng)
                        queue.push(t + delay, (_STOP, other.rank, None))
                continue
            if kind == _STOP:
                rk.stopped = True
                continue
            if kind == _START:
                if self.delay.is_hung(rid, t) or rk.stopped:
                    continue
                if eager and not fresh[rid] and rk.ghost_cols.size:
                    # Nothing new to compute with: go idle until a message.
                    idle[rid] = True
                    continue
                fresh[rid] = False
                # Read-to-write span: reads (own + ghosts) now, write at COMMIT.
                rk.pending = self._relax_block(rk, x)
                if termination == "detect" and rk.iterations % report_every == 0:
                    # Local residual norm from the same (possibly stale) view.
                    local_x = np.concatenate((x[rk.rows], rk.ghosts))
                    local_norm = float(
                        np.sum(np.abs(b[rk.rows] - rk.local.matvec(local_x)))
                    )
                    arrival = t + net.message_time(1, rk.rng)
                    queue.push(arrival, (_REPORT, rid, local_norm))
                queue.push(t + self._compute_time(rk), (_COMMIT, rid, None))
            else:  # _COMMIT
                x[rk.rows] = rk.pending
                rk.iterations += 1
                relaxations += rk.rows.size
                t_end = t
                fire_puts(rk, t)
                commits_since_obs += 1
                if commits_since_obs >= observe_every:
                    commits_since_obs = 0
                    res = relative_residual_norm(A, x, b)
                    times.append(t)
                    residuals.append(res)
                    counts.append(relaxations)
                    if termination == "count" and res < tol:
                        converged = True
                        break
                if rk.iterations >= max_iterations:
                    rk.stopped = True
                else:
                    # Next read only begins after the off-span overhead.
                    queue.push(t + self._overhead_time(rk), (_START, rid, None))

        res = relative_residual_norm(A, x, b)
        if times[-1] < t_end or residuals[-1] != res:
            times.append(max(t_end, times[-1]))
            residuals.append(res)
            counts.append(relaxations)
        converged = converged or res < tol
        return SimulationResult(
            x=x,
            converged=converged,
            times=times,
            residual_norms=residuals,
            relaxation_counts=counts,
            iterations=np.array([rk.iterations for rk in ranks]),
            total_time=t_end,
            mode="eager" if eager else "async",
        )

    # ------------------------------------------------------------------
    def run_sync(
        self,
        x0=None,
        tol: float = 1e-3,
        max_iterations: int = 10_000,
    ) -> SimulationResult:
        """Synchronous (point-to-point) execution.

        Every sweep: post ghost exchanges, wait for the slowest rank's
        compute and the largest message, relax, allreduce for the residual
        check. Numerically identical to global Jacobi.
        """
        check_positive(tol, "tol")
        A, b, dinv = self.A, self.b, self.dinv
        x = np.zeros(self.n) if x0 is None else check_vector(x0, self.n, "x0").copy()
        ranks = self._compile_ranks()
        net = self.cluster.network
        allreduce = net.allreduce_cost(self.n_ranks)

        res0 = relative_residual_norm(A, x, b)
        times, residuals, counts = [0.0], [res0], [0]
        t = 0.0
        relaxations = 0
        k = 0
        converged = res0 < tol
        while not converged and k < max_iterations:
            compute = max(self._cycle_time(rk) for rk in ranks)
            comm = 0.0
            for rk in ranks:
                for _, slots_q, local_rows in rk.send_plan:
                    comm = max(comm, net.message_time(local_rows.size, rk.rng))
            t += compute + comm + allreduce
            if self.local_sweep == "jacobi":
                # Exact global Jacobi sweep (fast vectorized path).
                r = b - A.matvec(x)
                x += dinv * r
            else:
                # Per-rank local GS sweeps on fresh ghosts, applied together.
                updates = []
                for rk in ranks:
                    if rk.ghost_cols.size:
                        rk.ghosts[:] = x[rk.ghost_cols]
                    updates.append(self._relax_block(rk, x))
                for rk, new in zip(ranks, updates):
                    x[rk.rows] = new
            relaxations += self.n
            k += 1
            res = relative_residual_norm(A, x, b)
            times.append(t)
            residuals.append(res)
            counts.append(relaxations)
            converged = res < tol
        return SimulationResult(
            x=x,
            converged=converged,
            times=times,
            residual_norms=residuals,
            relaxation_counts=counts,
            iterations=np.full(self.n_ranks, k),
            total_time=t,
            mode="sync",
        )

    def run(self, mode: str, **kwargs) -> SimulationResult:
        """Dispatch to :meth:`run_async` or :meth:`run_sync` by name."""
        if mode == "async":
            return self.run_async(**kwargs)
        if mode == "sync":
            return self.run_sync(**kwargs)
        raise ValueError(f"mode must be 'sync' or 'async', got {mode!r}")
